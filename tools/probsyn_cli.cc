// probsyn command-line tool: generate probabilistic data, build histogram
// and wavelet synopses over .pdata files, and (re-)evaluate persisted
// synopses — the full paper pipeline without writing C++.
//
// Usage:
//   probsyn gen       --kind movie|tpch --n N [--seed S] --out FILE
//   probsyn info      --in FILE
//   probsyn histogram --in FILE --buckets B [--metric M] [--c C]
//                     [--method optimal|approx|expectation|sampled|equidepth]
//                     [--epsilon E] [--seed S] [--out CSV]
//   probsyn wavelet   --in FILE --coeffs B [--metric M] [--c C]
//                     [--method greedy|restricted|unrestricted] [--out CSV]
//   probsyn evaluate  --in FILE --histogram CSV [--metric M] [--c C]
//
// Metrics: SSE SSRE SAE SARE MAE MARE (default SSE).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/oracle_factory.h"
#include "core/wavelet.h"
#include "core/wavelet_dp.h"
#include "core/wavelet_unrestricted.h"
#include "gen/generators.h"
#include "io/pdata.h"
#include "model/induced.h"

namespace probsyn::cli {
namespace {

// ---------------------------------------------------------------------------
// Minimal --flag value argument parsing.

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ok_ = false;
        bad_ = key;
        return;
      }
      values_[key.substr(2)] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      ok_ = false;
      bad_ = argv[argc - 1];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::optional<std::string> Get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string GetOr(const std::string& key, std::string fallback) const {
    return Get(key).value_or(std::move(fallback));
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto v = Get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto v = Get(key);
    return v ? std::strtod(v->c_str(), nullptr) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string bad_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "probsyn: %s\n", message.c_str());
  return 1;
}

// Loaded input in whichever model the file used, normalized to the two
// builder-facing models.
struct LoadedInput {
  std::string kind;
  std::optional<ValuePdfInput> value_pdf;
  std::optional<TuplePdfInput> tuple_pdf;

  std::size_t domain_size() const {
    return value_pdf ? value_pdf->domain_size() : tuple_pdf->domain_size();
  }
};

StatusOr<LoadedInput> Load(const std::string& path) {
  auto kind = DetectPdataKindFile(path);
  if (!kind.ok()) return kind.status();
  LoadedInput loaded;
  loaded.kind = *kind;
  if (*kind == "value_pdf") {
    auto input = LoadValuePdf(path);
    if (!input.ok()) return input.status();
    loaded.value_pdf = std::move(input).value();
  } else if (*kind == "tuple_pdf") {
    auto input = LoadTuplePdf(path);
    if (!input.ok()) return input.status();
    loaded.tuple_pdf = std::move(input).value();
  } else {
    auto basic = LoadBasicModel(path);
    if (!basic.ok()) return basic.status();
    auto tuple_pdf = basic->ToTuplePdf();
    if (!tuple_pdf.ok()) return tuple_pdf.status();
    loaded.tuple_pdf = std::move(tuple_pdf).value();
  }
  return loaded;
}

StatusOr<SynopsisOptions> ParseOptions(const Args& args) {
  SynopsisOptions options;
  auto metric = ParseErrorMetric(args.GetOr("metric", "SSE"));
  if (!metric.ok()) return metric.status();
  options.metric = *metric;
  options.sanity_c = args.GetDouble("c", 1.0);
  options.sse_variant = SseVariant::kFixedRepresentative;
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  return options;
}

Status WriteCsvIfRequested(const Args& args, const Histogram& histogram) {
  auto out = args.Get("out");
  if (!out) return Status::OK();
  std::ofstream os(*out);
  if (!os) return Status::IOError("cannot open " + *out);
  return WriteHistogramCsv(os, histogram);
}

// ---------------------------------------------------------------------------
// Subcommands.

int RunGen(const Args& args) {
  std::string kind = args.GetOr("kind", "movie");
  std::size_t n = args.GetSize("n", 1024);
  std::uint64_t seed = args.GetSize("seed", 42);
  auto out = args.Get("out");
  if (!out) return Fail("gen: --out FILE is required");

  Status status;
  if (kind == "movie") {
    BasicModelInput data =
        GenerateMovieLinkage({.domain_size = n, .seed = seed});
    status = SaveBasicModel(*out, data);
    if (status.ok()) {
      std::printf("wrote %s: basic model, n=%zu, m=%zu\n", out->c_str(), n,
                  data.num_tuples());
    }
  } else if (kind == "tpch") {
    TuplePdfInput data = GenerateMaybmsTpch(
        {.domain_size = n, .num_tuples = 4 * n, .seed = seed});
    status = SaveTuplePdf(*out, data);
    if (status.ok()) {
      std::printf("wrote %s: tuple pdf, n=%zu, m=%zu\n", out->c_str(), n,
                  data.num_tuples());
    }
  } else {
    return Fail("gen: unknown --kind " + kind + " (movie|tpch)");
  }
  if (!status.ok()) return Fail(status.ToString());
  return 0;
}

int RunInfo(const Args& args) {
  auto in = args.Get("in");
  if (!in) return Fail("info: --in FILE is required");
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());

  std::printf("model: %s\n", loaded->kind.c_str());
  std::printf("domain size (n): %zu\n", loaded->domain_size());
  std::vector<double> mean;
  if (loaded->value_pdf) {
    std::printf("pairs (m): %zu\n", loaded->value_pdf->total_pairs());
    std::printf("|V|: %zu\n", loaded->value_pdf->ValueGrid().size());
    mean = loaded->value_pdf->ExpectedFrequencies();
  } else {
    std::printf("tuples: %zu, pairs (m): %zu\n",
                loaded->tuple_pdf->num_tuples(),
                loaded->tuple_pdf->total_pairs());
    mean = loaded->tuple_pdf->ExpectedFrequencies();
  }
  double total = 0.0, max = 0.0;
  for (double m : mean) {
    total += m;
    max = std::max(max, m);
  }
  std::printf("expected total frequency: %.3f (max per item %.3f)\n", total,
              max);
  return 0;
}

int RunHistogram(const Args& args) {
  auto in = args.Get("in");
  if (!in) return Fail("histogram: --in FILE is required");
  std::size_t buckets = args.GetSize("buckets", 0);
  if (buckets == 0) return Fail("histogram: --buckets B is required");
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  std::string method = args.GetOr("method", "optimal");
  Rng rng(args.GetSize("seed", 7));

  StatusOr<Histogram> histogram = Status::Internal("unset");
  auto dispatch = [&](const auto& input) -> StatusOr<Histogram> {
    if (method == "optimal") {
      return BuildOptimalHistogram(input, *options, buckets);
    }
    if (method == "approx") {
      auto result = BuildApproxHistogram(input, *options, buckets,
                                         args.GetDouble("epsilon", 0.1));
      if (!result.ok()) return result.status();
      return result->histogram;
    }
    if (method == "expectation") {
      return BuildExpectationHistogram(input, *options, buckets);
    }
    if (method == "sampled") {
      return BuildSampledWorldHistogram(input, *options, buckets, rng);
    }
    if (method == "equidepth") {
      return BuildEquiDepthHistogram(input, *options, buckets);
    }
    return Status::InvalidArgument("unknown --method " + method);
  };
  histogram = loaded->value_pdf ? dispatch(*loaded->value_pdf)
                                : dispatch(*loaded->tuple_pdf);
  if (!histogram.ok()) return Fail(histogram.status().ToString());

  auto cost = loaded->value_pdf
                  ? EvaluateHistogram(*loaded->value_pdf, *histogram, *options)
                  : EvaluateHistogram(*loaded->tuple_pdf, *histogram, *options);
  if (!cost.ok()) return Fail(cost.status().ToString());

  std::printf("%s %s histogram, B=%zu: expected %s = %.6f\n", method.c_str(),
              ErrorMetricName(options->metric), histogram->num_buckets(),
              ErrorMetricName(options->metric), *cost);
  std::printf("%s", histogram->ToString().c_str());
  if (Status s = WriteCsvIfRequested(args, *histogram); !s.ok()) {
    return Fail(s.ToString());
  }
  return 0;
}

int RunWavelet(const Args& args) {
  auto in = args.Get("in");
  if (!in) return Fail("wavelet: --in FILE is required");
  std::size_t coeffs = args.GetSize("coeffs", 0);
  if (coeffs == 0) return Fail("wavelet: --coeffs B is required");
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  std::string method = args.GetOr("method", "greedy");

  // Non-greedy methods need value-pdf input.
  std::optional<ValuePdfInput> value_input = loaded->value_pdf;
  if (!value_input && method != "greedy") {
    auto induced = InduceValuePdf(*loaded->tuple_pdf);
    if (!induced.ok()) return Fail(induced.status().ToString());
    value_input = std::move(induced).value();
  }

  StatusOr<WaveletSynopsis> synopsis = Status::Internal("unset");
  if (method == "greedy") {
    synopsis = loaded->value_pdf
                   ? BuildSseOptimalWavelet(*loaded->value_pdf, coeffs)
                   : BuildSseOptimalWavelet(*loaded->tuple_pdf, coeffs);
  } else if (method == "restricted") {
    auto result = BuildRestrictedWaveletDp(*value_input, coeffs, *options);
    if (!result.ok()) return Fail(result.status().ToString());
    synopsis = result->synopsis;
  } else if (method == "unrestricted") {
    auto result = BuildUnrestrictedWaveletDp(*value_input, coeffs, *options);
    if (!result.ok()) return Fail(result.status().ToString());
    synopsis = result->synopsis;
  } else {
    return Fail("unknown --method " + method);
  }
  if (!synopsis.ok()) return Fail(synopsis.status().ToString());

  auto cost = loaded->value_pdf
                  ? EvaluateWavelet(*loaded->value_pdf, *synopsis, *options)
                  : EvaluateWavelet(*loaded->tuple_pdf, *synopsis, *options);
  if (!cost.ok()) return Fail(cost.status().ToString());
  std::printf("%s wavelet synopsis, B=%zu: expected %s = %.6f\n",
              method.c_str(), synopsis->num_coefficients(),
              ErrorMetricName(options->metric), *cost);
  std::printf("%s", synopsis->ToString().c_str());

  if (auto out = args.Get("out")) {
    std::ofstream os(*out);
    if (!os) return Fail("cannot open " + *out);
    if (Status s = WriteWaveletCsv(os, *synopsis); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  return 0;
}

int RunEvaluate(const Args& args) {
  auto in = args.Get("in");
  auto hist_path = args.Get("histogram");
  if (!in || !hist_path) {
    return Fail("evaluate: --in FILE and --histogram CSV are required");
  }
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());

  std::ifstream is(*hist_path);
  if (!is) return Fail("cannot open " + *hist_path);
  auto histogram = ReadHistogramCsv(is);
  if (!histogram.ok()) return Fail(histogram.status().ToString());

  auto cost = loaded->value_pdf
                  ? EvaluateHistogram(*loaded->value_pdf, *histogram, *options)
                  : EvaluateHistogram(*loaded->tuple_pdf, *histogram, *options);
  if (!cost.ok()) return Fail(cost.status().ToString());
  std::printf("expected %s of %s over %s: %.6f\n",
              ErrorMetricName(options->metric), hist_path->c_str(),
              in->c_str(), *cost);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: probsyn <gen|info|histogram|wavelet|evaluate> "
               "[--flag value]...\n"
               "run with a subcommand and no flags for its requirements\n");
  return 2;
}

}  // namespace
}  // namespace probsyn::cli

int main(int argc, char** argv) {
  using namespace probsyn::cli;
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) {
    return Fail("malformed arguments near '" + args.bad() +
                "' (expected --flag value pairs)");
  }
  if (command == "gen") return RunGen(args);
  if (command == "info") return RunInfo(args);
  if (command == "histogram") return RunHistogram(args);
  if (command == "wavelet") return RunWavelet(args);
  if (command == "evaluate") return RunEvaluate(args);
  return Usage();
}
