// probsyn command-line tool: generate probabilistic data, build histogram
// and wavelet synopses over .pdata files, and (re-)evaluate persisted
// synopses — the full paper pipeline without writing C++. Construction
// routes through the SynopsisEngine facade: one request type, shared
// preprocessed oracles across a bucket sweep, parallel exact DP.
//
// Usage:
//   probsyn gen       --kind movie|tpch --n N [--seed S] --out FILE
//   probsyn info      --in FILE
//   probsyn histogram --in FILE --buckets B[,B2,...] [--metric M] [--c C]
//                     [--method optimal|approx|streaming|expectation|
//                      sampled|equidepth]
//                     [--epsilon E] [--seed S] [--threads T] [--out CSV]
//   probsyn wavelet   --in FILE --coeffs B [--metric M] [--c C]
//                     [--method auto|greedy|restricted|unrestricted]
//                     [--out CSV]
//   probsyn evaluate  --in FILE --histogram CSV [--metric M] [--c C]
//   probsyn store     --in FILE --out STORE [--buckets B[,B2,...]]
//                     [--coeffs B[,B2,...]] [--metric M] [--c C]
//                     [--threads T]
//   probsyn query     --store STORE [--name NAME]
//                     [--point I | --range A,B | --topk K]
//
// Metrics: SSE SSRE SAE SARE MAE MARE (default SSE). A comma-separated
// --buckets list is served as one engine batch: the oracle is
// preprocessed once and the exact DP solved once for the whole sweep.
// --threads 0 (default) uses every core; 1 forces sequential.
//
// `store` builds the requested synopses and persists them as one
// memory-mapped store file (entries named hist_B<B> / wave_B<B>); `query`
// serves point / range / top-k queries from such a file without touching
// the original input, or lists the stored entries when no query flag is
// given.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include <vector>

#include "core/evaluate.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "io/pdata.h"

namespace probsyn::cli {
namespace {

// ---------------------------------------------------------------------------
// Minimal --flag value argument parsing.

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ok_ = false;
        bad_ = key;
        return;
      }
      values_[key.substr(2)] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      ok_ = false;
      bad_ = argv[argc - 1];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::optional<std::string> Get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string GetOr(const std::string& key, std::string fallback) const {
    return Get(key).value_or(std::move(fallback));
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto v = Get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto v = Get(key);
    return v ? std::strtod(v->c_str(), nullptr) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string bad_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "probsyn: %s\n", message.c_str());
  return 1;
}

// Loaded input in whichever model the file used, normalized to the two
// builder-facing models.
struct LoadedInput {
  std::string kind;
  std::optional<ValuePdfInput> value_pdf;
  std::optional<TuplePdfInput> tuple_pdf;

  std::size_t domain_size() const {
    return value_pdf ? value_pdf->domain_size() : tuple_pdf->domain_size();
  }
};

StatusOr<LoadedInput> Load(const std::string& path) {
  PROBSYN_ASSIGN_OR_RETURN(std::string kind, DetectPdataKindFile(path));
  LoadedInput loaded;
  loaded.kind = kind;
  if (kind == "value_pdf") {
    PROBSYN_ASSIGN_OR_RETURN(loaded.value_pdf, LoadValuePdf(path));
  } else if (kind == "tuple_pdf") {
    PROBSYN_ASSIGN_OR_RETURN(loaded.tuple_pdf, LoadTuplePdf(path));
  } else {
    PROBSYN_ASSIGN_OR_RETURN(BasicModelInput basic, LoadBasicModel(path));
    PROBSYN_ASSIGN_OR_RETURN(loaded.tuple_pdf, basic.ToTuplePdf());
  }
  return loaded;
}

StatusOr<SynopsisOptions> ParseOptions(const Args& args) {
  SynopsisOptions options;
  PROBSYN_ASSIGN_OR_RETURN(options.metric,
                           ParseErrorMetric(args.GetOr("metric", "SSE")));
  options.sanity_c = args.GetDouble("c", 1.0);
  options.sse_variant = SseVariant::kFixedRepresentative;
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  return options;
}

Status WriteCsvIfRequested(const Args& args, const Histogram& histogram) {
  auto out = args.Get("out");
  if (!out) return Status::OK();
  std::ofstream os(*out);
  if (!os) return Status::IOError("cannot open " + *out);
  return WriteHistogramCsv(os, histogram);
}

// ---------------------------------------------------------------------------
// Subcommands.

int RunGen(const Args& args) {
  std::string kind = args.GetOr("kind", "movie");
  std::size_t n = args.GetSize("n", 1024);
  std::uint64_t seed = args.GetSize("seed", 42);
  auto out = args.Get("out");
  if (!out) return Fail("gen: --out FILE is required");

  Status status;
  if (kind == "movie") {
    BasicModelInput data =
        GenerateMovieLinkage({.domain_size = n, .seed = seed});
    status = SaveBasicModel(*out, data);
    if (status.ok()) {
      std::printf("wrote %s: basic model, n=%zu, m=%zu\n", out->c_str(), n,
                  data.num_tuples());
    }
  } else if (kind == "tpch") {
    TuplePdfInput data = GenerateMaybmsTpch(
        {.domain_size = n, .num_tuples = 4 * n, .seed = seed});
    status = SaveTuplePdf(*out, data);
    if (status.ok()) {
      std::printf("wrote %s: tuple pdf, n=%zu, m=%zu\n", out->c_str(), n,
                  data.num_tuples());
    }
  } else {
    return Fail("gen: unknown --kind " + kind + " (movie|tpch)");
  }
  if (!status.ok()) return Fail(status.ToString());
  return 0;
}

int RunInfo(const Args& args) {
  auto in = args.Get("in");
  if (!in) return Fail("info: --in FILE is required");
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());

  std::printf("model: %s\n", loaded->kind.c_str());
  std::printf("domain size (n): %zu\n", loaded->domain_size());
  std::vector<double> mean;
  if (loaded->value_pdf) {
    std::printf("pairs (m): %zu\n", loaded->value_pdf->total_pairs());
    std::printf("|V|: %zu\n", loaded->value_pdf->ValueGrid().size());
    mean = loaded->value_pdf->ExpectedFrequencies();
  } else {
    std::printf("tuples: %zu, pairs (m): %zu\n",
                loaded->tuple_pdf->num_tuples(),
                loaded->tuple_pdf->total_pairs());
    mean = loaded->tuple_pdf->ExpectedFrequencies();
  }
  double total = 0.0, max = 0.0;
  for (double m : mean) {
    total += m;
    max = std::max(max, m);
  }
  std::printf("expected total frequency: %.3f (max per item %.3f)\n", total,
              max);
  return 0;
}

std::vector<std::size_t> ParseSizeList(const std::string& text) {
  std::vector<std::size_t> values;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    values.push_back(
        std::strtoull(text.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return values;
}

void PrintTiming(const SynopsisResult& result) {
  std::printf("  route %s | plan %.3f ms | preprocess %.3f ms | solve %.3f ms\n",
              result.solver.c_str(), result.timing.plan_seconds * 1e3,
              result.timing.preprocess_seconds * 1e3,
              result.timing.solve_seconds * 1e3);
}

int RunHistogram(const Args& args) {
  auto in = args.Get("in");
  if (!in) return Fail("histogram: --in FILE is required");
  auto buckets_arg = args.Get("buckets");
  if (!buckets_arg) return Fail("histogram: --buckets B[,B2,...] is required");
  std::vector<std::size_t> budgets = ParseSizeList(*buckets_arg);
  if (budgets.empty()) return Fail("histogram: empty --buckets list");
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  auto method = ParseHistogramMethod(args.GetOr("method", "optimal"));
  if (!method.ok()) return Fail(method.status().ToString());

  SynopsisEngine engine({.parallelism = args.GetSize("threads", 0)});
  std::vector<SynopsisRequest> requests;
  requests.reserve(budgets.size());
  for (std::size_t budget : budgets) {
    SynopsisRequest request;
    request.kind = SynopsisKind::kHistogram;
    request.method = *method;
    request.budget = budget;
    request.options = *options;
    request.epsilon = args.GetDouble("epsilon", 0.1);
    request.seed = args.GetSize("seed", 7);
    requests.push_back(request);
  }

  auto results = loaded->value_pdf
                     ? engine.BuildBatch(*loaded->value_pdf, requests)
                     : engine.BuildBatch(*loaded->tuple_pdf, requests);
  if (!results.ok()) return Fail(results.status().ToString());

  for (const SynopsisResult& result : *results) {
    std::printf("%s %s histogram, B=%zu: expected %s = %.6f\n",
                HistogramMethodName(*method),
                ErrorMetricName(options->metric),
                result.histogram.num_buckets(),
                ErrorMetricName(options->metric), result.cost);
    PrintTiming(result);
    if (results->size() == 1) {
      std::printf("%s", result.histogram.ToString().c_str());
    }
  }
  if (args.Get("out") && results->size() != 1) {
    return Fail("histogram: --out requires a single --buckets value");
  }
  if (Status s = WriteCsvIfRequested(args, results->front().histogram);
      !s.ok()) {
    return Fail(s.ToString());
  }
  return 0;
}

int RunWavelet(const Args& args) {
  auto in = args.Get("in");
  if (!in) return Fail("wavelet: --in FILE is required");
  std::size_t coeffs = args.GetSize("coeffs", 0);
  if (coeffs == 0) return Fail("wavelet: --coeffs B is required");
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  auto method = ParseWaveletMethod(args.GetOr("method", "greedy"));
  if (!method.ok()) return Fail(method.status().ToString());

  SynopsisEngine engine({.parallelism = args.GetSize("threads", 0)});
  SynopsisRequest request;
  request.kind = SynopsisKind::kWavelet;
  request.budget = coeffs;
  request.options = *options;
  request.wavelet_method = *method;

  auto result = loaded->value_pdf ? engine.Build(*loaded->value_pdf, request)
                                  : engine.Build(*loaded->tuple_pdf, request);
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("%s wavelet synopsis, B=%zu: expected %s = %.6f\n",
              WaveletMethodName(*method), result->wavelet.num_coefficients(),
              ErrorMetricName(options->metric), result->cost);
  PrintTiming(*result);
  std::printf("%s", result->wavelet.ToString().c_str());

  if (auto out = args.Get("out")) {
    std::ofstream os(*out);
    if (!os) return Fail("cannot open " + *out);
    if (Status s = WriteWaveletCsv(os, result->wavelet); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  return 0;
}

int RunEvaluate(const Args& args) {
  auto in = args.Get("in");
  auto hist_path = args.Get("histogram");
  if (!in || !hist_path) {
    return Fail("evaluate: --in FILE and --histogram CSV are required");
  }
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());

  std::ifstream is(*hist_path);
  if (!is) return Fail("cannot open " + *hist_path);
  auto histogram = ReadHistogramCsv(is);
  if (!histogram.ok()) return Fail(histogram.status().ToString());

  auto cost = loaded->value_pdf
                  ? EvaluateHistogram(*loaded->value_pdf, *histogram, *options)
                  : EvaluateHistogram(*loaded->tuple_pdf, *histogram, *options);
  if (!cost.ok()) return Fail(cost.status().ToString());
  std::printf("expected %s of %s over %s: %.6f\n",
              ErrorMetricName(options->metric), hist_path->c_str(),
              in->c_str(), *cost);
  return 0;
}

int RunStore(const Args& args) {
  auto in = args.Get("in");
  auto out = args.Get("out");
  if (!in || !out) return Fail("store: --in FILE and --out STORE are required");
  std::vector<std::size_t> bucket_budgets;
  std::vector<std::size_t> coeff_budgets;
  if (auto b = args.Get("buckets")) bucket_budgets = ParseSizeList(*b);
  if (auto c = args.Get("coeffs")) coeff_budgets = ParseSizeList(*c);
  if (bucket_budgets.empty() && coeff_budgets.empty()) {
    return Fail("store: at least one of --buckets / --coeffs is required");
  }
  auto loaded = Load(*in);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());

  std::vector<SynopsisRequest> requests;
  std::vector<std::string> names;
  for (std::size_t budget : bucket_budgets) {
    SynopsisRequest request;
    request.kind = SynopsisKind::kHistogram;
    request.budget = budget;
    request.options = *options;
    requests.push_back(request);
    names.push_back("hist_B" + std::to_string(budget));
  }
  for (std::size_t budget : coeff_budgets) {
    SynopsisRequest request;
    request.kind = SynopsisKind::kWavelet;
    request.budget = budget;
    request.options = *options;
    requests.push_back(request);
    names.push_back("wave_B" + std::to_string(budget));
  }

  SynopsisEngine engine({.parallelism = args.GetSize("threads", 0)});
  auto results = loaded->value_pdf
                     ? engine.BuildBatch(*loaded->value_pdf, requests)
                     : engine.BuildBatch(*loaded->tuple_pdf, requests);
  if (!results.ok()) return Fail(results.status().ToString());

  std::vector<NamedSynopsis> named;
  named.reserve(results->size());
  for (std::size_t k = 0; k < results->size(); ++k) {
    named.push_back({names[k], std::move((*results)[k])});
  }
  if (Status s = engine.Store(*out, named); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("wrote %s: %zu synopses over n=%zu\n", out->c_str(),
              named.size(), loaded->domain_size());
  for (const NamedSynopsis& entry : named) {
    std::printf("  %s (%s, expected %s = %.6f)\n", entry.name.c_str(),
                SynopsisKindName(entry.result.kind),
                ErrorMetricName(options->metric), entry.result.cost);
  }
  return 0;
}

int RunQuery(const Args& args) {
  auto store_path = args.Get("store");
  if (!store_path) return Fail("query: --store STORE is required");
  auto server = SynopsisServer::Open(*store_path);
  if (!server.ok()) return Fail(server.status().ToString());

  auto name = args.Get("name");
  if (!name) {
    for (const std::string& entry : server->Names()) {
      const ServedSynopsis* synopsis = server->Find(entry);
      std::printf("%s: %s, n=%zu, %s=%zu\n", entry.c_str(),
                  SynopsisBlobKindName(synopsis->kind()),
                  synopsis->domain_size(),
                  synopsis->kind() == SynopsisBlobKind::kHistogram ? "B"
                                                                   : "coeffs",
                  synopsis->kind() == SynopsisBlobKind::kHistogram
                      ? synopsis->num_buckets()
                      : synopsis->num_coefficients());
    }
    return 0;
  }

  if (auto point = args.Get("point")) {
    std::size_t i = std::strtoull(point->c_str(), nullptr, 10);
    auto estimate = server->PointEstimate(*name, i);
    if (!estimate.ok()) return Fail(estimate.status().ToString());
    std::printf("%s ghat_%zu = %.6f\n", name->c_str(), i, *estimate);
    return 0;
  }
  if (auto range = args.Get("range")) {
    std::vector<std::size_t> bounds = ParseSizeList(*range);
    if (bounds.size() != 2) return Fail("query: --range expects A,B");
    auto sum = server->RangeSum(*name, bounds[0], bounds[1]);
    if (!sum.ok()) return Fail(sum.status().ToString());
    double avg = *sum / static_cast<double>(bounds[1] - bounds[0] + 1);
    std::printf("%s sum[%zu, %zu] = %.6f (avg %.6f)\n", name->c_str(),
                bounds[0], bounds[1], *sum, avg);
    return 0;
  }
  if (auto topk = args.Get("topk")) {
    std::size_t k = std::strtoull(topk->c_str(), nullptr, 10);
    auto top = server->TopCoefficients(*name, k);
    if (!top.ok()) return Fail(top.status().ToString());
    for (const WaveletCoefficient& c : *top) {
      std::printf("%s c[%zu] = %.6f\n", name->c_str(), c.index, c.value);
    }
    return 0;
  }
  return Fail("query: --name needs one of --point / --range / --topk");
}

int Usage() {
  std::fprintf(stderr,
               "usage: probsyn <gen|info|histogram|wavelet|evaluate|store|"
               "query> [--flag value]...\n"
               "run with a subcommand and no flags for its requirements\n");
  return 2;
}

}  // namespace
}  // namespace probsyn::cli

int main(int argc, char** argv) {
  using namespace probsyn::cli;
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) {
    return Fail("malformed arguments near '" + args.bad() +
                "' (expected --flag value pairs)");
  }
  if (command == "gen") return RunGen(args);
  if (command == "info") return RunInfo(args);
  if (command == "histogram") return RunHistogram(args);
  if (command == "wavelet") return RunWavelet(args);
  if (command == "evaluate") return RunEvaluate(args);
  if (command == "store") return RunStore(args);
  if (command == "query") return RunQuery(args);
  return Usage();
}
