#!/usr/bin/env python3
"""Dead-link checker for the repo's markdown documentation.

Scans README.md and every file under docs/ for markdown links and fails
(exit 1, one line per problem) when a RELATIVE link points at a file that
does not exist, or at a heading anchor that no heading in the target file
produces. External links (http/https/mailto) are not fetched — this guards
the repo's own structure, not the internet.

Usage: tools/check_docs_links.py [repo_root]   (default: cwd)
Run by the CI `docs` job on every push.
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def markdown_lines_outside_code(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if not in_fence:
                yield number, line


def anchors_of(path: str):
    anchors = set()
    counts = {}
    for _, line in markdown_lines_outside_code(path):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(md_path: str, root: str):
    problems = []
    base = os.path.dirname(md_path)
    for number, line in markdown_lines_outside_code(md_path):
        for regex in (LINK_RE, IMAGE_RE):
            for target in regex.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                rel = os.path.relpath(md_path, root)
                path_part, _, anchor = target.partition("#")
                if not path_part:  # same-file anchor
                    resolved = md_path
                else:
                    resolved = os.path.normpath(os.path.join(base, path_part))
                    if not os.path.exists(resolved):
                        problems.append(
                            f"{rel}:{number}: dead link -> {target}")
                        continue
                if anchor and resolved.endswith(".md"):
                    if anchor not in anchors_of(resolved):
                        problems.append(
                            f"{rel}:{number}: dead anchor -> {target}")
    return problems


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    problems = []
    checked = 0
    for path in files:
        if not os.path.exists(path):
            problems.append(f"missing expected file: {os.path.relpath(path, root)}")
            continue
        checked += 1
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem)
    print(f"checked {checked} markdown file(s): "
          f"{'FAIL' if problems else 'OK'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
