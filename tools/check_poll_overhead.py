#!/usr/bin/env python3
"""Asserts the cancellation-poll overhead bound against bench JSON.

The robustness contract (docs/architecture.md) says attaching a deadline +
cancel token to a request may cost at most 2% over the historical
unbounded path. bench_engine_parallel's BM_PollOverhead* series time one
unpolled + one polled build interleaved per iteration (so clock drift
cancels) and report the ratio in the `overhead` counter, three
repetitions each; this script takes the median per family and fails when
it exceeds the bound.

Usage: check_poll_overhead.py BENCH_bench_engine_parallel.json \
           [--max-overhead 0.02]
"""

import argparse
import json
import statistics
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--max-overhead", type=float, default=0.02)
    args = parser.parse_args()

    with open(args.bench_json) as f:
        report = json.load(f)

    overheads = {}  # family -> [overhead per repetition]
    for row in report.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name", "")
        if "BM_PollOverhead" not in name or "overhead" not in row:
            continue
        family = name.split("/")[0]
        overheads.setdefault(family, []).append(float(row["overhead"]))

    if not overheads:
        print("ERROR: no BM_PollOverhead rows found in", args.bench_json)
        return 1

    failed = False
    for family in sorted(overheads):
        median = statistics.median(overheads[family])
        status = "ok" if median <= args.max_overhead else "FAIL"
        reps = ", ".join(f"{o * 100:+.2f}%" for o in overheads[family])
        print(f"{status}: {family}: median overhead {median * 100:+.2f}% "
              f"(reps: {reps}; bound {args.max_overhead * 100:.0f}%)")
        if median > args.max_overhead:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
