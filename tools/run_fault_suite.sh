#!/usr/bin/env bash
# Runs the test suite under a seeded fault-injection campaign and grades
# the outcome the way the robustness contract demands:
#
#   exit 0  (all tests passed)            -> OK
#   exit 1  (gtest assertion failures)    -> OK: injected faults are
#           *supposed* to fail assertions that expect fault-free results;
#           what matters is that every failure was a clean Status.
#   124     (timeout(1): the suite hung)  -> FAIL
#   99      (sanitizer error: set ASAN_OPTIONS/UBSAN_OPTIONS exitcode=99) -> FAIL
#   >127    (killed by a signal: crash)   -> FAIL
#   anything else                          -> FAIL
#
# Usage: run_fault_suite.sh <test-binary> <seed>:<rate>[:<latency_us>]
#                           [timeout-seconds]
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <test-binary> <seed>:<rate>[:<latency_us>] [timeout-seconds]" >&2
  exit 2
fi

binary="$1"
campaign="$2"
limit="${3:-1800}"

if [ ! -x "$binary" ]; then
  echo "FAIL: test binary '$binary' not found or not executable" >&2
  exit 2
fi

echo "=== fault campaign PROBSYN_FAULTS=$campaign (timeout ${limit}s) ==="
log="$(mktemp)"
PROBSYN_FAULTS="$campaign" timeout "$limit" "$binary" >"$log" 2>&1
code=$?

# Keep the log readable in CI without dumping thousands of passing lines.
grep -E '\[  FAILED  \]|\[==========\]|ERROR: (Address|Thread|Leak)Sanitizer|runtime error:|Segmentation|Aborted' \
  "$log" | tail -n 100
tail -n 5 "$log"

case "$code" in
  0)
    echo "OK: suite passed under injection (rate low enough to miss)" ;;
  1)
    echo "OK: assertion failures only — faults surfaced as clean Status" ;;
  124)
    echo "FAIL: suite hung under fault injection" >&2
    exit 1 ;;
  *)
    echo "FAIL: suite exited $code (crash, sanitizer error, or harness bug)" >&2
    tail -n 40 "$log" >&2
    exit 1 ;;
esac

rm -f "$log"
exit 0
