#!/usr/bin/env python3
"""Doc-comment checker for the repo's flagship public headers.

A lightweight stand-in for `doxygen -WARN_AS_ERROR` that needs nothing
but python3: it parses the given headers and fails (exit 1, one line per
problem) when

  * a public namespace-scope construct (class/struct/enum/function/
    constant) has no `///` doc comment immediately above it,
  * a `///` block is orphaned (followed by a blank line or another
    comment block instead of a declaration), or
  * `//` line comments and `///` doc comments are mixed inside one block
    (doxygen silently drops the `//` lines — a classic parse warning).

Usage: tools/check_doc_comments.py <header> [<header> ...]
CI runs it on src/core/dp_kernels.h and src/engine/synopsis_engine.h.
"""

import re
import sys

# Namespace-scope constructs that must carry a /// block. Indented (member)
# declarations are the owning class's documentation problem, not ours.
DECL_RE = re.compile(
    r"^(?:template\s*<.*>\s*)?"
    r"(class|struct|enum\s+class|enum|using|inline|constexpr|const\s|"
    r"std::|[A-Za-z_][A-Za-z0-9_:]*\s*<?.*>?\s+[A-Za-z_][A-Za-z0-9_]*\s*\()"
)
SKIP_RE = re.compile(
    r"^(#|\}|\)|namespace\s|extern\s|static_assert|"
    r"PROBSYN_|BENCHMARK|TEST|using\s+namespace)"
)


FORWARD_DECL_RE = re.compile(r"^(class|struct)\s+\w+;\s*$")
INTERNAL_NS_RE = re.compile(r"^namespace\s+\w*internal\w*\s*\{")
NS_CLOSE_RE = re.compile(r"^\}\s*//\s*namespace\s+(\w+)")


def is_declaration(line: str) -> bool:
    if line != line.lstrip():
        return False  # members are covered by their class's doc
    if SKIP_RE.match(line) or FORWARD_DECL_RE.match(line):
        return False
    return bool(DECL_RE.match(line))


def check_header(path: str):
    problems = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    doc_open = False        # inside a /// block
    doc_has_plain = False   # block mixed /// with //
    doc_start = 0
    decl_continuation = False
    internal_ns = None      # inside a *internal* namespace: impl detail

    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip()
        stripped = line.strip()

        if internal_ns is None and INTERNAL_NS_RE.match(stripped):
            internal_ns = stripped.split()[1]
            continue
        if internal_ns is not None:
            close = NS_CLOSE_RE.match(stripped)
            if close and close.group(1) == internal_ns:
                internal_ns = None
            continue
        is_doc = stripped.startswith("///")
        is_plain_comment = stripped.startswith("//") and not is_doc

        if is_doc:
            if not doc_open:
                doc_open = True
                doc_has_plain = False
                doc_start = number
            continue

        if doc_open and is_plain_comment:
            doc_has_plain = True
            continue

        if doc_open:
            if doc_has_plain:
                problems.append(
                    f"{path}:{doc_start}: /// block mixes plain // lines "
                    f"(doxygen drops them)")
            if not stripped:
                problems.append(
                    f"{path}:{doc_start}: orphaned /// block (followed by a "
                    f"blank line, attaches to nothing)")
            doc_open = False
            decl_continuation = False
            continue  # this line was documented (or blank-line-flagged)

        if not stripped or is_plain_comment:
            decl_continuation = False
            continue

        if decl_continuation:
            continue
        if is_declaration(line):
            problems.append(
                f"{path}:{number}: public declaration without a /// doc "
                f"comment: {stripped[:60]}")
        # A namespace-scope statement may span lines; swallow until it
        # closes so continuation lines aren't re-flagged.
        decl_continuation = not (
            stripped.endswith((";", "{", "}")))
    return problems


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    problems = []
    for path in sys.argv[1:]:
        problems.extend(check_header(path))
    for problem in problems:
        print(problem)
    print(f"checked {len(sys.argv) - 1} header(s): "
          f"{'FAIL' if problems else 'OK'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
