// Ablation A1 (paper section 3.5, Theorem 5): the (1+eps)-approximate DP
// versus the exact O(B n^2) DP.
//
// Reported per epsilon: achieved cost ratio vs the exact optimum (must be
// <= 1 + eps), bucket-cost oracle evaluations (the theorem's complexity
// currency), and wall-clock speedup. Expected shape: evaluations shrink
// roughly like 1/eps-within-log-factors while the cost ratio stays far
// below its worst-case bound.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/builders.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "util/logging.h"
#include "util/timer.h"

namespace probsyn {
namespace {

TuplePdfInput MakeData() {
  std::size_t n = bench::Scaled(2048, 10000);
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = n, .seed = 35});
  auto tuple_pdf = basic.ToTuplePdf();
  PROBSYN_CHECK(tuple_pdf.ok());
  return std::move(tuple_pdf).value();
}

SynopsisOptions Options() {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;
  return options;
}

constexpr std::size_t kBuckets = 32;

void RunTable() {
  TuplePdfInput input = MakeData();
  auto bundle = MakeBucketOracle(input, Options());
  PROBSYN_CHECK(bundle.ok());

  Stopwatch exact_watch;
  HistogramDpResult exact =
      SolveHistogramDp(*bundle->oracle, kBuckets, bundle->combiner);
  double exact_seconds = exact_watch.ElapsedSeconds();
  double exact_cost = exact.OptimalCost(kBuckets);

  std::printf("\n=== Ablation A1: approximate vs exact histogram DP "
              "(SSRE c=0.5, n=%zu, B=%zu) ===\n",
              input.domain_size(), kBuckets);
  std::printf("exact DP: cost %.6f, time %.3fs\n", exact_cost, exact_seconds);
  std::printf("%8s %14s %12s %14s %10s\n", "epsilon", "cost ratio",
              "bound", "oracle evals", "speedup");
  for (double eps : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    Stopwatch watch;
    auto approx = SolveApproxHistogramDp(*bundle->oracle, kBuckets, eps);
    double seconds = watch.ElapsedSeconds();
    PROBSYN_CHECK(approx.ok());
    std::printf("%8.2f %14.6f %12.2f %14zu %9.1fx\n", eps,
                approx->cost / exact_cost, 1.0 + eps,
                approx->oracle_evaluations,
                exact_seconds / std::max(1e-9, seconds));
  }
}

void BM_Ablation_ExactDP(benchmark::State& state) {
  static const TuplePdfInput input = MakeData();
  static auto bundle = MakeBucketOracle(input, Options());
  for (auto _ : state) {
    HistogramDpResult dp =
        SolveHistogramDp(*bundle->oracle, kBuckets, bundle->combiner);
    benchmark::DoNotOptimize(dp);
  }
}
BENCHMARK(BM_Ablation_ExactDP)->Unit(benchmark::kMillisecond);

void BM_Ablation_ApproxDP(benchmark::State& state) {
  static const TuplePdfInput input = MakeData();
  static auto bundle = MakeBucketOracle(input, Options());
  double eps = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto approx = SolveApproxHistogramDp(*bundle->oracle, kBuckets, eps);
    benchmark::DoNotOptimize(approx);
  }
  state.counters["eps"] = eps;
}
BENCHMARK(BM_Ablation_ApproxDP)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  probsyn::RunTable();
  return 0;
}
