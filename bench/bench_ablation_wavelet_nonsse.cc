// Ablation A3 (paper section 4.2, Theorem 8): the restricted coefficient-
// tree DP for non-SSE wavelet objectives versus the greedy heuristic that
// keeps the B largest |expected coefficients| regardless of metric.
//
// Expected shape: the DP is never worse (it is optimal for the restricted
// problem) and wins clearly on relative-error objectives, where large-|mu|
// coefficients need not be the ones that reduce relative error.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/wavelet.h"
#include "core/wavelet_dp.h"
#include "core/wavelet_unrestricted.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "util/logging.h"

namespace probsyn {
namespace {

ValuePdfInput MakeData() {
  BasicModelInput basic = GenerateMovieLinkage(
      {.domain_size = 256, .num_segments = 16, .seed = 64});
  auto induced = InduceValuePdf(basic);
  PROBSYN_CHECK(induced.ok());
  return std::move(induced).value();
}

struct Objective {
  const char* name;
  ErrorMetric metric;
  double c;
};

void RunTable(const ValuePdfInput& input, const Objective& objective) {
  SynopsisOptions options;
  options.metric = objective.metric;
  options.sanity_c = objective.c;

  bench::SeriesTable table(
      std::string(
          "Ablation A3: wavelet selection strategies, non-SSE metrics (") +
          objective.name + ", n=" + std::to_string(input.domain_size()) + ")",
      "coeffs", {"GreedyByMu", "RestrictedDP", "UnrestrictedDP"});

  for (std::size_t budget : {2u, 4u, 8u, 16u, 32u}) {
    auto greedy = BuildSseOptimalWavelet(input, budget);
    PROBSYN_CHECK(greedy.ok());
    auto greedy_cost = EvaluateWavelet(input, greedy.value(), options);
    PROBSYN_CHECK(greedy_cost.ok());
    auto dp = BuildRestrictedWaveletDp(input, budget, options);
    PROBSYN_CHECK(dp.ok());
    auto unrestricted = BuildUnrestrictedWaveletDp(input, budget, options,
                                                   {.grid_points = 25});
    PROBSYN_CHECK(unrestricted.ok());
    table.AddRow(budget, {*greedy_cost, dp->cost, unrestricted->cost});
  }
  table.Print();
}

void BM_RestrictedWaveletDp(benchmark::State& state) {
  static const ValuePdfInput input = MakeData();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  std::size_t budget = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto dp = BuildRestrictedWaveletDp(input, budget, options);
    benchmark::DoNotOptimize(dp);
  }
}
BENCHMARK(BM_RestrictedWaveletDp)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  probsyn::ValuePdfInput input = probsyn::MakeData();
  for (const probsyn::Objective& objective :
       {probsyn::Objective{"SAE", probsyn::ErrorMetric::kSae, 1.0},
        probsyn::Objective{"SARE c=0.5", probsyn::ErrorMetric::kSare, 0.5},
        probsyn::Objective{"MAE", probsyn::ErrorMetric::kMae, 1.0},
        probsyn::Objective{"MARE c=0.5", probsyn::ErrorMetric::kMare, 0.5}}) {
    probsyn::RunTable(input, objective);
  }
  return 0;
}
