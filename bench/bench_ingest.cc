// Ingest-tier benchmarks: streaming construction throughput and per-push
// latency distributions, single-stream and through the concurrent
// IngestCoordinator.
//
//   BM_IngestPushSingle   one stream, one Push per item (n = 20000,
//                         B = 32) — the pre-batching baseline; counters
//                         carry the per-push latency histogram
//                         (p50/p99/p999 ns)
//   BM_IngestPushBatch    the same stream fed in PushBatch blocks
//                         (Arg = block size) — bit-identical output; the
//                         acceptance floor is >= 3x BM_IngestPushSingle's
//                         items/sec at block 256 (see docs/benchmarks.md)
//   BM_IngestMultiStream  8 independent streams through one
//                         IngestCoordinator (Arg = engine parallelism):
//                         submit waves + DrainAll fan-out; items/sec is
//                         the AGGREGATE updates/sec across streams (the
//                         acceptance floor is 1M/sec), counters carry the
//                         per-drain-block latency histogram
//
// Latency percentiles come from a full per-event reservoir (no binning):
// every push / batch / drain block is timed with steady_clock and the
// counters report exact order statistics of the last iteration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "bench_util.h"
#include "gen/generators.h"
#include "engine/synopsis_engine.h"
#include "stream/ingest_coordinator.h"
#include "stream/streaming_histogram.h"
#include "util/logging.h"

namespace probsyn {
namespace {

constexpr std::size_t kItems = 20000;
constexpr std::size_t kBuckets = 32;
constexpr double kEpsilon = 0.1;

const ValuePdfInput& Data() {
  static const ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = kItems, .max_support = 4, .max_value = 9, .seed = 7});
  return input;
}

double NsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::nano>(b - a).count();
}

// Exact order statistic of the reservoir (reordered in place).
double PercentileNs(std::vector<double>& ns, double p) {
  PROBSYN_CHECK(!ns.empty());
  const std::size_t index =
      static_cast<std::size_t>(p * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + index, ns.end());
  return ns[index];
}

void ReportLatency(benchmark::State& state, std::vector<double>& ns) {
  state.counters["p50_ns"] = PercentileNs(ns, 0.50);
  state.counters["p99_ns"] = PercentileNs(ns, 0.99);
  state.counters["p999_ns"] = PercentileNs(ns, 0.999);
}

void BM_IngestPushSingle(benchmark::State& state) {
  const ValuePdfInput& input = Data();
  StreamChainStore store;  // warm across iterations, like the engine's
  std::vector<double> latency;
  latency.reserve(kItems);
  for (auto _ : state) {
    latency.clear();
    StreamingHistogramBuilder builder(kBuckets, kEpsilon,
                                      StreamingKernel::kAuto, &store);
    for (const ValuePdf& pdf : input.items()) {
      const auto start = std::chrono::steady_clock::now();
      builder.Push(pdf);
      latency.push_back(NsBetween(start, std::chrono::steady_clock::now()));
    }
    benchmark::DoNotOptimize(builder.breakpoints());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kItems));
  ReportLatency(state, latency);
}
BENCHMARK(BM_IngestPushSingle)->Unit(benchmark::kMillisecond);

void BM_IngestPushBatch(benchmark::State& state) {
  const ValuePdfInput& input = Data();
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  StreamChainStore store;
  std::vector<double> latency;
  latency.reserve(kItems / block + 1);
  const std::span<const ValuePdf> items(input.items().data(), kItems);
  for (auto _ : state) {
    latency.clear();
    StreamingHistogramBuilder builder(kBuckets, kEpsilon,
                                      StreamingKernel::kAuto, &store);
    for (std::size_t offset = 0; offset < kItems; offset += block) {
      const std::size_t take = std::min(block, kItems - offset);
      const auto start = std::chrono::steady_clock::now();
      builder.PushBatch(items.subspan(offset, take));
      latency.push_back(NsBetween(start, std::chrono::steady_clock::now()));
    }
    benchmark::DoNotOptimize(builder.breakpoints());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kItems));
  ReportLatency(state, latency);  // per PushBatch-call (block) latencies
  state.counters["block"] = static_cast<double>(block);
}
BENCHMARK(BM_IngestPushBatch)->Arg(32)->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// Multi-stream: a cheap per-stream configuration (small B, loose epsilon —
// the regime where ingest-side overheads could dominate) so the aggregate
// measures the coordinator, not one heavyweight DP.
constexpr std::size_t kStreams = 8;
constexpr std::size_t kItemsPerStream = 16384;
constexpr std::size_t kWave = 4096;

const std::vector<ValuePdfInput>& MultiData() {
  static const std::vector<ValuePdfInput> inputs = [] {
    std::vector<ValuePdfInput> out;
    out.reserve(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      out.push_back(GenerateRandomValuePdf({.domain_size = kItemsPerStream,
                                            .max_support = 4,
                                            .max_value = 9,
                                            .seed = 1000 + s}));
    }
    return out;
  }();
  return inputs;
}

void BM_IngestMultiStream(benchmark::State& state) {
  const std::vector<ValuePdfInput>& inputs = MultiData();
  SynopsisEngine engine(SynopsisEngine::Options{
      .parallelism = static_cast<std::size_t>(state.range(0))});
  IngestOptions options;
  options.max_buckets = 4;
  options.epsilon = 1.0;
  options.queue_capacity = kWave;
  options.drain_batch = 512;
  std::vector<double> latency;
  latency.reserve(kStreams * kItemsPerStream / options.drain_batch + 16);
  for (auto _ : state) {
    latency.clear();
    auto coordinator = engine.OpenIngest(options);
    PROBSYN_CHECK(coordinator.ok());
    IngestCoordinator& coord = **coordinator;
    for (std::size_t s = 0; s < kStreams; ++s) coord.OpenStream();
    for (std::size_t offset = 0; offset < kItemsPerStream; offset += kWave) {
      for (std::size_t s = 0; s < kStreams; ++s) {
        const std::span<const ValuePdf> items(inputs[s].items().data(),
                                              kItemsPerStream);
        PROBSYN_CHECK(
            coord.SubmitBatch(s, items.subspan(offset, kWave)).ok());
      }
      const auto start = std::chrono::steady_clock::now();
      PROBSYN_CHECK(coord.DrainAll().ok());
      latency.push_back(NsBetween(start, std::chrono::steady_clock::now()) /
                        static_cast<double>(kStreams * kWave / 512));
    }
    PROBSYN_CHECK(coord.stats().pushed == kStreams * kItemsPerStream);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStreams) *
                          static_cast<std::int64_t>(kItemsPerStream));
  ReportLatency(state, latency);  // per 512-item drain block, amortized
  state.counters["streams"] = static_cast<double>(kStreams);
}
BENCHMARK(BM_IngestMultiStream)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace probsyn

BENCHMARK_MAIN();
