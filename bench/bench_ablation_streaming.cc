// Ablation A8: one-pass streaming histogram construction (the GKS/AHIST
// lineage the paper's section 3.5 builds on, lifted to probabilistic
// streams). Reported per epsilon: cost ratio vs the offline exact DP,
// peak retained breakpoints (the memory footprint, vs n for the offline
// algorithms), and throughput.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/builders.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "stream/streaming_histogram.h"
#include "util/logging.h"

namespace probsyn {
namespace {

const ValuePdfInput& Data() {
  static const ValuePdfInput input = [] {
    std::size_t n = bench::Scaled(4096, 32768);
    BasicModelInput basic = GenerateMovieLinkage({.domain_size = n, .seed = 91});
    auto induced = InduceValuePdf(basic);
    PROBSYN_CHECK(induced.ok());
    return std::move(induced).value();
  }();
  return input;
}

constexpr std::size_t kBuckets = 16;

void RunTable() {
  const ValuePdfInput& input = Data();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto offline = HistogramBuilder::Create(input, options, kBuckets);
  PROBSYN_CHECK(offline.ok());
  double opt = offline->OptimalCost(kBuckets);

  std::printf("\n=== Ablation A8: one-pass streaming histogram (SSE, n=%zu, "
              "B=%zu) ===\n",
              input.domain_size(), kBuckets);
  std::printf("offline exact optimum: %.6f (holds all %zu items)\n", opt,
              input.domain_size());
  std::printf("%8s %12s %10s %18s\n", "epsilon", "cost ratio", "bound",
              "peak breakpoints");
  for (double eps : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    StreamingHistogramBuilder builder(kBuckets, eps);
    for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
    auto result = builder.Finish();
    PROBSYN_CHECK(result.ok());
    std::printf("%8.2f %12.6f %10.2f %18zu\n", eps, result->cost / opt,
                1.0 + eps, result->peak_breakpoints);
  }
}

void BM_StreamingPush(benchmark::State& state) {
  const ValuePdfInput& input = Data();
  double eps = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    StreamingHistogramBuilder builder(kBuckets, eps);
    for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
    benchmark::DoNotOptimize(builder.breakpoints());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.domain_size()));
  state.counters["eps"] = eps;
}
BENCHMARK(BM_StreamingPush)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  probsyn::RunTable();
  return 0;
}
