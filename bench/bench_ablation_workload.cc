// Ablation A6: workload-aware synopses (the paper's concluding-remarks
// extension — non-uniform query distributions over the domain).
//
// A hot range receives most of the query mass; we compare the
// workload-optimal histogram against the uniform-optimal one, both costed
// under the weighted objective. Expected shape: the gap widens as the
// workload concentrates, because the uniform DP wastes boundaries on cold
// regions.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "gen/generators.h"
#include "util/logging.h"

namespace probsyn {
namespace {

TuplePdfInput MakeData() {
  std::size_t n = bench::Scaled(1024, 8192);
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = n, .seed = 88});
  auto tuple_pdf = basic.ToTuplePdf();
  PROBSYN_CHECK(tuple_pdf.ok());
  return std::move(tuple_pdf).value();
}

// hot_share of the query mass falls on the central 1/8th of the domain.
std::vector<double> MakeWorkload(std::size_t n, double hot_share) {
  std::vector<double> weights(n, 0.0);
  std::size_t hot_begin = n / 2 - n / 16, hot_end = n / 2 + n / 16;
  double hot_items = static_cast<double>(hot_end - hot_begin);
  double cold_items = static_cast<double>(n) - hot_items;
  for (std::size_t i = 0; i < n; ++i) {
    bool hot = i >= hot_begin && i < hot_end;
    weights[i] = hot ? hot_share / hot_items : (1.0 - hot_share) / cold_items;
  }
  return weights;
}

void RunTable() {
  TuplePdfInput input = MakeData();
  const std::size_t n = input.domain_size();
  const std::size_t kBuckets = 16;

  bench::SeriesTable table(
      "Ablation A6: workload-aware vs uniform histograms (SSE, n=" +
          std::to_string(n) + ", B=" + std::to_string(kBuckets) +
          ") [weighted expected SSE, x1000]",
      "hot%", {"WorkloadAware", "UniformOpt", "penalty%"});

  for (double hot_share : {0.125, 0.5, 0.9, 0.99}) {
    SynopsisOptions weighted;
    weighted.metric = ErrorMetric::kSse;
    weighted.sse_variant = SseVariant::kFixedRepresentative;
    weighted.workload = MakeWorkload(n, hot_share);

    SynopsisOptions uniform = weighted;
    uniform.workload.clear();

    auto aware = BuildOptimalHistogram(input, weighted, kBuckets);
    auto blind = BuildOptimalHistogram(input, uniform, kBuckets);
    PROBSYN_CHECK(aware.ok() && blind.ok());
    auto cost_aware = EvaluateHistogram(input, aware.value(), weighted);
    auto cost_blind = EvaluateHistogram(input, blind.value(), weighted);
    PROBSYN_CHECK(cost_aware.ok() && cost_blind.ok());
    double penalty = *cost_aware > 0.0
                         ? 100.0 * (*cost_blind - *cost_aware) / *cost_aware
                         : 0.0;
    table.AddRow(static_cast<std::size_t>(hot_share * 100),
                 {*cost_aware * 1e3, *cost_blind * 1e3, penalty});
  }
  table.Print();
}

void BM_WorkloadAwareDP(benchmark::State& state) {
  static const TuplePdfInput input = MakeData();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  options.workload = MakeWorkload(input.domain_size(), 0.9);
  for (auto _ : state) {
    auto builder = HistogramBuilder::Create(input, options, 16);
    benchmark::DoNotOptimize(builder);
  }
}
BENCHMARK(BM_WorkloadAwareDP)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  probsyn::RunTable();
  return 0;
}
