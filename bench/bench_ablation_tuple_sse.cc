// Ablation A2 (paper section 3.1, tuple-pdf branch): does the exact
// world-mean SSE oracle — which accounts for within-tuple anticorrelation
// via the incremental sum_t q_t^2 sweep — buy anything over the cheaper
// independent-items approximation that reuses the value-pdf formula on
// tuple-pdf moments?
//
// Both DPs' histograms are re-costed under the EXACT equation-(5)
// objective. Expected shape: the sum_t q_t^2 term only registers when a
// tuple's alternatives land INSIDE one bucket (q_t = the tuple's
// in-bucket mass), so the approximation's gap is largest for tightly
// clustered alternatives and fine bucketings, and washes out when
// alternatives scatter across bucket boundaries.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/histogram_dp.h"
#include "core/sse_oracle.h"
#include "gen/generators.h"
#include "util/logging.h"

namespace probsyn {
namespace {

TuplePdfInput MakeData(std::size_t spread) {
  std::size_t n = bench::Scaled(512, 4096);
  return GenerateMaybmsTpch({.domain_size = n,
                             .num_tuples = 8 * n,
                             .max_alternatives = 6,
                             .alternative_spread = spread,
                             .absent_probability = 0.2,
                             .zipf_alpha = 0.8,
                             .seed = 52});
}

void RunTable(std::size_t spread) {
  TuplePdfInput input = MakeData(spread);
  const std::size_t n = input.domain_size();

  SseTupleWorldMeanOracle exact_oracle(input);
  SseMomentOracle approx_oracle =
      SseMomentOracle::FromTuplePdf(input, SseVariant::kWorldMean);

  HistogramDpResult exact_dp =
      SolveHistogramDp(exact_oracle, n / 8, DpCombiner::kSum);
  HistogramDpResult approx_dp =
      SolveHistogramDp(approx_oracle, n / 8, DpCombiner::kSum);

  bench::SeriesTable table(
      "Ablation A2: exact tuple-pdf SSE vs independent-items approximation "
      "(alternative spread " + std::to_string(spread) + ", n=" +
          std::to_string(n) + ") [true equation-(5) cost]",
      "buckets", {"ExactOracle", "IndepApprox", "gap%"});
  for (std::size_t b = 2; b <= n / 8; b *= 2) {
    Histogram exact_hist = exact_dp.ExtractHistogram(b);
    Histogram approx_hist = approx_dp.ExtractHistogram(b);
    auto exact_cost = EvaluateHistogramWorldMeanSse(input, exact_hist);
    auto approx_cost = EvaluateHistogramWorldMeanSse(input, approx_hist);
    PROBSYN_CHECK(exact_cost.ok() && approx_cost.ok());
    double gap = *exact_cost > 0.0
                     ? 100.0 * (*approx_cost - *exact_cost) / *exact_cost
                     : 0.0;
    table.AddRow(b, {*exact_cost, *approx_cost, gap});
  }
  table.Print();
}

void BM_TupleSseOracleSweep(benchmark::State& state) {
  static const TuplePdfInput input = MakeData(8);
  SseTupleWorldMeanOracle oracle(input);
  for (auto _ : state) {
    // One full DP-style sweep pass over all right endpoints.
    double sink = 0.0;
    for (std::size_t e = 0; e < input.domain_size(); e += 16) {
      auto sweep = oracle.StartSweep(e);
      for (std::size_t s = e;; --s) {
        sink += sweep->Extend().cost;
        if (s == 0) break;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_TupleSseOracleSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  probsyn::RunTable(/*spread=*/2);
  probsyn::RunTable(/*spread=*/16);
  return 0;
}
