// Figure 4 (paper section 5.2): wavelet synopsis quality under expected
// SSE, real-like and synthetic data at n = 2^15.
//
//   (a) movie-linkage (MystiQ stand-in) data
//   (b) MayBMS/TPC-H-style synthetic tuple-pdf data
//
// Quality measure (paper): percentage of expected-coefficient energy
// sum mu_i^2 NOT captured by the B retained coefficients. The
// Probabilistic method (keep B largest |mu|) is provably optimal; the
// Sample baseline keeps the B largest coefficients of one sampled world.
// Expected shape: Probabilistic well below Sample at every B, both
// decreasing in B. Construction is a single O(n)-ish transform — "much
// less than a second" in the paper — which the registered benchmarks time.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/wavelet.h"
#include "gen/generators.h"
#include "util/logging.h"

namespace probsyn {
namespace {

constexpr std::size_t kDomain = 1u << 15;  // the paper's n = 2^15

TuplePdfInput MovieData() {
  // Smooth-segment regime: expected frequencies locally flat, per-item
  // variance high — see MovieLinkageOptions::smooth_segments and
  // DESIGN.md substitution 1 for why this is the Figure-4 regime.
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = kDomain,
                                                .num_segments = 192,
                                                .smooth_segments = true,
                                                .seed = 415});
  auto tuple_pdf = basic.ToTuplePdf();
  PROBSYN_CHECK(tuple_pdf.ok());
  return std::move(tuple_pdf).value();
}

TuplePdfInput SyntheticData() {
  return GenerateMaybmsTpch({.domain_size = kDomain,
                             .num_tuples = 4 * kDomain,
                             .max_alternatives = 4,
                             .alternative_spread = 16,
                             .zipf_alpha = 0.9,
                             .seed = 416});
}

void RunPanel(const char* title, const TuplePdfInput& input) {
  std::vector<double> mu = ExpectedHaarCoefficients(input.ExpectedFrequencies());
  bench::SeriesTable table(
      std::string(title) + "  [unretained expected energy % vs coefficients]",
      "coeffs", {"Probabilistic", "Sampled#1", "Sampled#2", "Sampled#3"});

  Rng rng(99);
  std::vector<std::vector<double>> sampled_worlds;
  for (int s = 0; s < 3; ++s) {
    sampled_worlds.push_back(SampleWorldFrequencies(input, rng));
  }

  for (std::size_t budget : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    std::vector<double> row;
    auto prob = BuildSseOptimalWavelet(input, budget);
    PROBSYN_CHECK(prob.ok());
    row.push_back(WaveletUnretainedEnergyPercent(mu, prob.value()));
    for (const auto& world : sampled_worlds) {
      WaveletSynopsis sampled = BuildSseWaveletFromFrequencies(world, budget);
      row.push_back(WaveletUnretainedEnergyPercent(mu, sampled));
    }
    table.AddRow(budget, row);
  }
  table.Print();
}

void BM_Fig4_BuildProbabilisticWavelet(benchmark::State& state) {
  static const TuplePdfInput input = MovieData();
  std::size_t budget = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto synopsis = BuildSseOptimalWavelet(input, budget);
    benchmark::DoNotOptimize(synopsis);
  }
  state.counters["n"] = static_cast<double>(kDomain);
}
BENCHMARK(BM_Fig4_BuildProbabilisticWavelet)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  probsyn::RunPanel("Fig 4(a) SSE wavelets, movie data (n=2^15)",
                    probsyn::MovieData());
  probsyn::RunPanel("Fig 4(b) SSE wavelets, synthetic data (n=2^15)",
                    probsyn::SyntheticData());
  return 0;
}
