// Figure 3 (paper section 5.1): histogram construction time.
//
//   (a) time vs n at fixed B  — expected shape: ~quadratic in n
//   (b) time vs B at fixed n  — expected shape: ~linear in B
//
// The paper reports SSRE ("results very similar for other metrics, due to
// a shared code base") at n up to 3*10^4 and B up to 1000, landing around
// 10^3 seconds on a 2.4 GHz 2008 desktop; we run the identical O(m + Bn^2)
// algorithm at bench scale and verify the exponents, not the seconds.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/builders.h"
#include "gen/generators.h"
#include "util/logging.h"

namespace probsyn {
namespace {

TuplePdfInput MakeData(std::size_t n) {
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = n, .seed = 2009});
  auto tuple_pdf = basic.ToTuplePdf();
  PROBSYN_CHECK(tuple_pdf.ok());
  return std::move(tuple_pdf).value();
}

SynopsisOptions SsreOptions() {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;
  return options;
}

// Figure 3(a): vary n, fixed B.
void BM_Fig3a_TimeVsN(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  TuplePdfInput input = MakeData(n);
  const std::size_t kBuckets = 50;
  for (auto _ : state) {
    auto builder = HistogramBuilder::Create(input, SsreOptions(), kBuckets);
    benchmark::DoNotOptimize(builder);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = kBuckets;
  // Reading the table: doubling n should ~quadruple Time (the paper's
  // "close to quadratic dependency on n").
}

// Figure 3(b): vary B, fixed n.
void BM_Fig3b_TimeVsB(benchmark::State& state) {
  static const std::size_t n = probsyn::bench::Scaled(1024, 10000);
  static const TuplePdfInput input = MakeData(n);
  std::size_t buckets = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto builder = HistogramBuilder::Create(input, SsreOptions(), buckets);
    benchmark::DoNotOptimize(builder);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(buckets);
}

}  // namespace
}  // namespace probsyn

BENCHMARK(probsyn::BM_Fig3a_TimeVsN)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_Fig3b_TimeVsB)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
