#ifndef PROBSYN_BENCH_BENCH_UTIL_H_
#define PROBSYN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace probsyn::bench {

/// Benchmarks run at laptop scale by default; setting PROBSYN_BENCH_FULL=1
/// unlocks paper-scale parameters (the paper's own runs took ~20 minutes
/// per figure on its 2008 hardware — see DESIGN.md section 6).
inline bool FullScale() {
  const char* env = std::getenv("PROBSYN_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline std::size_t Scaled(std::size_t quick, std::size_t full) {
  return FullScale() ? full : quick;
}

/// Fixed-width series table, one row per budget, one column per method —
/// the textual equivalent of one figure panel.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string row_header,
              std::vector<std::string> columns)
      : title_(std::move(title)),
        row_header_(std::move(row_header)),
        columns_(std::move(columns)) {}

  void AddRow(std::size_t key, const std::vector<double>& values) {
    rows_.push_back({key, values});
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%10s", row_header_.c_str());
    for (const std::string& c : columns_) std::printf(" %16s", c.c_str());
    std::printf("\n");
    for (const Row& row : rows_) {
      std::printf("%10zu", row.key);
      for (double v : row.values) std::printf(" %16.3f", v);
      std::printf("\n");
    }
  }

 private:
  struct Row {
    std::size_t key;
    std::vector<double> values;
  };
  std::string title_;
  std::string row_header_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace probsyn::bench

#endif  // PROBSYN_BENCH_BENCH_UTIL_H_
