// Ablation A4 (DESIGN.md section 8 item on the two SSE readings): the
// paper's equation-(5) "world-mean" SSE objective versus the fixed-
// representative SSE of its own problem statement (section 2.3).
//
// Each variant's optimal histogram is cross-evaluated under both
// objectives. Expected shape: each wins under its own objective (by
// optimality); the cross penalties quantify how much the two objectives
// actually disagree about bucket boundaries — they differ by
// Var[sum g]/n_b per bucket, so disagreement grows with within-bucket
// frequency variance.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "gen/generators.h"
#include "util/logging.h"

namespace probsyn {
namespace {

TuplePdfInput MakeData() {
  std::size_t n = bench::Scaled(512, 4096);
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = n, .seed = 77});
  auto tuple_pdf = basic.ToTuplePdf();
  PROBSYN_CHECK(tuple_pdf.ok());
  return std::move(tuple_pdf).value();
}

void RunTable() {
  TuplePdfInput input = MakeData();
  const std::size_t n = input.domain_size();

  SynopsisOptions world_mean;
  world_mean.metric = ErrorMetric::kSse;
  world_mean.sse_variant = SseVariant::kWorldMean;
  SynopsisOptions fixed_rep;
  fixed_rep.metric = ErrorMetric::kSse;
  fixed_rep.sse_variant = SseVariant::kFixedRepresentative;

  auto wm_builder = HistogramBuilder::Create(input, world_mean, n / 4);
  auto fr_builder = HistogramBuilder::Create(input, fixed_rep, n / 4);
  PROBSYN_CHECK(wm_builder.ok() && fr_builder.ok());

  bench::SeriesTable table(
      "Ablation A4: SSE objective variants, cross-evaluated (n=" +
          std::to_string(n) + ")",
      "buckets",
      {"WM@WM", "FR@WM", "FR@FR", "WM@FR"});
  for (std::size_t b = 2; b <= n / 4; b *= 2) {
    Histogram h_wm = wm_builder->Extract(b);
    Histogram h_fr = fr_builder->Extract(b);
    auto wm_at_wm = EvaluateHistogramWorldMeanSse(input, h_wm);
    auto fr_at_wm = EvaluateHistogramWorldMeanSse(input, h_fr);
    auto fr_at_fr = EvaluateHistogram(input, h_fr, fixed_rep);
    auto wm_at_fr = EvaluateHistogram(input, h_wm, fixed_rep);
    PROBSYN_CHECK(wm_at_wm.ok() && fr_at_wm.ok() && fr_at_fr.ok() &&
                  wm_at_fr.ok());
    table.AddRow(b, {*wm_at_wm, *fr_at_wm, *fr_at_fr, *wm_at_fr});
  }
  table.Print();
  std::printf(
      "(WM = equation-(5) world-mean objective, FR = fixed-representative; "
      "\"X@Y\" = variant X's histogram costed under objective Y. "
      "Optimality requires WM@WM <= FR@WM and FR@FR <= WM@FR.)\n");
}

void BM_WorldMeanDP(benchmark::State& state) {
  static const TuplePdfInput input = MakeData();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  for (auto _ : state) {
    auto builder = HistogramBuilder::Create(input, options, 32);
    benchmark::DoNotOptimize(builder);
  }
}
BENCHMARK(BM_WorldMeanDP)->Unit(benchmark::kMillisecond);

void BM_FixedRepDP(benchmark::State& state) {
  static const TuplePdfInput input = MakeData();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  for (auto _ : state) {
    auto builder = HistogramBuilder::Create(input, options, 32);
    benchmark::DoNotOptimize(builder);
  }
}
BENCHMARK(BM_FixedRepDP)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  probsyn::RunTable();
  return 0;
}
