// Oracle microbenchmarks: per-bucket Cost(s, e) latency for every metric.
//
// These back the per-theorem complexity claims (paper Theorems 1-4, 6):
//   SSE / SSRE           O(1)          — flat across bucket widths
//   SAE / SARE           O(log |V|)    — flat across widths, grows with |V|
//   MAE / MARE           O(n_b log...) — linear-ish in bucket width
// plus the tuple-pdf SSE sweep's amortized O(1 + postings) extension.

#include <benchmark/benchmark.h>

#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "util/logging.h"

namespace probsyn {
namespace {

const ValuePdfInput& Data() {
  static const ValuePdfInput input = [] {
    BasicModelInput basic =
        GenerateMovieLinkage({.domain_size = 8192, .seed = 11});
    auto induced = InduceValuePdf(basic);
    PROBSYN_CHECK(induced.ok());
    return std::move(induced).value();
  }();
  return input;
}

void CostLoop(benchmark::State& state, ErrorMetric metric) {
  SynopsisOptions options;
  options.metric = metric;
  options.sanity_c = 0.5;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(Data(), options);
  PROBSYN_CHECK(bundle.ok());
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const std::size_t n = Data().domain_size();
  std::size_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle->oracle->Cost(s, s + width - 1));
    s = (s + 97) % (n - width);
  }
  state.counters["width"] = static_cast<double>(width);
}

void BM_OracleCost_SSE(benchmark::State& state) {
  CostLoop(state, ErrorMetric::kSse);
}
void BM_OracleCost_SSRE(benchmark::State& state) {
  CostLoop(state, ErrorMetric::kSsre);
}
void BM_OracleCost_SAE(benchmark::State& state) {
  CostLoop(state, ErrorMetric::kSae);
}
void BM_OracleCost_SARE(benchmark::State& state) {
  CostLoop(state, ErrorMetric::kSare);
}
void BM_OracleCost_MAE(benchmark::State& state) {
  CostLoop(state, ErrorMetric::kMae);
}
void BM_OracleCost_MARE(benchmark::State& state) {
  CostLoop(state, ErrorMetric::kMare);
}

void BM_TupleSseSweepExtend(benchmark::State& state) {
  static const TuplePdfInput input = GenerateMaybmsTpch(
      {.domain_size = 8192, .num_tuples = 32768, .seed = 12});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto bundle = MakeBucketOracle(input, options);
  PROBSYN_CHECK(bundle.ok());
  // Amortized extension cost over one full sweep.
  for (auto _ : state) {
    auto sweep = bundle->oracle->StartSweep(input.domain_size() - 1);
    double sink = 0.0;
    for (std::size_t s = input.domain_size() - 1;; --s) {
      sink += sweep->Extend().cost;
      if (s == 0) break;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(input.domain_size()));
}

}  // namespace
}  // namespace probsyn

BENCHMARK(probsyn::BM_OracleCost_SSE)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(probsyn::BM_OracleCost_SSRE)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(probsyn::BM_OracleCost_SAE)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(probsyn::BM_OracleCost_SARE)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(probsyn::BM_OracleCost_MAE)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(probsyn::BM_OracleCost_MARE)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(probsyn::BM_TupleSseSweepExtend)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
