// Figure 2 (paper section 5.1): histogram quality on movie-linkage data.
//
// Six panels — error% vs bucket budget for three methods:
//   (a) SSRE c=0.5   (b) SSRE c=1.0   (c) SSE (equation-(5) objective)
//   (d) SARE c=0.5   (e) SARE c=1.0   (f) SAE
// Methods: Probabilistic (this paper's DP), Expectation baseline, and
// three independently Sampled Worlds (the paper plots three samples to
// show their low variance).
//
// Expected shape (paper): Probabilistic <= Expectation <= Sampled, with
// the Expectation gap large for relative-error metrics at small c and
// nearly closed for SSE/SAE; Probabilistic error% decreases smoothly
// toward 0 as B grows.
//
// Default n = 512 (PROBSYN_BENCH_FULL=1 -> n = 4096); the paper used
// n = 10^4 with B up to 1000 on 2008 hardware (~20 min per panel).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/point_error.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "util/logging.h"

namespace probsyn {
namespace {

struct Panel {
  const char* name;
  ErrorMetric metric;
  double c;
};

const Panel kPanels[] = {
    {"Fig 2(a) sum-squared-relative error, c=0.5", ErrorMetric::kSsre, 0.5},
    {"Fig 2(b) sum-squared-relative error, c=1.0", ErrorMetric::kSsre, 1.0},
    {"Fig 2(c) sum-squared error", ErrorMetric::kSse, 1.0},
    {"Fig 2(d) sum-of-relative-errors, c=0.5", ErrorMetric::kSare, 0.5},
    {"Fig 2(e) sum-of-relative-errors, c=1.0", ErrorMetric::kSare, 1.0},
    {"Fig 2(f) sum-of-absolute-errors", ErrorMetric::kSae, 1.0},
};

TuplePdfInput MakeData() {
  std::size_t n = bench::Scaled(512, 4096);
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = n, .seed = 2009});
  auto tuple_pdf = basic.ToTuplePdf();
  PROBSYN_CHECK(tuple_pdf.ok());
  return std::move(tuple_pdf).value();
}

std::vector<std::size_t> Budgets(std::size_t n) {
  std::vector<std::size_t> budgets;
  for (std::size_t b = 1; b <= n / 4; b *= 2) budgets.push_back(b);
  return budgets;
}

// Evaluates a concrete histogram under the panel's true objective.
double TrueCost(const TuplePdfInput& input, const PointErrorTables& tables,
                const Panel& panel, const Histogram& h) {
  if (panel.metric == ErrorMetric::kSse) {
    // Panel (c) uses the paper's equation-(5) objective, which scores
    // bucket boundaries against per-world means (exact tuple-pdf form).
    auto cost = EvaluateHistogramWorldMeanSse(input, h);
    PROBSYN_CHECK(cost.ok());
    return *cost;
  }
  return EvaluateHistogram(tables, h, panel.metric);
}

void RunPanel(const TuplePdfInput& input, const ValuePdfInput& induced,
              const Panel& panel) {
  SynopsisOptions options;
  options.metric = panel.metric;
  options.sanity_c = panel.c;
  options.sse_variant = SseVariant::kWorldMean;

  const std::size_t n = input.domain_size();
  const std::size_t max_buckets = n / 4;

  auto prob = HistogramBuilder::Create(input, options, max_buckets);
  PROBSYN_CHECK(prob.ok());
  ErrorScale scale = ComputeErrorScale(prob->oracle(), true);

  auto expectation = HistogramBuilder::CreateDeterministic(
      ExpectationFrequencies(input), options, max_buckets);
  PROBSYN_CHECK(expectation.ok());

  Rng rng(panel.metric == ErrorMetric::kSse ? 11 : 13);
  std::vector<HistogramBuilder> sampled;
  for (int s = 0; s < 3; ++s) {
    auto b = HistogramBuilder::CreateDeterministic(
        SampleWorldFrequencies(input, rng), options, max_buckets);
    PROBSYN_CHECK(b.ok());
    sampled.push_back(std::move(b).value());
  }

  PointErrorTables tables(induced, panel.c);
  bench::SeriesTable table(
      std::string(panel.name) + "  [error % vs buckets, n=" +
          std::to_string(n) + "]",
      "buckets",
      {"Probabilistic", "Expectation", "Sampled#1", "Sampled#2", "Sampled#3"});

  for (std::size_t b : Budgets(n)) {
    std::vector<double> row;
    row.push_back(scale.Percent(prob->OptimalCost(b)));
    row.push_back(
        scale.Percent(TrueCost(input, tables, panel, expectation->Extract(b))));
    for (const HistogramBuilder& s : sampled) {
      row.push_back(
          scale.Percent(TrueCost(input, tables, panel, s.Extract(b))));
    }
    table.AddRow(b, row);
  }
  table.Print();
}

// Construction-time microbenchmark: the probabilistic DP for one panel.
void BM_Fig2_ProbabilisticDP(benchmark::State& state) {
  static const TuplePdfInput input = MakeData();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;
  std::size_t buckets = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto builder = HistogramBuilder::Create(input, options, buckets);
    benchmark::DoNotOptimize(builder);
  }
  state.counters["n"] = static_cast<double>(input.domain_size());
}
BENCHMARK(BM_Fig2_ProbabilisticDP)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  probsyn::TuplePdfInput input = probsyn::MakeData();
  auto induced = probsyn::InduceValuePdf(input);
  PROBSYN_CHECK(induced.ok());
  for (const probsyn::Panel& panel : probsyn::kPanels) {
    probsyn::RunPanel(input, induced.value(), panel);
  }
  return 0;
}
