// Serving-tier benchmarks: query throughput of SynopsisServer over a
// memory-mapped store, plus codec round-trip and store-open latencies.
//
//   BM_ServeQps          point-estimate queries/sec against a B-bucket
//                        histogram over n = 2^20 (the acceptance floor is
//                        1M queries/sec single-thread; see
//                        docs/benchmarks.md)
//   BM_ServeQpsThreaded  the same point-estimate stream fanned over 1/2/4
//                        reader threads against ONE shared server — the
//                        read path is lock-free over the mmap, so
//                        items/sec (aggregated across threads) should
//                        scale with physical cores; on a single-core host
//                        the >1-thread rows measure scheduling overhead
//                        only
//   BM_ServeWaveletQps   point estimates against a B-coefficient wavelet
//                        (O(log n log B) sparse reconstruction per query)
//   BM_ServeRangeSum     random-range sums against the same histogram
//   BM_CodecRoundTrip    EncodeHistogram + DecodeHistogram of a B-bucket
//                        synopsis (bytes_per_second = blob bytes each way)
//   BM_StoreOpen         SynopsisStore::Open of a 64-entry store — the
//                        O(directory) mmap + index build, not O(file)
//
// Queries walk an LCG index stream so the bucket binary search sees an
// adversarial (non-sequential) access pattern rather than a cached hot path.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/synopsis_server.h"
#include "util/logging.h"

namespace probsyn {
namespace {

constexpr std::size_t kDomain = std::size_t{1} << 20;

// A deterministic B-bucket histogram over kDomain: equal-width buckets with
// varying representatives. Construction cost is irrelevant here — these
// benchmarks measure the serving side.
Histogram MakeHistogram(std::size_t num_buckets) {
  std::vector<HistogramBucket> buckets;
  buckets.reserve(num_buckets);
  const std::size_t width = kDomain / num_buckets;
  for (std::size_t k = 0; k < num_buckets; ++k) {
    const std::size_t start = k * width;
    const std::size_t end =
        k + 1 == num_buckets ? kDomain - 1 : start + width - 1;
    buckets.push_back(
        {start, end, static_cast<double>((k * 2654435761u) % 1000) / 8.0});
  }
  return Histogram(std::move(buckets));
}

WaveletSynopsis MakeWavelet(std::size_t num_coefficients) {
  std::vector<WaveletCoefficient> coefficients;
  coefficients.reserve(num_coefficients);
  const std::size_t stride = kDomain / num_coefficients;
  for (std::size_t k = 0; k < num_coefficients; ++k) {
    coefficients.push_back(
        {k * stride, static_cast<double>((k * 40503u) % 512) / 4.0 - 60.0});
  }
  return WaveletSynopsis(kDomain, kDomain, std::move(coefficients));
}

// Writes a two-entry store and opens a server over it.
SynopsisServer MakeServer(const char* tag, std::size_t num_buckets,
                          std::size_t num_coefficients) {
  SynopsisStoreWriter writer;
  PROBSYN_CHECK(writer.AddHistogram("h", MakeHistogram(num_buckets)).ok());
  PROBSYN_CHECK(writer.AddWavelet("w", MakeWavelet(num_coefficients)).ok());
  const std::string path =
      std::string("/tmp/probsyn_bench_") + tag + ".synstore";
  PROBSYN_CHECK(writer.WriteFile(path).ok());
  auto server = SynopsisServer::Open(path);
  PROBSYN_CHECK(server.ok());
  std::remove(path.c_str());  // the mapping outlives the directory entry
  return std::move(server).value();
}

void BM_ServeQps(benchmark::State& state) {
  SynopsisServer server =
      MakeServer("qps", static_cast<std::size_t>(state.range(0)), 64);
  const ServedSynopsis* synopsis = server.Find("h");
  PROBSYN_CHECK(synopsis != nullptr);
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(
        synopsis->PointEstimate((lcg >> 16) % kDomain));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ServeQpsThreaded(benchmark::State& state) {
  // One server shared by every reader thread (the concurrency contract
  // under test); magic-static init keeps construction single-threaded.
  static SynopsisServer& server = *new SynopsisServer(
      MakeServer("qps_mt", 1024, 64));
  const ServedSynopsis* synopsis = server.Find("h");
  PROBSYN_CHECK(synopsis != nullptr);
  // Distinct per-thread LCG seeds so threads do not walk the same index
  // stream in lockstep (which would overstate cache locality).
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull *
                      static_cast<std::uint64_t>(state.thread_index() + 1);
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(
        synopsis->PointEstimate((lcg >> 16) % kDomain));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ServeWaveletQps(benchmark::State& state) {
  SynopsisServer server =
      MakeServer("wqps", 64, static_cast<std::size_t>(state.range(0)));
  const ServedSynopsis* synopsis = server.Find("w");
  PROBSYN_CHECK(synopsis != nullptr);
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(
        synopsis->PointEstimate((lcg >> 16) % kDomain));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ServeRangeSum(benchmark::State& state) {
  SynopsisServer server =
      MakeServer("range", static_cast<std::size_t>(state.range(0)), 64);
  const ServedSynopsis* synopsis = server.Find("h");
  PROBSYN_CHECK(synopsis != nullptr);
  std::uint64_t lcg = 0x2545f4914f6cdd1dull;
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t a = (lcg >> 16) % (kDomain / 2);
    const std::size_t b = a + (lcg >> 40) % (kDomain - a);
    benchmark::DoNotOptimize(synopsis->RangeSum(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CodecRoundTrip(benchmark::State& state) {
  Histogram histogram = MakeHistogram(static_cast<std::size_t>(state.range(0)));
  std::size_t blob_bytes = 0;
  for (auto _ : state) {
    auto blob = EncodeHistogram(histogram);
    PROBSYN_CHECK(blob.ok());
    blob_bytes = blob->size();
    auto decoded = DecodeHistogram(
        {reinterpret_cast<const std::uint8_t*>(blob->data()), blob->size()});
    PROBSYN_CHECK(decoded.ok());
    benchmark::DoNotOptimize(decoded->num_buckets());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob_bytes));
  state.counters["blob_bytes"] = static_cast<double>(blob_bytes);
}

void BM_StoreOpen(benchmark::State& state) {
  SynopsisStoreWriter writer;
  for (int k = 0; k < 64; ++k) {
    PROBSYN_CHECK(
        writer.AddHistogram("h" + std::to_string(k), MakeHistogram(256)).ok());
  }
  const std::string path = "/tmp/probsyn_bench_open.synstore";
  PROBSYN_CHECK(writer.WriteFile(path).ok());
  for (auto _ : state) {
    auto store = SynopsisStore::Open(path);
    PROBSYN_CHECK(store.ok());
    benchmark::DoNotOptimize(store->size());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace probsyn

BENCHMARK(probsyn::BM_ServeQps)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(probsyn::BM_ServeQpsThreaded)
    ->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(probsyn::BM_ServeWaveletQps)->Arg(64)->Arg(1024);
BENCHMARK(probsyn::BM_ServeRangeSum)->Arg(64)->Arg(1024);
BENCHMARK(probsyn::BM_CodecRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(probsyn::BM_StoreOpen);

BENCHMARK_MAIN();
