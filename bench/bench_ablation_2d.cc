// Ablation A7: two-dimensional histograms (the multi-dimensional
// generalization the paper's concluding remarks call for).
//
// Compares three partitioners on a 2-D uncertain grid with planted block
// structure plus noise, all costed under expected SSE:
//   * UniformGrid  — fixed sqrt(B) x sqrt(B) tiling (no data awareness)
//   * Greedy       — MHIST-style best-split-first
//   * Guillotine   — exact optimal recursive binary partition (small grids)
// Expected shape: Guillotine <= Greedy << UniformGrid, with Greedy close
// to Guillotine.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "core/histogram2d.h"
#include "gen/generators.h"
#include "util/logging.h"
#include "util/random.h"

namespace probsyn {
namespace {

ProbGrid2D MakeGrid(std::size_t n) {
  // Block-structured expected surface with per-cell uncertainty.
  Rng rng(606);
  std::vector<ValuePdf> cells;
  cells.reserve(n * n);
  std::size_t block = n / 4;
  std::vector<double> levels(16);
  for (double& l : levels) l = rng.NextUniform(0.0, 12.0);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      double level = levels[(y / block) * 4 + (x / block)];
      double lo = std::max(0.0, level - 1.0);
      auto pdf = ValuePdf::Create(
          {{lo, 0.3}, {level, 0.4}, {level + 1.0, 0.3}});
      PROBSYN_CHECK(pdf.ok());
      cells.push_back(std::move(pdf).value());
    }
  }
  auto grid = ProbGrid2D::Create(n, n, std::move(cells));
  PROBSYN_CHECK(grid.ok());
  return std::move(grid).value();
}

SynopsisOptions SseOptions() {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  return options;
}

double UniformGridCost(const ProbGrid2D& grid, std::size_t buckets) {
  auto oracle = RectCostOracle2D::Create(grid, SseOptions());
  PROBSYN_CHECK(oracle.ok());
  std::size_t side = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(std::sqrt(
             static_cast<double>(buckets)))));
  std::size_t n = grid.width();
  double total = 0.0;
  for (std::size_t by = 0; by < side; ++by) {
    for (std::size_t bx = 0; bx < side; ++bx) {
      Rect r{bx * n / side, by * n / side, (bx + 1) * n / side - 1,
             (by + 1) * n / side - 1};
      total += oracle->Cost(r).cost;
    }
  }
  return total;
}

void RunTable() {
  const std::size_t n = 16;  // small enough for the exact guillotine DP
  ProbGrid2D grid = MakeGrid(n);
  bench::SeriesTable table(
      "Ablation A7: 2-D histograms on a 16x16 uncertain grid "
      "[expected SSE]",
      "buckets", {"UniformGrid", "Greedy", "Guillotine"});
  for (std::size_t b : {4u, 9u, 16u, 25u}) {
    auto greedy = BuildGreedyHistogram2D(grid, SseOptions(), b);
    auto exact = BuildOptimalGuillotineHistogram2D(grid, SseOptions(), b,
                                                   /*max_cells=*/4096);
    PROBSYN_CHECK(greedy.ok() && exact.ok());
    table.AddRow(b, {UniformGridCost(grid, b), greedy->cost, exact->cost});
  }
  table.Print();
}

void BM_Greedy2D(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  ProbGrid2D grid = MakeGrid(n);
  for (auto _ : state) {
    auto result = BuildGreedyHistogram2D(grid, SseOptions(), 32);
    benchmark::DoNotOptimize(result);
  }
  state.counters["cells"] = static_cast<double>(n * n);
}
BENCHMARK(BM_Greedy2D)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Guillotine2D(benchmark::State& state) {
  ProbGrid2D grid = MakeGrid(12);
  for (auto _ : state) {
    auto result = BuildOptimalGuillotineHistogram2D(grid, SseOptions(), 8);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Guillotine2D)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace probsyn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  probsyn::RunTable();
  return 0;
}
