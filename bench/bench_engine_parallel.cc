// SynopsisEngine tentpole benchmarks:
//
//   (a) exact-DP kernels — the reference virtual-dispatch solver vs the
//       specialized devirtualized kernel (core/dp_kernels.h) at 1..8 lanes,
//       n up to 4096, B = 64. The acceptance bar for the kernel subsystem
//       is >= 2x single-thread at n = 4096, B = 64 on the O(1) SSE oracle
//       (kernel=1 vs kernel=0 rows at lanes = 1); the bench reports
//       whatever the current machine delivers.
//   (b) exact-DP max-combiner — same comparison under DpCombiner::kMax,
//       where the kernel's monotone-split bisection replaces the O(j) scan
//       per cell with O(log j).
//   (c) engine batching — a 15-budget cost-vs-B sweep served as one batch
//       (one oracle, one DP, one workspace) vs 15 independent Build calls.
//   (d) approximate-DP point-cost kernels — reference virtual Cost() per
//       candidate vs the devirtualized evaluator (SSE's inlined prefix
//       subtractions, SAE's inlined convex search), kernel = 0 vs 1.
//   (e) wavelet budget-split kernels — the restricted and unrestricted
//       coefficient-tree DPs with the reference scalar split scan
//       (kernel = 0) vs MinBudgetSplit's chunked min-reduction / monotone
//       bisection (kernel = 1).
//   (f) warm-started SAE sweeps — the exact DP over AbsCumulativeOracle,
//       whose FlatSweep carries the previous cell's optimal grid index
//       (kernel = 1) vs the reference virtual route running the same warm
//       sweep through the adapter (kernel = 0): the remaining gap is pure
//       dispatch overhead; compare against the PR 2 baseline for the
//       cold-restart cost this PR removed.
//   (g) streaming merge kernels — the one-pass builder's per-item
//       candidate minimization with the reference compare-and-copy scan
//       (kernel = 0) vs the point-cost kernel (hoisted snapshot columns +
//       SIMD min-reduction + single winner-chain copy, kernel = 1).
//   (h) 2-D guillotine DP kernels — the per-(rectangle, budget) recursive
//       scalar solver (kernel = 0) vs the budget-vector memo with
//       SIMD budget-split min-reductions (kernel = 1).
//
//   (i) parallel wavelet arena fill — the restricted DP's level sweeps
//       fanned out across 1/2/4/8 lanes at the acceptance point n = 1024,
//       B = 64 (bit-identical outputs; speedup = lanes=1 row / lanes=L
//       row — on a multi-core host real_time drops, on a single-core CI
//       box only cpu_time tells the story, as with the exact-DP rows).
//   (j) streaming Push latency — whole-stream time at a wide layer count
//       (B = 32), where the reference path's per-push winner-chain copies
//       are O(B^2) and the persistent chain store's are O(B); compare
//       kernel = 0 vs 1 and against the B = 16 series (g).
//   (k) sharded construction — the engine's sharded route
//       (core/sharded_dp.h) at n = 1e5 and 1e6, S shards x `threads`
//       lanes, exact and approx shard solvers. shards = 1 rows run the
//       UNSHARDED route (RequestSharding::Mode::kOff) as the baseline the
//       acceptance speedup is measured against; heavy rows pin
//       Iterations(1) so the full suite stays CI-sized. Two effects
//       compose: the per-shard budget cap shrinks each shard's DP
//       superlinearly (visible even at 1 thread), and shard solves run
//       concurrently (visible in real_time only on a multi-core host — on
//       a single-core box threads > 1 can only add scheduling overhead).
//
// The restricted-wavelet series (e) carry the PR 4 acceptance point
// n = 1024, B = 64: the arena-backed bottom-up solver vs the PR 3
// hash-memo baseline committed in BENCH_baseline.json.
//
// Run via the `bench_json` target (or with --benchmark_out=...) to emit
// machine-readable BENCH_bench_engine_parallel.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/dp_kernels.h"
#include "core/histogram2d.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "core/wavelet_dp.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "stream/streaming_histogram.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace probsyn {
namespace {

ValuePdfInput MakeInput(std::size_t n) {
  return GenerateRandomValuePdf({.domain_size = n, .seed = 20090401});
}

SynopsisOptions SseOptions() {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  return options;
}

// (a)/(b) The O(B n^2) exact DP: reference scalar solver (kernelized = 0)
// vs specialized kernel (kernelized = 1), sequential (lanes = 1) vs
// parallel. A reused workspace keeps steady-state allocation at zero, as
// the engine does.
void RunExactDp(benchmark::State& state, DpCombiner combiner) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t lanes = static_cast<std::size_t>(state.range(1));
  const bool kernelized = state.range(2) != 0;
  const std::size_t kBuckets = 64;

  ValuePdfInput input = MakeInput(n);
  auto bundle = MakeBucketOracle(input, SseOptions());
  PROBSYN_CHECK(bundle.ok());
  ThreadPool pool(lanes > 1 ? lanes - 1 : 0);

  DpWorkspace workspace;
  DpKernelOptions options;
  options.pool = lanes > 1 ? &pool : nullptr;
  options.workspace = &workspace;
  options.kernel =
      kernelized ? DpKernelKind::kAuto : DpKernelKind::kReference;

  for (auto _ : state) {
    HistogramDpResult dp = SolveHistogramDpWithKernel(*bundle->oracle,
                                                      kBuckets, combiner,
                                                      options);
    benchmark::DoNotOptimize(dp.OptimalCost(kBuckets));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["lanes"] = static_cast<double>(lanes);
  state.counters["B"] = static_cast<double>(kBuckets);
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
  // Speedup(n, L, k) = Time(n, 1, 0) / Time(n, L, k) across rows of equal n.
}

void BM_ExactDp(benchmark::State& state) {
  RunExactDp(state, DpCombiner::kSum);
}

void BM_ExactDpMaxCombiner(benchmark::State& state) {
  RunExactDp(state, DpCombiner::kMax);
}

// (d) The approximate DP's sparse candidate evaluations: virtual Cost()
// (kernelized = 0) vs the devirtualized point-cost kernel (kernelized = 1).
void RunApproxDp(benchmark::State& state, ErrorMetric metric) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool kernelized = state.range(1) != 0;
  const std::size_t kBuckets = 64;
  const double kEpsilon = 0.1;

  ValuePdfInput input = MakeInput(n);
  SynopsisOptions options;
  options.metric = metric;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  PROBSYN_CHECK(bundle.ok());

  ApproxDpKernelOptions kernel_options;
  kernel_options.kernel =
      kernelized ? DpKernelKind::kAuto : DpKernelKind::kReference;
  std::size_t evaluations = 0;
  for (auto _ : state) {
    auto result = SolveApproxHistogramDpWithKernel(
        *bundle->oracle, kBuckets, kEpsilon, kernel_options);
    PROBSYN_CHECK(result.ok());
    evaluations = result->oracle_evaluations;
    benchmark::DoNotOptimize(result->cost);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(kBuckets);
  state.counters["eps"] = kEpsilon;
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
  state.counters["evaluations"] = static_cast<double>(evaluations);
}

void BM_ApproxDpSse(benchmark::State& state) {
  RunApproxDp(state, ErrorMetric::kSse);
}

void BM_ApproxDpSae(benchmark::State& state) {
  RunApproxDp(state, ErrorMetric::kSae);
}

// (e) Wavelet coefficient-tree DPs: reference scalar budget-split scans
// (kernelized = 0) vs the MinBudgetSplit kernels (kernelized = 1). kMae
// exercises the max-combiner bisection, kSse the chunked sum reduction.
void RunWaveletRestricted(benchmark::State& state, ErrorMetric metric) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t coeffs = static_cast<std::size_t>(state.range(1));
  const bool kernelized = state.range(2) != 0;

  ValuePdfInput input = MakeInput(n);
  SynopsisOptions options;
  options.metric = metric;
  const WaveletSplitKernel kernel = kernelized
                                        ? WaveletSplitKernel::kBudgetSplit
                                        : WaveletSplitKernel::kReference;
  for (auto _ : state) {
    auto result =
        BuildRestrictedWaveletDp(input, coeffs, options, 2048, kernel);
    PROBSYN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(coeffs);
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
}

void BM_WaveletRestrictedDpMae(benchmark::State& state) {
  RunWaveletRestricted(state, ErrorMetric::kMae);
}

void BM_WaveletRestrictedDpSae(benchmark::State& state) {
  RunWaveletRestricted(state, ErrorMetric::kSae);
}

// (i) Thread-scaling of the restricted wavelet DP's parallel arena fill:
// identical solve at 1..8 lanes through a reused workspace (zero
// steady-state allocation, like the engine route). Outputs are
// bit-identical across rows; only the wall clock moves.
void RunWaveletRestrictedParallel(benchmark::State& state,
                                  ErrorMetric metric) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t coeffs = static_cast<std::size_t>(state.range(1));
  const std::size_t lanes = static_cast<std::size_t>(state.range(2));

  ValuePdfInput input = MakeInput(n);
  SynopsisOptions options;
  options.metric = metric;
  ThreadPool pool(lanes > 1 ? lanes - 1 : 0);
  DpWorkspace workspace;
  for (auto _ : state) {
    auto result = BuildRestrictedWaveletDp(input, coeffs, options, 2048,
                                           WaveletSplitKernel::kAuto,
                                           &workspace,
                                           lanes > 1 ? &pool : nullptr);
    PROBSYN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(coeffs);
  state.counters["lanes"] = static_cast<double>(lanes);
  // Speedup(L) = Time(lanes=1) / Time(lanes=L) across rows of equal n, B.
}

void BM_WaveletRestrictedDpParallelMae(benchmark::State& state) {
  RunWaveletRestrictedParallel(state, ErrorMetric::kMae);
}

void BM_WaveletRestrictedDpParallelSae(benchmark::State& state) {
  RunWaveletRestrictedParallel(state, ErrorMetric::kSae);
}

// (g) Streaming merge kernels: reference compare-and-copy candidate scan
// vs the point-cost kernel over hoisted snapshot columns.
void BM_StreamingMerge(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool kernelized = state.range(1) != 0;
  const std::size_t kBuckets = 16;
  const double kEpsilon = 0.1;
  ValuePdfInput input = MakeInput(n);
  const StreamingKernel kernel = kernelized ? StreamingKernel::kPointCost
                                            : StreamingKernel::kReference;
  for (auto _ : state) {
    StreamingHistogramBuilder builder(kBuckets, kEpsilon, kernel);
    for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
    auto result = builder.Finish();
    PROBSYN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(kBuckets);
  state.counters["eps"] = kEpsilon;
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
}

// (j) Streaming Push latency at a wide layer count: the reference path
// copies each layer's winner chain per push (O(B^2) snapshots), the
// point-cost path takes one persistent-chain operation per layer (O(B)).
// items_per_second is the push throughput.
void BM_StreamingPushLatency(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t buckets = static_cast<std::size_t>(state.range(1));
  const bool kernelized = state.range(2) != 0;
  const double kEpsilon = 0.1;
  ValuePdfInput input = MakeInput(n);
  const StreamingKernel kernel = kernelized ? StreamingKernel::kPointCost
                                            : StreamingKernel::kReference;
  DpWorkspace workspace;
  for (auto _ : state) {
    StreamingHistogramBuilder builder(buckets, kEpsilon, kernel,
                                      kernelized
                                          ? &workspace.stream_chains()
                                          : nullptr);
    for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
    benchmark::DoNotOptimize(builder.breakpoints());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(buckets);
  state.counters["eps"] = kEpsilon;
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
}

// (h) 2-D guillotine DP kernels on a side x side grid.
void BM_Guillotine2dDp(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  const bool kernelized = state.range(1) != 0;
  const std::size_t kBuckets = 16;
  ValuePdfInput flat = GenerateRandomValuePdf(
      {.domain_size = side * side, .max_support = 3, .max_value = 6,
       .seed = 20090402});
  auto grid = ProbGrid2D::Create(side, side, flat.items());
  PROBSYN_CHECK(grid.ok());
  const Guillotine2DKernel kernel = kernelized
                                        ? Guillotine2DKernel::kMinScan
                                        : Guillotine2DKernel::kReference;
  for (auto _ : state) {
    auto result = BuildOptimalGuillotineHistogram2D(
        grid.value(), SseOptions(), kBuckets, 4096, kernel);
    PROBSYN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
  state.counters["side"] = static_cast<double>(side);
  state.counters["B"] = static_cast<double>(kBuckets);
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
}

void RunWaveletUnrestricted(benchmark::State& state, ErrorMetric metric) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t coeffs = static_cast<std::size_t>(state.range(1));
  const bool kernelized = state.range(2) != 0;

  ValuePdfInput input = MakeInput(n);
  SynopsisOptions options;
  options.metric = metric;
  UnrestrictedWaveletOptions dp_options;
  dp_options.grid_points = 33;
  dp_options.kernel = kernelized ? WaveletSplitKernel::kBudgetSplit
                                 : WaveletSplitKernel::kReference;
  for (auto _ : state) {
    auto result =
        BuildUnrestrictedWaveletDp(input, coeffs, options, dp_options);
    PROBSYN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(coeffs);
  state.counters["q"] = static_cast<double>(dp_options.grid_points);
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
}

void BM_WaveletUnrestrictedDpMae(benchmark::State& state) {
  RunWaveletUnrestricted(state, ErrorMetric::kMae);
}

void BM_WaveletUnrestrictedDpSse(benchmark::State& state) {
  RunWaveletUnrestricted(state, ErrorMetric::kSse);
}

// (f) Exact DP over the warm-started SAE oracle (both kernel = 0/1 rows
// run warm FlatSweeps; compare either against the PR 2 BENCH_baseline.json
// rows to see the cold-restart cost this PR removed).
void BM_ExactDpSaeWarmSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool kernelized = state.range(1) != 0;
  const std::size_t kBuckets = 32;

  ValuePdfInput input = MakeInput(n);
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto bundle = MakeBucketOracle(input, options);
  PROBSYN_CHECK(bundle.ok());

  DpWorkspace workspace;
  DpKernelOptions dp_options;
  dp_options.workspace = &workspace;
  dp_options.kernel =
      kernelized ? DpKernelKind::kAuto : DpKernelKind::kReference;
  for (auto _ : state) {
    HistogramDpResult dp = SolveHistogramDpWithKernel(
        *bundle->oracle, kBuckets, bundle->combiner, dp_options);
    benchmark::DoNotOptimize(dp.OptimalCost(kBuckets));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(kBuckets);
  state.counters["kernel"] = kernelized ? 1.0 : 0.0;
}

// (c) One batched cost-vs-B sweep vs repeated single builds.
void BM_EngineSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  ValuePdfInput input = MakeInput(n);

  SynopsisEngine engine({.parallelism = 1});
  std::vector<SynopsisRequest> requests;
  for (std::size_t b = 4; b <= 64; b *= 2) {
    for (std::size_t i = 0; i < 3; ++i) {  // 15 requests over 5 budgets
      SynopsisRequest request;
      request.budget = b + i;
      request.options = SseOptions();
      requests.push_back(request);
    }
  }

  for (auto _ : state) {
    if (batched) {
      auto results = engine.BuildBatch(input, requests);
      PROBSYN_CHECK(results.ok());
      benchmark::DoNotOptimize(results->back().cost);
    } else {
      double last = 0.0;
      for (const SynopsisRequest& request : requests) {
        auto result = engine.Build(input, request);
        PROBSYN_CHECK(result.ok());
        last = result->cost;
      }
      benchmark::DoNotOptimize(last);
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["requests"] = static_cast<double>(requests.size());
  state.counters["batched"] = batched ? 1.0 : 0.0;
}

// (k) Sharded construction through the engine route. The generated inputs
// are cached across rows (a 1e6-item pdf set takes seconds to build).
void RunShardedConstruction(benchmark::State& state, HistogramMethod method) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  const std::size_t threads = static_cast<std::size_t>(state.range(2));

  static std::map<std::size_t, ValuePdfInput>* cache =
      new std::map<std::size_t, ValuePdfInput>;
  auto it = cache->find(n);
  if (it == cache->end()) it = cache->emplace(n, MakeInput(n)).first;
  const ValuePdfInput& input = it->second;

  SynopsisEngine engine({.parallelism = threads, .min_parallel_domain = 1});
  SynopsisRequest request;
  request.budget = 64;
  request.method = method;
  request.epsilon = 0.1;
  request.options = SseOptions();
  if (shards <= 1) {
    request.sharding.mode = RequestSharding::Mode::kOff;  // baseline
  } else {
    request.sharding.mode = RequestSharding::Mode::kOn;
    request.sharding.shards = shards;
  }

  for (auto _ : state) {
    auto result = engine.Build(input, request);
    PROBSYN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["S"] = static_cast<double>(shards);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["B"] = 64.0;
  // Acceptance: Time(n, S, threads) vs Time(n, 1, 1) — the unsharded
  // single-thread baseline of the same method — in real time.
}

void BM_ShardedConstruction(benchmark::State& state) {
  RunShardedConstruction(state, HistogramMethod::kApprox);
}

void BM_ShardedConstructionExact(benchmark::State& state) {
  RunShardedConstruction(state, HistogramMethod::kOptimal);
}

// (l) Cancellation-poll overhead guard — identical engine builds with and
// without an attached never-firing deadline + cancel token. The unpolled
// build runs the historical unbounded path (no ExecContext at all); the
// polled build hits every cooperative checkpoint — per DP column block,
// per shard, per tree level. Both run INTERLEAVED inside one benchmark,
// alternating order each iteration, so slow clock drift (thermal,
// frequency scaling) cancels out of the ratio — back-to-back separate
// rows on a single-core box drift by more than the effect being measured.
// The robustness contract says the polls cost <= 2%;
// tools/check_poll_overhead.py asserts the `overhead` counter in CI.
void RunPollOverhead(benchmark::State& state, bool sharded) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));

  ValuePdfInput input = MakeInput(n);
  SynopsisEngine engine({.parallelism = 1});
  SynopsisRequest unpolled;
  unpolled.budget = 64;
  unpolled.options = SseOptions();
  if (sharded) {
    unpolled.method = HistogramMethod::kApprox;
    unpolled.epsilon = 0.1;
    unpolled.sharding.mode = RequestSharding::Mode::kOn;
    unpolled.sharding.shards = 64;
  }
  CancelToken token;  // never fired: every poll takes the not-stopped path
  SynopsisRequest polled = unpolled;
  polled.deadline = Deadline::After(3600.0);
  polled.cancel = &token;

  auto run = [&](const SynopsisRequest& request) {
    auto start = std::chrono::steady_clock::now();
    auto result = engine.Build(input, request);
    PROBSYN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  double unpolled_seconds = 0.0;
  double polled_seconds = 0.0;
  bool polled_first = false;
  for (auto _ : state) {
    if (polled_first) {
      polled_seconds += run(polled);
      unpolled_seconds += run(unpolled);
    } else {
      unpolled_seconds += run(unpolled);
      polled_seconds += run(polled);
    }
    polled_first = !polled_first;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = 64.0;
  state.counters["overhead"] =
      unpolled_seconds > 0.0 ? polled_seconds / unpolled_seconds - 1.0 : 0.0;
}

void BM_PollOverheadExactDp(benchmark::State& state) {
  RunPollOverhead(state, /*sharded=*/false);
}

void BM_PollOverheadSharded(benchmark::State& state) {
  RunPollOverhead(state, /*sharded=*/true);
}

}  // namespace
}  // namespace probsyn

BENCHMARK(probsyn::BM_ExactDp)
    ->Args({1024, 1, 0})
    ->Args({1024, 1, 1})
    ->Args({4096, 1, 0})
    ->Args({4096, 1, 1})
    ->Args({4096, 2, 1})
    ->Args({4096, 4, 1})
    ->Args({4096, 8, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_ExactDpMaxCombiner)
    ->Args({4096, 1, 0})
    ->Args({4096, 1, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_EngineSweep)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_ApproxDpSse)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_ApproxDpSae)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_WaveletRestrictedDpMae)
    ->Args({128, 64, 0})
    ->Args({128, 64, 1})
    ->Args({1024, 64, 0})
    ->Args({1024, 64, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_WaveletRestrictedDpSae)
    ->Args({1024, 64, 0})
    ->Args({1024, 64, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_WaveletRestrictedDpParallelMae)
    ->Args({1024, 64, 1})
    ->Args({1024, 64, 2})
    ->Args({1024, 64, 4})
    ->Args({1024, 64, 8})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_WaveletRestrictedDpParallelSae)
    ->Args({1024, 64, 1})
    ->Args({1024, 64, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_StreamingMerge)
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_StreamingPushLatency)
    ->Args({20000, 32, 0})
    ->Args({20000, 32, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_Guillotine2dDp)
    ->Args({12, 0})
    ->Args({12, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_WaveletUnrestrictedDpMae)
    ->Args({256, 128, 0})
    ->Args({256, 128, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_WaveletUnrestrictedDpSse)
    ->Args({256, 128, 0})
    ->Args({256, 128, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_ExactDpSaeWarmSweep)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// (k) {n, S, threads}. S = 1 is the unsharded baseline; every row is one
// iteration because the large solves run seconds each. Rows that would
// only repeat a seconds-long measurement are deliberately absent so the
// committed series stays affordable in CI: S = 1 at n = 1e6 would run
// minutes (extrapolate from the n = 1e5 baseline, see docs/benchmarks.md);
// S = 4 threaded rows repeat a ~28 s solve whose per-shard cap clamps to
// nearly the whole budget (no work reduction to parallelize); n = 1e6
// S = 16 runs ~36 s, so only the threads = 1 feasibility row is kept.
BENCHMARK(probsyn::BM_ShardedConstruction)
    ->Args({100000, 1, 1})
    ->Args({100000, 4, 1})
    ->Args({100000, 16, 1})
    ->Args({100000, 16, 4})
    ->Args({100000, 16, 8})
    ->Args({100000, 64, 1})
    ->Args({100000, 64, 4})
    ->Args({100000, 64, 8})
    ->Args({1000000, 16, 1})
    ->Args({1000000, 64, 1})
    ->Args({1000000, 64, 4})
    ->Args({1000000, 64, 8})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_ShardedConstructionExact)
    ->Args({100000, 64, 1})
    ->Args({100000, 64, 4})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// (l) The exact-DP point is the kernel acceptance size (~180 ms/build);
// the sharded point is the 64-shard n = 1e5 row (~15 ms/build). Each
// iteration times one unpolled + one polled build back to back (order
// alternating) and reports the drift-free ratio in the `overhead`
// counter; repetitions give the checker a median-of-5 (single-core boxes
// show ±3% run-to-run drift, so one repetition cannot carry the bound).
BENCHMARK(probsyn::BM_PollOverheadExactDp)
    ->Arg(4096)
    ->MinTime(2.0)
    ->Repetitions(5)
    ->ReportAggregatesOnly(false)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(probsyn::BM_PollOverheadSharded)
    ->Arg(100000)
    ->MinTime(2.0)
    ->Repetitions(5)
    ->ReportAggregatesOnly(false)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
