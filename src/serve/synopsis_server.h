#ifndef PROBSYN_SERVE_SYNOPSIS_SERVER_H_
#define PROBSYN_SERVE_SYNOPSIS_SERVER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/histogram.h"
#include "core/wavelet.h"
#include "serve/synopsis_store.h"
#include "util/status.h"

namespace probsyn {

/// One synopsis decoded out of a store and laid out for query answering:
/// flat boundary/representative arrays for histograms, sorted coefficient
/// arrays plus a cached top-|value| ranking and reconstructed frequency
/// vector for wavelets. Immutable after construction, so any number of
/// reader threads may query one instance concurrently without locking.
///
/// Answer contract: every query is BITWISE-equal to evaluating the same
/// query on the construction-side object (Histogram::Estimate /
/// EstimateRangeSum, WaveletSynopsis::Estimate / EstimateRangeSum) — the
/// serving tier replays the same arithmetic in the same order over the
/// round-tripped doubles, a property the 200-case differential sweep in
/// tests/synopsis_server_test.cc pins across SIMD dispatch modes. The
/// hot-path accessors below skip per-call validation (bounds are DCHECKed);
/// the SynopsisServer wrappers validate and return Status instead.
class ServedSynopsis {
 public:
  /// Builds the serving layout from a decoded blob.
  explicit ServedSynopsis(DecodedSynopsis decoded);

  SynopsisBlobKind kind() const { return kind_; }
  /// Domain size n the synopsis answers queries over.
  std::size_t domain_size() const { return domain_size_; }
  /// Retained coefficient count (0 for histograms).
  std::size_t num_coefficients() const { return coeff_values_.size(); }
  /// Bucket count (0 for wavelets).
  std::size_t num_buckets() const { return bucket_reps_.size(); }

  /// ghat_i. O(log B) for histograms, O(log n log B) for wavelets.
  /// Precondition: i < domain_size().
  double PointEstimate(std::size_t i) const;

  /// Estimate of sum_{i=a..b} g_i. Precondition: a <= b < domain_size().
  double RangeSum(std::size_t a, std::size_t b) const;

  /// RangeSum(a, b) / (b - a + 1).
  double RangeAverage(std::size_t a, std::size_t b) const {
    return RangeSum(a, b) / static_cast<double>(b - a + 1);
  }

  /// The k largest-magnitude retained coefficients, ordered by |value|
  /// descending with index-ascending ties (clamped to the retained count).
  /// O(k) — the ranking is precomputed. Wavelets only (empty otherwise).
  std::vector<WaveletCoefficient> TopCoefficients(std::size_t k) const;

 private:
  SynopsisBlobKind kind_;
  std::size_t domain_size_ = 0;

  // Histogram layout: bucket ends (ascending) + representatives.
  std::vector<std::size_t> bucket_ends_;
  std::vector<double> bucket_reps_;

  // Wavelet layout: coefficients sorted by index, the |value| ranking, and
  // the reconstructed frequency vector backing range queries.
  std::size_t transform_size_ = 0;
  std::vector<std::size_t> coeff_indices_;
  std::vector<double> coeff_values_;
  std::vector<std::size_t> magnitude_order_;
  std::vector<double> frequencies_;
};

/// The query tier over a synopsis store: maps the file, decodes (and
/// checksum-verifies) every blob once at Open, then answers point/range/
/// top-k queries with no per-query allocation or I/O. All methods are
/// const and the server is immutable after Open — concurrent readers need
/// no synchronization, which the SynopsisServerConcurrent tests pin under
/// TSan.
///
/// For sub-microsecond hot paths, resolve the name once with Find and
/// query the ServedSynopsis directly (the name-keyed wrappers below add
/// one hash lookup and Status boxing per call).
class SynopsisServer {
 public:
  /// Opens the store at `path` and decodes every synopsis. Fails (with the
  /// store's or codec's Status) on any corrupt entry — a server never
  /// comes up partially.
  static StatusOr<SynopsisServer> Open(const std::string& path);

  /// Decodes every synopsis of an already-opened store.
  static StatusOr<SynopsisServer> FromStore(SynopsisStore store);

  /// Number of served synopses.
  std::size_t size() const { return served_.size(); }

  /// All served names, sorted.
  std::vector<std::string> Names() const { return store_.Names(); }

  /// The underlying mapped store (raw blob access, directory metadata).
  const SynopsisStore& store() const { return store_; }

  /// Handle lookup for hot paths; nullptr when the name is not served.
  const ServedSynopsis* Find(const std::string& name) const;

  /// ghat_i from synopsis `name`; kNotFound / kOutOfRange on bad input.
  StatusOr<double> PointEstimate(const std::string& name,
                                 std::size_t i) const;

  /// Estimate of sum_{i=a..b} g_i from synopsis `name`.
  StatusOr<double> RangeSum(const std::string& name, std::size_t a,
                            std::size_t b) const;

  /// RangeSum / item count.
  StatusOr<double> RangeAverage(const std::string& name, std::size_t a,
                                std::size_t b) const;

  /// The k largest-magnitude coefficients of wavelet synopsis `name`;
  /// kInvalidArgument when `name` is a histogram.
  StatusOr<std::vector<WaveletCoefficient>> TopCoefficients(
      const std::string& name, std::size_t k) const;

 private:
  SynopsisServer(SynopsisStore store,
                 std::unordered_map<std::string, ServedSynopsis> served)
      : store_(std::move(store)), served_(std::move(served)) {}

  StatusOr<const ServedSynopsis*> FindChecked(const std::string& name) const;

  SynopsisStore store_;
  std::unordered_map<std::string, ServedSynopsis> served_;
};

}  // namespace probsyn

#endif  // PROBSYN_SERVE_SYNOPSIS_SERVER_H_
