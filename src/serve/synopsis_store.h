#ifndef PROBSYN_SERVE_SYNOPSIS_STORE_H_
#define PROBSYN_SERVE_SYNOPSIS_STORE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/synopsis_codec.h"
#include "util/status.h"

namespace probsyn {

/// A read-mostly, memory-mapped store of many named synopsis blobs — the
/// persistence layer between construction (SynopsisEngine::Build) and
/// serving (SynopsisServer). Write once with SynopsisStoreWriter, then any
/// number of processes map the file and read concurrently: the mapping is
/// PROT_READ and the store is immutable after Open, so every accessor is
/// safe from any thread with no locking.
///
/// File layout (integers little-endian):
///
///   offset 0   magic "PSYNSTOR" (8 bytes)
///          8   store version (u32, currently 1)
///         12   entry count (u32)
///         16   directory offset (u64)
///         24   directory size in bytes (u64)
///         32   blob region: the entries' codec blobs (io/synopsis_codec.h),
///              each 8-byte aligned, zero padding between
///         dir  directory: per entry, varint name length, name bytes,
///              u8 kind, u64 blob offset, u64 blob size — entries sorted
///              by name
///        last  8 bytes: FNV-1a 64 checksum over the 32-byte header plus
///              the directory bytes
///
/// The header + directory are checksum-verified at Open (blob bodies carry
/// their own per-blob checksums, verified when a blob is decoded), the
/// directory is hashed into an in-memory index, and lookups are O(1)
/// average from then on. RawBlob returns a zero-copy view directly into
/// the mapping — no bytes are touched until a caller reads them, so
/// opening a store of thousands of synopses is O(directory), not O(file).
class SynopsisStore {
 public:
  /// One directory entry: where a named blob lives in the mapping.
  struct Entry {
    SynopsisBlobKind kind = SynopsisBlobKind::kHistogram;
    std::uint64_t offset = 0;  ///< Byte offset of the blob in the file.
    std::uint64_t size = 0;    ///< Blob size in bytes.
  };

  /// Maps `path` read-only and verifies the header + directory. Fails with
  /// kIOError on filesystem errors or checksum mismatch, kInvalidArgument
  /// on structural corruption; passes the FaultSite::kPdataRead injection
  /// site so the fault campaigns cover the serving read path.
  static StatusOr<SynopsisStore> Open(const std::string& path);

  SynopsisStore(SynopsisStore&& other) noexcept;
  SynopsisStore& operator=(SynopsisStore&& other) noexcept;
  SynopsisStore(const SynopsisStore&) = delete;
  SynopsisStore& operator=(const SynopsisStore&) = delete;
  ~SynopsisStore();

  /// Number of stored synopses.
  std::size_t size() const { return index_.size(); }

  /// True when `name` is stored.
  bool Contains(const std::string& name) const {
    return index_.find(name) != index_.end();
  }

  /// Directory lookup; kNotFound when the name is not stored. O(1) average.
  StatusOr<Entry> Find(const std::string& name) const;

  /// Zero-copy view of `name`'s codec blob inside the mapping, valid for
  /// the lifetime of this store. The blob is NOT checksum-verified here —
  /// decode it (io/synopsis_codec.h) to validate; kNotFound on a missing
  /// name.
  StatusOr<std::span<const std::uint8_t>> RawBlob(
      const std::string& name) const;

  /// All stored names, sorted.
  std::vector<std::string> Names() const;

  /// The whole mapped file (for observability and tests).
  std::span<const std::uint8_t> data() const {
    return {static_cast<const std::uint8_t*>(mapping_), mapped_size_};
  }

 private:
  SynopsisStore() = default;

  void* mapping_ = nullptr;  // null only for a moved-from store
  std::size_t mapped_size_ = 0;
  std::unordered_map<std::string, Entry> index_;
};

/// Accumulates named synopses and writes them as one store file. Typical
/// use is through SynopsisEngine::Store, which encodes build results; use
/// the writer directly to store pre-encoded blobs.
class SynopsisStoreWriter {
 public:
  /// Adds an already-encoded codec blob under `name`. Fails with
  /// kInvalidArgument on a malformed blob header or empty name,
  /// kFailedPrecondition on a duplicate name.
  Status Add(const std::string& name, std::string blob);

  /// Encodes `histogram` and adds it under `name`.
  Status AddHistogram(const std::string& name, const Histogram& histogram);

  /// Encodes `synopsis` and adds it under `name`.
  Status AddWavelet(const std::string& name, const WaveletSynopsis& synopsis);

  /// Number of entries added so far.
  std::size_t size() const { return entries_.size(); }

  /// Writes the store file (see the layout above) atomically enough for
  /// the read side: the file is complete when WriteFile returns OK. A
  /// store with zero entries is valid (it serves nothing).
  Status WriteFile(const std::string& path) const;

 private:
  // Sorted by name so the directory (and therefore the file bytes) are
  // deterministic regardless of Add order.
  std::map<std::string, std::string> entries_;
};

}  // namespace probsyn

#endif  // PROBSYN_SERVE_SYNOPSIS_STORE_H_
