#include "serve/synopsis_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/fault_injection.h"

namespace probsyn {

namespace {

constexpr char kStoreMagic[8] = {'P', 'S', 'Y', 'N', 'S', 'T', 'O', 'R'};
constexpr std::uint32_t kStoreVersion = 1;
constexpr std::size_t kStoreHeaderBytes = 32;
constexpr std::size_t kStoreChecksumBytes = 8;
// Declared entry counts above this are treated as corruption (the index
// preallocates by the count; see the matching cap in the codec).
constexpr std::uint32_t kMaxEntries = 1u << 22;

std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

void AppendVarint(std::uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t ReadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

Status CorruptStore(const std::string& what) {
  return Status::InvalidArgument("corrupt synopsis store: " + what);
}

}  // namespace

StatusOr<SynopsisStore> SynopsisStore::Open(const std::string& path) {
  PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kPdataRead));
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + std::strerror(err));
  }
  const std::size_t file_size = static_cast<std::size_t>(st.st_size);
  if (file_size < kStoreHeaderBytes + kStoreChecksumBytes) {
    ::close(fd);
    return Status::IOError("store file truncated: " +
                           std::to_string(file_size) + " bytes");
  }
  void* mapping = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap of " + path + " failed: " +
                           std::strerror(errno));
  }

  SynopsisStore store;
  store.mapping_ = mapping;
  store.mapped_size_ = file_size;
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(mapping);

  if (std::memcmp(bytes, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return CorruptStore("bad magic");
  }
  if (ReadU32(bytes + 8) != kStoreVersion) {
    return CorruptStore("unsupported version " +
                        std::to_string(ReadU32(bytes + 8)));
  }
  const std::uint32_t count = ReadU32(bytes + 12);
  const std::uint64_t dir_offset = ReadU64(bytes + 16);
  const std::uint64_t dir_size = ReadU64(bytes + 24);
  if (count > kMaxEntries) {
    return CorruptStore("entry count " + std::to_string(count) +
                        " exceeds the sanity cap");
  }
  if (dir_offset < kStoreHeaderBytes || dir_offset > file_size ||
      dir_size > file_size - dir_offset ||
      dir_offset + dir_size + kStoreChecksumBytes != file_size) {
    return CorruptStore("directory bounds outside the file");
  }
  // Checksum covers header + directory; blob bodies carry their own.
  std::uint64_t expected =
      Fnv1a64(bytes, kStoreHeaderBytes) * 1099511628211ull ^
      Fnv1a64(bytes + dir_offset, dir_size);
  if (ReadU64(bytes + dir_offset + dir_size) != expected) {
    return Status::IOError(
        "store header/directory checksum mismatch (corrupt store)");
  }

  // Parse the directory into the O(1) name -> entry index.
  const std::uint8_t* dir = bytes + dir_offset;
  std::size_t pos = 0;
  store.index_.reserve(count);
  std::string previous_name;
  for (std::uint32_t k = 0; k < count; ++k) {
    std::uint64_t name_len = 0;
    unsigned shift = 0;
    for (;;) {
      if (pos >= dir_size) return CorruptStore("directory truncated");
      std::uint8_t byte = dir[pos++];
      name_len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) return CorruptStore("name length varint overflow");
    }
    if (name_len == 0 || name_len > dir_size - pos) {
      return CorruptStore("entry name overruns the directory");
    }
    std::string name(reinterpret_cast<const char*>(dir + pos), name_len);
    pos += name_len;
    if (dir_size - pos < 1 + 8 + 8) return CorruptStore("directory truncated");
    Entry entry;
    std::uint8_t kind = dir[pos++];
    if (kind != static_cast<std::uint8_t>(SynopsisBlobKind::kHistogram) &&
        kind != static_cast<std::uint8_t>(SynopsisBlobKind::kWavelet)) {
      return CorruptStore("unknown entry kind " + std::to_string(kind));
    }
    entry.kind = static_cast<SynopsisBlobKind>(kind);
    entry.offset = ReadU64(dir + pos);
    pos += 8;
    entry.size = ReadU64(dir + pos);
    pos += 8;
    if (entry.offset < kStoreHeaderBytes || entry.offset % 8 != 0 ||
        entry.offset > dir_offset || entry.size > dir_offset - entry.offset) {
      return CorruptStore("entry '" + name + "' outside the blob region");
    }
    if (k > 0 && name <= previous_name) {
      return CorruptStore("directory names not strictly sorted");
    }
    previous_name = std::move(name);
    store.index_.emplace(previous_name, entry);
  }
  if (pos != dir_size) return CorruptStore("trailing directory bytes");
  return store;
}

SynopsisStore::SynopsisStore(SynopsisStore&& other) noexcept
    : mapping_(other.mapping_),
      mapped_size_(other.mapped_size_),
      index_(std::move(other.index_)) {
  other.mapping_ = nullptr;
  other.mapped_size_ = 0;
}

SynopsisStore& SynopsisStore::operator=(SynopsisStore&& other) noexcept {
  if (this != &other) {
    if (mapping_ != nullptr) ::munmap(mapping_, mapped_size_);
    mapping_ = other.mapping_;
    mapped_size_ = other.mapped_size_;
    index_ = std::move(other.index_);
    other.mapping_ = nullptr;
    other.mapped_size_ = 0;
  }
  return *this;
}

SynopsisStore::~SynopsisStore() {
  if (mapping_ != nullptr) ::munmap(mapping_, mapped_size_);
}

StatusOr<SynopsisStore::Entry> SynopsisStore::Find(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no synopsis named '" + name + "' in the store");
  }
  return it->second;
}

StatusOr<std::span<const std::uint8_t>> SynopsisStore::RawBlob(
    const std::string& name) const {
  PROBSYN_ASSIGN_OR_RETURN(Entry entry, Find(name));
  return data().subspan(entry.offset, entry.size);
}

std::vector<std::string> SynopsisStore::Names() const {
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const auto& [name, entry] : index_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SynopsisStoreWriter::Add(const std::string& name, std::string blob) {
  if (name.empty()) {
    return Status::InvalidArgument("synopsis name must be nonempty");
  }
  PROBSYN_RETURN_IF_ERROR(
      PeekSynopsisBlobKind(
          {reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()})
          .status());
  if (entries_.find(name) != entries_.end()) {
    return Status::FailedPrecondition("duplicate synopsis name '" + name +
                                      "'");
  }
  entries_.emplace(name, std::move(blob));
  return Status::OK();
}

Status SynopsisStoreWriter::AddHistogram(const std::string& name,
                                         const Histogram& histogram) {
  PROBSYN_ASSIGN_OR_RETURN(std::string blob, EncodeHistogram(histogram));
  return Add(name, std::move(blob));
}

Status SynopsisStoreWriter::AddWavelet(const std::string& name,
                                       const WaveletSynopsis& synopsis) {
  PROBSYN_ASSIGN_OR_RETURN(std::string blob, EncodeWavelet(synopsis));
  return Add(name, std::move(blob));
}

Status SynopsisStoreWriter::WriteFile(const std::string& path) const {
  // Lay out the blob region: 8-byte aligned blobs in name order.
  std::string file;
  file.reserve(kStoreHeaderBytes + 64 * entries_.size());
  file.append(kStoreMagic, sizeof(kStoreMagic));
  AppendU32(kStoreVersion, &file);
  AppendU32(static_cast<std::uint32_t>(entries_.size()), &file);
  AppendU64(0, &file);  // directory offset, patched below
  AppendU64(0, &file);  // directory size, patched below

  struct Placed {
    const std::string* name;
    SynopsisBlobKind kind;
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::vector<Placed> placed;
  placed.reserve(entries_.size());
  for (const auto& [name, blob] : entries_) {
    while (file.size() % 8 != 0) file.push_back(0);
    auto kind = PeekSynopsisBlobKind(
        {reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()});
    PROBSYN_RETURN_IF_ERROR(kind.status());  // re-checked: Add validated it
    placed.push_back({&name, *kind, file.size(), blob.size()});
    file.append(blob);
  }

  const std::uint64_t dir_offset = file.size();
  std::string directory;
  for (const Placed& p : placed) {
    AppendVarint(p.name->size(), &directory);
    directory.append(*p.name);
    directory.push_back(static_cast<char>(p.kind));
    AppendU64(p.offset, &directory);
    AppendU64(p.size, &directory);
  }
  // Patch the header now that the layout is known, then checksum
  // header + directory (the same combination Open verifies).
  std::string header_patch;
  AppendU64(dir_offset, &header_patch);
  AppendU64(directory.size(), &header_patch);
  file.replace(16, 16, header_patch);
  file.append(directory);
  std::uint64_t checksum =
      Fnv1a64(reinterpret_cast<const std::uint8_t*>(file.data()),
              kStoreHeaderBytes) *
          1099511628211ull ^
      Fnv1a64(reinterpret_cast<const std::uint8_t*>(file.data()) + dir_offset,
              directory.size());
  AppendU64(checksum, &file);

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  os.write(file.data(), static_cast<std::streamsize>(file.size()));
  os.flush();
  if (!os) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace probsyn
