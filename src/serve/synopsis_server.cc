#include "serve/synopsis_server.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/haar.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

ServedSynopsis::ServedSynopsis(DecodedSynopsis decoded)
    : kind_(decoded.kind) {
  if (kind_ == SynopsisBlobKind::kHistogram) {
    const auto& buckets = decoded.histogram.buckets();
    domain_size_ = decoded.histogram.domain_size();
    bucket_ends_.reserve(buckets.size());
    bucket_reps_.reserve(buckets.size());
    for (const HistogramBucket& b : buckets) {
      bucket_ends_.push_back(b.end);
      bucket_reps_.push_back(b.representative);
    }
    return;
  }
  domain_size_ = decoded.wavelet.domain_size();
  transform_size_ = decoded.wavelet.transform_size();
  const auto& coeffs = decoded.wavelet.coefficients();
  coeff_indices_.reserve(coeffs.size());
  coeff_values_.reserve(coeffs.size());
  for (const WaveletCoefficient& c : coeffs) {
    coeff_indices_.push_back(c.index);
    coeff_values_.push_back(c.value);
  }
  // Precompute the |value|-desc / index-asc ranking (the same order the
  // greedy builder uses) so TopCoefficients is O(k) per query.
  magnitude_order_.resize(coeff_values_.size());
  std::iota(magnitude_order_.begin(), magnitude_order_.end(), std::size_t{0});
  std::sort(magnitude_order_.begin(), magnitude_order_.end(),
            [this](std::size_t a, std::size_t b) {
              double fa = std::fabs(coeff_values_[a]);
              double fb = std::fabs(coeff_values_[b]);
              if (fa != fb) return fa > fb;
              return coeff_indices_[a] < coeff_indices_[b];
            });
  // Cache the frequency vector through the exact construction-side path
  // (sparse fill + HaarInverse) so range sums are bitwise-equal to
  // WaveletSynopsis::EstimateRangeSum.
  frequencies_ = decoded.wavelet.ToFrequencyVector();
}

double ServedSynopsis::PointEstimate(std::size_t i) const {
  PROBSYN_DCHECK(i < domain_size_);
  if (kind_ == SynopsisBlobKind::kHistogram) {
    auto it = std::lower_bound(bucket_ends_.begin(), bucket_ends_.end(), i);
    return bucket_reps_[static_cast<std::size_t>(it - bucket_ends_.begin())];
  }
  return ReconstructPointSparse(coeff_indices_, coeff_values_, i,
                                transform_size_);
}

double ServedSynopsis::RangeSum(std::size_t a, std::size_t b) const {
  PROBSYN_DCHECK(a <= b && b < domain_size_);
  if (kind_ == SynopsisBlobKind::kHistogram) {
    // Mirrors Histogram::EstimateRangeSum operation-for-operation (bucket
    // starts are implied by the partition: start_k = end_{k-1} + 1).
    double total = 0.0;
    auto it = std::lower_bound(bucket_ends_.begin(), bucket_ends_.end(), a);
    for (std::size_t k = static_cast<std::size_t>(it - bucket_ends_.begin());
         k < bucket_ends_.size(); ++k) {
      std::size_t start = k == 0 ? 0 : bucket_ends_[k - 1] + 1;
      if (start > b) break;
      std::size_t lo = std::max(a, start);
      std::size_t hi = std::min(b, bucket_ends_[k]);
      total += static_cast<double>(hi - lo + 1) * bucket_reps_[k];
    }
    return total;
  }
  KahanSum sum;
  for (std::size_t i = a; i <= b; ++i) sum.Add(frequencies_[i]);
  return sum.value();
}

std::vector<WaveletCoefficient> ServedSynopsis::TopCoefficients(
    std::size_t k) const {
  std::vector<WaveletCoefficient> top;
  std::size_t take = std::min(k, magnitude_order_.size());
  top.reserve(take);
  for (std::size_t r = 0; r < take; ++r) {
    std::size_t slot = magnitude_order_[r];
    top.push_back({coeff_indices_[slot], coeff_values_[slot]});
  }
  return top;
}

StatusOr<SynopsisServer> SynopsisServer::Open(const std::string& path) {
  PROBSYN_ASSIGN_OR_RETURN(SynopsisStore store, SynopsisStore::Open(path));
  return FromStore(std::move(store));
}

StatusOr<SynopsisServer> SynopsisServer::FromStore(SynopsisStore store) {
  std::unordered_map<std::string, ServedSynopsis> served;
  served.reserve(store.size());
  for (const std::string& name : store.Names()) {
    PROBSYN_ASSIGN_OR_RETURN(std::span<const std::uint8_t> blob,
                             store.RawBlob(name));
    PROBSYN_ASSIGN_OR_RETURN(DecodedSynopsis decoded, DecodeSynopsis(blob));
    served.emplace(name, ServedSynopsis(std::move(decoded)));
  }
  return SynopsisServer(std::move(store), std::move(served));
}

const ServedSynopsis* SynopsisServer::Find(const std::string& name) const {
  auto it = served_.find(name);
  return it == served_.end() ? nullptr : &it->second;
}

StatusOr<const ServedSynopsis*> SynopsisServer::FindChecked(
    const std::string& name) const {
  const ServedSynopsis* synopsis = Find(name);
  if (synopsis == nullptr) {
    return Status::NotFound("no synopsis named '" + name + "' is served");
  }
  return synopsis;
}

StatusOr<double> SynopsisServer::PointEstimate(const std::string& name,
                                               std::size_t i) const {
  PROBSYN_ASSIGN_OR_RETURN(const ServedSynopsis* synopsis, FindChecked(name));
  if (i >= synopsis->domain_size()) {
    return Status::OutOfRange("point " + std::to_string(i) +
                              " outside domain of size " +
                              std::to_string(synopsis->domain_size()));
  }
  return synopsis->PointEstimate(i);
}

StatusOr<double> SynopsisServer::RangeSum(const std::string& name,
                                          std::size_t a, std::size_t b) const {
  PROBSYN_ASSIGN_OR_RETURN(const ServedSynopsis* synopsis, FindChecked(name));
  if (a > b || b >= synopsis->domain_size()) {
    return Status::OutOfRange(
        "range [" + std::to_string(a) + ", " + std::to_string(b) +
        "] invalid for domain of size " +
        std::to_string(synopsis->domain_size()));
  }
  return synopsis->RangeSum(a, b);
}

StatusOr<double> SynopsisServer::RangeAverage(const std::string& name,
                                              std::size_t a,
                                              std::size_t b) const {
  PROBSYN_ASSIGN_OR_RETURN(double sum, RangeSum(name, a, b));
  return sum / static_cast<double>(b - a + 1);
}

StatusOr<std::vector<WaveletCoefficient>> SynopsisServer::TopCoefficients(
    const std::string& name, std::size_t k) const {
  PROBSYN_ASSIGN_OR_RETURN(const ServedSynopsis* synopsis, FindChecked(name));
  if (synopsis->kind() != SynopsisBlobKind::kWavelet) {
    return Status::InvalidArgument("synopsis '" + name +
                                   "' is not a wavelet synopsis");
  }
  return synopsis->TopCoefficients(k);
}

}  // namespace probsyn
