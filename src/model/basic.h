#ifndef PROBSYN_MODEL_BASIC_H_
#define PROBSYN_MODEL_BASIC_H_

#include <cstddef>
#include <vector>

#include "model/tuple_pdf.h"
#include "util/status.h"

namespace probsyn {

/// One tuple of the basic model (paper Definition 1): item t_j exists in a
/// possible world independently with probability p_j.
struct BasicTuple {
  std::size_t item = 0;
  double probability = 0.0;

  friend bool operator==(const BasicTuple&, const BasicTuple&) = default;
};

/// Basic-model input: a bag of independent existence tuples over [n].
/// Several tuples may reference the same item, in which case that item's
/// frequency is the number of its tuples that materialize (a
/// Poisson-binomial variable). The basic model is a special case of both
/// richer models (paper section 2.1); ToTuplePdf() realizes the embedding.
class BasicModelInput {
 public:
  BasicModelInput() = default;
  BasicModelInput(std::size_t domain_size, std::vector<BasicTuple> tuples)
      : domain_size_(domain_size), tuples_(std::move(tuples)) {}

  std::size_t domain_size() const { return domain_size_; }
  const std::vector<BasicTuple>& tuples() const { return tuples_; }
  std::size_t num_tuples() const { return tuples_.size(); }

  Status Validate() const;

  /// Embeds into the tuple-pdf model: each basic tuple becomes a
  /// single-alternative probabilistic tuple.
  StatusOr<TuplePdfInput> ToTuplePdf() const;

 private:
  std::size_t domain_size_ = 0;
  std::vector<BasicTuple> tuples_;
};

}  // namespace probsyn

#endif  // PROBSYN_MODEL_BASIC_H_
