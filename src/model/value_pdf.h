#ifndef PROBSYN_MODEL_VALUE_PDF_H_
#define PROBSYN_MODEL_VALUE_PDF_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace probsyn {

/// One (frequency value, probability) pair of a value-pdf entry
/// (paper Definition 3: the tuple `(f_ij, p_ij)`).
struct ValueProb {
  double value = 0.0;
  double probability = 0.0;

  friend bool operator==(const ValueProb&, const ValueProb&) = default;
};

/// Discrete pdf of one item's frequency random variable g_i.
///
/// Invariants (established by Normalize(), checked by Validate()):
///   * entries are sorted by strictly increasing `value`;
///   * probabilities are in (0, 1] and sum to exactly 1 after the implicit
///     zero-frequency remainder mass has been materialized (Definition 3:
///     "If probabilities in a tuple sum to less than one, the remainder is
///     taken to implicitly specify the probability that the frequency is
///     zero");
///   * values are nonnegative (frequencies).
class ValuePdf {
 public:
  ValuePdf() = default;

  /// Builds from raw (value, probability) pairs in any order; duplicates
  /// are merged, the zero remainder is materialized. Fails if probabilities
  /// are negative or sum to more than 1 + epsilon.
  static StatusOr<ValuePdf> Create(std::vector<ValueProb> entries);

  /// A deterministic item with known frequency v (probability-1 point mass).
  /// This is how deterministic data enters the library (paper section 5:
  /// "deterministic data can be interpreted as probabilistic data in the
  /// value pdf model with probability 1 of attaining a certain frequency").
  static ValuePdf PointMass(double value);

  const std::vector<ValueProb>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// E[g_i].
  double Mean() const;
  /// E[g_i^2].
  double SecondMoment() const;
  /// Var[g_i] (clamped against tiny negative fp drift).
  double Variance() const;

  /// Pr[g_i = v] (exact value match; 0 if v is not a support point).
  double ProbEquals(double v) const;
  /// Pr[g_i <= v].
  double ProbAtMost(double v) const;
  /// Pr[g_i > v].
  double ProbGreater(double v) const { return 1.0 - ProbAtMost(v); }

  /// E[|g_i - a|]; the per-item absolute-error integrand of section 3.3.
  double ExpectedAbsDeviation(double a) const;
  /// E[(g_i - a)^2].
  double ExpectedSquaredDeviation(double a) const;
  /// E[|g_i - a| / max(c, g_i)]; per-item relative-error integrand (3.4).
  double ExpectedRelDeviation(double a, double c) const;
  /// E[(g_i - a)^2 / max(c^2, g_i^2)]; squared-relative integrand (3.2).
  double ExpectedSquaredRelDeviation(double a, double c) const;

  /// Deep equality on the normalized representation.
  friend bool operator==(const ValuePdf&, const ValuePdf&) = default;

 private:
  std::vector<ValueProb> entries_;
};

/// Value-pdf model input (paper Definition 3): one independent frequency
/// pdf per item of the ordered domain [n] = {0..n-1}.
class ValuePdfInput {
 public:
  ValuePdfInput() = default;
  explicit ValuePdfInput(std::vector<ValuePdf> items)
      : items_(std::move(items)) {}

  /// Domain size n.
  std::size_t domain_size() const { return items_.size(); }
  const std::vector<ValuePdf>& items() const { return items_; }
  const ValuePdf& item(std::size_t i) const { return items_[i]; }

  /// Total number of (value, probability) pairs (the paper's m).
  std::size_t total_pairs() const;

  /// Checks all per-item invariants; returns first violation.
  Status Validate() const;

  /// The global sorted value set V (union of all support points, always
  /// including 0) used to index the P/P* tables of sections 3.3-3.6.
  std::vector<double> ValueGrid() const;

  /// Per-item expected frequencies E[g_i] (the "expectation" baseline's
  /// deterministic input, and the wavelet mu vector of section 4.1).
  std::vector<double> ExpectedFrequencies() const;
  /// Per-item Var[g_i].
  std::vector<double> FrequencyVariances() const;
  /// Per-item E[g_i^2].
  std::vector<double> FrequencySecondMoments() const;

 private:
  std::vector<ValuePdf> items_;
};

}  // namespace probsyn

#endif  // PROBSYN_MODEL_VALUE_PDF_H_
