#ifndef PROBSYN_MODEL_WORLDS_H_
#define PROBSYN_MODEL_WORLDS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "model/basic.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/random.h"
#include "util/status.h"

namespace probsyn {

/// One grounded possible world: the instantiated frequency vector and its
/// probability (paper section 2.1). Worlds with identical frequency vectors
/// arising from different tuple instantiations are NOT merged — expectations
/// are unaffected, and keeping them distinct matches Definition 1's coin-flip
/// semantics.
struct PossibleWorld {
  std::vector<double> frequencies;
  double probability = 0.0;
};

/// Exhaustive possible-world enumeration. Exponential by nature — this is
/// the library's ground-truth oracle for tests and tiny examples, never part
/// of synopsis construction. Enumeration aborts with OutOfRange once
/// `max_worlds` is exceeded.
StatusOr<std::vector<PossibleWorld>> EnumerateWorlds(
    const ValuePdfInput& input, std::size_t max_worlds = 1u << 22);
StatusOr<std::vector<PossibleWorld>> EnumerateWorlds(
    const TuplePdfInput& input, std::size_t max_worlds = 1u << 22);
StatusOr<std::vector<PossibleWorld>> EnumerateWorlds(
    const BasicModelInput& input, std::size_t max_worlds = 1u << 22);

/// E_W[f] = sum_W Pr[W] f(W) over the exhaustively enumerated worlds
/// (paper equation (1)).
double ExpectationOverWorlds(
    const std::vector<PossibleWorld>& worlds,
    const std::function<double(const std::vector<double>&)>& f);

/// Draws grounded worlds from value-pdf input: one categorical draw per
/// item. Used by the "Sampled World" baseline of section 5.
class ValuePdfWorldSampler {
 public:
  explicit ValuePdfWorldSampler(const ValuePdfInput& input);

  std::vector<double> Sample(Rng& rng) const;
  std::size_t domain_size() const { return samplers_.size(); }

 private:
  std::vector<AliasSampler> samplers_;
  std::vector<std::vector<double>> values_;  // per item, per entry
};

/// Draws grounded worlds from tuple-pdf input: one categorical draw per
/// tuple (alternatives plus "absent").
class TuplePdfWorldSampler {
 public:
  explicit TuplePdfWorldSampler(const TuplePdfInput& input);

  std::vector<double> Sample(Rng& rng) const;
  std::size_t domain_size() const { return domain_size_; }

 private:
  std::size_t domain_size_ = 0;
  std::vector<AliasSampler> samplers_;
  // Per tuple, per choice: target item, or kAbsent.
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> choice_items_;
};

}  // namespace probsyn

#endif  // PROBSYN_MODEL_WORLDS_H_
