#ifndef PROBSYN_MODEL_INDUCED_H_
#define PROBSYN_MODEL_INDUCED_H_

#include "model/basic.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// Builds the *induced* value pdf of tuple-pdf input (paper section 2.1):
/// for each item i, the exact marginal distribution of its frequency
/// g_i = #{tuples that instantiate to i}, a Poisson-binomial variable over
/// the tuples that mention i.
///
/// The induced pdfs are the correct per-item marginals but are NOT mutually
/// independent (a tuple with two alternatives anticorrelates its items).
/// All per-item-decomposable objectives — SSRE, SAE, SARE, MAE, MARE, and
/// the wavelet leaf errors — depend only on these marginals, so inducing is
/// lossless for them (sections 3.2-3.6, 4.2). Only the SSE bucket cost
/// needs the joint distribution; see SseTupleBucketOracle.
///
/// Cost: O(sum_i k_i^2) where k_i = number of tuples mentioning item i —
/// the paper's O(m |V|) since max_i k_i bounds |V|.
StatusOr<ValuePdfInput> InduceValuePdf(const TuplePdfInput& input);

/// Convenience overload: embeds the basic model into the tuple-pdf model
/// first (Definition 1 is the single-alternative special case).
StatusOr<ValuePdfInput> InduceValuePdf(const BasicModelInput& input);

/// Exact pdf of the number of successes among independent Bernoulli trials
/// with the given probabilities (entry k = Pr[k successes]). Exposed for
/// testing and for generator internals.
std::vector<double> PoissonBinomialPdf(std::span<const double> probs);

}  // namespace probsyn

#endif  // PROBSYN_MODEL_INDUCED_H_
