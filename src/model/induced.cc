#include "model/induced.h"

#include <vector>

namespace probsyn {

std::vector<double> PoissonBinomialPdf(std::span<const double> probs) {
  std::vector<double> pdf{1.0};  // Pr[0 successes] = 1 with no trials.
  pdf.reserve(probs.size() + 1);
  for (double p : probs) {
    pdf.push_back(0.0);
    // In-place convolution with (1-p, p), highest count first.
    for (std::size_t k = pdf.size() - 1; k > 0; --k) {
      pdf[k] = pdf[k] * (1.0 - p) + pdf[k - 1] * p;
    }
    pdf[0] *= (1.0 - p);
  }
  return pdf;
}

StatusOr<ValuePdfInput> InduceValuePdf(const TuplePdfInput& input) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  std::vector<std::vector<double>> per_item = input.PerItemTupleProbs();
  std::vector<ValuePdf> items;
  items.reserve(input.domain_size());
  for (std::size_t i = 0; i < input.domain_size(); ++i) {
    std::vector<double> counts = PoissonBinomialPdf(per_item[i]);
    std::vector<ValueProb> entries;
    entries.reserve(counts.size());
    for (std::size_t k = 0; k < counts.size(); ++k) {
      if (counts[k] > 0.0) {
        entries.push_back({static_cast<double>(k), counts[k]});
      }
    }
    auto pdf = ValuePdf::Create(std::move(entries));
    if (!pdf.ok()) return pdf.status();
    items.push_back(std::move(pdf).value());
  }
  return ValuePdfInput(std::move(items));
}

StatusOr<ValuePdfInput> InduceValuePdf(const BasicModelInput& input) {
  auto tuple_pdf = input.ToTuplePdf();
  if (!tuple_pdf.ok()) return tuple_pdf.status();
  return InduceValuePdf(tuple_pdf.value());
}

}  // namespace probsyn
