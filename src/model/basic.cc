#include "model/basic.h"

#include <string>

namespace probsyn {

Status BasicModelInput::Validate() const {
  for (std::size_t j = 0; j < tuples_.size(); ++j) {
    const BasicTuple& t = tuples_[j];
    if (t.item >= domain_size_) {
      return Status::OutOfRange("basic tuple " + std::to_string(j) +
                                " references item outside the domain");
    }
    if (!(t.probability > 0.0) || !(t.probability <= 1.0 + 1e-9)) {
      return Status::InvalidArgument("basic tuple " + std::to_string(j) +
                                     " probability out of (0,1]");
    }
  }
  return Status::OK();
}

StatusOr<TuplePdfInput> BasicModelInput::ToTuplePdf() const {
  PROBSYN_RETURN_IF_ERROR(Validate());
  std::vector<ProbTuple> tuples;
  tuples.reserve(tuples_.size());
  for (const BasicTuple& t : tuples_) {
    auto tuple = ProbTuple::Create({{t.item, t.probability}});
    if (!tuple.ok()) return tuple.status();
    tuples.push_back(std::move(tuple).value());
  }
  return TuplePdfInput(domain_size_, std::move(tuples));
}

}  // namespace probsyn
