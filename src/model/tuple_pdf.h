#ifndef PROBSYN_MODEL_TUPLE_PDF_H_
#define PROBSYN_MODEL_TUPLE_PDF_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace probsyn {

/// One alternative of a tuple-pdf row: "this row is item `item` with
/// probability `probability`" (paper Definition 2).
struct TupleAlternative {
  std::size_t item = 0;
  double probability = 0.0;

  friend bool operator==(const TupleAlternative&, const TupleAlternative&) =
      default;
};

/// One row of a tuple-pdf relation: a pdf over mutually exclusive item
/// alternatives whose probabilities sum to at most 1; the deficit is the
/// probability that the row contributes nothing to any possible world.
class ProbTuple {
 public:
  ProbTuple() = default;

  /// Builds from raw alternatives (any order); duplicates of the same item
  /// are merged. Fails on probabilities outside [0,1] or total > 1.
  static StatusOr<ProbTuple> Create(std::vector<TupleAlternative> alternatives);

  const std::vector<TupleAlternative>& alternatives() const {
    return alternatives_;
  }
  std::size_t size() const { return alternatives_.size(); }

  /// Pr[this tuple instantiates to item i].
  double ProbItem(std::size_t i) const;
  /// Pr[this tuple instantiates to an item <= e]. O(log size).
  double ProbItemAtMost(std::size_t e) const;
  /// Pr[s <= instantiated item <= e]. The q_t of DESIGN.md section 8.3.
  double ProbItemInRange(std::size_t s, std::size_t e) const;
  /// Pr[tuple contributes nothing] = 1 - sum of alternative probabilities.
  double ProbAbsent() const { return absent_; }

  /// Largest item index referenced (0 if empty).
  std::size_t MaxItem() const;

 private:
  // Sorted by item; cumulative_[k] = sum of probabilities of the first k
  // alternatives, enabling O(log) range probabilities.
  std::vector<TupleAlternative> alternatives_;
  std::vector<double> cumulative_;
  double absent_ = 1.0;
};

/// Tuple-pdf model input (paper Definition 2): a sequence of independent
/// rows over the ordered domain [n].
class TuplePdfInput {
 public:
  TuplePdfInput() = default;
  TuplePdfInput(std::size_t domain_size, std::vector<ProbTuple> tuples)
      : domain_size_(domain_size), tuples_(std::move(tuples)) {}

  std::size_t domain_size() const { return domain_size_; }
  const std::vector<ProbTuple>& tuples() const { return tuples_; }
  std::size_t num_tuples() const { return tuples_.size(); }

  /// Total number of (item, probability) pairs (the paper's m).
  std::size_t total_pairs() const;

  /// Checks domain bounds and per-tuple invariants.
  Status Validate() const;

  /// E[g_i] = sum_t Pr[t_j = i].
  std::vector<double> ExpectedFrequencies() const;
  /// Var[g_i] = sum_t Pr[t_j = i](1 - Pr[t_j = i]) (section 3.1: the
  /// variance of each g_i is the sum of variances arising from each tuple).
  std::vector<double> FrequencyVariances() const;
  /// E[g_i^2] = Var[g_i] + E[g_i]^2.
  std::vector<double> FrequencySecondMoments() const;

  /// For each item, the probabilities of the tuples that may produce it
  /// (the per-item Poisson-binomial parameters); used to build the induced
  /// value pdf.
  std::vector<std::vector<double>> PerItemTupleProbs() const;

 private:
  std::size_t domain_size_ = 0;
  std::vector<ProbTuple> tuples_;
};

}  // namespace probsyn

#endif  // PROBSYN_MODEL_TUPLE_PDF_H_
