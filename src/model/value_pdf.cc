#include "model/value_pdf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

namespace {

// Tolerance for "probabilities sum to at most 1". Generators produce exact
// rationals, but round-tripping through text serialization can add ulps.
constexpr double kProbSlack = 1e-9;

}  // namespace

StatusOr<ValuePdf> ValuePdf::Create(std::vector<ValueProb> entries) {
  double total = 0.0;
  for (const ValueProb& e : entries) {
    if (!(e.probability >= 0.0) || !(e.probability <= 1.0 + kProbSlack)) {
      return Status::InvalidArgument("value pdf probability out of [0,1]");
    }
    if (!(e.value >= 0.0) || !std::isfinite(e.value)) {
      return Status::InvalidArgument("value pdf frequency must be >= 0 and finite");
    }
    total += e.probability;
  }
  if (total > 1.0 + kProbSlack) {
    return Status::InvalidArgument("value pdf probabilities sum to more than 1");
  }

  std::sort(entries.begin(), entries.end(),
            [](const ValueProb& a, const ValueProb& b) { return a.value < b.value; });
  // Merge duplicate values, drop zero-probability entries.
  std::vector<ValueProb> merged;
  merged.reserve(entries.size() + 1);
  for (const ValueProb& e : entries) {
    if (e.probability <= 0.0) continue;
    if (!merged.empty() && merged.back().value == e.value) {
      merged.back().probability += e.probability;
    } else {
      merged.push_back(e);
    }
  }
  // Materialize the implicit zero-frequency remainder (Definition 3).
  double remainder = 1.0 - total;
  if (remainder > 0.0) {
    if (!merged.empty() && merged.front().value == 0.0) {
      merged.front().probability += remainder;
    } else {
      merged.insert(merged.begin(), ValueProb{0.0, remainder});
    }
  }
  // Renormalize away the slack so downstream sums are exact-ish.
  double mass = 0.0;
  for (const ValueProb& e : merged) mass += e.probability;
  PROBSYN_CHECK(mass > 0.0);
  for (ValueProb& e : merged) e.probability /= mass;

  ValuePdf pdf;
  pdf.entries_ = std::move(merged);
  return pdf;
}

ValuePdf ValuePdf::PointMass(double value) {
  auto result = Create({{value, 1.0}});
  PROBSYN_CHECK(result.ok());
  return std::move(result).value();
}

double ValuePdf::Mean() const {
  KahanSum sum;
  for (const ValueProb& e : entries_) sum.Add(e.probability * e.value);
  return sum.value();
}

double ValuePdf::SecondMoment() const {
  KahanSum sum;
  for (const ValueProb& e : entries_) sum.Add(e.probability * e.value * e.value);
  return sum.value();
}

double ValuePdf::Variance() const {
  double mean = Mean();
  return ClampTinyNegative(SecondMoment() - mean * mean);
}

double ValuePdf::ProbEquals(double v) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const ValueProb& e, double x) { return e.value < x; });
  if (it != entries_.end() && it->value == v) return it->probability;
  return 0.0;
}

double ValuePdf::ProbAtMost(double v) const {
  double total = 0.0;
  for (const ValueProb& e : entries_) {
    if (e.value > v) break;
    total += e.probability;
  }
  return total;
}

double ValuePdf::ExpectedAbsDeviation(double a) const {
  KahanSum sum;
  for (const ValueProb& e : entries_) sum.Add(e.probability * std::fabs(e.value - a));
  return sum.value();
}

double ValuePdf::ExpectedSquaredDeviation(double a) const {
  KahanSum sum;
  for (const ValueProb& e : entries_) {
    double d = e.value - a;
    sum.Add(e.probability * d * d);
  }
  return sum.value();
}

double ValuePdf::ExpectedRelDeviation(double a, double c) const {
  KahanSum sum;
  for (const ValueProb& e : entries_) {
    sum.Add(e.probability * RelativeWeight(e.value, c) * std::fabs(e.value - a));
  }
  return sum.value();
}

double ValuePdf::ExpectedSquaredRelDeviation(double a, double c) const {
  KahanSum sum;
  for (const ValueProb& e : entries_) {
    double d = e.value - a;
    sum.Add(e.probability * SquaredRelativeWeight(e.value, c) * d * d);
  }
  return sum.value();
}

std::size_t ValuePdfInput::total_pairs() const {
  std::size_t m = 0;
  for (const ValuePdf& pdf : items_) m += pdf.size();
  return m;
}

Status ValuePdfInput::Validate() const {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const ValuePdf& pdf = items_[i];
    if (pdf.empty()) {
      return Status::InvalidArgument("item " + std::to_string(i) +
                                     " has an empty pdf");
    }
    double total = 0.0;
    double prev = -1.0;
    for (const ValueProb& e : pdf.entries()) {
      if (e.value <= prev) {
        return Status::Internal("item " + std::to_string(i) +
                                " pdf values not strictly increasing");
      }
      prev = e.value;
      if (e.probability <= 0.0 || e.probability > 1.0 + 1e-9) {
        return Status::InvalidArgument("item " + std::to_string(i) +
                                       " has probability out of (0,1]");
      }
      total += e.probability;
    }
    if (!AlmostEqual(total, 1.0, 1e-9, 1e-9)) {
      return Status::Internal("item " + std::to_string(i) +
                              " pdf mass != 1 after normalization");
    }
  }
  return Status::OK();
}

std::vector<double> ValuePdfInput::ValueGrid() const {
  std::vector<double> grid;
  grid.push_back(0.0);
  for (const ValuePdf& pdf : items_) {
    for (const ValueProb& e : pdf.entries()) grid.push_back(e.value);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

std::vector<double> ValuePdfInput::ExpectedFrequencies() const {
  std::vector<double> out(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) out[i] = items_[i].Mean();
  return out;
}

std::vector<double> ValuePdfInput::FrequencyVariances() const {
  std::vector<double> out(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) out[i] = items_[i].Variance();
  return out;
}

std::vector<double> ValuePdfInput::FrequencySecondMoments() const {
  std::vector<double> out(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    out[i] = items_[i].SecondMoment();
  }
  return out;
}

}  // namespace probsyn
