#include "model/worlds.h"

#include <algorithm>

#include "util/logging.h"

namespace probsyn {

namespace {

// Recursively extends the partial assignment over items (value pdf).
Status EnumerateValueRec(const ValuePdfInput& input, std::size_t item,
                         std::vector<double>& freq, double prob,
                         std::size_t max_worlds,
                         std::vector<PossibleWorld>& out) {
  if (item == input.domain_size()) {
    if (out.size() >= max_worlds) {
      return Status::OutOfRange("possible-world enumeration exceeded cap");
    }
    out.push_back({freq, prob});
    return Status::OK();
  }
  for (const ValueProb& e : input.item(item).entries()) {
    freq[item] = e.value;
    PROBSYN_RETURN_IF_ERROR(EnumerateValueRec(
        input, item + 1, freq, prob * e.probability, max_worlds, out));
  }
  freq[item] = 0.0;
  return Status::OK();
}

// Recursively extends the partial assignment over tuples (tuple pdf).
Status EnumerateTupleRec(const TuplePdfInput& input, std::size_t tuple_index,
                         std::vector<double>& freq, double prob,
                         std::size_t max_worlds,
                         std::vector<PossibleWorld>& out) {
  if (prob == 0.0) return Status::OK();  // Prune impossible branches.
  if (tuple_index == input.num_tuples()) {
    if (out.size() >= max_worlds) {
      return Status::OutOfRange("possible-world enumeration exceeded cap");
    }
    out.push_back({freq, prob});
    return Status::OK();
  }
  const ProbTuple& t = input.tuples()[tuple_index];
  for (const TupleAlternative& a : t.alternatives()) {
    freq[a.item] += 1.0;
    PROBSYN_RETURN_IF_ERROR(EnumerateTupleRec(
        input, tuple_index + 1, freq, prob * a.probability, max_worlds, out));
    freq[a.item] -= 1.0;
  }
  if (t.ProbAbsent() > 0.0) {
    PROBSYN_RETURN_IF_ERROR(EnumerateTupleRec(input, tuple_index + 1, freq,
                                              prob * t.ProbAbsent(),
                                              max_worlds, out));
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<PossibleWorld>> EnumerateWorlds(const ValuePdfInput& input,
                                                     std::size_t max_worlds) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  std::vector<PossibleWorld> out;
  std::vector<double> freq(input.domain_size(), 0.0);
  PROBSYN_RETURN_IF_ERROR(
      EnumerateValueRec(input, 0, freq, 1.0, max_worlds, out));
  return out;
}

StatusOr<std::vector<PossibleWorld>> EnumerateWorlds(const TuplePdfInput& input,
                                                     std::size_t max_worlds) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  std::vector<PossibleWorld> out;
  std::vector<double> freq(input.domain_size(), 0.0);
  PROBSYN_RETURN_IF_ERROR(
      EnumerateTupleRec(input, 0, freq, 1.0, max_worlds, out));
  return out;
}

StatusOr<std::vector<PossibleWorld>> EnumerateWorlds(
    const BasicModelInput& input, std::size_t max_worlds) {
  auto tuple_pdf = input.ToTuplePdf();
  if (!tuple_pdf.ok()) return tuple_pdf.status();
  return EnumerateWorlds(tuple_pdf.value(), max_worlds);
}

double ExpectationOverWorlds(
    const std::vector<PossibleWorld>& worlds,
    const std::function<double(const std::vector<double>&)>& f) {
  double total = 0.0;
  for (const PossibleWorld& w : worlds) {
    total += w.probability * f(w.frequencies);
  }
  return total;
}

ValuePdfWorldSampler::ValuePdfWorldSampler(const ValuePdfInput& input) {
  samplers_.reserve(input.domain_size());
  values_.reserve(input.domain_size());
  for (const ValuePdf& pdf : input.items()) {
    std::vector<double> weights;
    std::vector<double> values;
    weights.reserve(pdf.size());
    values.reserve(pdf.size());
    for (const ValueProb& e : pdf.entries()) {
      weights.push_back(e.probability);
      values.push_back(e.value);
    }
    samplers_.emplace_back(weights);
    values_.push_back(std::move(values));
  }
}

std::vector<double> ValuePdfWorldSampler::Sample(Rng& rng) const {
  std::vector<double> freq(samplers_.size());
  for (std::size_t i = 0; i < samplers_.size(); ++i) {
    freq[i] = values_[i][samplers_[i].Sample(rng)];
  }
  return freq;
}

TuplePdfWorldSampler::TuplePdfWorldSampler(const TuplePdfInput& input)
    : domain_size_(input.domain_size()) {
  samplers_.reserve(input.num_tuples());
  choice_items_.reserve(input.num_tuples());
  for (const ProbTuple& t : input.tuples()) {
    std::vector<double> weights;
    std::vector<std::size_t> items;
    weights.reserve(t.size() + 1);
    items.reserve(t.size() + 1);
    for (const TupleAlternative& a : t.alternatives()) {
      weights.push_back(a.probability);
      items.push_back(a.item);
    }
    if (t.ProbAbsent() > 0.0) {
      weights.push_back(t.ProbAbsent());
      items.push_back(kAbsent);
    }
    samplers_.emplace_back(weights);
    choice_items_.push_back(std::move(items));
  }
}

std::vector<double> TuplePdfWorldSampler::Sample(Rng& rng) const {
  std::vector<double> freq(domain_size_, 0.0);
  for (std::size_t j = 0; j < samplers_.size(); ++j) {
    std::size_t choice = samplers_[j].Sample(rng);
    std::size_t item = choice_items_[j][choice];
    if (item != kAbsent) freq[item] += 1.0;
  }
  return freq;
}

}  // namespace probsyn
