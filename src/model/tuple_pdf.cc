#include "model/tuple_pdf.h"

#include <algorithm>
#include <string>

#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

namespace {
constexpr double kProbSlack = 1e-9;
}  // namespace

StatusOr<ProbTuple> ProbTuple::Create(
    std::vector<TupleAlternative> alternatives) {
  double total = 0.0;
  for (const TupleAlternative& a : alternatives) {
    if (!(a.probability >= 0.0) || !(a.probability <= 1.0 + kProbSlack)) {
      return Status::InvalidArgument("tuple alternative probability out of [0,1]");
    }
    total += a.probability;
  }
  if (total > 1.0 + kProbSlack) {
    return Status::InvalidArgument(
        "tuple alternative probabilities sum to more than 1");
  }

  std::sort(alternatives.begin(), alternatives.end(),
            [](const TupleAlternative& a, const TupleAlternative& b) {
              return a.item < b.item;
            });
  std::vector<TupleAlternative> merged;
  merged.reserve(alternatives.size());
  for (const TupleAlternative& a : alternatives) {
    if (a.probability <= 0.0) continue;
    if (!merged.empty() && merged.back().item == a.item) {
      merged.back().probability += a.probability;
    } else {
      merged.push_back(a);
    }
  }

  ProbTuple t;
  t.alternatives_ = std::move(merged);
  t.cumulative_.resize(t.alternatives_.size() + 1);
  t.cumulative_[0] = 0.0;
  for (std::size_t k = 0; k < t.alternatives_.size(); ++k) {
    t.cumulative_[k + 1] = t.cumulative_[k] + t.alternatives_[k].probability;
  }
  t.absent_ = std::max(0.0, 1.0 - t.cumulative_.back());
  return t;
}

double ProbTuple::ProbItem(std::size_t i) const {
  auto it = std::lower_bound(alternatives_.begin(), alternatives_.end(), i,
                             [](const TupleAlternative& a, std::size_t x) {
                               return a.item < x;
                             });
  if (it != alternatives_.end() && it->item == i) return it->probability;
  return 0.0;
}

double ProbTuple::ProbItemAtMost(std::size_t e) const {
  // Number of alternatives with item <= e.
  auto it = std::upper_bound(alternatives_.begin(), alternatives_.end(), e,
                             [](std::size_t x, const TupleAlternative& a) {
                               return x < a.item;
                             });
  return cumulative_[static_cast<std::size_t>(it - alternatives_.begin())];
}

double ProbTuple::ProbItemInRange(std::size_t s, std::size_t e) const {
  PROBSYN_DCHECK(s <= e);
  double hi = ProbItemAtMost(e);
  double lo = (s == 0) ? 0.0 : ProbItemAtMost(s - 1);
  return hi - lo;
}

std::size_t ProbTuple::MaxItem() const {
  return alternatives_.empty() ? 0 : alternatives_.back().item;
}

std::size_t TuplePdfInput::total_pairs() const {
  std::size_t m = 0;
  for (const ProbTuple& t : tuples_) m += t.size();
  return m;
}

Status TuplePdfInput::Validate() const {
  if (domain_size_ == 0 && !tuples_.empty()) {
    return Status::InvalidArgument("tuple pdf input with empty domain");
  }
  for (std::size_t j = 0; j < tuples_.size(); ++j) {
    const ProbTuple& t = tuples_[j];
    if (t.size() == 0) {
      return Status::InvalidArgument("tuple " + std::to_string(j) +
                                     " has no alternatives");
    }
    if (t.MaxItem() >= domain_size_) {
      return Status::OutOfRange("tuple " + std::to_string(j) +
                                " references item outside the domain");
    }
    std::size_t prev_item = 0;
    bool first = true;
    double total = 0.0;
    for (const TupleAlternative& a : t.alternatives()) {
      if (!first && a.item <= prev_item) {
        return Status::Internal("tuple alternatives not strictly increasing");
      }
      first = false;
      prev_item = a.item;
      total += a.probability;
    }
    if (total > 1.0 + 1e-9) {
      return Status::InvalidArgument("tuple " + std::to_string(j) +
                                     " probabilities exceed 1");
    }
  }
  return Status::OK();
}

std::vector<double> TuplePdfInput::ExpectedFrequencies() const {
  std::vector<double> mean(domain_size_, 0.0);
  for (const ProbTuple& t : tuples_) {
    for (const TupleAlternative& a : t.alternatives()) {
      mean[a.item] += a.probability;
    }
  }
  return mean;
}

std::vector<double> TuplePdfInput::FrequencyVariances() const {
  std::vector<double> var(domain_size_, 0.0);
  for (const ProbTuple& t : tuples_) {
    for (const TupleAlternative& a : t.alternatives()) {
      var[a.item] += a.probability * (1.0 - a.probability);
    }
  }
  return var;
}

std::vector<double> TuplePdfInput::FrequencySecondMoments() const {
  std::vector<double> mean = ExpectedFrequencies();
  std::vector<double> second = FrequencyVariances();
  for (std::size_t i = 0; i < domain_size_; ++i) {
    second[i] += mean[i] * mean[i];
  }
  return second;
}

std::vector<std::vector<double>> TuplePdfInput::PerItemTupleProbs() const {
  std::vector<std::vector<double>> probs(domain_size_);
  for (const ProbTuple& t : tuples_) {
    for (const TupleAlternative& a : t.alternatives()) {
      probs[a.item].push_back(a.probability);
    }
  }
  return probs;
}

}  // namespace probsyn
