#include "engine/synopsis_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/dp_kernels.h"
#include "core/evaluate.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "core/sharded_dp.h"
#include "core/wavelet_dp.h"
#include "model/induced.h"
#include "stream/streaming_histogram.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace probsyn {

namespace {

// Two histogram requests may share one preprocessed oracle iff these
// agree (the oracle reads nothing else from the request). The SSE variant
// only matters under kSse, and the sanity constant only under the relative
// metrics; normalizing both keeps sharing groups maximal (e.g. two SSE
// requests with different sanity constants still share one oracle).
using OracleKey = std::tuple<int, double, int, std::vector<double>>;

OracleKey MakeOracleKey(const SynopsisOptions& options) {
  int variant = options.metric == ErrorMetric::kSse
                    ? static_cast<int>(options.sse_variant)
                    : 0;
  // Only the relative metrics' oracles read the sanity constant (SSE's
  // moments, SAE's unweighted U/D tables, and MAE's absolute-error
  // envelope are all c-independent).
  double sanity_c =
      IsRelativeMetric(options.metric) ? options.sanity_c : 0.0;
  return {static_cast<int>(options.metric), sanity_c, variant,
          options.workload};
}

std::string FormatSolver(const char* route, ThreadPool* pool) {
  char buffer[96];
  if (pool != nullptr) {
    std::snprintf(buffer, sizeof(buffer), "%s[parallel=%zu]", route,
                  pool->num_threads() + 1);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%s[sequential]", route);
  }
  return buffer;
}


// DP-backed routes always record which kernel filled their tables AND the
// SIMD path the min-reductions dispatched to, e.g.
// "histogram/approx-dp(eps=0.1)[kernel=sse-moment,simd=avx2,sequential]" or
// "wavelet/restricted-dp[kernel=budget-split,memo=dense-arena,simd=avx2,
// par=4]" — a path left on the reference solver says kernel=reference
// (and simd=scalar when forced) rather than omitting the labels. Routes
// that report their own lane count (the restricted wavelet DP's parallel
// arena fill) pass `lanes` > 0 and get a `par=` label instead of the
// pool-derived parallel=/sequential suffix.
std::string FormatKernelSolver(const char* route, const char* kernel_name,
                               ThreadPool* pool, const char* memo = nullptr,
                               std::size_t lanes = 0) {
  char par[24] = "";
  if (lanes > 0) std::snprintf(par, sizeof(par), ",par=%zu", lanes);
  char labels[112];
  if (memo != nullptr) {
    std::snprintf(labels, sizeof(labels), "kernel=%s,memo=%s,simd=%s%s",
                  kernel_name, memo, SimdPathName(ActiveSimdPath()), par);
  } else {
    std::snprintf(labels, sizeof(labels), "kernel=%s,simd=%s%s", kernel_name,
                  SimdPathName(ActiveSimdPath()), par);
  }
  char buffer[176];
  if (lanes > 0) {
    std::snprintf(buffer, sizeof(buffer), "%s[%s]", route, labels);
  } else if (pool != nullptr) {
    std::snprintf(buffer, sizeof(buffer), "%s[%s,parallel=%zu]", route,
                  labels, pool->num_threads() + 1);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%s[%s,sequential]", route, labels);
  }
  return buffer;
}

std::string FormatApproxDpSolver(DpKernelKind kernel, double epsilon) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "histogram/approx-dp(eps=%g)",
                epsilon);
  return FormatKernelSolver(buffer, DpKernelKindName(kernel), nullptr);
}

/// Baseline histograms have no oracle-native cost; re-cost them under the
/// true distribution (the section-5 experimental protocol).
template <typename Input>
StatusOr<double> EvaluateHistogramCost(const Input& input, const Histogram& h,
                                       const SynopsisOptions& options) {
  if (options.metric == ErrorMetric::kSse &&
      options.sse_variant == SseVariant::kWorldMean) {
    return EvaluateHistogramWorldMeanSse(input, h);
  }
  return EvaluateHistogram(input, h, options);
}

StatusOr<SynopsisResult> ExecStreamingOnValuePdf(const ValuePdfInput& input,
                                                 const SynopsisRequest& request,
                                                 double preprocess_seconds,
                                                 DpWorkspace* workspace,
                                                 const ExecContext* ctx) {
  Stopwatch watch;
  // The leased workspace hosts the boundary-chain store, so steady-state
  // streaming requests allocate no chain nodes (the builder releases every
  // reference on destruction).
  StreamingHistogramBuilder builder(
      request.budget, request.epsilon, StreamingKernel::kAuto,
      workspace != nullptr ? &workspace->stream_chains() : nullptr);
  std::size_t pushed = 0;
  // Pushes cost ~100us+ each once the bucket chains grow (merges
  // dominate), so PollGate's default 16-item cadence keeps cancellation
  // latency in the tens of milliseconds while the poll cost stays far
  // below 1% of the push cost.
  PollGate gate;
  for (const ValuePdf& pdf : input.items()) {
    if (gate.ShouldStop(ctx)) {
      return ctx->StopStatus("streaming", "item", pushed,
                             input.domain_size());
    }
    builder.Push(pdf);
    ++pushed;
  }
  PROBSYN_ASSIGN_OR_RETURN(auto finished, builder.Finish());

  SynopsisResult result;
  result.kind = SynopsisKind::kHistogram;
  result.histogram = std::move(finished.histogram);
  result.cost = finished.cost;
  {
    char route[64];
    std::snprintf(route, sizeof(route), "histogram/streaming-ahist(eps=%g)",
                  request.epsilon);
    result.solver = FormatKernelSolver(
        route, StreamingKernelName(builder.kernel()), nullptr);
  }
  result.timing.preprocess_seconds = preprocess_seconds;
  result.timing.solve_seconds = watch.ElapsedSeconds();
  return result;
}

template <typename Input>
StatusOr<SynopsisResult> ExecStreaming(const Input& input,
                                       const SynopsisRequest& request,
                                       DpWorkspace* workspace,
                                       const ExecContext* ctx) {
  if constexpr (std::is_same_v<Input, ValuePdfInput>) {
    return ExecStreamingOnValuePdf(input, request, 0.0, workspace, ctx);
  } else {
    // The stream consumes per-item frequency pdfs; tuple input induces
    // them first (exact — SSE fixed-rep is per-item decomposable).
    Stopwatch watch;
    PROBSYN_ASSIGN_OR_RETURN(auto induced, InduceValuePdf(input));
    return ExecStreamingOnValuePdf(induced, request, watch.ElapsedSeconds(),
                                   workspace, ctx);
  }
}

template <typename Input>
StatusOr<SynopsisResult> ExecHistogramBaseline(const Input& input,
                                               const SynopsisRequest& request) {
  Stopwatch watch;
  StatusOr<Histogram> histogram = Status::Internal("unrouted baseline");
  const char* route = "";
  switch (request.method) {
    case HistogramMethod::kExpectation:
      histogram =
          BuildExpectationHistogram(input, request.options, request.budget);
      route = "histogram/baseline-expectation";
      break;
    case HistogramMethod::kSampledWorld: {
      Rng rng(request.seed);
      histogram = BuildSampledWorldHistogram(input, request.options,
                                             request.budget, rng);
      route = "histogram/baseline-sampled-world";
      break;
    }
    case HistogramMethod::kEquiDepth:
      histogram =
          BuildEquiDepthHistogram(input, request.options, request.budget);
      route = "histogram/baseline-equidepth";
      break;
    default:
      return Status::Internal("non-baseline method routed to baseline path");
  }
  if (!histogram.ok()) return histogram.status();
  double solve_seconds = watch.ElapsedSeconds();

  watch.Restart();
  auto cost = EvaluateHistogramCost(input, *histogram, request.options);
  if (!cost.ok()) return cost.status();

  SynopsisResult result;
  result.kind = SynopsisKind::kHistogram;
  result.histogram = std::move(histogram).value();
  result.cost = *cost;
  result.solver = FormatSolver(route, nullptr);
  result.timing.solve_seconds = solve_seconds;
  result.timing.preprocess_seconds = watch.ElapsedSeconds();  // re-costing
  return result;
}

template <typename Input>
StatusOr<SynopsisResult> ExecWavelet(const Input& input,
                                     const SynopsisRequest& request,
                                     DpWorkspace* workspace, ThreadPool* pool,
                                     const ExecContext* ctx,
                                     std::size_t max_workspace_bytes) {
  WaveletMethod method = request.wavelet_method;
  if (method == WaveletMethod::kAuto) {
    method = request.options.metric == ErrorMetric::kSse
                 ? WaveletMethod::kGreedySse
                 : WaveletMethod::kRestrictedDp;
  }

  SynopsisResult result;
  result.kind = SynopsisKind::kWavelet;

  if (method == WaveletMethod::kGreedySse) {
    Stopwatch watch;
    auto synopsis = BuildSseOptimalWavelet(input, request.budget);
    if (!synopsis.ok()) return synopsis.status();
    result.wavelet = std::move(synopsis).value();
    result.timing.solve_seconds = watch.ElapsedSeconds();
    watch.Restart();
    auto cost = EvaluateWavelet(input, result.wavelet, request.options);
    if (!cost.ok()) return cost.status();
    result.cost = *cost;
    result.timing.preprocess_seconds = watch.ElapsedSeconds();
    result.solver = FormatSolver("wavelet/greedy-sse", nullptr);
    return result;
  }

  // The coefficient-tree DPs consume value-pdf input; induce for tuples.
  Stopwatch preprocess_watch;
  StatusOr<ValuePdfInput> induced = Status::Internal("unset");
  const ValuePdfInput* value_input = nullptr;
  if constexpr (std::is_same_v<Input, ValuePdfInput>) {
    value_input = &input;
  } else {
    induced = InduceValuePdf(input);
    if (!induced.ok()) return induced.status();
    value_input = &induced.value();
  }
  result.timing.preprocess_seconds = preprocess_watch.ElapsedSeconds();

  Stopwatch watch;
  if (method == WaveletMethod::kRestrictedDp) {
    // The batch's leased workspace hosts the solver's flat state arena, so
    // steady-state wavelet requests allocate no DP state; the engine pool
    // fans the level sweeps out (bit-identical, recorded as par=).
    auto dp = BuildRestrictedWaveletDp(
        *value_input, request.budget, request.options,
        request.wavelet_max_domain, WaveletSplitKernel::kAuto, workspace,
        pool, ctx, max_workspace_bytes);
    if (!dp.ok()) return dp.status();
    result.wavelet = std::move(dp->synopsis);
    result.cost = dp->cost;
    result.solver = FormatKernelSolver("wavelet/restricted-dp",
                                       WaveletSplitKernelName(dp->kernel),
                                       nullptr, dp->memo, dp->lanes);
  } else {
    UnrestrictedWaveletOptions unrestricted = request.unrestricted;
    unrestricted.context = ctx;
    auto dp = BuildUnrestrictedWaveletDp(*value_input, request.budget,
                                         request.options, unrestricted);
    if (!dp.ok()) return dp.status();
    result.wavelet = std::move(dp->synopsis);
    result.cost = dp->cost;
    result.solver = FormatKernelSolver("wavelet/unrestricted-dp",
                                       WaveletSplitKernelName(dp->kernel),
                                       nullptr);
  }
  result.timing.solve_seconds = watch.ElapsedSeconds();
  return result;
}

StatusOr<SynopsisResult> ExecShardedOnValuePdf(
    const ValuePdfInput& input, const SynopsisRequest& request,
    double preprocess_seconds, ThreadPool* pool, DpWorkspacePool* workspaces,
    const ExecContext* ctx, std::size_t max_workspace_bytes) {
  Stopwatch watch;
  ShardedDpOptions sharded;
  sharded.shards = request.sharding.shards;
  sharded.max_shard_budget = request.sharding.max_shard_budget;
  sharded.solver = request.method == HistogramMethod::kOptimal
                       ? ShardSolver::kExact
                       : ShardSolver::kApprox;
  sharded.epsilon = request.epsilon;
  sharded.pool = pool;
  sharded.workspaces = workspaces;
  sharded.context = ctx;
  sharded.max_workspace_bytes = max_workspace_bytes;
  PROBSYN_ASSIGN_OR_RETURN(
      ShardedDpResult built,
      BuildShardedHistogram(input, request.budget, request.options, sharded));

  SynopsisResult result;
  result.kind = SynopsisKind::kHistogram;
  result.histogram = std::move(built.histogram);
  result.cost = built.cost;
  result.oracle_evaluations = built.oracle_evaluations;
  {
    char route[64];
    if (sharded.solver == ShardSolver::kExact) {
      std::snprintf(route, sizeof(route), "histogram/sharded-dp");
    } else {
      std::snprintf(route, sizeof(route), "histogram/sharded-approx(eps=%g)",
                    request.epsilon);
    }
    char buffer[176];
    std::snprintf(buffer, sizeof(buffer),
                  "%s[kernel=%s,simd=%s,shards=%zu,par=%zu]", route,
                  DpKernelKindName(built.kernel),
                  SimdPathName(ActiveSimdPath()), built.shards, built.lanes);
    result.solver = buffer;
  }
  // Per-shard oracle builds happen inside the shard solves, so preprocess
  // only carries the tuple->value-pdf induction (if any).
  result.timing.preprocess_seconds = preprocess_seconds;
  result.timing.solve_seconds = watch.ElapsedSeconds();
  return result;
}

template <typename Input>
StatusOr<SynopsisResult> ExecSharded(const Input& input,
                                     const SynopsisRequest& request,
                                     ThreadPool* pool,
                                     DpWorkspacePool* workspaces,
                                     const ExecContext* ctx,
                                     std::size_t max_workspace_bytes) {
  if constexpr (std::is_same_v<Input, ValuePdfInput>) {
    return ExecShardedOnValuePdf(input, request, 0.0, pool, workspaces, ctx,
                                 max_workspace_bytes);
  } else {
    if (request.options.metric == ErrorMetric::kSse &&
        request.options.sse_variant == SseVariant::kWorldMean) {
      return Status::Unimplemented(
          "sharded construction does not support world-mean SSE on tuple "
          "input (the joint-distribution oracle does not decompose across "
          "shards); use the fixed-representative variant or the unsharded "
          "route");
    }
    // Every other metric is per-item decomposable; induce the value pdfs
    // once and shard those (exact, same as the other induced routes).
    Stopwatch watch;
    PROBSYN_ASSIGN_OR_RETURN(auto induced, InduceValuePdf(input));
    return ExecShardedOnValuePdf(induced, request, watch.ElapsedSeconds(),
                                 pool, workspaces, ctx, max_workspace_bytes);
  }
}

// Whether a request takes the sharded route: explicit kOn always (only
// valid on the exact/approx histogram methods — Validate enforces that);
// kAuto only for kApprox at domains where the unsharded approximate DP is
// infeasible, and never for tuple-input world-mean SSE (whose joint oracle
// cannot shard — kAuto falls back to the unsharded route, kOn reports
// Unimplemented).
bool RoutesSharded(const SynopsisRequest& request, std::size_t domain_size,
                   std::size_t shard_auto_domain, bool tuple_world_mean_sse) {
  if (request.kind != SynopsisKind::kHistogram) return false;
  if (request.method != HistogramMethod::kOptimal &&
      request.method != HistogramMethod::kApprox) {
    return false;
  }
  switch (request.sharding.mode) {
    case RequestSharding::Mode::kOn:
      return true;
    case RequestSharding::Mode::kOff:
      return false;
    case RequestSharding::Mode::kAuto:
      return request.method == HistogramMethod::kApprox &&
             domain_size >= shard_auto_domain && !tuple_world_mean_sse;
  }
  return false;
}

template <typename Input>
StatusOr<SynopsisResult> ExecuteSingle(const Input& input,
                                       const SynopsisRequest& request,
                                       DpWorkspace* workspace,
                                       ThreadPool* pool,
                                       const ExecContext* ctx,
                                       std::size_t max_workspace_bytes) {
  if (request.kind == SynopsisKind::kWavelet) {
    return ExecWavelet(input, request, workspace, pool, ctx,
                       max_workspace_bytes);
  }
  if (request.method == HistogramMethod::kStreaming) {
    return ExecStreaming(input, request, workspace, ctx);
  }
  return ExecHistogramBaseline(input, request);
}

// --- Deadline-aware degradation (RequestFallback::kDegrade) ----------------
//
// Analytic route-cost model, calibrated against the committed bench
// baselines (BENCH_baseline.json): the exact DP fills cells at ~6e9/s
// (n=4096, B=64 solves in ~0.18s), the approximate DP sustains ~4e8
// candidate evaluations/s (n=1e5 unsharded solves take ~45s), a sharded
// approximate build of n=1e6 over 64 shards lands near 0.13s, and the
// linear baselines stream ~1e8 items/s. The rungs of the ladder sit
// decades apart, so order-of-magnitude fidelity is all the planner needs;
// the 2x margin in PlanDegradedRoute absorbs the rest.

double EstimateExactDpSeconds(std::size_t n, std::size_t budget) {
  const double nn = static_cast<double>(n);
  return static_cast<double>(std::min(budget, n)) * nn * nn / 6e9;
}

double EstimateApproxDpSeconds(std::size_t n, std::size_t budget,
                               double epsilon) {
  const double b = static_cast<double>(std::min(budget, n));
  return b * b / std::max(epsilon, 1e-3) * static_cast<double>(n) *
         std::log2(static_cast<double>(n) + 2.0) / 4e8;
}

double EstimateShardedSeconds(std::size_t n, std::size_t budget, bool exact,
                              double epsilon, const RequestSharding& sharding,
                              std::size_t lanes) {
  const std::size_t total = std::min(budget, n);
  const std::size_t shards = ResolveShardCount(n, total, sharding.shards);
  const std::size_t cap =
      ResolveMaxShardBudget(total, shards, sharding.max_shard_budget);
  const std::size_t ns = (n + shards - 1) / shards;
  // Phase A dominates; approximate shards pay phase C's re-solve too.
  const double per_shard =
      exact ? EstimateExactDpSeconds(ns, cap)
            : 2.0 * EstimateApproxDpSeconds(ns, cap, epsilon);
  const double waves =
      std::ceil(static_cast<double>(shards) /
                static_cast<double>(std::max<std::size_t>(lanes, 1)));
  return per_shard * waves +
         static_cast<double>(total) * static_cast<double>(total) / 4e8;
}

double EstimateRestrictedWaveletSeconds(std::size_t n, std::size_t budget) {
  const double nn = static_cast<double>(n);
  const double bb = static_cast<double>(std::min(budget, n));
  return nn * nn * bb * bb / 1e9;
}

double EstimateUnrestrictedWaveletSeconds(std::size_t n, std::size_t budget,
                                          std::size_t grid_points) {
  const double nn = static_cast<double>(n);
  const double bb = static_cast<double>(std::min(budget, n));
  const double qq = static_cast<double>(grid_points);
  return nn * qq * qq * bb * bb / 1e9;
}

// The from-label of a `[degraded=<from>-><to>]` suffix: the route the
// caller originally asked for.
const char* RouteLabel(const SynopsisRequest& request) {
  if (request.kind == SynopsisKind::kWavelet) {
    WaveletMethod method = request.wavelet_method;
    if (method == WaveletMethod::kAuto) {
      method = request.options.metric == ErrorMetric::kSse
                   ? WaveletMethod::kGreedySse
                   : WaveletMethod::kRestrictedDp;
    }
    switch (method) {
      case WaveletMethod::kGreedySse: return "greedy-sse";
      case WaveletMethod::kRestrictedDp: return "restricted-dp";
      case WaveletMethod::kUnrestrictedDp: return "unrestricted-dp";
      case WaveletMethod::kAuto: break;  // resolved above
    }
    return "wavelet";
  }
  switch (request.method) {
    case HistogramMethod::kOptimal: return "exact-dp";
    case HistogramMethod::kApprox: return "approx-dp";
    case HistogramMethod::kStreaming: return "streaming";
    case HistogramMethod::kExpectation: return "baseline-expectation";
    case HistogramMethod::kSampledWorld: return "baseline-sampled-world";
    case HistogramMethod::kEquiDepth: return "baseline-equidepth";
  }
  return "histogram";
}

std::string DegradeSuffix(const char* from, const char* to) {
  return std::string("[degraded=") + from + "->" + to + "]";
}

// Outcome of plan-time degradation: the rewritten request plus the suffix
// recorded on the served solver string.
struct DegradedPlan {
  SynopsisRequest request;
  std::string suffix;
};

// Picks the highest ladder rung whose predicted cost fits the request's
// remaining deadline budget (with a 2x margin for the model's coarseness).
// Returns nullopt when the requested route already fits — mid-solve
// overruns are still caught by the solver polls and fall to the ladder
// floor at run time.
template <typename Input>
std::optional<DegradedPlan> PlanDegradedRoute(const SynopsisRequest& request,
                                              std::size_t n,
                                              std::size_t lanes,
                                              std::size_t shard_auto_domain) {
  if (request.fallback != RequestFallback::kDegrade ||
      request.deadline.IsNever()) {
    return std::nullopt;
  }
  const double allow = request.deadline.RemainingSeconds() / 2.0;
  const bool tuple_world_mean_sse =
      std::is_same_v<Input, TuplePdfInput> &&
      request.options.metric == ErrorMetric::kSse &&
      request.options.sse_variant == SseVariant::kWorldMean;

  if (request.kind == SynopsisKind::kWavelet) {
    WaveletMethod method = request.wavelet_method;
    if (method == WaveletMethod::kAuto) {
      method = request.options.metric == ErrorMetric::kSse
                   ? WaveletMethod::kGreedySse
                   : WaveletMethod::kRestrictedDp;
    }
    if (method == WaveletMethod::kGreedySse) return std::nullopt;
    const double predicted =
        method == WaveletMethod::kRestrictedDp
            ? EstimateRestrictedWaveletSeconds(n, request.budget)
            : EstimateUnrestrictedWaveletSeconds(
                  n, request.budget, request.unrestricted.grid_points);
    if (predicted <= allow) return std::nullopt;
    DegradedPlan plan{request, DegradeSuffix(RouteLabel(request),
                                             "greedy-sse")};
    plan.request.wavelet_method = WaveletMethod::kGreedySse;
    return plan;
  }

  if (request.method != HistogramMethod::kOptimal &&
      request.method != HistogramMethod::kApprox) {
    return std::nullopt;
  }
  const bool sharded_already = RoutesSharded(request, n, shard_auto_domain,
                                             tuple_world_mean_sse);
  const bool exact = request.method == HistogramMethod::kOptimal;
  const double predicted =
      sharded_already
          ? EstimateShardedSeconds(n, request.budget, exact, request.epsilon,
                                   request.sharding, lanes)
          : (exact ? EstimateExactDpSeconds(n, request.budget)
                   : EstimateApproxDpSeconds(n, request.budget,
                                             request.epsilon));
  if (predicted <= allow) return std::nullopt;

  // Middle rung: sharded construction — approximate for cumulative
  // metrics, exact for maximum ones (whose approximate DP does not apply).
  // The joint-distribution world-mean SSE oracle cannot shard at all.
  if (!sharded_already && !tuple_world_mean_sse) {
    const bool cumulative = IsCumulativeMetric(request.options.metric);
    const double sharded_predicted = EstimateShardedSeconds(
        n, request.budget, /*exact=*/!cumulative, request.epsilon,
        request.sharding, lanes);
    if (sharded_predicted <= allow) {
      DegradedPlan plan{
          request,
          DegradeSuffix(RouteLabel(request),
                        cumulative ? "sharded-approx" : "sharded-dp")};
      plan.request.method =
          cumulative ? HistogramMethod::kApprox : HistogramMethod::kOptimal;
      plan.request.sharding.mode = RequestSharding::Mode::kOn;
      return plan;
    }
  }

  // Floor: equi-depth boundaries, truthfully re-costed. Always served,
  // even when the model predicts the deadline is unmeetable — a
  // best-effort cheap synopsis beats a guaranteed failure.
  DegradedPlan plan{request, DegradeSuffix(RouteLabel(request), "equidepth")};
  plan.request.method = HistogramMethod::kEquiDepth;
  plan.request.sharding.mode = RequestSharding::Mode::kOff;
  return plan;
}

}  // namespace

Status SynopsisRequest::Validate() const {
  if (budget < 1) {
    return Status::InvalidArgument("synopsis budget must be >= 1");
  }
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  if (kind == SynopsisKind::kHistogram) {
    switch (method) {
      case HistogramMethod::kApprox:
        if (!(epsilon > 0.0)) {
          return Status::InvalidArgument("epsilon must be positive");
        }
        if (!IsCumulativeMetric(options.metric)) {
          return Status::Unimplemented(
              "approximate histogram construction targets cumulative "
              "metrics (paper Theorem 5)");
        }
        break;
      case HistogramMethod::kStreaming:
        if (!(epsilon > 0.0)) {
          return Status::InvalidArgument("epsilon must be positive");
        }
        if (options.metric != ErrorMetric::kSse ||
            options.sse_variant != SseVariant::kFixedRepresentative) {
          return Status::Unimplemented(
              "streaming construction supports expected SSE with fixed "
              "representatives only");
        }
        if (options.HasWorkload()) {
          return Status::Unimplemented(
              "streaming construction does not support workload weights");
        }
        break;
      default:
        break;
    }
  }
  if (sharding.mode == RequestSharding::Mode::kOn &&
      (kind != SynopsisKind::kHistogram ||
       (method != HistogramMethod::kOptimal &&
        method != HistogramMethod::kApprox))) {
    return Status::Unimplemented(
        "sharded construction serves the exact and approximate histogram "
        "routes only");
  }
  return Status::OK();
}

SynopsisEngine::SynopsisEngine(Options options) : options_(options) {
  // Bound explicit lane counts too: `--threads -1` style input reaches us
  // as a huge unsigned value and must not turn into a thread-spawn storm.
  constexpr std::size_t kMaxLanes = 256;
  std::size_t lanes = options_.parallelism == 0
                          ? ThreadPool::DefaultThreadCount()
                          : std::min(options_.parallelism, kMaxLanes);
  if (lanes < 1) lanes = 1;
  options_.parallelism = lanes;
  if (lanes > 1) pool_ = std::make_unique<ThreadPool>(lanes - 1);
  workspaces_ = std::make_unique<DpWorkspacePool>();
}

SynopsisEngine::~SynopsisEngine() = default;
SynopsisEngine::SynopsisEngine(SynopsisEngine&&) noexcept = default;
SynopsisEngine& SynopsisEngine::operator=(SynopsisEngine&&) noexcept = default;

std::size_t SynopsisEngine::parallelism() const { return options_.parallelism; }

ThreadPool* SynopsisEngine::PoolFor(std::size_t domain_size) const {
  if (pool_ == nullptr || domain_size < options_.min_parallel_domain) {
    return nullptr;
  }
  return pool_.get();
}

template <typename Input>
StatusOr<std::vector<SynopsisResult>> SynopsisEngine::BuildBatchImpl(
    const Input& input, std::span<const SynopsisRequest> requests) const {
  // --- Plan: validate everything up front (all-or-nothing batches), bind
  // each request's deadline/cancel into an ExecContext, apply plan-time
  // degradation, then group histogram exact/approx requests by their
  // oracle requirements.
  Stopwatch plan_watch;
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  for (const SynopsisRequest& request : requests) {
    PROBSYN_RETURN_IF_ERROR(request.Validate());
  }

  // Per-request stop signals. Pointers into the vector stay valid for the
  // whole build (no appends after this loop).
  std::vector<ExecContext> contexts;
  contexts.reserve(requests.size());
  for (const SynopsisRequest& request : requests) {
    contexts.emplace_back(request.deadline, request.cancel);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (StopRequested(&contexts[i])) {
      // Already cancelled or past its deadline before any work happened;
      // degradation cannot help an expired deadline, so this fails even
      // under RequestFallback::kDegrade.
      return contexts[i].StopStatus("engine", "request", i, requests.size());
    }
  }

  // Plan-time degradation: rewrite requests whose predicted route cost
  // cannot fit their deadline. `overrides` keeps the common case (no
  // degradation) copy-free — SynopsisRequest carries workload vectors.
  const std::size_t n = input.domain_size();
  std::vector<std::optional<SynopsisRequest>> overrides(requests.size());
  std::vector<std::string> degraded(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (auto plan = PlanDegradedRoute<Input>(requests[i], n,
                                             options_.parallelism,
                                             options_.shard_auto_domain)) {
      overrides[i] = std::move(plan->request);
      degraded[i] = std::move(plan->suffix);
    }
  }
  auto effective = [&](std::size_t i) -> const SynopsisRequest& {
    return overrides[i] ? *overrides[i] : requests[i];
  };

  std::map<OracleKey, std::vector<std::size_t>> oracle_groups;
  std::vector<std::size_t> singles;
  std::vector<std::size_t> sharded;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SynopsisRequest& request = effective(i);
    // The sharded route builds its own per-shard oracles, so it never
    // joins an oracle-sharing group.
    const bool tuple_world_mean_sse =
        std::is_same_v<Input, TuplePdfInput> &&
        request.options.metric == ErrorMetric::kSse &&
        request.options.sse_variant == SseVariant::kWorldMean;
    if (RoutesSharded(request, input.domain_size(),
                      options_.shard_auto_domain, tuple_world_mean_sse)) {
      sharded.push_back(i);
      continue;
    }
    bool oracle_backed =
        request.kind == SynopsisKind::kHistogram &&
        (request.method == HistogramMethod::kOptimal ||
         request.method == HistogramMethod::kApprox);
    if (oracle_backed) {
      oracle_groups[MakeOracleKey(request.options)].push_back(i);
    } else {
      singles.push_back(i);
    }
  }
  const double plan_seconds = plan_watch.ElapsedSeconds();

  std::vector<SynopsisResult> results(requests.size());
  ThreadPool* pool = PoolFor(input.domain_size());

  // --- Execute oracle-backed groups: one preprocessed oracle per group,
  // one exact DP per group (solved to the largest requested budget). The
  // batch shares one leased DP workspace across groups (each group's
  // results are extracted before the next solve reuses the storage) and
  // one PointErrorTables cache across the MAE/MARE groups.
  PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kWorkspaceAlloc));
  DpWorkspacePool::Lease workspace = workspaces_->Acquire();

  // Run-time degradation floor: when request i's (possibly already
  // plan-degraded) route stopped with `stop`, serve the ladder floor
  // instead — equi-depth boundaries for histograms, greedy-SSE selection
  // for wavelets — truthfully re-costed and suffixed
  // `[degraded=<from>-><to>]`. The floor runs unbounded: it is linear-time
  // and failing it would serve nothing. Only deadline and resource
  // overruns degrade; cancellation (the caller asked to stop) and genuine
  // errors fail the batch unchanged.
  auto run_floor = [&](std::size_t i, const Status& stop) -> Status {
    const bool degradable =
        requests[i].fallback == RequestFallback::kDegrade &&
        (stop.code() == StatusCode::kDeadlineExceeded ||
         stop.code() == StatusCode::kResourceExhausted);
    if (!degradable) return stop;
    SynopsisRequest floor = requests[i];
    const char* to = nullptr;
    if (floor.kind == SynopsisKind::kWavelet) {
      WaveletMethod method = floor.wavelet_method;
      if (method == WaveletMethod::kAuto) {
        method = floor.options.metric == ErrorMetric::kSse
                     ? WaveletMethod::kGreedySse
                     : WaveletMethod::kRestrictedDp;
      }
      if (method == WaveletMethod::kGreedySse) return stop;  // already floor
      floor.wavelet_method = WaveletMethod::kGreedySse;
      to = "greedy-sse";
    } else {
      if (floor.method == HistogramMethod::kEquiDepth) return stop;
      floor.method = HistogramMethod::kEquiDepth;
      floor.sharding.mode = RequestSharding::Mode::kOff;
      to = "equidepth";
    }
    auto served = ExecuteSingle(input, floor, workspace.get(), pool,
                                /*ctx=*/nullptr, /*max_workspace_bytes=*/0);
    if (!served.ok()) return served.status();
    results[i] = std::move(served).value();
    results[i].solver += DegradeSuffix(RouteLabel(requests[i]), to);
    results[i].timing.plan_seconds = plan_seconds;
    return Status::OK();
  };

  PointErrorTablesCache tables_cache;
  for (const auto& [key, indices] : oracle_groups) {
    // Shared phases (oracle build, group exact DP) run under the group's
    // earliest member deadline plus every member's cancellation token:
    // shared work stops as soon as any member must stop.
    Deadline earliest;
    std::vector<const CancelToken*> tokens;
    for (std::size_t i : indices) {
      if (requests[i].deadline.RemainingSeconds() <
          earliest.RemainingSeconds()) {
        earliest = requests[i].deadline;
      }
      if (requests[i].cancel != nullptr) tokens.push_back(requests[i].cancel);
    }
    ExecContext group_context(earliest, tokens.data(), tokens.size());
    const ExecContext* group_ctx =
        group_context.Unbounded() ? nullptr : &group_context;

    Stopwatch watch;
    auto bundle = MakeBucketOracle(input, requests[indices.front()].options,
                                   pool, &tables_cache);
    if (!bundle.ok()) {
      // Preprocessing failed (e.g. an injected resource fault): the whole
      // group degrades or the batch fails.
      for (std::size_t i : indices) {
        PROBSYN_RETURN_IF_ERROR(run_floor(i, bundle.status()));
      }
      continue;
    }
    const double oracle_seconds = watch.ElapsedSeconds();

    std::size_t max_exact_budget = 0;
    for (std::size_t i : indices) {
      if (effective(i).method == HistogramMethod::kOptimal) {
        max_exact_budget = std::max(max_exact_budget, effective(i).budget);
      }
    }
    if (max_exact_budget > 0) {
      watch.Restart();
      // The planner already knows the oracle's concrete type, so it picks
      // the specialized kernel directly and records it in the solver string
      // for observability.
      DpKernelOptions dp_options;
      dp_options.pool = pool;
      dp_options.workspace = workspace.get();
      dp_options.kernel = bundle->kernel;
      dp_options.context = group_ctx;
      HistogramDpResult dp = SolveHistogramDpWithKernel(
          *bundle->oracle, max_exact_budget, bundle->combiner, dp_options);
      const double dp_seconds = watch.ElapsedSeconds();
      if (dp.status().ok()) {
        for (std::size_t i : indices) {
          if (effective(i).method != HistogramMethod::kOptimal) continue;
          Stopwatch extract_watch;
          SynopsisResult& result = results[i];
          result.kind = SynopsisKind::kHistogram;
          result.histogram = dp.ExtractHistogram(effective(i).budget);
          result.cost = dp.OptimalCost(effective(i).budget);
          result.solver = FormatKernelSolver("histogram/exact-dp",
                                             DpKernelKindName(dp.kernel()),
                                             pool) +
                          degraded[i];
          result.timing.plan_seconds = plan_seconds;
          result.timing.preprocess_seconds = oracle_seconds;
          result.timing.solve_seconds =
              dp_seconds + extract_watch.ElapsedSeconds();
        }
      } else {
        // The shared solve stopped (one member's deadline/cancel, or a
        // fault). One member's signal must not fail the others: members
        // whose own context is still live re-solve solo at their own
        // budget; stopped members degrade or fail.
        for (std::size_t i : indices) {
          if (effective(i).method != HistogramMethod::kOptimal) continue;
          if (StopRequested(&contexts[i])) {
            PROBSYN_RETURN_IF_ERROR(run_floor(
                i, contexts[i].StopStatus("exact-dp", "budget layer", 0,
                                          effective(i).budget)));
            continue;
          }
          watch.Restart();
          DpKernelOptions solo_options;
          solo_options.pool = pool;
          solo_options.workspace = workspace.get();
          solo_options.kernel = bundle->kernel;
          solo_options.context = &contexts[i];
          HistogramDpResult solo = SolveHistogramDpWithKernel(
              *bundle->oracle, effective(i).budget, bundle->combiner,
              solo_options);
          if (!solo.status().ok()) {
            PROBSYN_RETURN_IF_ERROR(run_floor(i, solo.status()));
            continue;
          }
          // Extract before the next solo solve reuses the workspace.
          SynopsisResult& result = results[i];
          result.kind = SynopsisKind::kHistogram;
          result.histogram = solo.ExtractHistogram(effective(i).budget);
          result.cost = solo.OptimalCost(effective(i).budget);
          result.solver = FormatKernelSolver("histogram/exact-dp",
                                             DpKernelKindName(solo.kernel()),
                                             pool) +
                          degraded[i];
          result.timing.plan_seconds = plan_seconds;
          result.timing.preprocess_seconds = oracle_seconds;
          result.timing.solve_seconds = watch.ElapsedSeconds();
        }
      }
    }

    for (std::size_t i : indices) {
      if (effective(i).method != HistogramMethod::kApprox) continue;
      watch.Restart();
      // The planner knows the oracle's concrete type, so the approximate DP
      // gets its specialized point-cost kernel without the dynamic_cast
      // chain; the chosen kernel lands in the solver string. Approximate
      // solves are per-request, so each runs under its own context.
      ApproxDpKernelOptions approx_options;
      approx_options.kernel = bundle->kernel;
      approx_options.context = &contexts[i];
      auto approx = SolveApproxHistogramDpWithKernel(
          *bundle->oracle, effective(i).budget, effective(i).epsilon,
          approx_options);
      if (!approx.ok()) {
        PROBSYN_RETURN_IF_ERROR(run_floor(i, approx.status()));
        continue;
      }
      SynopsisResult& result = results[i];
      result.kind = SynopsisKind::kHistogram;
      result.histogram = std::move(approx->histogram);
      result.cost = approx->cost;
      result.oracle_evaluations = approx->oracle_evaluations;
      result.solver =
          FormatApproxDpSolver(approx->kernel, effective(i).epsilon) +
          degraded[i];
      result.timing.plan_seconds = plan_seconds;
      result.timing.preprocess_seconds = oracle_seconds;
      result.timing.solve_seconds = watch.ElapsedSeconds();
    }
  }

  // --- Execute everything else individually. Requests run after the
  // oracle groups have extracted their results, so sharing the batch's
  // leased workspace (the wavelet route's state arena) is safe.
  for (std::size_t i : singles) {
    auto result = ExecuteSingle(input, effective(i), workspace.get(), pool,
                                &contexts[i], options_.max_workspace_bytes);
    if (!result.ok()) {
      PROBSYN_RETURN_IF_ERROR(run_floor(i, result.status()));
      continue;
    }
    results[i] = std::move(result).value();
    results[i].solver += degraded[i];
    results[i].timing.plan_seconds = plan_seconds;
  }

  // --- Execute sharded requests. Each build fans its shard solves out on
  // the engine pool and leases per-shard workspaces from the engine's
  // workspace pool (the batch lease above is NOT shared: shard solves run
  // concurrently and each needs its own arena).
  for (std::size_t i : sharded) {
    auto result = ExecSharded(input, effective(i), pool, workspaces_.get(),
                              &contexts[i], options_.max_workspace_bytes);
    if (!result.ok()) {
      PROBSYN_RETURN_IF_ERROR(run_floor(i, result.status()));
      continue;
    }
    results[i] = std::move(result).value();
    results[i].solver += degraded[i];
    results[i].timing.plan_seconds = plan_seconds;
  }
  return results;
}

DpWorkspacePool::Stats SynopsisEngine::workspace_pool_stats() const {
  return workspaces_->stats();
}

StatusOr<SynopsisResult> SynopsisEngine::Build(
    const ValuePdfInput& input, const SynopsisRequest& request) const {
  auto batch = BuildBatch(input, {&request, 1});
  if (!batch.ok()) return batch.status();
  return std::move(batch->front());
}

StatusOr<SynopsisResult> SynopsisEngine::Build(
    const TuplePdfInput& input, const SynopsisRequest& request) const {
  auto batch = BuildBatch(input, {&request, 1});
  if (!batch.ok()) return batch.status();
  return std::move(batch->front());
}

StatusOr<std::vector<SynopsisResult>> SynopsisEngine::BuildBatch(
    const ValuePdfInput& input,
    std::span<const SynopsisRequest> requests) const {
  return BuildBatchImpl(input, requests);
}

StatusOr<std::vector<SynopsisResult>> SynopsisEngine::BuildBatch(
    const TuplePdfInput& input,
    std::span<const SynopsisRequest> requests) const {
  return BuildBatchImpl(input, requests);
}

Status SynopsisEngine::Store(const std::string& path,
                             std::span<const NamedSynopsis> synopses) const {
  SynopsisStoreWriter writer;
  for (const NamedSynopsis& entry : synopses) {
    if (entry.result.kind == SynopsisKind::kHistogram) {
      PROBSYN_RETURN_IF_ERROR(
          writer.AddHistogram(entry.name, entry.result.histogram));
    } else {
      PROBSYN_RETURN_IF_ERROR(
          writer.AddWavelet(entry.name, entry.result.wavelet));
    }
  }
  return writer.WriteFile(path);
}

StatusOr<SynopsisServer> SynopsisEngine::Serve(const std::string& path) const {
  return SynopsisServer::Open(path);
}

StatusOr<std::unique_ptr<IngestCoordinator>> SynopsisEngine::OpenIngest(
    const IngestOptions& options) const {
  if (options.max_buckets < 1) {
    return Status::InvalidArgument("OpenIngest: max_buckets must be >= 1");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("OpenIngest: epsilon must be > 0");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("OpenIngest: queue_capacity must be >= 1");
  }
  if (options.drain_batch < 1) {
    return Status::InvalidArgument("OpenIngest: drain_batch must be >= 1");
  }
  return std::make_unique<IngestCoordinator>(options, pool_.get(),
                                             workspaces_.get());
}

const char* SynopsisKindName(SynopsisKind kind) {
  return kind == SynopsisKind::kHistogram ? "histogram" : "wavelet";
}

const char* HistogramMethodName(HistogramMethod method) {
  switch (method) {
    case HistogramMethod::kOptimal: return "optimal";
    case HistogramMethod::kApprox: return "approx";
    case HistogramMethod::kStreaming: return "streaming";
    case HistogramMethod::kExpectation: return "expectation";
    case HistogramMethod::kSampledWorld: return "sampled";
    case HistogramMethod::kEquiDepth: return "equidepth";
  }
  return "?";
}

const char* WaveletMethodName(WaveletMethod method) {
  switch (method) {
    case WaveletMethod::kAuto: return "auto";
    case WaveletMethod::kGreedySse: return "greedy";
    case WaveletMethod::kRestrictedDp: return "restricted";
    case WaveletMethod::kUnrestrictedDp: return "unrestricted";
  }
  return "?";
}

StatusOr<HistogramMethod> ParseHistogramMethod(const std::string& name) {
  for (HistogramMethod m :
       {HistogramMethod::kOptimal, HistogramMethod::kApprox,
        HistogramMethod::kStreaming, HistogramMethod::kExpectation,
        HistogramMethod::kSampledWorld, HistogramMethod::kEquiDepth}) {
    if (name == HistogramMethodName(m)) return m;
  }
  return Status::InvalidArgument("unknown histogram method: " + name);
}

StatusOr<WaveletMethod> ParseWaveletMethod(const std::string& name) {
  for (WaveletMethod m :
       {WaveletMethod::kAuto, WaveletMethod::kGreedySse,
        WaveletMethod::kRestrictedDp, WaveletMethod::kUnrestrictedDp}) {
    if (name == WaveletMethodName(m)) return m;
  }
  return Status::InvalidArgument("unknown wavelet method: " + name);
}

}  // namespace probsyn
