#ifndef PROBSYN_ENGINE_SYNOPSIS_ENGINE_H_
#define PROBSYN_ENGINE_SYNOPSIS_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/dp_kernels.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/wavelet.h"
#include "core/wavelet_unrestricted.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "serve/synopsis_server.h"
#include "stream/ingest_coordinator.h"
#include "util/deadline.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// What the engine does when a request's deadline cannot be met (or its
/// workspace byte budget would be exceeded).
enum class RequestFallback {
  /// Fail the request with kDeadlineExceeded / kResourceExhausted.
  kNone,
  /// Fall down the degradation ladder instead of failing: histograms go
  /// exact -> sharded-approx -> equi-depth (sharded-exact replaces
  /// sharded-approx for maximum metrics, whose approximate DP does not
  /// apply), wavelet DP routes fall to the greedy-SSE selection. The
  /// served synopsis is truthfully re-costed and the solver string records
  /// `[degraded=<from>-><to>]`, so a degraded answer is never mistaken for
  /// the requested one.
  kDegrade,
};

/// Which synopsis family a request asks for (the paper's two synopsis
/// types over probabilistic data).
enum class SynopsisKind { kHistogram, kWavelet };

/// Construction route for histogram requests. The first three are the
/// paper's algorithmic contributions (exact DP, (1+eps)-approximate DP,
/// one-pass streaming); the rest are the section-5 comparison baselines,
/// served through the same entry point so callers can sweep methods
/// without touching per-method APIs.
enum class HistogramMethod {
  kOptimal,      ///< Exact DP (equation (2)); any metric.
  kApprox,       ///< (1+eps) DP (Theorem 5); cumulative metrics only.
  kStreaming,    ///< One-pass AHIST-style (section 3.5); SSE fixed-rep only.
  kExpectation,  ///< Optimal synopsis of the expected frequencies.
  kSampledWorld, ///< Optimal synopsis of one sampled world.
  kEquiDepth,    ///< Probabilistic quantiles; boundaries ignore the metric.
};

/// Construction route for wavelet requests.
enum class WaveletMethod {
  kAuto,            ///< Greedy for SSE (Theorem 7), restricted DP otherwise.
  kGreedySse,       ///< B largest expected coefficients (section 4.1).
  kRestrictedDp,    ///< Coefficient-tree DP, standard values (section 4.2).
  kUnrestrictedDp,  ///< Free coefficient values on a quantized grid.
};

/// Domain-sharding controls of the histogram exact/approx routes (the
/// sharded construction backend, core/sharded_dp.h): the domain is split
/// into contiguous shards whose DPs run concurrently on the engine pool,
/// then a cross-shard budget-allocation DP assigns each shard its bucket
/// count and the per-shard tracebacks concatenate.
///
/// Accuracy contract: the sharded cost is never below the unsharded
/// optimum, and (for kOptimal) equals it exactly whenever some optimal
/// histogram has a bucket boundary at every shard boundary and at most
/// `max_shard_budget` buckets per shard; otherwise the gap is
/// input-dependent and the differential sweep in tests/sharded_dp_test.cc
/// pins the measured envelope. For a fixed shard plan the result is
/// bit-identical across thread counts.
struct RequestSharding {
  /// When the engine takes the sharded route.
  enum class Mode {
    kAuto,  ///< Shard kApprox requests with domain >= shard_auto_domain.
    kOff,   ///< Never shard.
    kOn,    ///< Always shard; kOptimal/kApprox histogram requests only.
  };
  Mode mode = Mode::kAuto;
  /// Shard count S; 0 = auto (~n/8192, clamped to [2, 64]).
  std::size_t shards = 0;
  /// Per-shard bucket cap; 0 = auto (see ResolveMaxShardBudget).
  std::size_t max_shard_budget = 0;
};

/// One synopsis-construction request: input model is carried by the
/// Build/BuildBatch overload, everything else lives here. This is the
/// single entry type the paper's four disconnected construction paths
/// (exact DP, approximate DP, streaming, wavelet DPs) are unified behind.
struct SynopsisRequest {
  SynopsisKind kind = SynopsisKind::kHistogram;
  /// Bucket budget (histograms) or coefficient budget (wavelets); >= 1.
  std::size_t budget = 0;
  /// Metric, sanity constant, SSE variant, optional workload weights.
  SynopsisOptions options;

  // --- Histogram routing (ignored for kWavelet). ---
  HistogramMethod method = HistogramMethod::kOptimal;
  /// Approximation slack of kApprox / kStreaming; must be > 0 there.
  double epsilon = 0.1;
  /// Seed of the kSampledWorld baseline.
  std::uint64_t seed = 42;
  /// Domain-sharding policy of the kOptimal/kApprox routes.
  RequestSharding sharding;

  // --- Wavelet routing (ignored for kHistogram). ---
  WaveletMethod wavelet_method = WaveletMethod::kAuto;
  /// Domain cap of the restricted DP's O(n^2 B) state table.
  std::size_t wavelet_max_domain = 2048;
  /// Grid options of the unrestricted DP.
  UnrestrictedWaveletOptions unrestricted;

  // --- Robustness controls (both synopsis kinds). ---
  /// Wall-clock deadline of this request (default: never expires). Solvers
  /// poll it cooperatively at coarse granularity, so an expired deadline
  /// surfaces as kDeadlineExceeded within one poll interval — or, under
  /// RequestFallback::kDegrade, as a cheaper synopsis (see the ladder).
  /// In a batch, phases shared by a group run under the group's earliest
  /// deadline.
  Deadline deadline;
  /// Optional caller-owned cancellation token; must outlive the build.
  /// Firing it (from any thread) stops the request with kCancelled at the
  /// next poll. Cancellation never degrades — the caller asked to stop.
  const CancelToken* cancel = nullptr;
  /// Deadline/resource-overrun policy; see RequestFallback.
  RequestFallback fallback = RequestFallback::kNone;

  /// Static (input-independent) validation: budget, epsilon, and
  /// method/metric combinations that can never execute.
  Status Validate() const;
};

/// Wall-clock breakdown of one served request. In a batch, `preprocess`
/// and, for exact-DP requests, the DP part of `solve` are shared across
/// the group that reused the same oracle — each result reports the full
/// shared time (not a per-request split), so summing across a batch
/// overcounts deliberately-shared work.
struct SynopsisTiming {
  double plan_seconds = 0.0;        ///< Request validation + routing.
  double preprocess_seconds = 0.0;  ///< Oracle / table construction.
  double solve_seconds = 0.0;       ///< DP / stream / selection + extract.

  double total_seconds() const {
    return plan_seconds + preprocess_seconds + solve_seconds;
  }
};

/// Uniform result of every construction path.
struct SynopsisResult {
  SynopsisKind kind = SynopsisKind::kHistogram;
  Histogram histogram;      ///< Set when kind == kHistogram.
  WaveletSynopsis wavelet;  ///< Set when kind == kWavelet.
  /// Achieved objective value. For the optimal/approximate/streaming and
  /// wavelet-DP routes this is the solver's own (exact) cost — bit-equal
  /// to calling the underlying solver directly; for baselines it is the
  /// synopsis re-costed under the true distribution.
  double cost = 0.0;
  /// Bucket-oracle evaluations (kApprox route only; Theorem 5's currency).
  std::size_t oracle_evaluations = 0;
  /// Human-readable route, e.g.
  /// "histogram/exact-dp[kernel=sse-moment,parallel=4]" — exact-DP routes
  /// record which specialized kernel (core/dp_kernels.h) the planner chose.
  std::string solver;
  SynopsisTiming timing;
};

/// A build result paired with the name it persists and serves under —
/// the unit SynopsisEngine::Store writes and SynopsisServer looks up.
struct NamedSynopsis {
  std::string name;
  SynopsisResult result;
};

/// The unified construction facade: plan/execute split over one request
/// type. Planning validates the request and picks the oracle (via
/// oracle_factory) and solver (exact DP, approximate DP, streaming, or a
/// wavelet route); execution runs the solver on the engine's worker pool,
/// which parallelizes the exact DP's per-budget row sweeps and the
/// oracles' O(n |V|) prefix-table preprocessing.
///
/// BuildBatch serves many requests against ONE input: histogram requests
/// with identical oracle requirements (metric, sanity constant where the
/// metric uses one, SSE variant, workload) share a single preprocessed
/// oracle, and exact-DP requests in such a group share one DP solved to the
/// largest budget — the whole cost-vs-B curve of the paper's Figure 2 then
/// costs one DP run instead of |batch|. Across groups, MAE and MARE
/// requests with the same sanity constant share one O(n |V|)
/// PointErrorTables build (the tables are metric-flag independent), and all
/// exact DPs in a batch run through one leased DpWorkspace, so repeated
/// batches allocate nothing in steady state.
///
/// Every path's output is bit-identical to calling the underlying
/// builder/solver directly (a property the engine parity tests pin down);
/// the engine adds routing, sharing, parallelism, and timing — never a
/// different answer. The single deliberate exception is the sharded route
/// (see RequestSharding): it trades the global optimality guarantee for
/// scale under a documented accuracy contract, which is why kOptimal
/// requests are never auto-sharded — only Mode::kOn opts them in, while
/// kApprox requests (already approximate) auto-shard above
/// Options::shard_auto_domain, where the unsharded solvers stop being
/// feasible at all.
class SynopsisEngine {
 public:
  struct Options {
    /// Total parallel lanes (the calling thread included). 0 = auto
    /// (ThreadPool::DefaultThreadCount(), overridable via the
    /// PROBSYN_THREADS environment variable); 1 = fully sequential.
    std::size_t parallelism = 0;
    /// Domains smaller than this run sequentially even when a pool
    /// exists: fork-join overhead beats the win on tiny inputs.
    std::size_t min_parallel_domain = 256;
    /// kApprox histogram requests with RequestSharding::Mode::kAuto route
    /// to the sharded backend at domains at least this large (the regime
    /// where the unsharded approximate DP's candidate count makes single
    /// solves take minutes). kOptimal never auto-shards.
    std::size_t shard_auto_domain = 1u << 16;
    /// Upper bound on the solver-workspace bytes one request may pin at
    /// once (the restricted wavelet DP's O(n^2 B) arena, the sharded exact
    /// fan-out's per-shard tables). Exceeding it yields kResourceExhausted
    /// up front — or a degraded route under RequestFallback::kDegrade —
    /// instead of an allocation storm. 0 = uncapped.
    std::size_t max_workspace_bytes = 0;
  };

  SynopsisEngine() : SynopsisEngine(Options{}) {}
  explicit SynopsisEngine(Options options);
  ~SynopsisEngine();

  SynopsisEngine(SynopsisEngine&&) noexcept;
  SynopsisEngine& operator=(SynopsisEngine&&) noexcept;

  /// Resolved lane count (>= 1).
  std::size_t parallelism() const;

  /// Lease accounting of the engine's DP-workspace pool. `outstanding`
  /// returns to zero whenever no build is in flight — failed, cancelled,
  /// and deadline-stopped builds included — which the robustness tests
  /// assert (no lease leaks on any unwind path).
  DpWorkspacePool::Stats workspace_pool_stats() const;

  StatusOr<SynopsisResult> Build(const ValuePdfInput& input,
                                 const SynopsisRequest& request) const;
  StatusOr<SynopsisResult> Build(const TuplePdfInput& input,
                                 const SynopsisRequest& request) const;

  /// Serves all requests against one input, sharing oracles and exact DPs
  /// where requests allow (see class comment). All-or-nothing: the first
  /// failing request fails the batch. Results are positionally aligned
  /// with `requests`.
  StatusOr<std::vector<SynopsisResult>> BuildBatch(
      const ValuePdfInput& input,
      std::span<const SynopsisRequest> requests) const;
  StatusOr<std::vector<SynopsisResult>> BuildBatch(
      const TuplePdfInput& input,
      std::span<const SynopsisRequest> requests) const;

  /// Persists build results as one synopsis store file (the serving tier's
  /// on-disk format; see serve/synopsis_store.h): each result is encoded
  /// as a checksummed codec blob under its name. Fails without writing on
  /// an invalid synopsis, a duplicate or empty name, or I/O errors —
  /// build -> Store -> Serve is the engine's end-to-end pipeline.
  Status Store(const std::string& path,
               std::span<const NamedSynopsis> synopses) const;

  /// Opens a store written by Store (or SynopsisStoreWriter) and stands up
  /// the query tier over it. Every blob is decoded and checksum-verified
  /// before the server is returned.
  StatusOr<SynopsisServer> Serve(const std::string& path) const;

  /// Stands up the concurrent ingest tier (stream/ingest_coordinator.h)
  /// over this engine's worker pool and workspace pool: each opened stream
  /// leases its own DpWorkspace (warm chain-store capacity across
  /// coordinator generations), and DrainAll fans out one pool lane per
  /// stream. Validates `options` (kInvalidArgument on a zero budget or
  /// capacity, non-positive epsilon). The engine must outlive the returned
  /// coordinator.
  StatusOr<std::unique_ptr<IngestCoordinator>> OpenIngest(
      const IngestOptions& options) const;

 private:
  template <typename Input>
  StatusOr<std::vector<SynopsisResult>> BuildBatchImpl(
      const Input& input, std::span<const SynopsisRequest> requests) const;

  /// The pool to hand a solver working on `domain_size` items; null when
  /// the engine is sequential or the input is below the parallel cutoff.
  ThreadPool* PoolFor(std::size_t domain_size) const;

  Options options_;
  std::unique_ptr<ThreadPool> pool_;  // null when parallelism() == 1
  /// Leased per BuildBatch call: exact-DP err/choice/rep layers and cost
  /// columns are reused across batches (zero steady-state allocation) while
  /// concurrent callers of the const entry points each get their own arena.
  std::unique_ptr<DpWorkspacePool> workspaces_;
};

/// Stable display name of a synopsis kind ("histogram", "wavelet").
const char* SynopsisKindName(SynopsisKind kind);
/// Stable display name of a histogram route ("optimal", "approx", ...).
const char* HistogramMethodName(HistogramMethod method);
/// Stable display name of a wavelet route ("auto", "greedy", ...).
const char* WaveletMethodName(WaveletMethod method);
/// Inverse of HistogramMethodName; InvalidArgument on unknown names.
StatusOr<HistogramMethod> ParseHistogramMethod(const std::string& name);
/// Inverse of WaveletMethodName; InvalidArgument on unknown names.
StatusOr<WaveletMethod> ParseWaveletMethod(const std::string& name);

}  // namespace probsyn

#endif  // PROBSYN_ENGINE_SYNOPSIS_ENGINE_H_
