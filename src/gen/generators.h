#ifndef PROBSYN_GEN_GENERATORS_H_
#define PROBSYN_GEN_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/basic.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"

namespace probsyn {

/// Synthetic stand-in for the MystiQ movie-linkage data set the paper's
/// experiments use (section 5: ~127k basic-model tuples over ~27.7k items,
/// "links between a movie database and an e-commerce inventory" — per-item
/// tuples are candidate matches with confidence probabilities).
///
/// The generator reproduces the statistical regime that makes that data
/// interesting for synopses (DESIGN.md substitution 1):
///  * per-item match counts follow a Zipf tail (most items have 1-2
///    candidate matches, a heavy tail has many);
///  * match confidences are bimodal — a high-confidence mode (clean links)
///    and a low-confidence mode (fuzzy links) — so some items are
///    near-deterministic and others highly uncertain;
///  * the domain is segmented into contiguous "genres" whose regimes
///    (typical match count / confidence mix) differ, giving histograms
///    real bucket structure to find.
struct MovieLinkageOptions {
  std::size_t domain_size = 1024;
  /// Zipf skew of per-item match counts.
  double zipf_alpha = 1.2;
  /// Cap on candidate matches per item.
  std::size_t max_matches = 12;
  /// Expected number of contiguous regime segments.
  std::size_t num_segments = 24;
  /// Fraction of matches drawn from the high-confidence mode.
  double high_confidence_fraction = 0.35;
  /// When true, match counts and confidence levels are (nearly) constant
  /// within each segment, so *expected* frequencies are locally smooth
  /// while per-item variance stays high. This is the regime where sampled
  /// possible worlds mis-rank wavelet coefficients hardest (spurious
  /// fine-scale noise displaces true coarse structure) — used by the
  /// Figure 4 reproduction. The default (false) draws per-item match
  /// counts i.i.d., the regime the histogram experiments use.
  bool smooth_segments = false;
  std::uint64_t seed = 42;
};
BasicModelInput GenerateMovieLinkage(const MovieLinkageOptions& options);

/// Synthetic stand-in for the MayBMS-extended TPC-H generator the paper
/// uses for tuple-pdf input (section 5: lineitem-partkey "where the
/// multiple possibilities for each uncertain item are interpreted as tuples
/// with uniform probability over the set of values" — DESIGN.md
/// substitution 2). Each row spreads its mass uniformly over a small set of
/// alternative keys near a Zipf-popular base key.
struct MaybmsTpchOptions {
  std::size_t domain_size = 1024;
  std::size_t num_tuples = 4096;
  /// Alternatives per row are uniform over {1, ..., max_alternatives}.
  std::size_t max_alternatives = 4;
  /// How far alternatives may scatter around the base key.
  std::size_t alternative_spread = 8;
  /// Probability mass reserved for "row absent" (0 = rows always present).
  double absent_probability = 0.1;
  /// Zipf skew of the base-key popularity.
  double zipf_alpha = 0.8;
  std::uint64_t seed = 7;
};
TuplePdfInput GenerateMaybmsTpch(const MaybmsTpchOptions& options);

/// Unstructured random value-pdf input for tests and micro-benchmarks:
/// each item gets a pdf over at most `max_support` integer frequencies in
/// [0, max_value] with Dirichlet-ish random probabilities.
struct RandomValuePdfOptions {
  std::size_t domain_size = 64;
  std::size_t max_support = 4;
  std::size_t max_value = 8;
  std::uint64_t seed = 1;
};
ValuePdfInput GenerateRandomValuePdf(const RandomValuePdfOptions& options);

/// Unstructured random tuple-pdf input for tests.
struct RandomTuplePdfOptions {
  std::size_t domain_size = 8;
  std::size_t num_tuples = 6;
  std::size_t max_alternatives = 3;
  /// If true, alternative probabilities may sum to < 1 (absent rows).
  bool allow_absent = true;
  std::uint64_t seed = 1;
};
TuplePdfInput GenerateRandomTuplePdf(const RandomTuplePdfOptions& options);

/// Deterministic Zipf-ish frequency vector (classic synopsis test data).
std::vector<double> GenerateZipfFrequencies(std::size_t domain_size,
                                            double alpha, double total_mass,
                                            std::uint64_t seed);

}  // namespace probsyn

#endif  // PROBSYN_GEN_GENERATORS_H_
