#include "gen/generators.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace probsyn {

namespace {

// A contiguous regime segment of the movie-linkage domain.
struct Segment {
  std::size_t begin = 0;
  std::size_t end = 0;        // exclusive
  double match_boost = 1.0;   // multiplies typical match count
  double high_conf_mix = 0.35;
};

std::vector<Segment> MakeSegments(std::size_t n, std::size_t num_segments,
                                  double base_mix, Rng& rng) {
  num_segments = std::max<std::size_t>(1, std::min(num_segments, n));
  // Random cut points.
  std::vector<std::size_t> cuts{0, n};
  while (cuts.size() < num_segments + 1) {
    cuts.push_back(rng.NextBounded(n));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<Segment> segments;
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    Segment s;
    s.begin = cuts[k];
    s.end = cuts[k + 1];
    // Regimes: quiet (few matches), normal, hot (many matches), and their
    // confidence mixes vary so expected frequency and variance decouple.
    switch (rng.NextBounded(4)) {
      case 0:
        s.match_boost = 0.3;
        s.high_conf_mix = 0.8;
        break;
      case 1:
        s.match_boost = 1.0;
        s.high_conf_mix = base_mix;
        break;
      case 2:
        s.match_boost = 2.5;
        s.high_conf_mix = base_mix;
        break;
      default:
        s.match_boost = 1.5;
        s.high_conf_mix = 0.1;  // hot but fuzzy: high variance
        break;
    }
    segments.push_back(s);
  }
  return segments;
}

}  // namespace

BasicModelInput GenerateMovieLinkage(const MovieLinkageOptions& options) {
  PROBSYN_CHECK(options.domain_size > 0);
  Rng rng(options.seed);
  ZipfDistribution match_zipf(std::max<std::size_t>(1, options.max_matches),
                              options.zipf_alpha);
  std::vector<Segment> segments =
      MakeSegments(options.domain_size, options.num_segments,
                   options.high_confidence_fraction, rng);

  std::vector<BasicTuple> tuples;
  tuples.reserve(options.domain_size * 3);
  for (const Segment& seg : segments) {
    // Smooth mode: one match count and one confidence level per segment,
    // jittered lightly per tuple — expectations are locally flat, variance
    // is not.
    std::size_t seg_count = std::max<std::size_t>(
        1, std::min(options.max_matches,
                    static_cast<std::size_t>(std::lround(
                        match_zipf.Sample(rng) * seg.match_boost))));
    double seg_level = rng.NextUniform(0.15, 0.85);

    for (std::size_t i = seg.begin; i < seg.end; ++i) {
      std::size_t k;
      if (options.smooth_segments) {
        k = seg_count;
        if (rng.NextBernoulli(0.05)) k += rng.NextBounded(3);
      } else {
        std::size_t base = match_zipf.Sample(rng);
        k = std::max<std::size_t>(
            1, std::min(options.max_matches,
                        static_cast<std::size_t>(
                            std::lround(base * seg.match_boost))));
      }
      for (std::size_t j = 0; j < k; ++j) {
        double p;
        if (options.smooth_segments) {
          p = std::clamp(seg_level + rng.NextUniform(-0.05, 0.05), 0.01, 1.0);
        } else {
          p = rng.NextBernoulli(seg.high_conf_mix)
                  ? rng.NextUniform(0.7, 1.0)     // clean link
                  : rng.NextUniform(0.02, 0.45);  // fuzzy link
        }
        tuples.push_back({i, p});
      }
    }
  }
  return BasicModelInput(options.domain_size, std::move(tuples));
}

TuplePdfInput GenerateMaybmsTpch(const MaybmsTpchOptions& options) {
  PROBSYN_CHECK(options.domain_size > 0 && options.max_alternatives > 0);
  Rng rng(options.seed);
  ZipfDistribution key_zipf(options.domain_size, options.zipf_alpha);

  std::vector<ProbTuple> tuples;
  tuples.reserve(options.num_tuples);
  for (std::size_t t = 0; t < options.num_tuples; ++t) {
    std::size_t base = key_zipf.Sample(rng) - 1;  // zipf is 1-based
    std::size_t k = 1 + rng.NextBounded(options.max_alternatives);
    double present =
        1.0 - (options.absent_probability > 0.0
                   ? rng.NextUniform(0.0, options.absent_probability)
                   : 0.0);
    // MayBMS-style uniform alternatives scattered near the base key.
    std::vector<TupleAlternative> alts;
    alts.reserve(k);
    for (std::size_t a = 0; a < k; ++a) {
      std::size_t spread = options.alternative_spread + 1;
      std::size_t item = base + rng.NextBounded(spread);
      item = std::min(item, options.domain_size - 1);
      alts.push_back({item, present / static_cast<double>(k)});
    }
    auto tuple = ProbTuple::Create(std::move(alts));
    PROBSYN_CHECK(tuple.ok());
    tuples.push_back(std::move(tuple).value());
  }
  return TuplePdfInput(options.domain_size, std::move(tuples));
}

ValuePdfInput GenerateRandomValuePdf(const RandomValuePdfOptions& options) {
  PROBSYN_CHECK(options.domain_size > 0 && options.max_support > 0);
  Rng rng(options.seed);
  std::vector<ValuePdf> items;
  items.reserve(options.domain_size);
  for (std::size_t i = 0; i < options.domain_size; ++i) {
    std::size_t support = 1 + rng.NextBounded(options.max_support);
    std::vector<ValueProb> entries;
    double remaining = 1.0;
    for (std::size_t s = 0; s < support; ++s) {
      double value = static_cast<double>(rng.NextBounded(options.max_value + 1));
      double p = (s + 1 == support) ? remaining
                                    : rng.NextUniform(0.0, remaining);
      remaining -= p;
      if (p > 0.0) entries.push_back({value, p});
    }
    auto pdf = ValuePdf::Create(std::move(entries));
    PROBSYN_CHECK(pdf.ok());
    items.push_back(std::move(pdf).value());
  }
  return ValuePdfInput(std::move(items));
}

TuplePdfInput GenerateRandomTuplePdf(const RandomTuplePdfOptions& options) {
  PROBSYN_CHECK(options.domain_size > 0 && options.num_tuples > 0);
  Rng rng(options.seed);
  std::vector<ProbTuple> tuples;
  tuples.reserve(options.num_tuples);
  for (std::size_t t = 0; t < options.num_tuples; ++t) {
    std::size_t k = 1 + rng.NextBounded(options.max_alternatives);
    double budget = options.allow_absent ? rng.NextUniform(0.5, 1.0) : 1.0;
    std::vector<TupleAlternative> alts;
    double remaining = budget;
    for (std::size_t a = 0; a < k; ++a) {
      std::size_t item = rng.NextBounded(options.domain_size);
      double p = (a + 1 == k) ? remaining : rng.NextUniform(0.0, remaining);
      remaining -= p;
      if (p > 0.0) alts.push_back({item, p});
    }
    if (alts.empty()) alts.push_back({rng.NextBounded(options.domain_size), budget});
    auto tuple = ProbTuple::Create(std::move(alts));
    PROBSYN_CHECK(tuple.ok());
    tuples.push_back(std::move(tuple).value());
  }
  return TuplePdfInput(options.domain_size, std::move(tuples));
}

std::vector<double> GenerateZipfFrequencies(std::size_t domain_size,
                                            double alpha, double total_mass,
                                            std::uint64_t seed) {
  PROBSYN_CHECK(domain_size > 0);
  Rng rng(seed);
  // Zipf weights assigned to a random permutation of the domain.
  std::vector<double> freqs(domain_size);
  double norm = 0.0;
  for (std::size_t k = 1; k <= domain_size; ++k) {
    norm += 1.0 / std::pow(static_cast<double>(k), alpha);
  }
  std::vector<std::size_t> perm(domain_size);
  for (std::size_t i = 0; i < domain_size; ++i) perm[i] = i;
  for (std::size_t i = domain_size; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  for (std::size_t k = 0; k < domain_size; ++k) {
    freqs[perm[k]] = total_mass / norm /
                     std::pow(static_cast<double>(k + 1), alpha);
  }
  return freqs;
}

}  // namespace probsyn
