#include "io/pdata.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "util/fault_injection.h"

namespace probsyn {

namespace {

constexpr char kMagic[] = "probsyn-pdata";
constexpr char kVersion[] = "v1";
constexpr int kPrecision = 17;  // round-trip doubles exactly

// Declared row/domain counts above this are treated as corruption: the
// readers preallocate by the declared count, and a scrambled header must
// yield kInvalidArgument, not a multi-gigabyte allocation attempt.
constexpr std::size_t kMaxDeclaredCount = std::size_t{1} << 26;

// Tracks where in the stream the reader is, so parse failures can say
// exactly which line (1-based) and byte offset the corruption sits at.
struct LineCursor {
  std::size_t line = 0;    // line number of the last line handed out
  std::size_t offset = 0;  // byte offset where that line began
  std::size_t next_offset = 0;
};

// Reads the next non-comment, non-blank line into `line`, advancing the
// cursor past skipped lines.
bool NextLine(std::istream& is, std::string& line, LineCursor& cursor) {
  while (std::getline(is, line)) {
    ++cursor.line;
    cursor.offset = cursor.next_offset;
    cursor.next_offset += line.size() + 1;  // newline eaten by getline
    std::size_t pos = line.find('#');
    if (pos != std::string::npos) line.resize(pos);
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) return true;
  }
  return false;
}

std::string At(const LineCursor& cursor) {
  return " (line " + std::to_string(cursor.line) + ", byte offset " +
         std::to_string(cursor.offset) + ")";
}

// Corrupt content the reader located: kInvalidArgument with position.
Status ParseError(const std::string& what, const LineCursor& cursor) {
  return Status::InvalidArgument(what + At(cursor));
}

// Stream ended (or failed) before the declared content: kIOError with the
// position of the last line successfully read.
Status TruncatedError(const std::string& what, const LineCursor& cursor) {
  return Status::IOError(what + At(cursor));
}

StatusOr<std::string> ReadHeader(std::istream& is, const std::string& kind,
                                 LineCursor& cursor) {
  PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kPdataRead));
  std::string line;
  if (!NextLine(is, line, cursor)) return Status::IOError("empty stream");
  std::istringstream ls(line);
  std::string magic, version, got_kind;
  ls >> magic >> version >> got_kind;
  if (magic != kMagic) return ParseError("bad magic: " + magic, cursor);
  if (version != kVersion) {
    return ParseError("unsupported version: " + version, cursor);
  }
  if (got_kind != kind) {
    return ParseError("expected " + kind + " stream, got " + got_kind, cursor);
  }
  return got_kind;
}

// Guards the preallocations below against scrambled count fields.
Status ValidateDeclaredCount(const char* what, std::size_t count,
                             const LineCursor& cursor) {
  if (count > kMaxDeclaredCount) {
    return ParseError(std::string("declared ") + what + " count " +
                          std::to_string(count) + " exceeds the sanity cap " +
                          std::to_string(kMaxDeclaredCount),
                      cursor);
  }
  return Status::OK();
}

}  // namespace

Status WriteValuePdf(std::ostream& os, const ValuePdfInput& input) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  os << kMagic << ' ' << kVersion << " value_pdf\n";
  os << "n " << input.domain_size() << "\n";
  os << std::setprecision(kPrecision);
  for (std::size_t i = 0; i < input.domain_size(); ++i) {
    const ValuePdf& pdf = input.item(i);
    os << "item " << i << ' ' << pdf.size();
    for (const ValueProb& e : pdf.entries()) {
      os << ' ' << e.value << ' ' << e.probability;
    }
    os << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<ValuePdfInput> ReadValuePdf(std::istream& is) {
  LineCursor cursor;
  PROBSYN_RETURN_IF_ERROR(ReadHeader(is, "value_pdf", cursor).status());

  std::string line;
  if (!NextLine(is, line, cursor)) {
    return TruncatedError("missing domain line", cursor);
  }
  std::istringstream ls(line);
  std::string tag;
  std::size_t n = 0;
  ls >> tag >> n;
  if (tag != "n" || ls.fail()) return ParseError("bad n line", cursor);
  PROBSYN_RETURN_IF_ERROR(ValidateDeclaredCount("item", n, cursor));

  std::vector<ValuePdf> items(n);
  std::vector<bool> seen(n, false);
  for (std::size_t row = 0; row < n; ++row) {
    PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kPdataRead));
    if (!NextLine(is, line, cursor)) {
      return TruncatedError("truncated value_pdf: got " + std::to_string(row) +
                                " of " + std::to_string(n) + " items",
                            cursor);
    }
    std::istringstream es(line);
    std::size_t index = 0, pairs = 0;
    es >> tag >> index >> pairs;
    if (tag != "item" || es.fail() || index >= n) {
      return ParseError("bad item line: " + line, cursor);
    }
    if (pairs > line.size()) {
      // Each pair needs several bytes on its line; a count beyond the line
      // length is corruption, caught before the entries allocation.
      return ParseError("item pair count " + std::to_string(pairs) +
                            " exceeds the line length",
                        cursor);
    }
    if (seen[index]) {
      return ParseError("duplicate item " + std::to_string(index), cursor);
    }
    std::vector<ValueProb> entries(pairs);
    for (ValueProb& e : entries) {
      es >> e.value >> e.probability;
    }
    if (es.fail()) return ParseError("bad item pairs: " + line, cursor);
    auto pdf = ValuePdf::Create(std::move(entries));
    if (!pdf.ok()) {
      return ParseError(pdf.status().message(), cursor);
    }
    items[index] = std::move(pdf).value();
    seen[index] = true;
  }
  ValuePdfInput input(std::move(items));
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  return input;
}

Status WriteTuplePdf(std::ostream& os, const TuplePdfInput& input) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  os << kMagic << ' ' << kVersion << " tuple_pdf\n";
  os << "n " << input.domain_size() << " m " << input.num_tuples() << "\n";
  os << std::setprecision(kPrecision);
  for (const ProbTuple& t : input.tuples()) {
    os << "tuple " << t.size();
    for (const TupleAlternative& a : t.alternatives()) {
      os << ' ' << a.item << ' ' << a.probability;
    }
    os << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<TuplePdfInput> ReadTuplePdf(std::istream& is) {
  LineCursor cursor;
  PROBSYN_RETURN_IF_ERROR(ReadHeader(is, "tuple_pdf", cursor).status());

  std::string line;
  if (!NextLine(is, line, cursor)) {
    return TruncatedError("missing domain line", cursor);
  }
  std::istringstream ls(line);
  std::string tag_n, tag_m;
  std::size_t n = 0, m = 0;
  ls >> tag_n >> n >> tag_m >> m;
  if (tag_n != "n" || tag_m != "m" || ls.fail()) {
    return ParseError("bad n/m line", cursor);
  }
  PROBSYN_RETURN_IF_ERROR(ValidateDeclaredCount("tuple", m, cursor));

  std::vector<ProbTuple> tuples;
  tuples.reserve(m);
  for (std::size_t row = 0; row < m; ++row) {
    PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kPdataRead));
    if (!NextLine(is, line, cursor)) {
      return TruncatedError("truncated tuple_pdf: got " + std::to_string(row) +
                                " of " + std::to_string(m) + " tuples",
                            cursor);
    }
    std::istringstream es(line);
    std::string tag;
    std::size_t alternatives = 0;
    es >> tag >> alternatives;
    if (tag != "tuple" || es.fail()) {
      return ParseError("bad tuple line: " + line, cursor);
    }
    if (alternatives > line.size()) {
      return ParseError("tuple alternative count " +
                            std::to_string(alternatives) +
                            " exceeds the line length",
                        cursor);
    }
    std::vector<TupleAlternative> alts(alternatives);
    for (TupleAlternative& a : alts) {
      es >> a.item >> a.probability;
    }
    if (es.fail()) return ParseError("bad tuple pairs: " + line, cursor);
    auto tuple = ProbTuple::Create(std::move(alts));
    if (!tuple.ok()) {
      return ParseError(tuple.status().message(), cursor);
    }
    tuples.push_back(std::move(tuple).value());
  }
  TuplePdfInput input(n, std::move(tuples));
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  return input;
}

Status WriteBasicModel(std::ostream& os, const BasicModelInput& input) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  os << kMagic << ' ' << kVersion << " basic\n";
  os << "n " << input.domain_size() << " m " << input.num_tuples() << "\n";
  os << std::setprecision(kPrecision);
  for (const BasicTuple& t : input.tuples()) {
    os << "t " << t.item << ' ' << t.probability << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<BasicModelInput> ReadBasicModel(std::istream& is) {
  LineCursor cursor;
  PROBSYN_RETURN_IF_ERROR(ReadHeader(is, "basic", cursor).status());

  std::string line;
  if (!NextLine(is, line, cursor)) {
    return TruncatedError("missing domain line", cursor);
  }
  std::istringstream ls(line);
  std::string tag_n, tag_m;
  std::size_t n = 0, m = 0;
  ls >> tag_n >> n >> tag_m >> m;
  if (tag_n != "n" || tag_m != "m" || ls.fail()) {
    return ParseError("bad n/m line", cursor);
  }
  PROBSYN_RETURN_IF_ERROR(ValidateDeclaredCount("tuple", m, cursor));

  std::vector<BasicTuple> tuples;
  tuples.reserve(m);
  for (std::size_t row = 0; row < m; ++row) {
    PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kPdataRead));
    if (!NextLine(is, line, cursor)) {
      return TruncatedError("truncated basic model: got " +
                                std::to_string(row) + " of " +
                                std::to_string(m) + " tuples",
                            cursor);
    }
    std::istringstream es(line);
    std::string tag;
    BasicTuple t;
    es >> tag >> t.item >> t.probability;
    if (tag != "t" || es.fail()) {
      return ParseError("bad basic tuple line: " + line, cursor);
    }
    tuples.push_back(t);
  }
  BasicModelInput input(n, std::move(tuples));
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  return input;
}

namespace {

template <typename Writer, typename T>
Status SaveToFile(const std::string& path, const T& value, Writer writer) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot open for writing: " + path);
  return writer(os, value);
}

}  // namespace

Status SaveValuePdf(const std::string& path, const ValuePdfInput& input) {
  return SaveToFile(path, input,
                    [](std::ostream& os, const ValuePdfInput& v) {
                      return WriteValuePdf(os, v);
                    });
}

StatusOr<ValuePdfInput> LoadValuePdf(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  return ReadValuePdf(is);
}

Status SaveTuplePdf(const std::string& path, const TuplePdfInput& input) {
  return SaveToFile(path, input,
                    [](std::ostream& os, const TuplePdfInput& v) {
                      return WriteTuplePdf(os, v);
                    });
}

StatusOr<TuplePdfInput> LoadTuplePdf(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  return ReadTuplePdf(is);
}

Status SaveBasicModel(const std::string& path, const BasicModelInput& input) {
  return SaveToFile(path, input,
                    [](std::ostream& os, const BasicModelInput& v) {
                      return WriteBasicModel(os, v);
                    });
}

StatusOr<BasicModelInput> LoadBasicModel(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  return ReadBasicModel(is);
}

StatusOr<std::string> DetectPdataKind(std::istream& is) {
  PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kPdataRead));
  LineCursor cursor;
  std::string line;
  if (!NextLine(is, line, cursor)) return Status::IOError("empty stream");
  std::istringstream ls(line);
  std::string magic, version, kind;
  ls >> magic >> version >> kind;
  if (magic != kMagic) return ParseError("bad magic: " + magic, cursor);
  if (kind != "value_pdf" && kind != "tuple_pdf" && kind != "basic") {
    return ParseError("unknown pdata kind: " + kind, cursor);
  }
  return kind;
}

StatusOr<std::string> DetectPdataKindFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  return DetectPdataKind(is);
}

Status WriteHistogramCsv(std::ostream& os, const Histogram& histogram) {
  os << "bucket,start,end,representative\n";
  os << std::setprecision(kPrecision);
  for (std::size_t k = 0; k < histogram.num_buckets(); ++k) {
    const HistogramBucket& b = histogram.buckets()[k];
    os << k << ',' << b.start << ',' << b.end << ',' << b.representative
       << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<Histogram> ReadHistogramCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return Status::IOError("empty CSV");
  if (line.rfind("bucket,start,end,representative", 0) != 0) {
    return Status::InvalidArgument("not a histogram CSV: " + line);
  }
  std::vector<HistogramBucket> buckets;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::replace(line.begin(), line.end(), ',', ' ');
    std::istringstream ls(line);
    std::size_t index = 0;
    HistogramBucket b;
    ls >> index >> b.start >> b.end >> b.representative;
    if (ls.fail()) return Status::InvalidArgument("bad CSV row: " + line);
    if (index != buckets.size()) {
      return Status::InvalidArgument("CSV rows out of order");
    }
    buckets.push_back(b);
  }
  if (buckets.empty()) return Status::InvalidArgument("no buckets in CSV");
  Histogram histogram(std::move(buckets));
  PROBSYN_RETURN_IF_ERROR(histogram.Validate(histogram.domain_size()));
  return histogram;
}

Status WriteWaveletCsv(std::ostream& os, const WaveletSynopsis& synopsis) {
  os << "coefficient_index,value\n";
  os << std::setprecision(kPrecision);
  for (const WaveletCoefficient& c : synopsis.coefficients()) {
    os << c.index << ',' << c.value << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace probsyn
