#ifndef PROBSYN_IO_SYNOPSIS_CODEC_H_
#define PROBSYN_IO_SYNOPSIS_CODEC_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/histogram.h"
#include "core/wavelet.h"
#include "util/status.h"

namespace probsyn {

// Compact, versioned, checksummed binary serialization of the two synopsis
// families — the wire/storage format of the serving tier (the .pdata text
// format in io/pdata.h persists INPUTS; this codec persists the built
// synopses a store serves queries from).
//
// Blob layout (all integers little-endian):
//
//   offset 0   magic "PSYN" (4 bytes)
//          4   format version (u8, currently 1)
//          5   kind (u8: 1 = histogram, 2 = wavelet)
//          6   reserved (u16, must be 0)
//          8   payload size P (u32)
//         12   payload (P bytes, see below)
//       12+P   checksum (u64: FNV-1a 64 over bytes [0, 12+P))
//
// Histogram payload: varint domain size n, varint bucket count B, then B
// varint-encoded bucket-boundary deltas (first is e_0 + 1, then
// e_k - e_{k-1}; each >= 1, summing to n — starts are implied by the
// partition invariant), then B representatives as raw 8-byte doubles.
//
// Wavelet payload: varint domain size, varint transform size (a power of
// two), varint coefficient count B, then B coefficient indices bit-packed
// at fixed width ceil(log2(transform size)) (LSB-first within bytes,
// strictly increasing), then B coefficient values as raw 8-byte doubles.
//
// Decoding is strict: magic/version/kind/reserved mismatches, size
// mismatches, checksum failures, varints running past the payload,
// non-monotone boundaries or indices, and declared-count blowups all
// return a clean error Status (kInvalidArgument for malformed structure,
// kIOError for truncation/corruption) — never a crash or a silently wrong
// synopsis. Every single-byte corruption is caught by the checksum, which
// the codec tests sweep exhaustively. Decode entry points also pass
// through the FaultSite::kPdataRead injection site, so the seeded fault
// campaigns exercise the serving tier's read path.

/// Kind tag carried in a codec blob header.
enum class SynopsisBlobKind : std::uint8_t {
  kHistogram = 1,
  kWavelet = 2,
};

/// Stable display name ("histogram", "wavelet").
const char* SynopsisBlobKindName(SynopsisBlobKind kind);

/// Current (and only) format version emitted by the encoders.
inline constexpr std::uint8_t kSynopsisCodecVersion = 1;

/// Encodes a histogram as a self-contained v1 blob. Fails with
/// kInvalidArgument if the buckets violate the partition invariants.
StatusOr<std::string> EncodeHistogram(const Histogram& histogram);

/// Encodes a wavelet synopsis as a self-contained v1 blob. Fails with
/// kInvalidArgument if the synopsis fails Validate().
StatusOr<std::string> EncodeWavelet(const WaveletSynopsis& synopsis);

/// Decodes a histogram blob. The result is bitwise-identical to the
/// encoded histogram (boundaries and representative doubles round-trip
/// exactly); see the class comment for the error contract.
StatusOr<Histogram> DecodeHistogram(std::span<const std::uint8_t> blob);

/// Decodes a wavelet blob; bitwise round trip, strict errors.
StatusOr<WaveletSynopsis> DecodeWavelet(std::span<const std::uint8_t> blob);

/// Validates the fixed header only (magic, version, reserved, payload size
/// vs. `blob.size()`) and returns the declared kind without touching the
/// payload or checksum. O(1); the store uses it to tag directory entries.
StatusOr<SynopsisBlobKind> PeekSynopsisBlobKind(
    std::span<const std::uint8_t> blob);

/// A decoded blob of either kind: exactly one of the two members is
/// meaningful, selected by `kind`.
struct DecodedSynopsis {
  SynopsisBlobKind kind = SynopsisBlobKind::kHistogram;
  Histogram histogram;      ///< Set when kind == kHistogram.
  WaveletSynopsis wavelet;  ///< Set when kind == kWavelet.
};

/// Decodes a blob of either kind (full validation, checksum included).
StatusOr<DecodedSynopsis> DecodeSynopsis(std::span<const std::uint8_t> blob);

}  // namespace probsyn

#endif  // PROBSYN_IO_SYNOPSIS_CODEC_H_
