#ifndef PROBSYN_IO_PDATA_H_
#define PROBSYN_IO_PDATA_H_

#include <iosfwd>
#include <string>

#include "core/histogram.h"
#include "core/wavelet.h"
#include "model/basic.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// Plain-text serialization of the three probabilistic data models
/// (".pdata"): line-oriented, whitespace-separated, '#' comments. The
/// examples use it to persist generated inputs and the synopses built over
/// them, so runs are inspectable and repeatable.
///
///   probsyn-pdata v1 value_pdf
///   n <domain>
///   item <index> <num_pairs> [<value> <prob>]...
///
///   probsyn-pdata v1 tuple_pdf
///   n <domain> m <rows>
///   tuple <num_alternatives> [<item> <prob>]...
///
///   probsyn-pdata v1 basic
///   n <domain> m <rows>
///   t <item> <prob>
///
/// The value-pdf writer emits the normalized representation (explicit zero
/// entry included); reading a written stream round-trips exactly.

Status WriteValuePdf(std::ostream& os, const ValuePdfInput& input);
StatusOr<ValuePdfInput> ReadValuePdf(std::istream& is);

Status WriteTuplePdf(std::ostream& os, const TuplePdfInput& input);
StatusOr<TuplePdfInput> ReadTuplePdf(std::istream& is);

Status WriteBasicModel(std::ostream& os, const BasicModelInput& input);
StatusOr<BasicModelInput> ReadBasicModel(std::istream& is);

/// File-path convenience wrappers.
Status SaveValuePdf(const std::string& path, const ValuePdfInput& input);
StatusOr<ValuePdfInput> LoadValuePdf(const std::string& path);
Status SaveTuplePdf(const std::string& path, const TuplePdfInput& input);
StatusOr<TuplePdfInput> LoadTuplePdf(const std::string& path);
Status SaveBasicModel(const std::string& path, const BasicModelInput& input);
StatusOr<BasicModelInput> LoadBasicModel(const std::string& path);

/// Peeks a .pdata stream/file header and reports the model kind
/// ("value_pdf", "tuple_pdf" or "basic") without parsing the body.
StatusOr<std::string> DetectPdataKind(std::istream& is);
StatusOr<std::string> DetectPdataKindFile(const std::string& path);

/// CSV export of synopses (for plotting / inspection), and the matching
/// reader so persisted histograms can be re-evaluated later.
Status WriteHistogramCsv(std::ostream& os, const Histogram& histogram);
StatusOr<Histogram> ReadHistogramCsv(std::istream& is);
Status WriteWaveletCsv(std::ostream& os, const WaveletSynopsis& synopsis);

}  // namespace probsyn

#endif  // PROBSYN_IO_PDATA_H_
