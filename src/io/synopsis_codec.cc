#include "io/synopsis_codec.h"

#include <bit>
#include <cstring>

#include "util/fault_injection.h"

namespace probsyn {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'Y', 'N'};
constexpr std::size_t kHeaderBytes = 12;    // magic + version + kind + rsv + P
constexpr std::size_t kChecksumBytes = 8;   // trailing FNV-1a 64

// Declared element counts above this are treated as corruption: the
// decoders preallocate by the declared count, and a hand-crafted header
// must yield a clean error, not a multi-gigabyte allocation attempt.
// (Checksum verification happens first, so blobs that were merely
// bit-flipped never reach the count checks.)
constexpr std::uint64_t kMaxDeclaredCount = std::uint64_t{1} << 26;

std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void AppendVarint(std::uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendDouble(double v, std::string* out) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits, out);
}

// Sequential reader over the payload span; every Read* reports truncation
// as kIOError with the byte offset, so corruption diagnostics say where.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload)
      : payload_(payload) {}

  std::size_t offset() const { return offset_; }
  bool exhausted() const { return offset_ == payload_.size(); }

  StatusOr<std::uint64_t> ReadVarint(const char* what) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (offset_ >= payload_.size()) return Truncated(what);
      std::uint8_t byte = payload_[offset_++];
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        if (shift > 0 && byte == 0) {
          return Malformed(what, "non-canonical varint");
        }
        return value;
      }
      // A 10th continuation byte would shift past 63 bits: overflow.
      if (shift == 63) return Malformed(what, "varint overflows 64 bits");
    }
    return Malformed(what, "varint overflows 64 bits");
  }

  StatusOr<double> ReadDouble(const char* what) {
    if (payload_.size() - offset_ < 8) return Truncated(what);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(payload_[offset_ + i]) << (8 * i);
    }
    offset_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  StatusOr<std::span<const std::uint8_t>> ReadBytes(std::size_t count,
                                                    const char* what) {
    if (payload_.size() - offset_ < count) return Truncated(what);
    std::span<const std::uint8_t> bytes = payload_.subspan(offset_, count);
    offset_ += count;
    return bytes;
  }

 private:
  Status Truncated(const char* what) const {
    return Status::IOError(std::string("payload truncated reading ") + what +
                           " at offset " + std::to_string(offset_));
  }
  Status Malformed(const char* what, const char* why) const {
    return Status::InvalidArgument(std::string(why) + " reading " + what +
                                   " at offset " + std::to_string(offset_));
  }

  std::span<const std::uint8_t> payload_;
  std::size_t offset_ = 0;
};

// Frames `payload` with the v1 header and trailing checksum.
std::string FrameBlob(SynopsisBlobKind kind, const std::string& payload) {
  std::string blob;
  blob.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  blob.append(kMagic, sizeof(kMagic));
  blob.push_back(static_cast<char>(kSynopsisCodecVersion));
  blob.push_back(static_cast<char>(kind));
  blob.push_back(0);  // reserved
  blob.push_back(0);
  AppendU32(static_cast<std::uint32_t>(payload.size()), &blob);
  blob.append(payload);
  std::span<const std::uint8_t> covered(
      reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size());
  AppendU64(Fnv1a64(covered), &blob);
  return blob;
}

// Validates header framing + checksum; returns the payload span.
StatusOr<std::span<const std::uint8_t>> OpenBlob(
    std::span<const std::uint8_t> blob, SynopsisBlobKind expected_kind) {
  PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kPdataRead));
  PROBSYN_ASSIGN_OR_RETURN(SynopsisBlobKind kind, PeekSynopsisBlobKind(blob));
  if (kind != expected_kind) {
    return Status::InvalidArgument(
        std::string("expected a ") + SynopsisBlobKindName(expected_kind) +
        " blob, got " + SynopsisBlobKindName(kind));
  }
  std::span<const std::uint8_t> covered =
      blob.subspan(0, blob.size() - kChecksumBytes);
  std::uint64_t declared = 0;
  for (std::size_t i = 0; i < kChecksumBytes; ++i) {
    declared |= static_cast<std::uint64_t>(blob[covered.size() + i]) << (8 * i);
  }
  if (Fnv1a64(covered) != declared) {
    return Status::IOError("synopsis blob checksum mismatch (corrupt data)");
  }
  return blob.subspan(kHeaderBytes, blob.size() - kHeaderBytes -
                                        kChecksumBytes);
}

Status CheckDeclaredCount(const char* what, std::uint64_t count) {
  if (count > kMaxDeclaredCount) {
    return Status::InvalidArgument(
        std::string("declared ") + what + " count " + std::to_string(count) +
        " exceeds the sanity cap " + std::to_string(kMaxDeclaredCount));
  }
  return Status::OK();
}

// Fixed bit width of a packed coefficient index over `transform_size`
// (a power of two >= 1): the number of bits needed for transform_size - 1,
// at least 1 so zero-width packing never arises.
unsigned IndexBitWidth(std::uint64_t transform_size) {
  unsigned width = static_cast<unsigned>(std::bit_width(
      transform_size > 1 ? transform_size - 1 : std::uint64_t{1}));
  return width == 0 ? 1 : width;
}

}  // namespace

const char* SynopsisBlobKindName(SynopsisBlobKind kind) {
  switch (kind) {
    case SynopsisBlobKind::kHistogram: return "histogram";
    case SynopsisBlobKind::kWavelet: return "wavelet";
  }
  return "?";
}

StatusOr<SynopsisBlobKind> PeekSynopsisBlobKind(
    std::span<const std::uint8_t> blob) {
  if (blob.size() < kHeaderBytes + kChecksumBytes) {
    return Status::IOError("synopsis blob truncated: " +
                           std::to_string(blob.size()) + " bytes");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad synopsis blob magic");
  }
  if (blob[4] != kSynopsisCodecVersion) {
    return Status::InvalidArgument("unsupported synopsis codec version " +
                                   std::to_string(blob[4]));
  }
  std::uint8_t kind = blob[5];
  if (kind != static_cast<std::uint8_t>(SynopsisBlobKind::kHistogram) &&
      kind != static_cast<std::uint8_t>(SynopsisBlobKind::kWavelet)) {
    return Status::InvalidArgument("unknown synopsis blob kind " +
                                   std::to_string(kind));
  }
  if (blob[6] != 0 || blob[7] != 0) {
    return Status::InvalidArgument("nonzero reserved bytes in blob header");
  }
  std::uint32_t payload_size = 0;
  for (int i = 0; i < 4; ++i) {
    payload_size |= static_cast<std::uint32_t>(blob[8 + i]) << (8 * i);
  }
  if (blob.size() != kHeaderBytes + payload_size + kChecksumBytes) {
    return Status::IOError(
        "synopsis blob size mismatch: header declares " +
        std::to_string(payload_size) + " payload bytes, blob has " +
        std::to_string(blob.size()));
  }
  return static_cast<SynopsisBlobKind>(kind);
}

StatusOr<std::string> EncodeHistogram(const Histogram& histogram) {
  PROBSYN_RETURN_IF_ERROR(histogram.Validate(histogram.domain_size()));
  std::string payload;
  AppendVarint(histogram.domain_size(), &payload);
  AppendVarint(histogram.num_buckets(), &payload);
  std::size_t previous_end_plus_1 = 0;
  for (const HistogramBucket& bucket : histogram.buckets()) {
    AppendVarint(bucket.end + 1 - previous_end_plus_1, &payload);
    previous_end_plus_1 = bucket.end + 1;
  }
  for (const HistogramBucket& bucket : histogram.buckets()) {
    AppendDouble(bucket.representative, &payload);
  }
  return FrameBlob(SynopsisBlobKind::kHistogram, payload);
}

StatusOr<Histogram> DecodeHistogram(std::span<const std::uint8_t> blob) {
  PROBSYN_ASSIGN_OR_RETURN(std::span<const std::uint8_t> payload,
                           OpenBlob(blob, SynopsisBlobKind::kHistogram));
  PayloadReader reader(payload);
  PROBSYN_ASSIGN_OR_RETURN(std::uint64_t n, reader.ReadVarint("domain size"));
  PROBSYN_RETURN_IF_ERROR(CheckDeclaredCount("domain", n));
  PROBSYN_ASSIGN_OR_RETURN(std::uint64_t num_buckets,
                           reader.ReadVarint("bucket count"));
  PROBSYN_RETURN_IF_ERROR(CheckDeclaredCount("bucket", num_buckets));
  if ((n == 0) != (num_buckets == 0)) {
    return Status::InvalidArgument("bucket count / domain size mismatch");
  }
  if (num_buckets > n) {
    return Status::InvalidArgument("more buckets than domain items");
  }
  std::vector<HistogramBucket> buckets(num_buckets);
  std::uint64_t end_plus_1 = 0;
  for (std::size_t k = 0; k < num_buckets; ++k) {
    PROBSYN_ASSIGN_OR_RETURN(std::uint64_t delta,
                             reader.ReadVarint("boundary delta"));
    if (delta == 0) {
      return Status::InvalidArgument("zero bucket-boundary delta (bucket " +
                                     std::to_string(k) + ")");
    }
    if (delta > n - end_plus_1) {
      return Status::InvalidArgument("bucket boundaries overrun the domain");
    }
    buckets[k].start = end_plus_1;
    end_plus_1 += delta;
    buckets[k].end = end_plus_1 - 1;
  }
  if (end_plus_1 != n) {
    return Status::InvalidArgument("bucket boundaries do not cover the domain");
  }
  for (std::size_t k = 0; k < num_buckets; ++k) {
    PROBSYN_ASSIGN_OR_RETURN(buckets[k].representative,
                             reader.ReadDouble("representative"));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after histogram payload");
  }
  return Histogram(std::move(buckets));
}

StatusOr<std::string> EncodeWavelet(const WaveletSynopsis& synopsis) {
  PROBSYN_RETURN_IF_ERROR(synopsis.Validate());
  std::string payload;
  AppendVarint(synopsis.domain_size(), &payload);
  AppendVarint(synopsis.transform_size(), &payload);
  AppendVarint(synopsis.num_coefficients(), &payload);
  const unsigned width = IndexBitWidth(synopsis.transform_size());
  std::uint64_t bit_buffer = 0;
  unsigned bits_pending = 0;
  for (const WaveletCoefficient& c : synopsis.coefficients()) {
    bit_buffer |= static_cast<std::uint64_t>(c.index) << bits_pending;
    bits_pending += width;
    while (bits_pending >= 8) {
      payload.push_back(static_cast<char>(bit_buffer & 0xff));
      bit_buffer >>= 8;
      bits_pending -= 8;
    }
  }
  if (bits_pending > 0) payload.push_back(static_cast<char>(bit_buffer & 0xff));
  for (const WaveletCoefficient& c : synopsis.coefficients()) {
    AppendDouble(c.value, &payload);
  }
  return FrameBlob(SynopsisBlobKind::kWavelet, payload);
}

StatusOr<WaveletSynopsis> DecodeWavelet(std::span<const std::uint8_t> blob) {
  PROBSYN_ASSIGN_OR_RETURN(std::span<const std::uint8_t> payload,
                           OpenBlob(blob, SynopsisBlobKind::kWavelet));
  PayloadReader reader(payload);
  PROBSYN_ASSIGN_OR_RETURN(std::uint64_t domain,
                           reader.ReadVarint("domain size"));
  PROBSYN_RETURN_IF_ERROR(CheckDeclaredCount("domain", domain));
  PROBSYN_ASSIGN_OR_RETURN(std::uint64_t transform,
                           reader.ReadVarint("transform size"));
  PROBSYN_RETURN_IF_ERROR(CheckDeclaredCount("transform", transform));
  if (transform == 0 || (transform & (transform - 1)) != 0) {
    return Status::InvalidArgument("transform size is not a power of two");
  }
  if (domain > transform) {
    return Status::InvalidArgument("domain exceeds transform size");
  }
  PROBSYN_ASSIGN_OR_RETURN(std::uint64_t num_coeffs,
                           reader.ReadVarint("coefficient count"));
  if (num_coeffs > transform) {
    return Status::InvalidArgument("more coefficients than transform slots");
  }
  const unsigned width = IndexBitWidth(transform);
  const std::size_t packed_bytes =
      (static_cast<std::size_t>(num_coeffs) * width + 7) / 8;
  PROBSYN_ASSIGN_OR_RETURN(std::span<const std::uint8_t> packed,
                           reader.ReadBytes(packed_bytes, "packed indices"));
  std::vector<WaveletCoefficient> coefficients(num_coeffs);
  std::uint64_t bit_buffer = 0;
  unsigned bits_pending = 0;
  std::size_t next_byte = 0;
  std::uint64_t previous_index = 0;
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    while (bits_pending < width) {
      bit_buffer |= static_cast<std::uint64_t>(packed[next_byte++])
                    << bits_pending;
      bits_pending += 8;
    }
    std::uint64_t index = bit_buffer & ((std::uint64_t{1} << width) - 1);
    bit_buffer >>= width;
    bits_pending -= width;
    if (index >= transform) {
      return Status::InvalidArgument("coefficient index outside transform");
    }
    if (k > 0 && index <= previous_index) {
      return Status::InvalidArgument("coefficient indices not increasing");
    }
    previous_index = index;
    coefficients[k].index = index;
  }
  if (bit_buffer != 0) {
    return Status::InvalidArgument("nonzero padding bits in packed indices");
  }
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    PROBSYN_ASSIGN_OR_RETURN(coefficients[k].value,
                             reader.ReadDouble("coefficient value"));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after wavelet payload");
  }
  return WaveletSynopsis(domain, transform, std::move(coefficients));
}

StatusOr<DecodedSynopsis> DecodeSynopsis(std::span<const std::uint8_t> blob) {
  PROBSYN_ASSIGN_OR_RETURN(SynopsisBlobKind kind, PeekSynopsisBlobKind(blob));
  DecodedSynopsis decoded;
  decoded.kind = kind;
  if (kind == SynopsisBlobKind::kHistogram) {
    PROBSYN_ASSIGN_OR_RETURN(decoded.histogram, DecodeHistogram(blob));
  } else {
    PROBSYN_ASSIGN_OR_RETURN(decoded.wavelet, DecodeWavelet(blob));
  }
  return decoded;
}

}  // namespace probsyn
