#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace probsyn {

namespace status_internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on non-OK status: %s\n",
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace status_internal

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace probsyn
