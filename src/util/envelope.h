#ifndef PROBSYN_UTIL_ENVELOPE_H_
#define PROBSYN_UTIL_ENVELOPE_H_

#include <span>
#include <vector>

namespace probsyn {

/// A univariate line y = slope * x + intercept.
struct Line {
  double slope = 0.0;
  double intercept = 0.0;

  double At(double x) const { return slope * x + intercept; }
};

/// Result of minimizing the upper envelope of a set of lines.
struct EnvelopeMin {
  double x = 0.0;      ///< argmin.
  double value = 0.0;  ///< min of max_i line_i(x).
};

/// Exactly minimizes max_i (a_i x + b_i) over x in [lo, hi].
///
/// This is the inner step of the MAE/MARE bucket oracle (paper section 3.6):
/// once the bracketing value segment [v_j', v_j'+1] is known, every item's
/// expected error is linear in b-hat, and the optimal representative is the
/// minimum of the (convex) upper envelope of those lines. The paper cites a
/// divide-and-conquer convex-hull method [15]; we build the envelope
/// directly with the classic sort-by-slope hull in O(k log k) and read the
/// minimum off its vertices — same result, simpler code.
///
/// Requires at least one line; lo <= hi.
EnvelopeMin MinimizeUpperEnvelope(std::span<const Line> lines, double lo,
                                  double hi);

}  // namespace probsyn

#endif  // PROBSYN_UTIL_ENVELOPE_H_
