#ifndef PROBSYN_UTIL_FAULT_INJECTION_H_
#define PROBSYN_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace probsyn {

/// Named fault-injection sites: the places where the library touches a
/// resource that can fail in production (memory, threads, files). Each
/// site is one `PROBSYN_FAULT_CHECK`-style call on the success path that
/// compiles to a single relaxed atomic load + never-taken branch when
/// injection is disarmed.
enum class FaultSite {
  kWorkspaceAlloc = 0,  ///< DpWorkspace / wavelet-arena / shard fan-out alloc.
  kThreadPoolTask,      ///< ThreadPool chunk entry (ParallelFor fan-outs).
  kOraclePreprocess,    ///< MakeBucketOracle preprocessing.
  kPdataRead,           ///< io/pdata line reads.
  kNumSites,            ///< Sentinel; not a site.
};

/// Stable display name ("workspace-alloc", "thread-pool-task", ...).
const char* FaultSiteName(FaultSite site);

/// One injection campaign: every armed check at a matching site rolls a
/// seeded hash against `rate` and, on a hit, either sleeps `latency_us`
/// microseconds (latency mode) or fails with kIOError (kPdataRead) /
/// kResourceExhausted (every other site). The roll stream is a function of
/// (seed, global check counter, site): one process-wide sequence, so a
/// campaign is reproducible for a fixed seed and check interleaving, and
/// single-threaded runs are exactly reproducible.
struct FaultConfig {
  std::uint64_t seed = 0;
  /// Probability in [0, 1] that an armed check fires.
  double rate = 0.0;
  /// Nonzero switches firing checks from errors to injected latency.
  std::uint32_t latency_us = 0;
  /// Restrict firing to one site; FaultSite::kNumSites = every site.
  FaultSite only_site = FaultSite::kNumSites;
};

namespace fault_internal {
/// Nonzero while a campaign is armed (env var or scoped override). The
/// disarmed fast path of every site check is this one relaxed load.
extern std::atomic<int> g_armed;
/// Slow path: rolls the seeded hash and returns the fault, OK otherwise.
Status InjectSlow(FaultSite site);
}  // namespace fault_internal

/// The per-site check on a success path. Disarmed (the default, and
/// whenever PROBSYN_FAULTS is unset and no ScopedFaultInjection is live)
/// this is one relaxed atomic load and a never-taken branch.
inline Status MaybeInjectFault(FaultSite site) {
  if (fault_internal::g_armed.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  return fault_internal::InjectSlow(site);
}

/// True when some campaign is armed (used to skip optional bookkeeping).
inline bool FaultInjectionArmed() {
  return fault_internal::g_armed.load(std::memory_order_relaxed) != 0;
}

/// Arms `config` for the current scope and restores the previous state
/// (armed or not) on destruction — the test-scoped override. Not
/// re-entrant across threads: campaigns are process-global, so tests that
/// arm one must not run concurrently with tests asserting fault-free
/// behavior.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultConfig previous_;
  bool was_armed_;
};

/// Process-wide campaign from the PROBSYN_FAULTS environment variable,
/// parsed once at first check: "<seed>:<rate>" with optional
/// ":<latency_us>" third field (e.g. "42:0.02" or "7:0.1:500"). Returns
/// whether a campaign was armed from the environment.
bool FaultInjectionArmedFromEnv();

/// Number of faults fired (errors or latency events) since process start;
/// observability for sweep tests asserting the campaign actually ran.
std::uint64_t FaultInjectionFiredCount();

}  // namespace probsyn

#endif  // PROBSYN_UTIL_FAULT_INJECTION_H_
