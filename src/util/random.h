#ifndef PROBSYN_UTIL_RANDOM_H_
#define PROBSYN_UTIL_RANDOM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace probsyn {

/// Deterministic, fast PRNG (xoshiro256++), seeded via SplitMix64.
///
/// We avoid std::mt19937 for two reasons common to database benchmarking
/// code: (1) reproducibility of the generated workloads across standard
/// library versions — our experiments must be re-runnable bit-for-bit from a
/// seed, and libstdc++/libc++ may disagree on distribution algorithms;
/// (2) speed, as world sampling draws one variate per tuple.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) without modulo bias; bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller (stateless variant, no caching).
  double NextGaussian();

  /// Forks an independent stream (for per-run generator isolation).
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

/// Draws from a Zipf(alpha) distribution over {1, ..., n} by inversion on a
/// precomputed CDF. Zipf rank-frequency skew is the standard stand-in for
/// the match-count skew of record-linkage data (DESIGN.md substitution 1).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double alpha);

  /// Value in {1, ..., n}.
  std::size_t Sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// O(1) sampling from a fixed discrete distribution (Walker/Vose alias
/// method). Used by the possible-world sampler, which must draw one
/// alternative per input tuple per sampled world.
class AliasSampler {
 public:
  /// `weights` are nonnegative, not necessarily normalized; at least one
  /// must be positive.
  explicit AliasSampler(std::span<const double> weights);

  /// Index in [0, weights.size()).
  std::size_t Sample(Rng& rng) const;

  std::size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace probsyn

#endif  // PROBSYN_UTIL_RANDOM_H_
