#ifndef PROBSYN_UTIL_THREAD_POOL_H_
#define PROBSYN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace probsyn {

/// Fixed-size worker pool for the data-parallel cuts of synopsis
/// construction: the exact DP's per-budget row sweeps, the restricted
/// wavelet DP's per-level arena sweeps, and the oracles' O(n |V|)
/// prefix-table preprocessing (all embarrassingly parallel given the
/// previous DP layer / tree level / the shared value grid).
///
/// Design notes:
///  * `ParallelFor` is a blocking fork-join over an index range; the
///    calling thread executes one chunk itself, so a pool with W workers
///    yields W+1-way parallelism and a 0-worker pool degrades to a plain
///    sequential loop (useful for parity tests and tiny inputs).
///  * Calls from inside a worker run inline (no nested fan-out), so
///    library code can use the pool without tracking call depth; this also
///    makes accidental reentrancy deadlock-free. The sharded construction
///    backend leans on this: its per-shard solves fan out once at the top
///    and every pool call inside a shard's solver degrades to a loop.
///  * No intra-call ordering guarantee: queued chunks are popped LIFO and
///    may all run on the calling thread when workers are busy, so `fn`
///    must never wait on another chunk of the same call making progress
///    (spinning on a sibling's output can livelock). Cross-chunk data flow
///    belongs BETWEEN ParallelFor calls — the join is the only barrier.
///  * Determinism: chunks are contiguous, each index is executed exactly
///    once by exactly one thread, and callers are expected to write to
///    disjoint output slots per index — the engine's parallel DP is
///    bit-identical to the sequential solver because every DP cell is
///    computed by the same scalar scan regardless of which thread runs it.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is valid: every ParallelFor runs
  /// inline on the caller.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Invokes `fn(chunk_begin, chunk_end)` over a partition of [begin, end)
  /// into at most num_threads()+1 contiguous chunks and blocks until every
  /// chunk has finished. `fn` must not touch shared mutable state across
  /// chunks (each index's outputs must be disjoint).
  ///
  /// Hardening contract: a chunk that throws fails the fan-out with
  /// kInternal (first failure wins) instead of terminating the process,
  /// and each chunk entry is a FaultSite::kThreadPoolTask injection point.
  /// The join still waits for EVERY chunk — a failure never leaves chunks
  /// running behind the caller's back — but chunks after the first failure
  /// may still run (callers must treat outputs of a failed fan-out as
  /// garbage). Returns OK when every chunk completed.
  [[nodiscard]] Status ParallelFor(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Worker count to use when the caller does not specify one: the
  /// PROBSYN_THREADS environment variable if set, else
  /// std::thread::hardware_concurrency() (at least 1).
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace probsyn

#endif  // PROBSYN_UTIL_THREAD_POOL_H_
