#ifndef PROBSYN_UTIL_LOGGING_H_
#define PROBSYN_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace probsyn::internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "[probsyn] CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace probsyn::internal_logging

/// Always-on invariant check. Use for programmer errors that must never
/// happen regardless of user input; recoverable input errors go through
/// Status instead. Kept enabled in release builds: synopsis construction is
/// CPU-bound in tight loops that do not contain CHECKs, so the cost is nil,
/// and silent memory corruption in a DP table is far worse than an abort.
#define PROBSYN_CHECK(condition)                                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::probsyn::internal_logging::CheckFailed(__FILE__, __LINE__,        \
                                               #condition);               \
    }                                                                     \
  } while (false)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define PROBSYN_DCHECK(condition) PROBSYN_CHECK(condition)
#else
#define PROBSYN_DCHECK(condition) \
  do {                            \
  } while (false)
#endif

#endif  // PROBSYN_UTIL_LOGGING_H_
