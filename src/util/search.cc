#include "util/search.h"

#include "util/logging.h"

namespace probsyn {

std::size_t TernarySearchMinIndex(std::size_t lo, std::size_t hi,
                                  const std::function<double(std::size_t)>& f) {
  PROBSYN_CHECK(lo <= hi);
  return TernarySearchMinIndexOver(lo, hi, f);
}

double TernarySearchMinContinuous(double lo, double hi,
                                  const std::function<double(double)>& f,
                                  int iterations) {
  PROBSYN_CHECK(lo <= hi);
  for (int it = 0; it < iterations && hi - lo > 0; ++it) {
    double m1 = lo + (hi - lo) / 3.0;
    double m2 = hi - (hi - lo) / 3.0;
    if (f(m1) <= f(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace probsyn
