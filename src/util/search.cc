#include "util/search.h"

#include "util/logging.h"

namespace probsyn {

std::size_t TernarySearchMinIndex(std::size_t lo, std::size_t hi,
                                  const std::function<double(std::size_t)>& f) {
  PROBSYN_CHECK(lo <= hi);
  // Invariant: a minimizer lies in [lo, hi]. The searched sequences are
  // samples of a convex function at increasing (not necessarily uniform)
  // grid points: if f(m1) <= f(m2) the convexity of the underlying function
  // places a minimizer in [lo, m2] (for x > m2, f(x) >= f(m2) >= f(m1)), and
  // symmetrically f(m1) > f(m2) places one in [m1, hi]. Keeping the probe
  // point inside the retained range (hi = m2, not m2 - 1) is what makes the
  // cut safe in the presence of plateaus.
  while (hi - lo > 2) {
    std::size_t m1 = lo + (hi - lo) / 3;
    std::size_t m2 = hi - (hi - lo) / 3;
    if (f(m1) <= f(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  std::size_t best = lo;
  double best_value = f(lo);
  for (std::size_t i = lo + 1; i <= hi; ++i) {
    double v = f(i);
    if (v < best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

double TernarySearchMinContinuous(double lo, double hi,
                                  const std::function<double(double)>& f,
                                  int iterations) {
  PROBSYN_CHECK(lo <= hi);
  for (int it = 0; it < iterations && hi - lo > 0; ++it) {
    double m1 = lo + (hi - lo) / 3.0;
    double m2 = hi - (hi - lo) / 3.0;
    if (f(m1) <= f(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace probsyn
