#ifndef PROBSYN_UTIL_DEADLINE_H_
#define PROBSYN_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>

#include "util/status.h"

namespace probsyn {

/// Cooperative cancellation flag: the caller keeps the token, hands a
/// pointer to a request, and may fire it from any thread; solvers poll it
/// at coarse granularity (per DP column / tree level / shard) and unwind
/// with StatusCode::kCancelled. One token may be shared by many requests —
/// firing it stops them all. Firing is one relaxed atomic store; polling
/// one relaxed load, so polls are cheap enough for inner solver loops.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation (idempotent, any thread).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  /// True once Cancel() has been called.
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token for reuse. Only safe once no solve is polling it.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A steady-clock wall deadline. Default-constructed (or Never()) it never
/// expires and Expired() is a single branch; with a deadline set Expired()
/// costs one steady_clock::now() call (~tens of nanoseconds), cheap
/// against the microsecond-scale work between solver polls.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// The unbounded deadline (same as default construction).
  static Deadline Never() { return Deadline(); }
  /// Expires `seconds` from now (steady clock); seconds <= 0 is already
  /// expired.
  static Deadline After(double seconds);
  /// Expires at `when` on the steady clock.
  static Deadline At(std::chrono::steady_clock::time_point when);

  /// True when no deadline is set.
  bool IsNever() const { return !armed_; }
  /// True once the deadline has passed (never true for Never()).
  bool Expired() const {
    return armed_ && std::chrono::steady_clock::now() >= when_;
  }
  /// Seconds until expiry (negative once past); +infinity for Never().
  double RemainingSeconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// The stop signal a long-running solve polls cooperatively: a deadline
/// plus zero or more cancel tokens (a batch group polls every member's
/// token). Solvers receive a `const ExecContext*` (null = unbounded, the
/// historical behavior) through their option structs, call StopRequested()
/// once per coarse work unit, and on a hit unwind with StopStatus(...) —
/// which records the route and how far the solve got. A default
/// ExecContext never stops.
class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(Deadline deadline, const CancelToken* cancel)
      : deadline_(deadline), single_(cancel) {}
  /// Group form: polls every token in `cancels[0..num_cancels)` (the
  /// array must outlive the context; null entries are skipped).
  ExecContext(Deadline deadline, const CancelToken* const* cancels,
              std::size_t num_cancels)
      : deadline_(deadline), many_(cancels), num_many_(num_cancels) {}

  const Deadline& deadline() const { return deadline_; }

  /// True when neither a deadline nor a token is attached — callers may
  /// skip plumbing entirely.
  bool Unbounded() const {
    return deadline_.IsNever() && single_ == nullptr && num_many_ == 0;
  }

  /// True once any token fired or the deadline passed.
  bool StopRequested() const {
    if (single_ != nullptr && single_->Cancelled()) return true;
    for (std::size_t i = 0; i < num_many_; ++i) {
      if (many_[i] != nullptr && many_[i]->Cancelled()) return true;
    }
    return deadline_.Expired();
  }

  /// The status a stopped solve unwinds with: kCancelled when a token
  /// fired (checked first — an explicit cancel beats a concurrently
  /// expiring deadline), else kDeadlineExceeded. The message records the
  /// route and progress, e.g.
  /// "exact-dp stopped at budget layer 17/64: deadline exceeded".
  Status StopStatus(const char* route, const char* progress_unit,
                    std::size_t done, std::size_t total) const;

 private:
  bool CancelRequested() const {
    if (single_ != nullptr && single_->Cancelled()) return true;
    for (std::size_t i = 0; i < num_many_; ++i) {
      if (many_[i] != nullptr && many_[i]->Cancelled()) return true;
    }
    return false;
  }

  Deadline deadline_;
  const CancelToken* single_ = nullptr;
  const CancelToken* const* many_ = nullptr;
  std::size_t num_many_ = 0;
};

/// Null-safe poll of the solvers' `const ExecContext*` knobs.
inline bool StopRequested(const ExecContext* context) {
  return context != nullptr && context->StopRequested();
}

/// Amortized ExecContext polling for tight per-item loops (the streaming
/// engine's Push loop, the ingest tier's drain loop): counts calls and
/// consults the context only on every `interval`-th one, so the poll cost
/// stays far below the per-item work while cancellation latency stays
/// bounded by `interval` items. The very first call polls (matching the
/// hand-rolled `(pushed & 15) == 0` cadence this helper replaces), and a
/// null context never stops, like StopRequested above.
class PollGate {
 public:
  /// `interval` items between polls; must be a power of two (the cadence
  /// check is a single mask). Defaults to the streaming loop's historical
  /// 16-item cadence; 1 polls on every call.
  explicit PollGate(std::size_t interval = 16) : mask_(interval - 1) {}

  /// True when this call lands on the poll cadence AND the context asked
  /// to stop. Callers unwind with `context->StopStatus(...)` on true.
  bool ShouldStop(const ExecContext* context) {
    return (calls_++ & mask_) == 0 && StopRequested(context);
  }

 private:
  std::size_t mask_;
  std::size_t calls_ = 0;
};

}  // namespace probsyn

#endif  // PROBSYN_UTIL_DEADLINE_H_
