#include "util/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace probsyn {
namespace fault_internal {

std::atomic<int> g_armed{0};

namespace {

// Campaign state. Written only while transitioning armed<->disarmed (env
// parse before first check via call_once; ScopedFaultInjection under the
// mutex below), read on the armed slow path only.
FaultConfig g_config;
std::mutex g_config_mutex;
std::atomic<std::uint64_t> g_check_counter{0};
std::atomic<std::uint64_t> g_fired_counter{0};
std::once_flag g_env_once;
bool g_env_armed = false;

// splitmix64: cheap, well-mixed; the roll stream is hash(seed, counter).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void InitFromEnv() {
  const char* env = std::getenv("PROBSYN_FAULTS");
  if (env == nullptr || *env == '\0') return;
  FaultConfig config;
  char* endp = nullptr;
  config.seed = std::strtoull(env, &endp, 10);
  if (endp == env || *endp != ':') return;  // malformed: stay disarmed
  const char* rate_str = endp + 1;
  config.rate = std::strtod(rate_str, &endp);
  if (endp == rate_str) return;
  if (*endp == ':') {
    config.latency_us =
        static_cast<std::uint32_t>(std::strtoul(endp + 1, nullptr, 10));
  }
  if (config.rate <= 0.0) return;
  if (config.rate > 1.0) config.rate = 1.0;
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_config = config;
  }
  g_env_armed = true;
  g_armed.store(1, std::memory_order_relaxed);
}

// Arm an environment campaign before main() so every check — including
// those in other static initializers' unlikely use — sees it.
[[maybe_unused]] const bool g_env_init = [] {
  std::call_once(g_env_once, InitFromEnv);
  return g_env_armed;
}();

}  // namespace

Status InjectSlow(FaultSite site) {
  FaultConfig config;
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    config = g_config;
  }
  if (config.only_site != FaultSite::kNumSites && config.only_site != site) {
    return Status::OK();
  }
  const std::uint64_t n =
      g_check_counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = Mix(config.seed ^ Mix(n));
  // Top 53 bits -> uniform double in [0, 1).
  const double roll =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  if (roll >= config.rate) return Status::OK();

  g_fired_counter.fetch_add(1, std::memory_order_relaxed);
  if (config.latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(config.latency_us));
    return Status::OK();
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "injected fault at site %s (check #%llu)",
                FaultSiteName(site), static_cast<unsigned long long>(n));
  return site == FaultSite::kPdataRead ? Status::IOError(buf)
                                       : Status::ResourceExhausted(buf);
}

}  // namespace fault_internal

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kWorkspaceAlloc:
      return "workspace-alloc";
    case FaultSite::kThreadPoolTask:
      return "thread-pool-task";
    case FaultSite::kOraclePreprocess:
      return "oracle-preprocess";
    case FaultSite::kPdataRead:
      return "pdata-read";
    case FaultSite::kNumSites:
      break;
  }
  return "unknown";
}

ScopedFaultInjection::ScopedFaultInjection(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(fault_internal::g_config_mutex);
  was_armed_ =
      fault_internal::g_armed.load(std::memory_order_relaxed) != 0;
  previous_ = fault_internal::g_config;
  fault_internal::g_config = config;
  fault_internal::g_armed.store(config.rate > 0.0 ? 1 : 0,
                                std::memory_order_relaxed);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  std::lock_guard<std::mutex> lock(fault_internal::g_config_mutex);
  fault_internal::g_config = previous_;
  fault_internal::g_armed.store(was_armed_ ? 1 : 0,
                                std::memory_order_relaxed);
}

bool FaultInjectionArmedFromEnv() {
  std::call_once(fault_internal::g_env_once, fault_internal::InitFromEnv);
  return fault_internal::g_env_armed;
}

std::uint64_t FaultInjectionFiredCount() {
  return fault_internal::g_fired_counter.load(std::memory_order_relaxed);
}

}  // namespace probsyn
