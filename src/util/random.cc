#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace probsyn {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  PROBSYN_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha) {
  PROBSYN_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), alpha);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against fp drift at the top.
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

AliasSampler::AliasSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  PROBSYN_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    PROBSYN_CHECK(w >= 0.0);
    total += w;
  }
  PROBSYN_CHECK(total > 0.0);

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled probabilities summing to n.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    std::uint32_t s = small.back();
    small.pop_back();
    std::uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to rounding.
  for (std::uint32_t i : large) probability_[i] = 1.0;
  for (std::uint32_t i : small) probability_[i] = 1.0;
}

std::size_t AliasSampler::Sample(Rng& rng) const {
  std::size_t column = rng.NextBounded(probability_.size());
  return rng.NextDouble() < probability_[column] ? column : alias_[column];
}

}  // namespace probsyn
