#ifndef PROBSYN_UTIL_STATUS_H_
#define PROBSYN_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace probsyn {

/// Coarse error taxonomy, modeled after the Status idiom used by storage
/// engines (RocksDB, Arrow): library entry points that can fail on user
/// input return a `Status` (or `StatusOr<T>`) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed model, probabilities out of range, ...
  kOutOfRange,        ///< Index/bucket/coefficient outside the domain.
  kFailedPrecondition,///< Call sequencing violated (e.g. Build() twice).
  kNotFound,          ///< Lookup miss (I/O paths, registries).
  kUnimplemented,     ///< Declared but intentionally unsupported combination.
  kInternal,          ///< Invariant violation inside the library; a bug.
  kIOError,           ///< Underlying stream/file failure.
  kDeadlineExceeded,  ///< A request's wall-clock deadline passed mid-solve.
  kCancelled,         ///< A request's CancelToken fired mid-solve.
  kResourceExhausted, ///< Memory/worker budget exceeded (or injected fault).
};

/// Returns a stable, human-readable name ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
///
/// The default constructor makes an OK status so that `Status s;` composes
/// well with early-return style:
///
///     Status s = input.Validate();
///     if (!s.ok()) return s;
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

namespace status_internal {
/// Prints "StatusOr::value() called on non-OK status: <status>" to stderr
/// and aborts. Out of line so the header's hot accessors stay tiny.
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace status_internal

/// Either a `T` or an error `Status`. Accessing the value of a non-OK
/// result aborts with the status message — in EVERY build type, not just
/// debug: a Release-mode caller that skipped `ok()` must die loudly at the
/// access, not read an empty optional.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status by design: enables
  /// `return value;` / `return Status::InvalidArgument(...);`.
  StatusOr(T value) : value_(std::move(value)) {}       // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {// NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) status_internal::DieOnBadStatusAccess(status_);
  }

  Status status_;  // OK iff value_ holds a T.
  std::optional<T> value_;
};

/// Early-return helper: `PROBSYN_RETURN_IF_ERROR(DoThing());`
#define PROBSYN_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::probsyn::Status _probsyn_status = (expr);        \
    if (!_probsyn_status.ok()) return _probsyn_status; \
  } while (false)

#define PROBSYN_STATUS_CONCAT_INNER_(a, b) a##b
#define PROBSYN_STATUS_CONCAT_(a, b) PROBSYN_STATUS_CONCAT_INNER_(a, b)
#define PROBSYN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

/// Evaluates a StatusOr expression, early-returns its Status on error,
/// else assigns the moved value:
///
///     PROBSYN_ASSIGN_OR_RETURN(OracleBundle bundle,
///                              MakeBucketOracle(input, options));
///
/// Usable in any function whose return type accepts a Status (Status,
/// StatusOr<T>).
#define PROBSYN_ASSIGN_OR_RETURN(lhs, expr)                               \
  PROBSYN_ASSIGN_OR_RETURN_IMPL_(                                         \
      PROBSYN_STATUS_CONCAT_(_probsyn_statusor_, __LINE__), lhs, expr)

}  // namespace probsyn

#endif  // PROBSYN_UTIL_STATUS_H_
