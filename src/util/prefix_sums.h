#ifndef PROBSYN_UTIL_PREFIX_SUMS_H_
#define PROBSYN_UTIL_PREFIX_SUMS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/logging.h"

namespace probsyn {

/// One-dimensional inclusive prefix-sum table supporting O(1) range sums.
///
/// This is the workhorse behind every O(1) bucket-cost oracle in the paper:
/// the arrays A/B/C (section 3.1), X/Y/Z (3.2) and the P / P* tables
/// (3.3, 3.4) are all stored as PrefixSums over item index.
///
/// Indexing convention matches the paper: items are 0-based, and
/// RangeSum(s, e) returns sum_{i=s..e} x_i for 0 <= s <= e < size().
class PrefixSums {
 public:
  PrefixSums() = default;

  /// Builds from raw per-item values.
  explicit PrefixSums(std::span<const double> values);

  /// Number of underlying items.
  std::size_t size() const { return cumulative_.empty() ? 0 : cumulative_.size() - 1; }

  /// sum_{i=0..e} x_i. e may be size()-1 at most.
  double Prefix(std::size_t e) const {
    PROBSYN_DCHECK(e + 1 < cumulative_.size() + 1 && e < size());
    return cumulative_[e + 1];
  }

  /// sum_{i=s..e} x_i (inclusive both ends).
  double RangeSum(std::size_t s, std::size_t e) const {
    PROBSYN_DCHECK(s <= e && e < size());
    return cumulative_[e + 1] - cumulative_[s];
  }

  /// Total sum over all items.
  double Total() const { return cumulative_.empty() ? 0.0 : cumulative_.back(); }

  /// Raw cumulative table: size() + 1 entries with cumulative()[0] == 0 and
  /// RangeSum(s, e) == cumulative()[e + 1] - cumulative()[s]. Exposed so the
  /// devirtualized DP kernels (core/dp_kernels.cc) can hoist the table into
  /// a flat local span and keep the inner min-scan free of calls; kernel
  /// code must reproduce the RangeSum expression above verbatim to stay
  /// bit-identical with oracle Cost() paths.
  std::span<const double> cumulative() const { return cumulative_; }

 private:
  // cumulative_[k] = sum of the first k values; cumulative_[0] = 0.
  std::vector<double> cumulative_;
};

/// A bank of PrefixSums rows sharing one item domain; used for the
/// value-indexed tables of sections 3.3/3.4 where we need, for every value
/// v_j in V, a prefix-sum over items of Pr[g_i <= v_j] (or weighted
/// variants). Row-major layout keeps the ternary-search probes cache-local.
class PrefixSumsBank {
 public:
  PrefixSumsBank() = default;

  /// rows = |V|, columns = n. `values(row, i)` supplies the entry.
  template <typename ValueFn>
  PrefixSumsBank(std::size_t rows, std::size_t columns, ValueFn&& values)
      : rows_(rows), columns_(columns), cumulative_((columns + 1) * rows, 0.0) {
    for (std::size_t r = 0; r < rows_; ++r) {
      double* row = RowData(r);
      row[0] = 0.0;
      for (std::size_t i = 0; i < columns_; ++i) {
        row[i + 1] = row[i] + values(r, i);
      }
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t columns() const { return columns_; }

  /// sum over items i in [s, e] of entry(row, i).
  double RangeSum(std::size_t row, std::size_t s, std::size_t e) const {
    PROBSYN_DCHECK(row < rows_ && s <= e && e < columns_);
    const double* data = RowDataConst(row);
    return data[e + 1] - data[s];
  }

 private:
  double* RowData(std::size_t r) { return cumulative_.data() + r * (columns_ + 1); }
  const double* RowDataConst(std::size_t r) const {
    return cumulative_.data() + r * (columns_ + 1);
  }

  std::size_t rows_ = 0;
  std::size_t columns_ = 0;
  std::vector<double> cumulative_;
};

}  // namespace probsyn

#endif  // PROBSYN_UTIL_PREFIX_SUMS_H_
