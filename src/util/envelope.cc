#include "util/envelope.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace probsyn {

namespace {

// x-coordinate where two (non-parallel) lines intersect.
double IntersectX(const Line& a, const Line& b) {
  return (b.intercept - a.intercept) / (a.slope - b.slope);
}

}  // namespace

EnvelopeMin MinimizeUpperEnvelope(std::span<const Line> lines, double lo,
                                  double hi) {
  PROBSYN_CHECK(!lines.empty());
  PROBSYN_CHECK(lo <= hi);

  // Sort by slope; among equal slopes only the highest intercept can be on
  // the upper envelope.
  std::vector<Line> sorted(lines.begin(), lines.end());
  std::sort(sorted.begin(), sorted.end(), [](const Line& a, const Line& b) {
    if (a.slope != b.slope) return a.slope < b.slope;
    return a.intercept > b.intercept;
  });
  std::vector<Line> dedup;
  dedup.reserve(sorted.size());
  for (const Line& l : sorted) {
    if (dedup.empty() || dedup.back().slope != l.slope) dedup.push_back(l);
  }

  // Build the upper envelope (convex) with a monotone stack. hull[i] is
  // active on [knot[i], knot[i+1]); knots are the pairwise intersections.
  std::vector<Line> hull;
  std::vector<double> knots;  // knots[i] = start x of hull[i]; knots[0]=-inf.
  for (const Line& l : dedup) {
    double start = -std::numeric_limits<double>::infinity();
    while (!hull.empty()) {
      start = IntersectX(hull.back(), l);
      // New line overtakes hull.back() for x >= start (its slope is
      // larger). If it already dominates at hull.back()'s start, pop.
      if (start <= knots.back()) {
        hull.pop_back();
        knots.pop_back();
        start = -std::numeric_limits<double>::infinity();
      } else {
        break;
      }
    }
    if (hull.empty()) start = -std::numeric_limits<double>::infinity();
    hull.push_back(l);
    knots.push_back(start);
  }

  // The envelope is convex, so its restriction to [lo, hi] attains its
  // minimum at lo, at hi, or at an interior knot.
  auto eval = [&](double x) {
    // Find the active hull segment: last knot <= x.
    auto it = std::upper_bound(knots.begin(), knots.end(), x);
    std::size_t idx = static_cast<std::size_t>(it - knots.begin());
    PROBSYN_DCHECK(idx >= 1);
    return hull[idx - 1].At(x);
  };

  EnvelopeMin best{lo, eval(lo)};
  double at_hi = eval(hi);
  if (at_hi < best.value) best = {hi, at_hi};
  for (double k : knots) {
    if (k > lo && k < hi) {
      double v = eval(k);
      if (v < best.value) best = {k, v};
    }
  }
  return best;
}

}  // namespace probsyn
