#ifndef PROBSYN_UTIL_MATH_H_
#define PROBSYN_UTIL_MATH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

namespace probsyn {

/// Numeric helpers shared by the cost oracles. Synopsis costs are long sums
/// of small nonnegative terms; compensated summation keeps the DP's
/// optimality comparisons stable when n is large.
class KahanSum {
 public:
  KahanSum() = default;
  explicit KahanSum(double initial) : sum_(initial) {}

  void Add(double x) {
    double y = x - compensation_;
    double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  double value() const { return sum_; }

  KahanSum& operator+=(double x) {
    Add(x);
    return *this;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Compensated sum of a span.
double SumStable(std::span<const double> xs);

/// Relative-or-absolute approximate equality used throughout tests and by
/// internal sanity checks: |a-b| <= atol + rtol*max(|a|,|b|).
bool AlmostEqual(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// max(c, |x|): the paper's relative-error sanity bound (section 2.2).
inline double SanityBound(double x, double c) {
  return std::max(c, std::fabs(x));
}

/// Relative-error weight w(x) = 1 / max(c, |x|) (paper sections 3.2/3.4).
inline double RelativeWeight(double x, double c) {
  return 1.0 / SanityBound(x, c);
}

/// Squared relative-error weight w2(x) = 1 / max(c^2, x^2) (section 3.2).
inline double SquaredRelativeWeight(double x, double c) {
  double b = SanityBound(x, c);
  return 1.0 / (b * b);
}

/// True iff v is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(std::size_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Smallest power of two >= v (v == 0 maps to 1).
std::size_t NextPowerOfTwo(std::size_t v);

/// floor(log2(v)) for v >= 1.
std::size_t FloorLog2(std::size_t v);

/// Clamps tiny negative values arising from catastrophic cancellation in
/// variance-style formulas (E[X^2] - E[X]^2) back to zero; larger negatives
/// indicate a genuine bug and are passed through for CHECKs to catch.
inline double ClampTinyNegative(double x, double tolerance = 1e-9) {
  return (x < 0.0 && x > -tolerance) ? 0.0 : x;
}

}  // namespace probsyn

#endif  // PROBSYN_UTIL_MATH_H_
