#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "util/fault_injection.h"

namespace probsyn {

namespace {

// Set while a pool worker is executing a task; nested ParallelFor calls
// from library code then run inline instead of re-entering the queue and
// risking a wait-on-self deadlock.
thread_local bool t_inside_worker = false;

// Completion latch of one ParallelFor call, plus the first chunk failure
// (injected fault or escaped exception) of the fan-out.
struct CallState {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining = 0;
  Status first_error;
};

// Runs one chunk under the hardening contract: fault-injection check at
// entry, exceptions converted to kInternal. Returns OK when the chunk ran
// to completion.
Status RunChunk(const std::function<void(std::size_t, std::size_t)>& fn,
                std::size_t begin, std::size_t end) {
  Status s = MaybeInjectFault(FaultSite::kThreadPoolTask);
  if (!s.ok()) return s;
  try {
    fn(begin, end);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("parallel task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("parallel task threw a non-std exception");
  }
  return Status::OK();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return Status::OK();
  const std::size_t n = end - begin;
  if (workers_.empty() || n == 1 || t_inside_worker) {
    return RunChunk(fn, begin, end);
  }

  const std::size_t chunks = std::min(workers_.size() + 1, n);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get +1

  auto state = std::make_shared<CallState>();
  state->remaining = chunks - 1;

  // Enqueue chunks 1..chunks-1, run chunk 0 on the calling thread, then
  // wait for the latch.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    std::size_t start = begin + base + (extra > 0 ? 1 : 0);
    for (std::size_t c = 1; c < chunks; ++c) {
      std::size_t len = base + (c < extra ? 1 : 0);
      queue_.push_back([&fn, state, start, len] {
        Status s = RunChunk(fn, start, start + len);
        std::unique_lock<std::mutex> state_lock(state->mutex);
        if (!s.ok() && state->first_error.ok()) {
          state->first_error = std::move(s);
        }
        if (--state->remaining == 0) state->cv.notify_one();
      });
      start += len;
    }
  }
  work_cv_.notify_all();

  Status caller_status = RunChunk(fn, begin, begin + base + (extra > 0 ? 1 : 0));

  std::unique_lock<std::mutex> state_lock(state->mutex);
  state->cv.wait(state_lock, [&state] { return state->remaining == 0; });
  // The caller's chunk is "first" for error reporting: chunk order is not
  // a determinism surface, but a stable preference keeps messages steady.
  if (!caller_status.ok()) return caller_status;
  return state->first_error;
}

std::size_t ThreadPool::DefaultThreadCount() {
  // Negative numbers wrap through strtoul; clamp to [1, kMaxThreads] so a
  // stray PROBSYN_THREADS=-1 degrades to a bounded pool, not a spawn storm.
  constexpr std::size_t kMaxThreads = 256;
  if (const char* env = std::getenv("PROBSYN_THREADS")) {
    char* endp = nullptr;
    unsigned long v = std::strtoul(env, &endp, 10);
    if (endp != env) {
      return std::clamp<std::size_t>(static_cast<std::size_t>(v), 1,
                                     kMaxThreads);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxThreads);
}

}  // namespace probsyn
