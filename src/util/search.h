#ifndef PROBSYN_UTIL_SEARCH_H_
#define PROBSYN_UTIL_SEARCH_H_

#include <cstddef>
#include <functional>

namespace probsyn {

/// Minimizes a unimodal function over the integer range [lo, hi].
///
/// "Unimodal" here means: non-increasing up to some minimizer, then
/// non-decreasing — exactly the shape the paper proves for SAE/SARE/MAE/MARE
/// bucket cost as a function of the representative's index in V
/// (sections 3.3, 3.4, 3.6). Plateaus are handled by shrinking toward the
/// left, so the returned index is a (leftmost-ish) minimizer.
///
/// Cost: O(log(hi - lo)) evaluations.
///
/// The templated form exists so hot paths (the devirtualized DP kernels of
/// core/dp_kernels.cc) can inline the probe function; the std::function
/// overload below delegates to it, so both run the exact same probe
/// sequence and return bit-identical minimizers.
template <typename Fn>
std::size_t TernarySearchMinIndexOver(std::size_t lo, std::size_t hi,
                                      const Fn& f) {
  // Invariant: a minimizer lies in [lo, hi]. The searched sequences are
  // samples of a convex function at increasing (not necessarily uniform)
  // grid points: if f(m1) <= f(m2) the convexity of the underlying function
  // places a minimizer in [lo, m2] (for x > m2, f(x) >= f(m2) >= f(m1)), and
  // symmetrically f(m1) > f(m2) places one in [m1, hi]. Keeping the probe
  // point inside the retained range (hi = m2, not m2 - 1) is what makes the
  // cut safe in the presence of plateaus.
  while (hi - lo > 2) {
    std::size_t m1 = lo + (hi - lo) / 3;
    std::size_t m2 = hi - (hi - lo) / 3;
    if (f(m1) <= f(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  std::size_t best = lo;
  double best_value = f(lo);
  for (std::size_t i = lo + 1; i <= hi; ++i) {
    double v = f(i);
    if (v < best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

std::size_t TernarySearchMinIndex(std::size_t lo, std::size_t hi,
                                  const std::function<double(std::size_t)>& f);

/// Minimizes a convex function of a real variable over [lo, hi] via ternary
/// search to (roughly) machine precision. Used for the inner 1-D
/// min-of-max-of-lines step of the MAE/MARE oracle (section 3.6) where the
/// envelope is convex piecewise-linear. Returns the argmin.
double TernarySearchMinContinuous(double lo, double hi,
                                  const std::function<double(double)>& f,
                                  int iterations = 200);

}  // namespace probsyn

#endif  // PROBSYN_UTIL_SEARCH_H_
