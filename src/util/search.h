#ifndef PROBSYN_UTIL_SEARCH_H_
#define PROBSYN_UTIL_SEARCH_H_

#include <cstddef>
#include <functional>

namespace probsyn {

/// Minimizes a unimodal function over the integer range [lo, hi].
///
/// "Unimodal" here means: non-increasing up to some minimizer, then
/// non-decreasing — exactly the shape the paper proves for SAE/SARE/MAE/MARE
/// bucket cost as a function of the representative's index in V
/// (sections 3.3, 3.4, 3.6). Plateaus are handled by shrinking toward the
/// left, so the returned index is a (leftmost-ish) minimizer.
///
/// Cost: O(log(hi - lo)) evaluations.
std::size_t TernarySearchMinIndex(std::size_t lo, std::size_t hi,
                                  const std::function<double(std::size_t)>& f);

/// Minimizes a convex function of a real variable over [lo, hi] via ternary
/// search to (roughly) machine precision. Used for the inner 1-D
/// min-of-max-of-lines step of the MAE/MARE oracle (section 3.6) where the
/// envelope is convex piecewise-linear. Returns the argmin.
double TernarySearchMinContinuous(double lo, double hi,
                                  const std::function<double(double)>& f,
                                  int iterations = 200);

}  // namespace probsyn

#endif  // PROBSYN_UTIL_SEARCH_H_
