#include "util/deadline.h"

#include <cstdio>

namespace probsyn {

Deadline Deadline::After(double seconds) {
  Deadline d;
  d.armed_ = true;
  d.when_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
  return d;
}

Deadline Deadline::At(std::chrono::steady_clock::time_point when) {
  Deadline d;
  d.armed_ = true;
  d.when_ = when;
  return d;
}

Status ExecContext::StopStatus(const char* route, const char* progress_unit,
                               std::size_t done, std::size_t total) const {
  const bool cancelled = CancelRequested();
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s stopped at %s %zu/%zu: %s", route,
                progress_unit, done, total,
                cancelled ? "cancelled" : "deadline exceeded");
  return cancelled ? Status::Cancelled(buf) : Status::DeadlineExceeded(buf);
}

}  // namespace probsyn
