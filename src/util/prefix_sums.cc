#include "util/prefix_sums.h"

#include "util/math.h"

namespace probsyn {

PrefixSums::PrefixSums(std::span<const double> values) {
  cumulative_.resize(values.size() + 1);
  cumulative_[0] = 0.0;
  KahanSum sum;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum.Add(values[i]);
    cumulative_[i + 1] = sum.value();
  }
}

}  // namespace probsyn
