#include "util/math.h"

#include <algorithm>

namespace probsyn {

double SumStable(std::span<const double> xs) {
  KahanSum sum;
  for (double x : xs) sum.Add(x);
  return sum.value();
}

bool AlmostEqual(double a, double b, double rtol, double atol) {
  if (a == b) return true;  // Handles exact zeros and infinities of same sign.
  if (std::isnan(a) || std::isnan(b)) return false;
  double diff = std::fabs(a - b);
  double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= atol + rtol * scale;
}

std::size_t NextPowerOfTwo(std::size_t v) {
  if (v <= 1) return 1;
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::size_t FloorLog2(std::size_t v) {
  std::size_t l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

}  // namespace probsyn
