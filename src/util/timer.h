#ifndef PROBSYN_UTIL_TIMER_H_
#define PROBSYN_UTIL_TIMER_H_

#include <chrono>

namespace probsyn {

/// Monotonic wall-clock stopwatch for the timing experiments (Figure 3).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace probsyn

#endif  // PROBSYN_UTIL_TIMER_H_
