#ifndef PROBSYN_CORE_WAVELET_H_
#define PROBSYN_CORE_WAVELET_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// One retained Haar coefficient of a wavelet synopsis.
struct WaveletCoefficient {
  std::size_t index = 0;
  double value = 0.0;  ///< Normalized (orthonormal) coefficient value.

  friend bool operator==(const WaveletCoefficient&, const WaveletCoefficient&) =
      default;
};

/// A B-term Haar wavelet synopsis over a domain of size `domain_size`,
/// internally transformed at the padded power-of-two size `transform_size`.
/// Coefficients not retained are implicitly zero (paper section 2.2).
class WaveletSynopsis {
 public:
  WaveletSynopsis() = default;
  WaveletSynopsis(std::size_t domain_size, std::size_t transform_size,
                  std::vector<WaveletCoefficient> coefficients);

  std::size_t domain_size() const { return domain_size_; }
  std::size_t transform_size() const { return transform_size_; }
  std::size_t num_coefficients() const { return coefficients_.size(); }
  /// Retained coefficients, sorted by index.
  const std::vector<WaveletCoefficient>& coefficients() const {
    return coefficients_;
  }

  Status Validate() const;

  /// The synopsis estimate ghat_i. O(log n log B).
  double Estimate(std::size_t i) const;

  /// Materializes [ghat_0, ..., ghat_{domain_size-1}] via one inverse
  /// transform. O(transform_size).
  std::vector<double> ToFrequencyVector() const;

  /// Estimate of sum_{i=a..b} g_i (approximate range-count query).
  double EstimateRangeSum(std::size_t a, std::size_t b) const;

  std::string ToString() const;

  friend bool operator==(const WaveletSynopsis&, const WaveletSynopsis&) =
      default;

 private:
  std::size_t domain_size_ = 0;
  std::size_t transform_size_ = 0;
  std::vector<WaveletCoefficient> coefficients_;  // sorted by index
};

/// Builds the expected-SSE-optimal B-term synopsis from a vector of
/// expected frequencies (paper section 4.1, Theorem 7): transform E[g] and
/// keep the B largest coefficients by |normalized value| (ties broken
/// toward lower index for determinism). This one routine serves both the
/// probabilistic method (expected frequencies of the true input) and the
/// sampled-world baseline (frequencies of a sampled world). O(n log n).
WaveletSynopsis BuildSseWaveletFromFrequencies(std::span<const double> freqs,
                                               std::size_t num_coefficients);

/// Expected-SSE-optimal synopsis for value-pdf input.
StatusOr<WaveletSynopsis> BuildSseOptimalWavelet(const ValuePdfInput& input,
                                                 std::size_t num_coefficients);
/// Expected-SSE-optimal synopsis for tuple-pdf input (by linearity, the
/// expected coefficients are the transform of the expected frequencies in
/// every model — section 4.1).
StatusOr<WaveletSynopsis> BuildSseOptimalWavelet(const TuplePdfInput& input,
                                                 std::size_t num_coefficients);

/// The expected normalized Haar coefficients mu_ci of an input: the
/// transform of its (padded) expected frequencies.
std::vector<double> ExpectedHaarCoefficients(std::span<const double> expected);

}  // namespace probsyn

#endif  // PROBSYN_CORE_WAVELET_H_
