#ifndef PROBSYN_CORE_SSE_ORACLE_H_
#define PROBSYN_CORE_SSE_ORACLE_H_

#include <cstddef>
#include <vector>

#include "core/bucket_oracle.h"
#include "core/metrics.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/prefix_sums.h"

namespace probsyn {

/// SSE bucket oracle from per-item frequency moments (paper section 3.1,
/// value-pdf branch). O(n) preprocessing, O(1) per bucket.
///
/// * kFixedRepresentative: cost([s,e]) = sum E[g^2] - (sum E[g])^2 / n_b,
///   the expected SSE of the best constant representative
///   bhat = mean of expected frequencies. Exact in EVERY model — with a
///   fixed bhat there are no cross-item terms, so only per-item moments
///   enter.
/// * kWorldMean (paper equation (5)): cost = sum E[g^2] - E[(sum g)^2]/n_b
///   with E[(sum g)^2] = (sum E[g])^2 + Var[sum g]. This class computes
///   Var[sum g] as the sum of per-item variances, which is exact for
///   value-pdf input (independent items) and an *approximation* for
///   tuple-pdf input (ignores within-tuple anticorrelation). Use
///   SseTupleWorldMeanOracle for the exact tuple-pdf version.
class SseMomentOracle final : public BucketCostOracle {
 public:
  /// `weights` are optional per-item workload weights phi_i (empty =
  /// uniform); the weighted cost is sum phi_i E[(g_i - bhat)^2], minimized
  /// at bhat = sum phi E[g] / sum phi. Weights are only supported for the
  /// kFixedRepresentative variant (the factory enforces this).
  SseMomentOracle(std::vector<double> means, std::vector<double> second_moments,
                  std::vector<double> variances, SseVariant variant,
                  std::vector<double> weights = {});

  static SseMomentOracle FromValuePdf(const ValuePdfInput& input,
                                      SseVariant variant,
                                      std::vector<double> weights = {});
  /// Independent-items treatment of tuple-pdf input (exact for
  /// kFixedRepresentative; the induced approximation for kWorldMean).
  static SseMomentOracle FromTuplePdf(const TuplePdfInput& input,
                                      SseVariant variant,
                                      std::vector<double> weights = {});

  std::size_t domain_size() const override { return n_; }
  BucketCost Cost(std::size_t s, std::size_t e) const override;

  /// Raw prefix tables for the devirtualized DP kernel
  /// (core/dp_kernels.cc), which replicates Cost() over flat spans of these
  /// arrays. Kernel code must mirror Cost()'s exact expression sequence to
  /// stay bit-identical.
  SseVariant variant() const { return variant_; }
  const PrefixSums& mean_prefix() const { return mean_; }
  const PrefixSums& second_prefix() const { return second_; }
  const PrefixSums& variance_prefix() const { return variance_; }
  const PrefixSums& weight_prefix() const { return weight_; }
  const PrefixSums& raw_mean_prefix() const { return raw_mean_; }

 private:
  std::size_t n_;
  SseVariant variant_;
  bool weighted_;
  PrefixSums mean_;      // phi * E[g]
  PrefixSums second_;    // phi * E[g^2]
  PrefixSums variance_;  // Var[g] (uniform-weight world-mean path only)
  PrefixSums weight_;    // phi
  PrefixSums raw_mean_;  // E[g] (fallback representative on zero weight)
};

/// Exact world-mean SSE oracle for the tuple-pdf model (paper section 3.1,
/// tuple-pdf branch). The bucket cost needs
///     Var[sum_{i in [s,e]} g_i] = sum_t q_t (1 - q_t),
///     q_t = Pr[s <= t_j <= e],
/// whose sum_t q_t^2 part couples the bucket's endpoints through every
/// tuple; see DESIGN.md section 8 item 3 for why the paper's printed
/// prefix-array formula does not recover it. We keep sum_t q_t^2
/// *incrementally* along the DP's leftward sweeps — amortized O(1 + tuples
/// touched) per extension, preserving the overall O(B(n^2 + n m/n)) DP —
/// and recompute it from the per-tuple CDFs for random access (O(m)).
class SseTupleWorldMeanOracle final : public BucketCostOracle {
 public:
  explicit SseTupleWorldMeanOracle(const TuplePdfInput& input);

  std::size_t domain_size() const override { return n_; }
  BucketCost Cost(std::size_t s, std::size_t e) const override;
  std::unique_ptr<Sweep> StartSweep(std::size_t e) const override;

  /// Non-virtual leftward sweep with fixed right end `e`: the k-th call to
  /// Extend() returns Cost(e - k + 1, e), maintained incrementally. This is
  /// the concrete engine behind the virtual StartSweep() adapter; the
  /// devirtualized DP kernel (core/dp_kernels.cc) drives it directly, so
  /// both paths run the identical arithmetic.
  class FlatSweep {
   public:
    FlatSweep(const SseTupleWorldMeanOracle& oracle, std::size_t e);
    BucketCost Extend();

   private:
    const SseTupleWorldMeanOracle& oracle_;
    std::size_t end_;
    std::size_t next_start_;
    double sum_q2_ = 0.0;
    std::vector<double> tuple_q_;
  };

 private:
  class SweepImpl;

  std::size_t n_;
  PrefixSums mean_;    // prefix of E[g_i]
  PrefixSums second_;  // prefix of E[g_i^2]
  // Per-item postings: (tuple index, Pr[tuple = item]).
  struct Posting {
    std::uint32_t tuple = 0;
    double probability = 0.0;
  };
  std::vector<std::vector<Posting>> postings_;
  std::size_t num_tuples_ = 0;
  // Per-tuple data for random-access Cost(): the tuples themselves.
  std::vector<ProbTuple> tuples_;
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_SSE_ORACLE_H_
