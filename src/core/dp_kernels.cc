#include "core/dp_kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "core/abs_oracle.h"
#include "core/max_oracle.h"
#include "core/sse_oracle.h"
#include "core/ssre_oracle.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/thread_pool.h"

// The explicit-SIMD reduction paths target x86-64 with GCC/Clang function
// multiversioning (`target` attributes keep the rest of the TU at the
// baseline ISA); other platforms run the scalar path, which the dispatch
// clamps to automatically.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PROBSYN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace probsyn {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// SIMD min-reduction primitives. Every variant of every primitive computes
// the EXACT minimum (floating-point min/max are exact in any accumulation
// order for NaN-free data), so scalar/AVX2/AVX-512 agree bit-for-bit up to
// the sign of a +-0.0 tie — the DP kernels' parity contract never depends
// on the dispatched path. Scalar forms use four independent accumulators
// (breaks the loop-carried minsd chain, gives the auto-vectorizer lanes);
// vector forms use four independent SIMD accumulators for the same reason.

double ScalarMinPlusConst(const double* a, std::size_t n, double add) {
  double m0 = kInfinity, m1 = kInfinity, m2 = kInfinity, m3 = kInfinity;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::min(m0, a[i] + add);
    m1 = std::min(m1, a[i + 1] + add);
    m2 = std::min(m2, a[i + 2] + add);
    m3 = std::min(m3, a[i + 3] + add);
  }
  double m = std::min(std::min(m0, m1), std::min(m2, m3));
  for (; i < n; ++i) m = std::min(m, a[i] + add);
  return m;
}

double ScalarMinPlusPairs(const double* a, const double* b, std::size_t n) {
  double m0 = kInfinity, m1 = kInfinity, m2 = kInfinity, m3 = kInfinity;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::min(m0, a[i] + b[i]);
    m1 = std::min(m1, a[i + 1] + b[i + 1]);
    m2 = std::min(m2, a[i + 2] + b[i + 2]);
    m3 = std::min(m3, a[i + 3] + b[i + 3]);
  }
  double m = std::min(std::min(m0, m1), std::min(m2, m3));
  for (; i < n; ++i) m = std::min(m, a[i] + b[i]);
  return m;
}

double ScalarMinPlusReverse(const double* a, const double* b, std::size_t n) {
  double m0 = kInfinity, m1 = kInfinity, m2 = kInfinity, m3 = kInfinity;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::min(m0, a[i] + b[-static_cast<std::ptrdiff_t>(i)]);
    m1 = std::min(m1, a[i + 1] + b[-static_cast<std::ptrdiff_t>(i + 1)]);
    m2 = std::min(m2, a[i + 2] + b[-static_cast<std::ptrdiff_t>(i + 2)]);
    m3 = std::min(m3, a[i + 3] + b[-static_cast<std::ptrdiff_t>(i + 3)]);
  }
  double m = std::min(std::min(m0, m1), std::min(m2, m3));
  for (; i < n; ++i) {
    m = std::min(m, a[i] + b[-static_cast<std::ptrdiff_t>(i)]);
  }
  return m;
}

double ScalarMinMaxPairs(const double* a, const double* b, std::size_t n) {
  double m0 = kInfinity, m1 = kInfinity, m2 = kInfinity, m3 = kInfinity;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::min(m0, std::max(a[i], b[i]));
    m1 = std::min(m1, std::max(a[i + 1], b[i + 1]));
    m2 = std::min(m2, std::max(a[i + 2], b[i + 2]));
    m3 = std::min(m3, std::max(a[i + 3], b[i + 3]));
  }
  double m = std::min(std::min(m0, m1), std::min(m2, m3));
  for (; i < n; ++i) m = std::min(m, std::max(a[i], b[i]));
  return m;
}

double ScalarApproxQuadColumn(const double* prev, const double* a,
                              const double* b, const double* c,
                              const double* v, std::size_t n, double a_hi,
                              double b_hi, double c_hi, double v_hi,
                              double* values) {
  double m = kInfinity;
  for (std::size_t i = 0; i < n; ++i) {
    const double sum_c = c_hi - c[i];
    const double sum_b = b_hi - b[i];
    const double sum_a = a_hi - a[i];
    double esos = sum_b * sum_b;
    if (v != nullptr) esos += v_hi - v[i];
    double cost = sum_a - esos / sum_c;
    cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;  // ClampTinyNegative
    if (sum_c <= 0.0) cost = 0.0;
    const double value = prev[i] + cost;
    values[i] = value;
    m = std::min(m, value);
  }
  return m;
}

double ScalarStreamingMergeColumn(const double* error, const double* sum_mean,
                                  const double* sum_second,
                                  const double* position, std::size_t n,
                                  double count, double total_mean,
                                  double total_second, double* values) {
  double m = kInfinity;
  for (std::size_t i = 0; i < n; ++i) {
    const double width = count - position[i];
    const double mean = total_mean - sum_mean[i];
    const double second = total_second - sum_second[i];
    double cost = second - mean * mean / width;
    cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;  // ClampTinyNegative
    const double v =
        position[i] >= count ? kInfinity : error[i] + cost;
    values[i] = v;
    m = std::min(m, v);
  }
  return m;
}

// One push (lane) of the batched streaming sweep with the full reference
// arithmetic — hardware divide, ClampTinyNegative, first-index argmin.
// Defines the semantics every vector path must reproduce; also serves as
// the AVX-512 path's negative-cost re-sweep and every path's partial-group
// tail. The >= count guard of the single-push column is a precondition
// here (every position < count), so it is omitted.
void ScalarStreamingBatchLane(const double* error, const double* sum_mean,
                              const double* sum_second,
                              const double* position, std::size_t n,
                              double count, double total_mean,
                              double total_second, double* best,
                              std::int64_t* best_index) {
  double m = kInfinity;
  std::int64_t arg = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const double width = count - position[i];
    const double mean = total_mean - sum_mean[i];
    const double second = total_second - sum_second[i];
    double cost = second - mean * mean / width;
    cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;  // ClampTinyNegative
    const double v = error[i] + cost;
    if (v < m) {
      m = v;
      arg = static_cast<std::int64_t>(i);
    }
  }
  *best = m;
  *best_index = arg;
}

void ScalarStreamingBatchSweep(const double* error, const double* sum_mean,
                               const double* sum_second,
                               const double* position,
                               const std::int64_t* /*neg_position*/,
                               std::size_t n, const double* total_mean,
                               const double* total_second, std::size_t count0,
                               const double* /*recips*/,
                               std::size_t num_pushes, double* best,
                               std::int64_t* best_index) {
  for (std::size_t j = 0; j < num_pushes; ++j) {
    ScalarStreamingBatchLane(error, sum_mean, sum_second, position, n,
                             static_cast<double>(count0 + j), total_mean[j],
                             total_second[j], &best[j], &best_index[j]);
  }
}

double ScalarMinArray(const double* a, std::size_t n) {
  double m0 = kInfinity, m1 = kInfinity, m2 = kInfinity, m3 = kInfinity;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::min(m0, a[i]);
    m1 = std::min(m1, a[i + 1]);
    m2 = std::min(m2, a[i + 2]);
    m3 = std::min(m3, a[i + 3]);
  }
  double m = std::min(std::min(m0, m1), std::min(m2, m3));
  for (; i < n; ++i) m = std::min(m, a[i]);
  return m;
}

#ifdef PROBSYN_SIMD_X86

__attribute__((target("avx2"))) inline double HorizontalMin256(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d m = _mm_min_pd(lo, hi);
  m = _mm_min_sd(m, _mm_unpackhi_pd(m, m));
  return _mm_cvtsd_f64(m);
}

__attribute__((target("avx2"))) double Avx2MinPlusConst(const double* a,
                                                        std::size_t n,
                                                        double add) {
  const __m256d vadd = _mm256_set1_pd(add);
  __m256d m0 = _mm256_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    m0 = _mm256_min_pd(m0, _mm256_add_pd(_mm256_loadu_pd(a + i), vadd));
    m1 = _mm256_min_pd(m1, _mm256_add_pd(_mm256_loadu_pd(a + i + 4), vadd));
    m2 = _mm256_min_pd(m2, _mm256_add_pd(_mm256_loadu_pd(a + i + 8), vadd));
    m3 = _mm256_min_pd(m3, _mm256_add_pd(_mm256_loadu_pd(a + i + 12), vadd));
  }
  for (; i + 4 <= n; i += 4) {
    m0 = _mm256_min_pd(m0, _mm256_add_pd(_mm256_loadu_pd(a + i), vadd));
  }
  double m = HorizontalMin256(
      _mm256_min_pd(_mm256_min_pd(m0, m1), _mm256_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, a[i] + add);
  return m;
}

__attribute__((target("avx2"))) double Avx2MinPlusPairs(const double* a,
                                                        const double* b,
                                                        std::size_t n) {
  __m256d m0 = _mm256_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    m0 = _mm256_min_pd(m0, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                         _mm256_loadu_pd(b + i)));
    m1 = _mm256_min_pd(m1, _mm256_add_pd(_mm256_loadu_pd(a + i + 4),
                                         _mm256_loadu_pd(b + i + 4)));
    m2 = _mm256_min_pd(m2, _mm256_add_pd(_mm256_loadu_pd(a + i + 8),
                                         _mm256_loadu_pd(b + i + 8)));
    m3 = _mm256_min_pd(m3, _mm256_add_pd(_mm256_loadu_pd(a + i + 12),
                                         _mm256_loadu_pd(b + i + 12)));
  }
  for (; i + 4 <= n; i += 4) {
    m0 = _mm256_min_pd(m0, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                         _mm256_loadu_pd(b + i)));
  }
  double m = HorizontalMin256(
      _mm256_min_pd(_mm256_min_pd(m0, m1), _mm256_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, a[i] + b[i]);
  return m;
}

__attribute__((target("avx2"))) double Avx2MinPlusReverse(const double* a,
                                                          const double* b,
                                                          std::size_t n) {
  // b walks downward: lane i of the reversed load of b[-i-3 .. -i] pairs
  // with a[i + 3 - lane]; reversing with vpermpd keeps the adds
  // elementwise identical to the scalar loop.
  __m256d m0 = _mm256_set1_pd(kInfinity), m1 = m0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d r0 = _mm256_permute4x64_pd(
        _mm256_loadu_pd(b - static_cast<std::ptrdiff_t>(i) - 3),
        _MM_SHUFFLE(0, 1, 2, 3));
    __m256d r1 = _mm256_permute4x64_pd(
        _mm256_loadu_pd(b - static_cast<std::ptrdiff_t>(i) - 7),
        _MM_SHUFFLE(0, 1, 2, 3));
    m0 = _mm256_min_pd(m0, _mm256_add_pd(_mm256_loadu_pd(a + i), r0));
    m1 = _mm256_min_pd(m1, _mm256_add_pd(_mm256_loadu_pd(a + i + 4), r1));
  }
  double m = HorizontalMin256(_mm256_min_pd(m0, m1));
  for (; i < n; ++i) {
    m = std::min(m, a[i] + b[-static_cast<std::ptrdiff_t>(i)]);
  }
  return m;
}

__attribute__((target("avx2"))) double Avx2MinMaxPairs(const double* a,
                                                       const double* b,
                                                       std::size_t n) {
  __m256d m0 = _mm256_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    m0 = _mm256_min_pd(m0, _mm256_max_pd(_mm256_loadu_pd(a + i),
                                         _mm256_loadu_pd(b + i)));
    m1 = _mm256_min_pd(m1, _mm256_max_pd(_mm256_loadu_pd(a + i + 4),
                                         _mm256_loadu_pd(b + i + 4)));
    m2 = _mm256_min_pd(m2, _mm256_max_pd(_mm256_loadu_pd(a + i + 8),
                                         _mm256_loadu_pd(b + i + 8)));
    m3 = _mm256_min_pd(m3, _mm256_max_pd(_mm256_loadu_pd(a + i + 12),
                                         _mm256_loadu_pd(b + i + 12)));
  }
  for (; i + 4 <= n; i += 4) {
    m0 = _mm256_min_pd(m0, _mm256_max_pd(_mm256_loadu_pd(a + i),
                                         _mm256_loadu_pd(b + i)));
  }
  double m = HorizontalMin256(
      _mm256_min_pd(_mm256_min_pd(m0, m1), _mm256_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, std::max(a[i], b[i]));
  return m;
}

__attribute__((target("avx2"))) double Avx2MinArray(const double* a,
                                                    std::size_t n) {
  __m256d m0 = _mm256_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    m0 = _mm256_min_pd(m0, _mm256_loadu_pd(a + i));
    m1 = _mm256_min_pd(m1, _mm256_loadu_pd(a + i + 4));
    m2 = _mm256_min_pd(m2, _mm256_loadu_pd(a + i + 8));
    m3 = _mm256_min_pd(m3, _mm256_loadu_pd(a + i + 12));
  }
  for (; i + 4 <= n; i += 4) {
    m0 = _mm256_min_pd(m0, _mm256_loadu_pd(a + i));
  }
  double m = HorizontalMin256(
      _mm256_min_pd(_mm256_min_pd(m0, m1), _mm256_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, a[i]);
  return m;
}

// GCC's AVX-512 intrinsics (_mm512_min_pd and friends) expand through
// _mm512_undefined_pd(), which trips bogus -W(maybe-)uninitialized
// diagnostics under -O3 (GCC PR105593); silence them for this block only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx2"))) double Avx2ApproxQuadColumn(
    const double* prev, const double* a, const double* b, const double* c,
    const double* v, std::size_t n, double a_hi, double b_hi, double c_hi,
    double v_hi, double* values) {
  const __m256d va_hi = _mm256_set1_pd(a_hi);
  const __m256d vb_hi = _mm256_set1_pd(b_hi);
  const __m256d vc_hi = _mm256_set1_pd(c_hi);
  const __m256d vv_hi = _mm256_set1_pd(v_hi);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vneg_tol = _mm256_set1_pd(-1e-6);
  __m256d acc = _mm256_set1_pd(kInfinity);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum_c = _mm256_sub_pd(vc_hi, _mm256_loadu_pd(c + i));
    const __m256d sum_b = _mm256_sub_pd(vb_hi, _mm256_loadu_pd(b + i));
    const __m256d sum_a = _mm256_sub_pd(va_hi, _mm256_loadu_pd(a + i));
    __m256d esos = _mm256_mul_pd(sum_b, sum_b);
    if (v != nullptr) {
      esos = _mm256_add_pd(
          esos, _mm256_sub_pd(vv_hi, _mm256_loadu_pd(v + i)));
    }
    __m256d cost = _mm256_sub_pd(sum_a, _mm256_div_pd(esos, sum_c));
    const __m256d tiny_negative =
        _mm256_and_pd(_mm256_cmp_pd(cost, vzero, _CMP_LT_OQ),
                      _mm256_cmp_pd(cost, vneg_tol, _CMP_GT_OQ));
    cost = _mm256_blendv_pd(cost, vzero, tiny_negative);
    // Degenerate bucket (no workload weight): cost pinned to zero, as the
    // scalar evaluator's early return does.
    cost = _mm256_blendv_pd(cost, vzero,
                            _mm256_cmp_pd(sum_c, vzero, _CMP_LE_OQ));
    const __m256d value = _mm256_add_pd(_mm256_loadu_pd(prev + i), cost);
    _mm256_storeu_pd(values + i, value);
    acc = _mm256_min_pd(acc, value);
  }
  double m = HorizontalMin256(acc);
  for (; i < n; ++i) {
    const double sum_c = c_hi - c[i];
    const double sum_b = b_hi - b[i];
    const double sum_a = a_hi - a[i];
    double esos = sum_b * sum_b;
    if (v != nullptr) esos += v_hi - v[i];
    double cost = sum_a - esos / sum_c;
    cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;
    if (sum_c <= 0.0) cost = 0.0;
    const double value = prev[i] + cost;
    values[i] = value;
    m = std::min(m, value);
  }
  return m;
}

__attribute__((target("avx2"))) double Avx2StreamingMergeColumn(
    const double* error, const double* sum_mean, const double* sum_second,
    const double* position, std::size_t n, double count, double total_mean,
    double total_second, double* values) {
  const __m256d vcount = _mm256_set1_pd(count);
  const __m256d vtotal_mean = _mm256_set1_pd(total_mean);
  const __m256d vtotal_second = _mm256_set1_pd(total_second);
  const __m256d vinf = _mm256_set1_pd(kInfinity);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vneg_tol = _mm256_set1_pd(-1e-6);
  __m256d acc = vinf;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_loadu_pd(position + i);
    const __m256d width = _mm256_sub_pd(vcount, p);
    const __m256d mean =
        _mm256_sub_pd(vtotal_mean, _mm256_loadu_pd(sum_mean + i));
    const __m256d second =
        _mm256_sub_pd(vtotal_second, _mm256_loadu_pd(sum_second + i));
    __m256d cost = _mm256_sub_pd(
        second, _mm256_div_pd(_mm256_mul_pd(mean, mean), width));
    // ClampTinyNegative: -tol < cost < 0 snaps to zero.
    const __m256d tiny_negative =
        _mm256_and_pd(_mm256_cmp_pd(cost, vzero, _CMP_LT_OQ),
                      _mm256_cmp_pd(cost, vneg_tol, _CMP_GT_OQ));
    cost = _mm256_blendv_pd(cost, vzero, tiny_negative);
    __m256d v = _mm256_add_pd(_mm256_loadu_pd(error + i), cost);
    // Guard: candidates at or past the current position are unusable.
    v = _mm256_blendv_pd(v, vinf, _mm256_cmp_pd(p, vcount, _CMP_GE_OQ));
    _mm256_storeu_pd(values + i, v);
    acc = _mm256_min_pd(acc, v);
  }
  double m = HorizontalMin256(acc);
  for (; i < n; ++i) {
    const double width = count - position[i];
    const double mean = total_mean - sum_mean[i];
    const double second = total_second - sum_second[i];
    double cost = second - mean * mean / width;
    cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;
    const double v =
        position[i] >= count ? kInfinity : error[i] + cost;
    values[i] = v;
    m = std::min(m, v);
  }
  return m;
}

__attribute__((target("avx512f"))) inline double HorizontalMin512(__m512d v) {
  return _mm512_reduce_min_pd(v);
}

__attribute__((target("avx512f"))) double Avx512ApproxQuadColumn(
    const double* prev, const double* a, const double* b, const double* c,
    const double* v, std::size_t n, double a_hi, double b_hi, double c_hi,
    double v_hi, double* values) {
  const __m512d va_hi = _mm512_set1_pd(a_hi);
  const __m512d vb_hi = _mm512_set1_pd(b_hi);
  const __m512d vc_hi = _mm512_set1_pd(c_hi);
  const __m512d vv_hi = _mm512_set1_pd(v_hi);
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vneg_tol = _mm512_set1_pd(-1e-6);
  __m512d acc = _mm512_set1_pd(kInfinity);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sum_c = _mm512_sub_pd(vc_hi, _mm512_loadu_pd(c + i));
    const __m512d sum_b = _mm512_sub_pd(vb_hi, _mm512_loadu_pd(b + i));
    const __m512d sum_a = _mm512_sub_pd(va_hi, _mm512_loadu_pd(a + i));
    __m512d esos = _mm512_mul_pd(sum_b, sum_b);
    if (v != nullptr) {
      esos = _mm512_add_pd(
          esos, _mm512_sub_pd(vv_hi, _mm512_loadu_pd(v + i)));
    }
    __m512d cost = _mm512_sub_pd(sum_a, _mm512_div_pd(esos, sum_c));
    const __mmask8 tiny_negative =
        _mm512_cmp_pd_mask(cost, vzero, _CMP_LT_OQ) &
        _mm512_cmp_pd_mask(cost, vneg_tol, _CMP_GT_OQ);
    cost = _mm512_mask_blend_pd(tiny_negative, cost, vzero);
    cost = _mm512_mask_blend_pd(_mm512_cmp_pd_mask(sum_c, vzero, _CMP_LE_OQ),
                                cost, vzero);
    const __m512d value = _mm512_add_pd(_mm512_loadu_pd(prev + i), cost);
    _mm512_storeu_pd(values + i, value);
    acc = _mm512_min_pd(acc, value);
  }
  double m = HorizontalMin512(acc);
  for (; i < n; ++i) {
    const double sum_c = c_hi - c[i];
    const double sum_b = b_hi - b[i];
    const double sum_a = a_hi - a[i];
    double esos = sum_b * sum_b;
    if (v != nullptr) esos += v_hi - v[i];
    double cost = sum_a - esos / sum_c;
    cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;
    if (sum_c <= 0.0) cost = 0.0;
    const double value = prev[i] + cost;
    values[i] = value;
    m = std::min(m, value);
  }
  return m;
}

__attribute__((target("avx512f"))) double Avx512StreamingMergeColumn(
    const double* error, const double* sum_mean, const double* sum_second,
    const double* position, std::size_t n, double count, double total_mean,
    double total_second, double* values) {
  const __m512d vcount = _mm512_set1_pd(count);
  const __m512d vtotal_mean = _mm512_set1_pd(total_mean);
  const __m512d vtotal_second = _mm512_set1_pd(total_second);
  const __m512d vinf = _mm512_set1_pd(kInfinity);
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vneg_tol = _mm512_set1_pd(-1e-6);
  __m512d acc = vinf;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d p = _mm512_loadu_pd(position + i);
    const __m512d width = _mm512_sub_pd(vcount, p);
    const __m512d mean =
        _mm512_sub_pd(vtotal_mean, _mm512_loadu_pd(sum_mean + i));
    const __m512d second =
        _mm512_sub_pd(vtotal_second, _mm512_loadu_pd(sum_second + i));
    __m512d cost = _mm512_sub_pd(
        second, _mm512_div_pd(_mm512_mul_pd(mean, mean), width));
    const __mmask8 tiny_negative =
        _mm512_cmp_pd_mask(cost, vzero, _CMP_LT_OQ) &
        _mm512_cmp_pd_mask(cost, vneg_tol, _CMP_GT_OQ);
    cost = _mm512_mask_blend_pd(tiny_negative, cost, vzero);
    __m512d v = _mm512_add_pd(_mm512_loadu_pd(error + i), cost);
    v = _mm512_mask_blend_pd(_mm512_cmp_pd_mask(p, vcount, _CMP_GE_OQ), v,
                             vinf);
    _mm512_storeu_pd(values + i, v);
    acc = _mm512_min_pd(acc, v);
  }
  double m = HorizontalMin512(acc);
  for (; i < n; ++i) {
    const double width = count - position[i];
    const double mean = total_mean - sum_mean[i];
    const double second = total_second - sum_second[i];
    double cost = second - mean * mean / width;
    cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;
    const double v =
        position[i] >= count ? kInfinity : error[i] + cost;
    values[i] = v;
    m = std::min(m, v);
  }
  return m;
}

// Batched streaming sweep, 4 pushes per ymm register: lane j of the
// vectors is push count0+g+j, candidates stream one at a time with their
// column scalars entering as broadcasts. Uses the reference hardware
// divide and clamp elementwise (no reciprocal table, no fallback), so
// every element matches ScalarStreamingBatchLane bit-for-bit; the argmin
// blends on strict less-than, which keeps the FIRST index of the minimum
// exactly like the scalar scan.
__attribute__((target("avx2"))) void Avx2StreamingBatchSweep(
    const double* error, const double* sum_mean, const double* sum_second,
    const double* position, const std::int64_t* /*neg_position*/,
    std::size_t n, const double* total_mean, const double* total_second,
    std::size_t count0, const double* /*recips*/, std::size_t num_pushes,
    double* best, std::int64_t* best_index) {
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vneg_tol = _mm256_set1_pd(-1e-6);
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t g = 0;
  for (; g + 4 <= num_pushes; g += 4) {
    alignas(32) double lane_count[4];
    for (int l = 0; l < 4; ++l) {
      lane_count[l] = static_cast<double>(count0 + g + l);
    }
    const __m256d tp = _mm256_load_pd(lane_count);
    const __m256d tm = _mm256_loadu_pd(total_mean + g);
    const __m256d ts = _mm256_loadu_pd(total_second + g);
    __m256d acc = _mm256_set1_pd(kInfinity);
    __m256i aidx = _mm256_set1_epi64x(-1);
    __m256i iv = _mm256_setzero_si256();
    for (std::size_t i = 0; i < n; ++i) {
      const __m256d mean = _mm256_sub_pd(tm, _mm256_broadcast_sd(sum_mean + i));
      const __m256d second =
          _mm256_sub_pd(ts, _mm256_broadcast_sd(sum_second + i));
      const __m256d width = _mm256_sub_pd(tp, _mm256_broadcast_sd(position + i));
      __m256d cost = _mm256_sub_pd(
          second, _mm256_div_pd(_mm256_mul_pd(mean, mean), width));
      const __m256d tiny_negative =
          _mm256_and_pd(_mm256_cmp_pd(cost, vzero, _CMP_LT_OQ),
                        _mm256_cmp_pd(cost, vneg_tol, _CMP_GT_OQ));
      cost = _mm256_blendv_pd(cost, vzero, tiny_negative);
      const __m256d v = _mm256_add_pd(_mm256_broadcast_sd(error + i), cost);
      const __m256d lt = _mm256_cmp_pd(v, acc, _CMP_LT_OQ);
      acc = _mm256_blendv_pd(acc, v, lt);
      // lt is all-ones per 64-bit lane, so the byte blend selects whole
      // lane indices.
      aidx = _mm256_blendv_epi8(aidx, iv, _mm256_castpd_si256(lt));
      iv = _mm256_add_epi64(iv, one);
    }
    _mm256_storeu_pd(best + g, acc);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(best_index + g), aidx);
  }
  for (; g < num_pushes; ++g) {
    ScalarStreamingBatchLane(error, sum_mean, sum_second, position, n,
                             static_cast<double>(count0 + g), total_mean[g],
                             total_second[g], &best[g], &best_index[g]);
  }
}

// Batched streaming sweep, 8 pushes per zmm register. The hot loop is
// division- and clamp-free: lane widths for one candidate are 8
// CONSECUTIVE integers, so their reciprocals are one contiguous unaligned
// load from the caller's table (recips + count0 + g - position[i] — no
// gather), and a Markstein fused step turns y = RN(1/w) into the exactly
// rounded quotient RN(a/w), bit-identical to vdivpd at multiply/fma
// throughput. The ClampTinyNegative branch is replaced by a per-lane
// running MIN of the raw costs: lanes whose column never went negative
// cannot have clamped anywhere, and the (measured-never-taken) negative
// lanes re-sweep through the exact scalar path.
__attribute__((target("avx512f"))) void Avx512StreamingBatchSweep(
    const double* error, const double* sum_mean, const double* sum_second,
    const double* position, const std::int64_t* neg_position, std::size_t n,
    const double* total_mean, const double* total_second, std::size_t count0,
    const double* recips, std::size_t num_pushes, double* best,
    std::int64_t* best_index) {
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t g = 0;
  for (; g + 8 <= num_pushes; g += 8) {
    const double* rb = recips + count0 + g;
    alignas(64) double lane_count[8];
    for (int l = 0; l < 8; ++l) {
      lane_count[l] = static_cast<double>(count0 + g + l);
    }
    const __m512d tp = _mm512_load_pd(lane_count);
    const __m512d tm = _mm512_loadu_pd(total_mean + g);
    const __m512d ts = _mm512_loadu_pd(total_second + g);
    __m512d acc = _mm512_set1_pd(kInfinity);
    __m512d cmin = _mm512_setzero_pd();
    __m512i aidx = _mm512_set1_epi64(-1);
    __m512i iv = _mm512_setzero_si512();
    for (std::size_t i = 0; i < n; ++i) {
      // Lane l needs 1 / ((count0 + g + l) - position[i]): consecutive
      // table entries starting at rb - position[i].
      const __m512d y = _mm512_loadu_pd(rb + neg_position[i]);
      const __m512d mean = _mm512_sub_pd(tm, _mm512_set1_pd(sum_mean[i]));
      const __m512d second = _mm512_sub_pd(ts, _mm512_set1_pd(sum_second[i]));
      const __m512d width = _mm512_sub_pd(tp, _mm512_set1_pd(position[i]));
      const __m512d a = _mm512_mul_pd(mean, mean);
      const __m512d q0 = _mm512_mul_pd(a, y);
      const __m512d r = _mm512_fnmadd_pd(width, q0, a);
      const __m512d q = _mm512_fmadd_pd(r, y, q0);  // RN(a / width)
      const __m512d c = _mm512_sub_pd(second, q);
      cmin = _mm512_min_pd(cmin, c);
      const __m512d v = _mm512_add_pd(_mm512_set1_pd(error[i]), c);
      const __mmask8 lt = _mm512_cmp_pd_mask(v, acc, _CMP_LT_OQ);
      acc = _mm512_mask_blend_pd(lt, acc, v);
      aidx = _mm512_mask_blend_epi64(lt, aidx, iv);
      iv = _mm512_add_epi64(iv, one);
    }
    alignas(64) double bv[8];
    alignas(64) double cv[8];
    alignas(64) std::int64_t bi[8];
    _mm512_store_pd(bv, acc);
    _mm512_store_pd(cv, cmin);
    _mm512_store_si512(reinterpret_cast<__m512i*>(bi), aidx);
    for (int l = 0; l < 8; ++l) {
      if (cv[l] < 0.0) {
        // Some candidate in this lane's column produced a negative raw
        // cost, where the reference clamps: redo the lane exactly.
        ScalarStreamingBatchLane(error, sum_mean, sum_second, position, n,
                                 lane_count[l], total_mean[g + l],
                                 total_second[g + l], &best[g + l],
                                 &best_index[g + l]);
      } else {
        best[g + l] = bv[l];
        best_index[g + l] = bi[l];
      }
    }
  }
  for (; g < num_pushes; ++g) {
    ScalarStreamingBatchLane(error, sum_mean, sum_second, position, n,
                             static_cast<double>(count0 + g), total_mean[g],
                             total_second[g], &best[g], &best_index[g]);
  }
}

__attribute__((target("avx512f"))) double Avx512MinPlusConst(const double* a,
                                                             std::size_t n,
                                                             double add) {
  const __m512d vadd = _mm512_set1_pd(add);
  __m512d m0 = _mm512_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    m0 = _mm512_min_pd(m0, _mm512_add_pd(_mm512_loadu_pd(a + i), vadd));
    m1 = _mm512_min_pd(m1, _mm512_add_pd(_mm512_loadu_pd(a + i + 8), vadd));
    m2 = _mm512_min_pd(m2, _mm512_add_pd(_mm512_loadu_pd(a + i + 16), vadd));
    m3 = _mm512_min_pd(m3, _mm512_add_pd(_mm512_loadu_pd(a + i + 24), vadd));
  }
  for (; i + 8 <= n; i += 8) {
    m0 = _mm512_min_pd(m0, _mm512_add_pd(_mm512_loadu_pd(a + i), vadd));
  }
  double m = HorizontalMin512(
      _mm512_min_pd(_mm512_min_pd(m0, m1), _mm512_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, a[i] + add);
  return m;
}

__attribute__((target("avx512f"))) double Avx512MinPlusPairs(const double* a,
                                                             const double* b,
                                                             std::size_t n) {
  __m512d m0 = _mm512_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    m0 = _mm512_min_pd(m0, _mm512_add_pd(_mm512_loadu_pd(a + i),
                                         _mm512_loadu_pd(b + i)));
    m1 = _mm512_min_pd(m1, _mm512_add_pd(_mm512_loadu_pd(a + i + 8),
                                         _mm512_loadu_pd(b + i + 8)));
    m2 = _mm512_min_pd(m2, _mm512_add_pd(_mm512_loadu_pd(a + i + 16),
                                         _mm512_loadu_pd(b + i + 16)));
    m3 = _mm512_min_pd(m3, _mm512_add_pd(_mm512_loadu_pd(a + i + 24),
                                         _mm512_loadu_pd(b + i + 24)));
  }
  for (; i + 8 <= n; i += 8) {
    m0 = _mm512_min_pd(m0, _mm512_add_pd(_mm512_loadu_pd(a + i),
                                         _mm512_loadu_pd(b + i)));
  }
  double m = HorizontalMin512(
      _mm512_min_pd(_mm512_min_pd(m0, m1), _mm512_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, a[i] + b[i]);
  return m;
}

__attribute__((target("avx512f"))) double Avx512MinPlusReverse(
    const double* a, const double* b, std::size_t n) {
  const __m512i rev = _mm512_set_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  __m512d m0 = _mm512_set1_pd(kInfinity), m1 = m0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512d r0 = _mm512_permutexvar_pd(
        rev, _mm512_loadu_pd(b - static_cast<std::ptrdiff_t>(i) - 7));
    __m512d r1 = _mm512_permutexvar_pd(
        rev, _mm512_loadu_pd(b - static_cast<std::ptrdiff_t>(i) - 15));
    m0 = _mm512_min_pd(m0, _mm512_add_pd(_mm512_loadu_pd(a + i), r0));
    m1 = _mm512_min_pd(m1, _mm512_add_pd(_mm512_loadu_pd(a + i + 8), r1));
  }
  double m = HorizontalMin512(_mm512_min_pd(m0, m1));
  for (; i < n; ++i) {
    m = std::min(m, a[i] + b[-static_cast<std::ptrdiff_t>(i)]);
  }
  return m;
}

__attribute__((target("avx512f"))) double Avx512MinMaxPairs(const double* a,
                                                            const double* b,
                                                            std::size_t n) {
  __m512d m0 = _mm512_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    m0 = _mm512_min_pd(m0, _mm512_max_pd(_mm512_loadu_pd(a + i),
                                         _mm512_loadu_pd(b + i)));
    m1 = _mm512_min_pd(m1, _mm512_max_pd(_mm512_loadu_pd(a + i + 8),
                                         _mm512_loadu_pd(b + i + 8)));
    m2 = _mm512_min_pd(m2, _mm512_max_pd(_mm512_loadu_pd(a + i + 16),
                                         _mm512_loadu_pd(b + i + 16)));
    m3 = _mm512_min_pd(m3, _mm512_max_pd(_mm512_loadu_pd(a + i + 24),
                                         _mm512_loadu_pd(b + i + 24)));
  }
  for (; i + 8 <= n; i += 8) {
    m0 = _mm512_min_pd(m0, _mm512_max_pd(_mm512_loadu_pd(a + i),
                                         _mm512_loadu_pd(b + i)));
  }
  double m = HorizontalMin512(
      _mm512_min_pd(_mm512_min_pd(m0, m1), _mm512_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, std::max(a[i], b[i]));
  return m;
}

__attribute__((target("avx512f"))) double Avx512MinArray(const double* a,
                                                         std::size_t n) {
  __m512d m0 = _mm512_set1_pd(kInfinity), m1 = m0, m2 = m0, m3 = m0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    m0 = _mm512_min_pd(m0, _mm512_loadu_pd(a + i));
    m1 = _mm512_min_pd(m1, _mm512_loadu_pd(a + i + 8));
    m2 = _mm512_min_pd(m2, _mm512_loadu_pd(a + i + 16));
    m3 = _mm512_min_pd(m3, _mm512_loadu_pd(a + i + 24));
  }
  for (; i + 8 <= n; i += 8) {
    m0 = _mm512_min_pd(m0, _mm512_loadu_pd(a + i));
  }
  double m = HorizontalMin512(
      _mm512_min_pd(_mm512_min_pd(m0, m1), _mm512_min_pd(m2, m3)));
  for (; i < n; ++i) m = std::min(m, a[i]);
  return m;
}

#pragma GCC diagnostic pop

#endif  // PROBSYN_SIMD_X86

// One vtable-free dispatch record per SimdPath; resolved once (or on a
// test override) and read with relaxed atomics on the hot paths.
struct SimdOps {
  SimdPath path;
  double (*min_plus_const)(const double*, std::size_t, double);
  double (*min_plus_pairs)(const double*, const double*, std::size_t);
  double (*min_plus_reverse)(const double*, const double*, std::size_t);
  double (*min_max_pairs)(const double*, const double*, std::size_t);
  double (*min_array)(const double*, std::size_t);
  double (*approx_quad_column)(const double*, const double*, const double*,
                               const double*, const double*, std::size_t,
                               double, double, double, double, double*);
  double (*streaming_merge_column)(const double*, const double*,
                                   const double*, const double*, std::size_t,
                                   double, double, double, double*);
  void (*streaming_batch_sweep)(const double*, const double*, const double*,
                                const double*, const std::int64_t*,
                                std::size_t, const double*, const double*,
                                std::size_t, const double*, std::size_t,
                                double*, std::int64_t*);
};

constexpr SimdOps kScalarOps{SimdPath::kScalar,
                             ScalarMinPlusConst,
                             ScalarMinPlusPairs,
                             ScalarMinPlusReverse,
                             ScalarMinMaxPairs,
                             ScalarMinArray,
                             ScalarApproxQuadColumn,
                             ScalarStreamingMergeColumn,
                             ScalarStreamingBatchSweep};
#ifdef PROBSYN_SIMD_X86
constexpr SimdOps kAvx2Ops{SimdPath::kAvx2,
                           Avx2MinPlusConst,
                           Avx2MinPlusPairs,
                           Avx2MinPlusReverse,
                           Avx2MinMaxPairs,
                           Avx2MinArray,
                           Avx2ApproxQuadColumn,
                           Avx2StreamingMergeColumn,
                           Avx2StreamingBatchSweep};
constexpr SimdOps kAvx512Ops{SimdPath::kAvx512,
                             Avx512MinPlusConst,
                             Avx512MinPlusPairs,
                             Avx512MinPlusReverse,
                             Avx512MinMaxPairs,
                             Avx512MinArray,
                             Avx512ApproxQuadColumn,
                             Avx512StreamingMergeColumn,
                             Avx512StreamingBatchSweep};
#endif

// Widest path the CPU supports (build-gated).
SimdPath DetectSimdPath() {
#ifdef PROBSYN_SIMD_X86
  if (__builtin_cpu_supports("avx512f")) return SimdPath::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdPath::kAvx2;
#endif
  return SimdPath::kScalar;
}

const SimdOps* OpsFor(SimdPath path) {
  // Clamp requests the CPU (or build) cannot honor down to the widest
  // supported path; kScalar is always honored exactly.
  SimdPath supported = DetectSimdPath();
  if (static_cast<int>(path) > static_cast<int>(supported)) path = supported;
  switch (path) {
#ifdef PROBSYN_SIMD_X86
    case SimdPath::kAvx512:
      return &kAvx512Ops;
    case SimdPath::kAvx2:
      return &kAvx2Ops;
#endif
    default:
      return &kScalarOps;
  }
}

// Initial dispatch: PROBSYN_SIMD env override ("scalar"/"avx2"/"avx512";
// "auto" or anything else falls through to CPUID), then CPUID.
const SimdOps* ResolveInitialOps() {
  if (const char* env = std::getenv("PROBSYN_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return OpsFor(SimdPath::kScalar);
    if (std::strcmp(env, "avx2") == 0) return OpsFor(SimdPath::kAvx2);
    if (std::strcmp(env, "avx512") == 0) return OpsFor(SimdPath::kAvx512);
  }
  return OpsFor(DetectSimdPath());
}

std::atomic<const SimdOps*> g_simd_ops{nullptr};

const SimdOps& Ops() {
  const SimdOps* ops = g_simd_ops.load(std::memory_order_relaxed);
  if (ops == nullptr) {
    ops = ResolveInitialOps();
    g_simd_ops.store(ops, std::memory_order_relaxed);
  }
  return *ops;
}

double Combine(DpCombiner combiner, double prefix, double bucket) {
  return combiner == DpCombiner::kSum ? prefix + bucket
                                      : std::max(prefix, bucket);
}

// One DP cell for layer b >= 2: err[b-1][j] over splits l < j plus the
// inherit transition. `prev` is layer b-2 (budget b-1), `cost[s]` is
// Cost([s, j]). This scalar scan defines the reference semantics every
// fast path below must reproduce bit-exactly: the winning choice is the
// FIRST split attaining the candidate minimum, and the inherit transition
// wins all ties against splits.
inline void ComputeCellReference(DpCombiner combiner, const double* prev,
                                 const double* cost, std::size_t j,
                                 double* err_out, std::int64_t* choice_out) {
  // Start from "b-1 buckets were already enough".
  double best = prev[j];
  std::int64_t best_choice = HistogramDpResult::kInheritChoice;
  for (std::size_t l = 0; l < j; ++l) {
    double v = Combine(combiner, prev[l], cost[l + 1]);
    if (v < best) {
      best = v;
      best_choice = static_cast<std::int64_t>(l);
    }
  }
  *err_out = best;
  *choice_out = best_choice;
}

// kSum fast cell: chunked branch-free min-reduction through the
// runtime-dispatched SIMD primitives, then the reference tie-break — the
// first split attaining the minimum — resolved inside the FIRST chunk
// attaining it. Floating-point min is exact whatever the accumulation
// order (and lane count), so the chunked minimum is bit-equal to the
// sequential scan's on every SIMD path.
inline void ComputeCellSumFast(const SimdOps& ops, const double* prev,
                               const double* cost, std::size_t j,
                               double* err_out, std::int64_t* choice_out) {
  constexpr std::size_t kChunk = 512;
  const double inherit = prev[j];
  double best = kInfinity;
  std::size_t best_begin = 0;
  const double* cost1 = cost + 1;  // cost1[l] = Cost([l+1, j])
  for (std::size_t begin = 0; begin < j; begin += kChunk) {
    const std::size_t end = std::min(j, begin + kChunk);
    const double m = ops.min_plus_pairs(prev + begin, cost1 + begin,
                                        end - begin);
    // Strict < keeps the earliest chunk attaining the global minimum, which
    // is where the first attaining split lives.
    if (m < best) {
      best = m;
      best_begin = begin;
    }
  }
  if (best < inherit) {
    const std::size_t end = std::min(j, best_begin + kChunk);
    for (std::size_t l = best_begin; l < end; ++l) {
      if (prev[l] + cost1[l] == best) {
        *err_out = best;
        *choice_out = static_cast<std::int64_t>(l);
        return;
      }
    }
    PROBSYN_CHECK(false);  // the chunk's minimum is attained in the chunk
  }
  *err_out = inherit;
  *choice_out = HistogramDpResult::kInheritChoice;
}

// Shared chunk geometry of the fast kMax cell and its bound tables.
constexpr std::size_t kMaxChunk = 512;

inline std::size_t NumChunks(std::size_t n) {
  return (n + kMaxChunk - 1) / kMaxChunk;
}

// Branch-free min over l in [begin, end) of max(prev[l], cost1[l]) through
// the SIMD dispatch. min/max are exact whatever the accumulation order.
inline double ChunkMaxMin(const SimdOps& ops, const double* prev,
                          const double* cost1, std::size_t begin,
                          std::size_t end) {
  return ops.min_max_pairs(prev + begin, cost1 + begin, end - begin);
}

// kMax fast cell: bisection-seeded monotone-split pruning with an EXACT
// bound-verified sweep. Candidate l has value v(l) = max(prev[l],
// cost1[l]) where, mathematically, prev[] (prefix errors under a fixed
// budget) is non-decreasing in l and cost1[l] (the cost of bucket
// [l+1, j], shrinking as l grows) is non-increasing — so v is the max of a
// falling and a rising curve, minimized at their crossing. The COMPUTED
// arrays can violate that monotonicity by rounding (catastrophic
// cancellation in the variance-style cost formulas), so a raw bisection is
// not bit-safe. Instead:
//
//  1. bisect for the crossing and take real candidate values there as the
//     starting minimum `m` (any true v value only helps pruning, never
//     correctness);
//  2. exact-minimum sweep: per chunk of 512 splits, skip iff
//     max(prev_cmin[c], cost_cmin[c]) >= m — a true lower bound of every
//     v in the chunk, from maintained chunk minima of the prev row and the
//     cost column — else scan the chunk branch-free and lower m. On
//     monotone data the bisection seed prunes everything except the
//     crossing neighborhood (the paper's O(log j) behavior, plus O(j/512)
//     bound probes); on adversarial data this degrades gracefully to the
//     vectorized scan, never to a wrong answer.
//  3. reference tie-break: first chunk whose lower bound admits m
//     (strict >) is equality-scanned for the first split attaining m.
inline void ComputeCellMaxFast(const SimdOps& ops, const double* prev,
                               const double* cost, std::size_t j,
                               const double* prev_cmin,
                               const double* cost_cmin, double* err_out,
                               std::int64_t* choice_out) {
  const double inherit = prev[j];
  if (j == 0) {
    *err_out = inherit;
    *choice_out = HistogramDpResult::kInheritChoice;
    return;
  }
  const double* cost1 = cost + 1;  // cost1[l] = Cost([l+1, j])

  // 1. Seed from the (approximate) crossing: first l with
  // prev[l] >= cost1[l] under bisection, clamped into [0, j); probe it and
  // its left neighbor — on monotone data one of them is the true minimum.
  std::size_t lo = 0;
  std::size_t hi = j;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (prev[mid] >= cost1[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t seed = lo < j ? lo : j - 1;
  double m = std::max(prev[seed], cost1[seed]);
  if (seed > 0) {
    m = std::min(m, std::max(prev[seed - 1], cost1[seed - 1]));
  }

  // 2. Exact minimum with chunk-bound pruning. Skipping on >= is safe for
  // the VALUE: a skipped chunk's minimum is >= its bound >= m.
  const std::size_t chunks = NumChunks(j);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (std::max(prev_cmin[c], cost_cmin[c]) >= m) continue;
    const std::size_t begin = c * kMaxChunk;
    const std::size_t end = std::min(j, begin + kMaxChunk);
    m = std::min(m, ChunkMaxMin(ops, prev, cost1, begin, end));
  }

  if (m < inherit) {
    // 3. First split attaining m; chunks whose bound EQUALS m may contain
    // it, so only strictly-greater bounds are skipped.
    for (std::size_t c = 0; c < chunks; ++c) {
      if (std::max(prev_cmin[c], cost_cmin[c]) > m) continue;
      const std::size_t begin = c * kMaxChunk;
      const std::size_t end = std::min(j, begin + kMaxChunk);
      for (std::size_t l = begin; l < end; ++l) {
        if (std::max(prev[l], cost1[l]) == m) {
          *err_out = m;
          *choice_out = static_cast<std::int64_t>(l);
          return;
        }
      }
    }
    PROBSYN_CHECK(false);  // the minimum is attained in some chunk
  }
  *err_out = inherit;
  *choice_out = HistogramDpResult::kInheritChoice;
}

template <bool kFastCells>
inline void ComputeCellKernel(const SimdOps& ops, DpCombiner combiner,
                              const double* prev, const double* cost,
                              std::size_t j, const double* prev_cmin,
                              const double* cost_cmin, double* err_out,
                              std::int64_t* choice_out) {
  if constexpr (kFastCells) {
    if (combiner == DpCombiner::kSum) {
      ComputeCellSumFast(ops, prev, cost, j, err_out, choice_out);
    } else {
      ComputeCellMaxFast(ops, prev, cost, j, prev_cmin, cost_cmin, err_out,
                         choice_out);
    }
  } else {
    ComputeCellReference(combiner, prev, cost, j, err_out, choice_out);
  }
}

// ---------------------------------------------------------------------------
// Cost-column fillers: cost[s] = Cost([s, j]).cost and rep[s] = its optimal
// representative, for s = 0..j. One filler per specialized kernel; each
// reproduces the corresponding oracle's Cost()/Extend() arithmetic verbatim
// (same expression sequence over the same arrays), which is what makes the
// kernels bit-identical to the virtual-dispatch reference.

// Virtual-dispatch baseline (and the route for oracle types without a
// specialized kernel).
struct ReferenceFiller {
  const BucketCostOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    auto sweep = oracle->StartSweep(j);
    for (std::size_t s = j;; --s) {
      BucketCost c = sweep->Extend();
      cost[s] = c.cost;
      rep[s] = c.representative;
      if (s == 0) break;
    }
  }
};

// SseMomentOracle::Cost over hoisted raw cumulative arrays.
struct SseMomentFiller {
  const double* weight;    // weight_prefix().cumulative()
  const double* mean;      // mean_prefix().cumulative()
  const double* second;    // second_prefix().cumulative()
  const double* variance;  // variance_prefix().cumulative()
  const double* raw_mean;  // raw_mean_prefix().cumulative()
  bool world_mean;

  void Fill(std::size_t j, double* cost, double* rep) const {
    const double w_hi = weight[j + 1];
    const double m_hi = mean[j + 1];
    const double s_hi = second[j + 1];
    const double v_hi = variance[j + 1];
    const double r_hi = raw_mean[j + 1];
    for (std::size_t s = 0; s <= j; ++s) {
      const double sum_weight = w_hi - weight[s];
      const double sum_mean = m_hi - mean[s];
      const double sum_second = s_hi - second[s];
      if (sum_weight <= 0.0) {
        // Workload ignores every item in the bucket (see
        // SseMomentOracle::Cost).
        const double nb = static_cast<double>(j - s + 1);
        rep[s] = (r_hi - raw_mean[s]) / nb;
        cost[s] = 0.0;
        continue;
      }
      const double representative = sum_mean / sum_weight;
      double expected_square_of_sum = sum_mean * sum_mean;
      if (world_mean) expected_square_of_sum += v_hi - variance[s];
      const double c = sum_second - expected_square_of_sum / sum_weight;
      rep[s] = representative;
      cost[s] = ClampTinyNegative(c, 1e-6);
    }
  }
};

// SsreOracle::Cost over hoisted raw X/Y/Z cumulative arrays.
struct SsreFiller {
  const double* x;
  const double* y;
  const double* z;

  void Fill(std::size_t j, double* cost, double* rep) const {
    const double x_hi = x[j + 1];
    const double y_hi = y[j + 1];
    const double z_hi = z[j + 1];
    for (std::size_t s = 0; s <= j; ++s) {
      const double xs = x_hi - x[s];
      const double ys = y_hi - y[s];
      const double zs = z_hi - z[s];
      if (zs <= 0.0) {
        // Every item in the bucket has zero workload weight.
        rep[s] = 0.0;
        cost[s] = 0.0;
        continue;
      }
      rep[s] = ys / zs;
      const double c = xs - ys * ys / zs;
      cost[s] = ClampTinyNegative(c, 1e-6);
    }
  }
};

// AbsCumulativeOracle: drive the concrete warm-started FlatSweep directly —
// the identical hint-carrying convex search the oracle's own StartSweep
// runs (core/abs_oracle.cc), minus the virtual adapter. Warm starts shave
// the cold search's O(log |V|) probes to O(1) on most cells; parity with
// the reference path holds by construction because both sides run the same
// FlatSweep probe sequence.
struct AbsFiller {
  const AbsCumulativeOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    AbsCumulativeOracle::FlatSweep sweep(*oracle, j);
    for (std::size_t s = j;; --s) {
      BucketCost c = sweep.Extend();
      cost[s] = c.cost;
      rep[s] = c.representative;
      if (s == 0) break;
    }
  }
};

// MaxErrorOracle: per-bucket envelope minimization is irreducibly
// O(n_b log(n_b |V|)); the kernel's win is the devirtualized concrete call
// (the class is final) and skipping the per-column sweep allocation.
struct MaxErrorFiller {
  const MaxErrorOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    for (std::size_t s = 0; s <= j; ++s) {
      BucketCost c = oracle->Cost(s, j);
      cost[s] = c.cost;
      rep[s] = c.representative;
    }
  }
};

// SseTupleWorldMeanOracle: drive the concrete FlatSweep directly — the
// identical incremental sum_q2 arithmetic, minus the virtual adapter.
struct TupleSseFiller {
  const SseTupleWorldMeanOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    SseTupleWorldMeanOracle::FlatSweep sweep(*oracle, j);
    for (std::size_t s = j;; --s) {
      BucketCost c = sweep.Extend();
      cost[s] = c.cost;
      rep[s] = c.representative;
      if (s == 0) break;
    }
  }
};

// ---------------------------------------------------------------------------
// The DP driver, shared by every kernel. Sequential and blocked-parallel
// forms compute every cell from identical inputs with the identical cell
// function, so all configurations produce the same table bit-for-bit.

// The workspace's buffers, unwrapped by the friend entry point (only it can
// reach DpWorkspace's privates).
struct DpTables {
  std::vector<double>& err;
  std::vector<std::int64_t>& choice;
  std::vector<double>& rep;
  std::vector<double>& cost_cols;
  std::vector<double>& rep_cols;
  std::vector<double>& layer_cmin;
  std::vector<double>& cost_cmin;
};

template <bool kFastCells, typename Filler>
Status RunDp(const Filler& filler, std::size_t n, std::size_t cap,
             DpCombiner combiner, ThreadPool* pool, const ExecContext* ctx,
             DpTables ws) {
  const SimdOps& ops = Ops();  // one dispatch resolution per solve
  ws.err.resize(cap * n);
  ws.choice.resize(cap * n);
  ws.rep.resize(cap * n);
  double* err = ws.err.data();
  std::int64_t* choice = ws.choice.data();
  double* rep = ws.rep.data();

  // The fast kMax cell consumes chunk-minimum lower bounds of the err rows
  // and of each cost column (see ComputeCellMaxFast); maintain them only
  // when that cell runs.
  const bool track_bounds = kFastCells && combiner == DpCombiner::kMax;
  const std::size_t nchunks = NumChunks(n);
  double* layer_cmin = nullptr;
  if (track_bounds) {
    ws.layer_cmin.resize(cap * nchunks);
    layer_cmin = ws.layer_cmin.data();
  }
  // Chunk minima of err row `layer_idx` are rebuilt left-to-right as the
  // row's columns are produced: the first column of a chunk assigns (which
  // is what makes reused workspaces safe), later columns fold in.
  auto update_layer_cmin = [&](std::size_t layer_idx, std::size_t j) {
    double* slot = &layer_cmin[layer_idx * nchunks + j / kMaxChunk];
    double v = err[layer_idx * n + j];
    *slot = (j % kMaxChunk == 0) ? v : std::min(*slot, v);
  };
  // Chunk minima over cost[l+1] for splits l in [0, j), per column.
  auto fill_cost_cmin = [&ops](const double* costcol, std::size_t j,
                               double* cmin) {
    for (std::size_t begin = 0; begin < j; begin += kMaxChunk) {
      const std::size_t end = std::min(j, begin + kMaxChunk);
      cmin[begin / kMaxChunk] =
          ops.min_array(costcol + begin + 1, end - begin);
    }
  };

  auto first_layer = [&](std::size_t j, const double* costcol,
                         const double* repcol) {
    err[j] = costcol[0];
    choice[j] = HistogramDpResult::kWholePrefix;
    rep[j] = repcol[0];
  };
  auto finish_cell = [&](std::size_t b, std::size_t j, const double* costcol,
                         const double* repcol, const double* costcol_cmin) {
    double* err_cell = &err[(b - 1) * n + j];
    std::int64_t* choice_cell = &choice[(b - 1) * n + j];
    const double* prev_cmin =
        track_bounds ? &layer_cmin[(b - 2) * nchunks] : nullptr;
    ComputeCellKernel<kFastCells>(ops, combiner, &err[(b - 2) * n], costcol,
                                  j, prev_cmin, costcol_cmin, err_cell,
                                  choice_cell);
    // Cache the traceback bucket's representative so ExtractHistogram never
    // calls back into the oracle. Inherit cells end no bucket at j.
    rep[(b - 1) * n + j] =
        *choice_cell >= 0 ? repcol[*choice_cell + 1] : 0.0;
  };

  if (pool == nullptr || pool->num_threads() == 0 || n < 2) {
    // Sequential path: one leftward cost-column fill per right end j, then
    // every budget layer's cell for column j.
    ws.cost_cols.resize(n);
    ws.rep_cols.resize(n);
    if (track_bounds) ws.cost_cmin.resize(nchunks);
    double* costcol = ws.cost_cols.data();
    double* repcol = ws.rep_cols.data();
    double* cost_cmin = track_bounds ? ws.cost_cmin.data() : nullptr;
    for (std::size_t j = 0; j < n; ++j) {
      // Poll every 16 columns: a clock read can cost microseconds (vsyscall
      // fallback), comparable to ONE column's O(j + cap) cell work, so a
      // per-column poll blows the 2% overhead budget; 16 columns amortize
      // it to noise while keeping stop latency far under the 50ms bound.
      if ((j & 15u) == 0 && StopRequested(ctx)) {
        return ctx->StopStatus("exact-dp", "column", j, n);
      }
      filler.Fill(j, costcol, repcol);
      if (track_bounds) fill_cost_cmin(costcol, j, cost_cmin);
      first_layer(j, costcol, repcol);
      if (track_bounds) update_layer_cmin(0, j);
      for (std::size_t b = 2; b <= cap; ++b) {
        finish_cell(b, j, costcol, repcol, cost_cmin);
        if (track_bounds) update_layer_cmin(b - 1, j);
      }
    }
    return Status::OK();
  }

  // Blocked parallel path. Columns are processed in blocks sized to keep
  // the two column buffers within ~16 MB each; per block the column fills
  // (mutually independent, and the O(n) work units that dominate every
  // configuration except sum-combiner cells) fan out in ONE fork-join.
  //
  // The budget layers are where the original route degraded (one fork-join
  // per (block, layer) — ~1000 per solve at n = 4096, B = 64 — left each
  // lane with less work per fan-out than the fork-join itself, and
  // BENCH_baseline showed real time RISING with lane count). The
  // repartition fixes the granularity without introducing any cross-lane
  // waiting — ThreadPool chunks may run sequentially in any order, so a
  // chunk that spins on another chunk's progress can livelock:
  //
  //  * max-combiner fast cells (track_bounds): each cell is an O(log n)
  //    bisection, asymptotically free next to its column's O(n) fill, so
  //    all layers' cells plus the chunk-minimum maintenance they consume
  //    run sequentially on the caller. One fan-out per block total.
  //  * sum combiners and the reference kernel (O(j)-scan cells): a
  //    staggered diagonal schedule. The block's columns split into `lanes`
  //    contiguous ranges and the cap-1 layers into batches of `tbatch`
  //    consecutive layers; in diagonal d, lane k computes batch d - k over
  //    its own columns (layers ascending). Cell (b, j) needs layer b-1 at
  //    every column <= j: lanes left of k finished that batch one diagonal
  //    earlier (joined), and within a lane layers run in order — so every
  //    dependency is complete and each cell is the identical computation
  //    on identical inputs as the sequential solver (bit-equal tables).
  //    Fork-joins per block: ~(cap-1)/tbatch + lanes instead of cap - 1.
  const std::size_t block =
      std::clamp<std::size_t>((16u << 20) / (sizeof(double) * n), 16, 512);
  ws.cost_cols.resize(block * n);
  ws.rep_cols.resize(block * n);
  if (track_bounds) ws.cost_cmin.resize(block * nchunks);
  double* cost_block = ws.cost_cols.data();
  double* rep_block = ws.rep_cols.data();
  double* cost_cmin_block = track_bounds ? ws.cost_cmin.data() : nullptr;
  for (std::size_t j0 = 0; j0 < n; j0 += block) {
    const std::size_t j1 = std::min(n, j0 + block);
    if (StopRequested(ctx)) {
      return ctx->StopStatus("exact-dp", "column", j0, n);
    }
    // Chunks poll too (every 64 columns) and bail by SKIPPING their
    // remaining columns: once a stop fires the whole table is abandoned,
    // so partial columns are never read — the fan-out still joins, leaving
    // no chunk running behind the caller's back.
    PROBSYN_RETURN_IF_ERROR(
        pool->ParallelFor(j0, j1, [&](std::size_t jb, std::size_t je) {
          for (std::size_t j = jb; j < je; ++j) {
            if (ctx != nullptr && ((j - jb) & 63u) == 0 &&
                ctx->StopRequested()) {
              return;
            }
            double* costcol = &cost_block[(j - j0) * n];
            double* repcol = &rep_block[(j - j0) * n];
            filler.Fill(j, costcol, repcol);
            if (track_bounds) {
              fill_cost_cmin(costcol, j, &cost_cmin_block[(j - j0) * nchunks]);
            }
            first_layer(j, costcol, repcol);
          }
        }));
    if (StopRequested(ctx)) {
      return ctx->StopStatus("exact-dp", "column", j0, n);
    }
    if (track_bounds) {
      for (std::size_t j = j0; j < j1; ++j) update_layer_cmin(0, j);
      for (std::size_t b = 2; b <= cap; ++b) {
        if (StopRequested(ctx)) {
          return ctx->StopStatus("exact-dp", "budget layer", b, cap);
        }
        for (std::size_t j = j0; j < j1; ++j) {
          finish_cell(b, j, &cost_block[(j - j0) * n],
                      &rep_block[(j - j0) * n],
                      &cost_cmin_block[(j - j0) * nchunks]);
          update_layer_cmin(b - 1, j);
        }
      }
      continue;
    }
    if (cap < 2) continue;
    const std::size_t cols = j1 - j0;
    const std::size_t lanes = std::min(pool->num_threads() + 1, cols);
    const std::size_t nlayers = cap - 1;  // layers 2..cap
    const std::size_t tbatch = std::max<std::size_t>(1, (nlayers + 7) / 8);
    const std::size_t nbatch = (nlayers + tbatch - 1) / tbatch;
    for (std::size_t d = 0; d + 1 < nbatch + lanes; ++d) {
      if (StopRequested(ctx)) {
        return ctx->StopStatus("exact-dp", "diagonal", d, nbatch + lanes - 1);
      }
      PROBSYN_RETURN_IF_ERROR(
          pool->ParallelFor(0, lanes, [&](std::size_t lb, std::size_t le) {
            for (std::size_t lane = lb; lane < le; ++lane) {
              if (d < lane || d - lane >= nbatch) continue;
              const std::size_t ja = j0 + lane * cols / lanes;
              const std::size_t jz = j0 + (lane + 1) * cols / lanes;
              const std::size_t b_lo = 2 + (d - lane) * tbatch;
              const std::size_t b_hi = std::min(cap, b_lo + tbatch - 1);
              for (std::size_t b = b_lo; b <= b_hi; ++b) {
                if (StopRequested(ctx)) return;  // table abandoned anyway
                for (std::size_t j = ja; j < jz; ++j) {
                  finish_cell(b, j, &cost_block[(j - j0) * n],
                              &rep_block[(j - j0) * n], nullptr);
                }
              }
            }
          }));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Approximate-DP point-cost kernels. The (1 + eps) DP evaluates a sparse
// candidate set, so instead of column fillers each kernel exposes one
// devirtualized Cost(s, e) evaluation reproducing the oracle's arithmetic
// verbatim — bit-identical cost values make the shared driver's every
// comparison, class boundary, and traceback identical to the reference.
//
// AbsCumulativeOracle deliberately runs the COLD search here (no warm
// hints, unlike its FlatSweep): the reference path evaluates candidates
// through the cold virtual Cost(), and a warm-accepted optimum can land on
// a different grid index when rounding splits a cost plateau into several
// equal-valued pits — legal as an answer, fatal for bit parity. The win is
// the inlined probe loop (no std::function per probe).

// Dense per-layer gather of the candidate columns consumed by the fused
// bulk evaluators (SimdApproxQuadColumn): prev-layer errors and the
// oracle's prefix rows at the candidate positions, contiguous so whole
// candidate columns evaluate in vector lanes (the sparse candidate set
// defeats vectorization when probed in place).
struct ApproxCandidateGather {
  std::vector<double> prev, a, b, c, v;

  void Resize(std::size_t n, bool with_v) {
    prev.resize(n);
    a.resize(n);
    b.resize(n);
    c.resize(n);
    if (with_v) v.resize(n);
  }
};

struct ReferencePointCost {
  const BucketCostOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    return oracle->Cost(s, e).cost;
  }
};

// SseMomentOracle::Cost over hoisted raw cumulative arrays (cost part only;
// the approximate DP re-costs final buckets through the oracle itself).
// Bulk-capable: whole candidate columns run through the fused quadratic
// column kernel, bit-identical to Cost() per candidate.
struct SseMomentPointCost {
  static constexpr bool kBulkColumn = true;

  const double* weight;
  const double* mean;
  const double* second;
  const double* variance;
  bool world_mean;

  double Cost(std::size_t s, std::size_t e) const {
    const double sum_weight = weight[e + 1] - weight[s];
    if (sum_weight <= 0.0) return 0.0;
    const double sum_mean = mean[e + 1] - mean[s];
    const double sum_second = second[e + 1] - second[s];
    double expected_square_of_sum = sum_mean * sum_mean;
    if (world_mean) expected_square_of_sum += variance[e + 1] - variance[s];
    const double c = sum_second - expected_square_of_sum / sum_weight;
    return ClampTinyNegative(c, 1e-6);
  }

  void Gather(const std::vector<std::size_t>& candidates,
              const double* prev_row, ApproxCandidateGather& gather) const {
    gather.Resize(candidates.size(), world_mean);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t l = candidates[i];
      gather.prev[i] = prev_row[l];
      gather.a[i] = second[l + 1];
      gather.b[i] = mean[l + 1];
      gather.c[i] = weight[l + 1];
      if (world_mean) gather.v[i] = variance[l + 1];
    }
  }

  double BulkMin(const ApproxCandidateGather& gather, std::size_t valid,
                 std::size_t j, double* values) const {
    return SimdApproxQuadColumn(
        gather.prev.data(), gather.a.data(), gather.b.data(),
        gather.c.data(), world_mean ? gather.v.data() : nullptr, valid,
        second[j + 1], mean[j + 1], weight[j + 1],
        world_mean ? variance[j + 1] : 0.0, values);
  }
};

// SsreOracle::Cost over hoisted raw X/Y/Z cumulative arrays. Bulk-capable
// like the SSE kernel (same quadratic shape).
struct SsrePointCost {
  static constexpr bool kBulkColumn = true;

  const double* x;
  const double* y;
  const double* z;

  double Cost(std::size_t s, std::size_t e) const {
    const double zs = z[e + 1] - z[s];
    if (zs <= 0.0) return 0.0;
    const double xs = x[e + 1] - x[s];
    const double ys = y[e + 1] - y[s];
    const double c = xs - ys * ys / zs;
    return ClampTinyNegative(c, 1e-6);
  }

  void Gather(const std::vector<std::size_t>& candidates,
              const double* prev_row, ApproxCandidateGather& gather) const {
    gather.Resize(candidates.size(), /*with_v=*/false);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t l = candidates[i];
      gather.prev[i] = prev_row[l];
      gather.a[i] = x[l + 1];
      gather.b[i] = y[l + 1];
      gather.c[i] = z[l + 1];
    }
  }

  double BulkMin(const ApproxCandidateGather& gather, std::size_t valid,
                 std::size_t j, double* values) const {
    return SimdApproxQuadColumn(gather.prev.data(), gather.a.data(),
                                gather.b.data(), gather.c.data(), nullptr,
                                valid, x[j + 1], y[j + 1], z[j + 1], 0.0,
                                values);
  }
};

// AbsCumulativeOracle's cold convex search with the probe lambda inlined
// (OptimalGridIndex without a hint runs the identical probe sequence as
// the std::function-based Cost()).
struct AbsPointCost {
  const AbsCumulativeOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    const std::size_t best =
        oracle->OptimalGridIndex(s, e, AbsCumulativeOracle::kNoHint);
    return std::max(0.0, oracle->CostAtGridIndex(s, e, best));
  }
};

// MaxErrorOracle / SseTupleWorldMeanOracle: the classes are final, so the
// concrete call devirtualizes; their per-bucket work is irreducible.
struct MaxErrorPointCost {
  const MaxErrorOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    return oracle->Cost(s, e).cost;
  }
};

struct TupleSsePointCost {
  const SseTupleWorldMeanOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    return oracle->Cost(s, e).cost;
  }
};

// The approximate-DP driver, shared by every point-cost kernel: identical
// control flow, comparisons, and evaluation counting in every
// configuration, so bit-identical cost evaluations imply bit-identical
// histograms, costs, and oracle_evaluations.
template <typename CostFn>
StatusOr<ApproxHistogramResult> RunApproxDp(const BucketCostOracle& oracle,
                                            const CostFn& cost_fn,
                                            std::size_t max_buckets,
                                            double epsilon,
                                            DpKernelKind kind,
                                            const ExecContext* ctx) {
  const std::size_t n = oracle.domain_size();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (max_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const std::size_t cap = std::min(max_buckets, n);
  // Per-layer slack; (1 + delta)^(cap-1) <= e^(eps/2) <= 1 + eps for
  // eps <= 1. Larger eps values still yield a valid (coarser) guarantee.
  const double delta =
      std::min(0.5, epsilon / (2.0 * static_cast<double>(cap)));

  std::size_t evaluations = 0;

  std::vector<std::vector<std::int64_t>> choice(
      cap, std::vector<std::int64_t>(n, HistogramDpResult::kWholePrefix));
  constexpr std::int64_t kInherit = -2;

  std::vector<double> prev(n), cur(n);
  for (std::size_t j = 0; j < n; ++j) {
    prev[j] = cost_fn.Cost(0, j);
    ++evaluations;
  }
  // Layer values at the full domain (ApproxHistogramResult::cost_curve):
  // the sharded merge DP consumes the whole budget curve, not just the
  // final layer. Exactly non-increasing because each cell seeds with the
  // previous layer's value (`best = prev[j]` below).
  std::vector<double> cost_curve;
  cost_curve.reserve(cap);
  cost_curve.push_back(prev[n - 1]);

  // Bulk-capable kernels (the quadratic oracles) gather the candidate
  // columns densely once per layer and evaluate whole columns in the fused
  // SIMD kernel; the search-backed kernels keep the one-pass
  // compare-per-candidate scan (materializing buys nothing when each
  // evaluation is itself a search or a virtual call).
  constexpr bool kBulk = requires { CostFn::kBulkColumn; };
  std::vector<std::size_t> candidates;
  [[maybe_unused]] ApproxCandidateGather gather;
  [[maybe_unused]] std::vector<double> candidate_values;
  for (std::size_t b = 2; b <= cap; ++b) {
    if (StopRequested(ctx)) {
      return ctx->StopStatus("approx-dp", "budget layer", b, cap);
    }
    // Geometric error classes of the previous (monotone) layer; keep the
    // rightmost position of each class. Classes are contiguous intervals
    // because prev[] is non-decreasing in j.
    candidates.clear();
    double class_base = prev[0];
    for (std::size_t j = 0; j + 1 < n; ++j) {
      bool class_ends = (prev[j + 1] > class_base * (1.0 + delta)) ||
                        (class_base == 0.0 && prev[j + 1] > 0.0);
      if (class_ends) {
        candidates.push_back(j);
        class_base = prev[j + 1];
      }
    }
    if (n >= 1) candidates.push_back(n - 1);

    if constexpr (kBulk) {
      cost_fn.Gather(candidates, prev.data(), gather);
      candidate_values.resize(candidates.size());
    }
    std::size_t valid = 0;  // candidates with l < j; monotone in j
    for (std::size_t j = 0; j < n; ++j) {
      if ((j & 255u) == 0 && StopRequested(ctx)) {
        return ctx->StopStatus("approx-dp", "column", b * n + j, cap * n);
      }
      while (valid < candidates.size() && candidates[valid] < j) ++valid;
      double best = prev[j];  // Inherit: fewer buckets already optimal.
      std::int64_t best_choice = kInherit;
      if constexpr (kBulk) {
        // Fused column evaluation + SIMD min, then the reference
        // tie-break: first candidate attaining the minimum, inherit
        // winning all ties (strict <) — identical to the sequential
        // compare-per-candidate scan, since FP min is exact in any order.
        const double m =
            cost_fn.BulkMin(gather, valid, j, candidate_values.data());
        evaluations += valid;
        if (m < best) {
          best = m;
          for (std::size_t i = 0; i < valid; ++i) {
            if (candidate_values[i] == m) {
              best_choice = static_cast<std::int64_t>(candidates[i]);
              break;
            }
          }
        }
      } else {
        for (std::size_t i = 0; i < valid; ++i) {
          const std::size_t l = candidates[i];
          const double v = prev[l] + cost_fn.Cost(l + 1, j);
          ++evaluations;
          if (v < best) {
            best = v;
            best_choice = static_cast<std::int64_t>(l);
          }
        }
      }
      if (j >= 1) {
        const double v = prev[j - 1] + cost_fn.Cost(j, j);
        ++evaluations;
        if (v < best) {
          best = v;
          best_choice = static_cast<std::int64_t>(j - 1);
        }
      }
      cur[j] = best;
      choice[b - 1][j] = best_choice;
    }
    prev.swap(cur);
    cost_curve.push_back(prev[n - 1]);
  }

  // Traceback (same scheme as the exact DP).
  std::vector<HistogramBucket> buckets;
  std::size_t layer = cap;
  std::size_t j = n - 1;
  for (;;) {
    std::int64_t c = layer >= 2 ? choice[layer - 1][j]
                                : HistogramDpResult::kWholePrefix;
    if (c == kInherit) {
      --layer;
      continue;
    }
    if (c == HistogramDpResult::kWholePrefix) {
      buckets.push_back({0, j, 0.0});
      break;
    }
    std::size_t l = static_cast<std::size_t>(c);
    buckets.push_back({l + 1, j, 0.0});
    j = l;
    PROBSYN_CHECK(layer > 1);
    --layer;
  }
  std::reverse(buckets.begin(), buckets.end());
  double total = 0.0;
  for (HistogramBucket& b : buckets) {
    BucketCost bc = oracle.Cost(b.start, b.end);
    b.representative = bc.representative;
    total += bc.cost;
  }

  ApproxHistogramResult result;
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  result.oracle_evaluations = evaluations;
  result.kernel = kind;
  result.cost_curve = std::move(cost_curve);
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamChainStore: hash-consed, refcounted boundary-chain nodes.

std::size_t StreamChainStore::BucketOf(Ref parent,
                                       std::size_t position) const {
  std::uint64_t h =
      static_cast<std::uint64_t>(position) * 0x9E3779B97F4A7C15ull ^
      (static_cast<std::uint64_t>(parent) + 0x9E3779B97F4A7C15ull) *
          0xC2B2AE3D27D4EB4Full;
  h ^= h >> 29;
  return static_cast<std::size_t>(h) & (buckets_.size() - 1);
}

// Rebuilds the hash table over the whole reserved node pool (load factor
// <= 1 against capacity, so one rehash per pool growth, never per insert).
void StreamChainStore::Rehash() {
  std::size_t want = 64;
  while (want < nodes_.capacity()) want <<= 1;
  if (want <= buckets_.size()) return;
  ++stats_.grow_events;
  buckets_.assign(want, kNil);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    if (node.refcount == 0) continue;  // free-listed slot
    const std::size_t b = BucketOf(node.parent, node.position);
    node.hash_next = buckets_[b];
    buckets_[b] = static_cast<Ref>(i);
  }
}

StreamChainStore::Ref StreamChainStore::Extend(Ref parent, double sum_mean,
                                               double sum_second,
                                               std::size_t position) {
  if (!buckets_.empty()) {
    for (Ref i = buckets_[BucketOf(parent, position)]; i != kNil;
         i = nodes_[i].hash_next) {
      Node& node = nodes_[i];
      if (node.parent == parent && node.position == position) {
        // One stream has one snapshot per position, so a consed hit is
        // necessarily payload-identical.
        PROBSYN_DCHECK(node.sum_mean == sum_mean &&
                       node.sum_second == sum_second);
        ++node.refcount;
        ++stats_.consed;
        return i;
      }
    }
  }

  Ref i;
  if (!free_.empty()) {
    i = free_.back();
    free_.pop_back();
  } else {
    if (nodes_.size() == nodes_.capacity()) {
      ++stats_.grow_events;
      nodes_.reserve(nodes_.empty() ? 64 : nodes_.capacity() * 2);
      // The free list can hold every node, so releasing never allocates.
      free_.reserve(nodes_.capacity());
    }
    i = static_cast<Ref>(nodes_.size());
    nodes_.emplace_back();
  }
  Rehash();  // no-op unless the pool outgrew the table

  Node& node = nodes_[i];
  node.sum_mean = sum_mean;
  node.sum_second = sum_second;
  node.position = position;
  node.parent = parent;
  node.refcount = 1;
  const std::size_t b = BucketOf(parent, position);
  node.hash_next = buckets_[b];
  buckets_[b] = i;
  if (parent != kNil) ++nodes_[parent].refcount;
  ++stats_.created;
  ++stats_.live;
  return i;
}

void StreamChainStore::AddRef(Ref node) {
  PROBSYN_DCHECK(node != kNil && nodes_[node].refcount > 0);
  ++nodes_[node].refcount;
}

void StreamChainStore::Release(Ref node) {
  while (node != kNil) {
    Node& dying = nodes_[node];
    PROBSYN_DCHECK(dying.refcount > 0);
    if (--dying.refcount > 0) return;
    // Unlink from the hash bucket, free the slot, cascade to the parent.
    Ref* link = &buckets_[BucketOf(dying.parent, dying.position)];
    while (*link != node) link = &nodes_[*link].hash_next;
    *link = dying.hash_next;
    free_.push_back(node);
    ++stats_.freed;
    --stats_.live;
    node = dying.parent;
  }
}

void DpWorkspacePool::Lease::Release() {
  if (pool_ != nullptr && workspace_ != nullptr) {
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    pool_->free_.push_back(std::move(workspace_));
    --pool_->stats_.outstanding;
  }
}

DpWorkspacePool::Lease DpWorkspacePool::Acquire() {
  std::unique_ptr<DpWorkspace> workspace;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      workspace = std::move(free_.back());
      free_.pop_back();
    }
    ++stats_.outstanding;
  }
  if (workspace == nullptr) {
    workspace = std::make_unique<DpWorkspace>();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.created;
  }
  return Lease(this, std::move(workspace));
}

DpWorkspacePool::Stats DpWorkspacePool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

DpKernelKind SelectDpKernel(const BucketCostOracle& oracle) {
  if (dynamic_cast<const SseMomentOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kSseMoment;
  }
  if (dynamic_cast<const SsreOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kSsre;
  }
  if (dynamic_cast<const AbsCumulativeOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kAbsCumulative;
  }
  if (dynamic_cast<const MaxErrorOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kMaxError;
  }
  if (dynamic_cast<const SseTupleWorldMeanOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kTupleSse;
  }
  return DpKernelKind::kReference;
}

HistogramDpResult SolveHistogramDpWithKernel(const BucketCostOracle& oracle,
                                             std::size_t max_buckets,
                                             DpCombiner combiner,
                                             const DpKernelOptions& options) {
  const std::size_t n = oracle.domain_size();
  PROBSYN_CHECK(n > 0 && max_buckets >= 1);
  // Budgets beyond n buckets cannot help; cap the table, not the API.
  const std::size_t cap = std::min(max_buckets, n);

  HistogramDpResult result;
  result.n_ = n;
  result.max_buckets_ = max_buckets;
  result.cap_ = cap;
  DpWorkspace* ws = options.workspace;
  if (ws == nullptr) {
    result.owned_ = std::make_shared<DpWorkspace>();
    ws = result.owned_.get();
  }

  const DpKernelKind kind = options.kernel == DpKernelKind::kAuto
                                ? SelectDpKernel(oracle)
                                : options.kernel;
  ThreadPool* pool = options.pool;
  const ExecContext* ctx = options.context;
  DpTables tables{ws->err_,      ws->choice_,    ws->rep_,
                  ws->cost_cols_, ws->rep_cols_, ws->layer_cmin_,
                  ws->cost_cmin_};
  Status run_status;
  switch (kind) {
    case DpKernelKind::kReference: {
      ReferenceFiller filler{&oracle};
      run_status = RunDp<false>(filler, n, cap, combiner, pool, ctx, tables);
      break;
    }
    case DpKernelKind::kSseMoment: {
      const auto* sse = dynamic_cast<const SseMomentOracle*>(&oracle);
      PROBSYN_CHECK(sse != nullptr);
      SseMomentFiller filler{sse->weight_prefix().cumulative().data(),
                             sse->mean_prefix().cumulative().data(),
                             sse->second_prefix().cumulative().data(),
                             sse->variance_prefix().cumulative().data(),
                             sse->raw_mean_prefix().cumulative().data(),
                             sse->variant() == SseVariant::kWorldMean};
      run_status = RunDp<true>(filler, n, cap, combiner, pool, ctx, tables);
      break;
    }
    case DpKernelKind::kSsre: {
      const auto* ssre = dynamic_cast<const SsreOracle*>(&oracle);
      PROBSYN_CHECK(ssre != nullptr);
      SsreFiller filler{ssre->x_prefix().cumulative().data(),
                        ssre->y_prefix().cumulative().data(),
                        ssre->z_prefix().cumulative().data()};
      run_status = RunDp<true>(filler, n, cap, combiner, pool, ctx, tables);
      break;
    }
    case DpKernelKind::kAbsCumulative: {
      const auto* abs = dynamic_cast<const AbsCumulativeOracle*>(&oracle);
      PROBSYN_CHECK(abs != nullptr);
      AbsFiller filler{abs};
      run_status = RunDp<true>(filler, n, cap, combiner, pool, ctx, tables);
      break;
    }
    case DpKernelKind::kMaxError: {
      const auto* max = dynamic_cast<const MaxErrorOracle*>(&oracle);
      PROBSYN_CHECK(max != nullptr);
      MaxErrorFiller filler{max};
      run_status = RunDp<true>(filler, n, cap, combiner, pool, ctx, tables);
      break;
    }
    case DpKernelKind::kTupleSse: {
      const auto* tuple = dynamic_cast<const SseTupleWorldMeanOracle*>(&oracle);
      PROBSYN_CHECK(tuple != nullptr);
      TupleSseFiller filler{tuple};
      run_status = RunDp<true>(filler, n, cap, combiner, pool, ctx, tables);
      break;
    }
    case DpKernelKind::kAuto:
      PROBSYN_CHECK(false);  // resolved above
  }

  result.kernel_ = kind;
  result.status_ = std::move(run_status);
  result.err_ = ws->err_.data();
  result.choice_ = ws->choice_.data();
  result.rep_ = ws->rep_.data();
  return result;
}

StatusOr<ApproxHistogramResult> SolveApproxHistogramDpWithKernel(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon,
    const ApproxDpKernelOptions& options) {
  const DpKernelKind kind = options.kernel == DpKernelKind::kAuto
                                ? SelectDpKernel(oracle)
                                : options.kernel;
  switch (kind) {
    case DpKernelKind::kReference: {
      ReferencePointCost cost_fn{&oracle};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind,
                         options.context);
    }
    case DpKernelKind::kSseMoment: {
      const auto* sse = dynamic_cast<const SseMomentOracle*>(&oracle);
      PROBSYN_CHECK(sse != nullptr);
      SseMomentPointCost cost_fn{sse->weight_prefix().cumulative().data(),
                                 sse->mean_prefix().cumulative().data(),
                                 sse->second_prefix().cumulative().data(),
                                 sse->variance_prefix().cumulative().data(),
                                 sse->variant() == SseVariant::kWorldMean};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind,
                         options.context);
    }
    case DpKernelKind::kSsre: {
      const auto* ssre = dynamic_cast<const SsreOracle*>(&oracle);
      PROBSYN_CHECK(ssre != nullptr);
      SsrePointCost cost_fn{ssre->x_prefix().cumulative().data(),
                            ssre->y_prefix().cumulative().data(),
                            ssre->z_prefix().cumulative().data()};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind,
                         options.context);
    }
    case DpKernelKind::kAbsCumulative: {
      const auto* abs = dynamic_cast<const AbsCumulativeOracle*>(&oracle);
      PROBSYN_CHECK(abs != nullptr);
      AbsPointCost cost_fn{abs};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind,
                         options.context);
    }
    case DpKernelKind::kMaxError: {
      const auto* max = dynamic_cast<const MaxErrorOracle*>(&oracle);
      PROBSYN_CHECK(max != nullptr);
      MaxErrorPointCost cost_fn{max};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind,
                         options.context);
    }
    case DpKernelKind::kTupleSse: {
      const auto* tuple = dynamic_cast<const SseTupleWorldMeanOracle*>(&oracle);
      PROBSYN_CHECK(tuple != nullptr);
      TupleSsePointCost cost_fn{tuple};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind,
                         options.context);
    }
    case DpKernelKind::kAuto:
      break;  // resolved above
  }
  PROBSYN_CHECK(false);
  return Status::Internal("unreachable");
}

const char* SimdPathName(SimdPath path) {
  switch (path) {
    case SimdPath::kScalar: return "scalar";
    case SimdPath::kAvx2: return "avx2";
    case SimdPath::kAvx512: return "avx512";
  }
  return "?";
}

SimdPath ActiveSimdPath() { return Ops().path; }

SimdPath ForceSimdPath(SimdPath path) {
  const SimdOps* ops = OpsFor(path);
  g_simd_ops.store(ops, std::memory_order_relaxed);
  return ops->path;
}

double SimdMinPlusConst(const double* a, std::size_t n, double add) {
  return Ops().min_plus_const(a, n, add);
}

double SimdMinPlusPairs(const double* a, const double* b, std::size_t n) {
  return Ops().min_plus_pairs(a, b, n);
}

double SimdMinPlusReverse(const double* a, const double* b, std::size_t n) {
  return Ops().min_plus_reverse(a, b, n);
}

double SimdMinMaxPairs(const double* a, const double* b, std::size_t n) {
  return Ops().min_max_pairs(a, b, n);
}

double SimdMinArray(const double* a, std::size_t n) {
  return Ops().min_array(a, n);
}

double SimdApproxQuadColumn(const double* prev, const double* a,
                            const double* b, const double* c, const double* v,
                            std::size_t n, double a_hi, double b_hi,
                            double c_hi, double v_hi, double* values) {
  return Ops().approx_quad_column(prev, a, b, c, v, n, a_hi, b_hi, c_hi,
                                  v_hi, values);
}

double SimdStreamingMergeColumn(const double* error, const double* sum_mean,
                                const double* sum_second,
                                const double* position, std::size_t n,
                                double count, double total_mean,
                                double total_second, double* values) {
  return Ops().streaming_merge_column(error, sum_mean, sum_second, position,
                                      n, count, total_mean, total_second,
                                      values);
}

void SimdStreamingBatchSweep(const double* error, const double* sum_mean,
                             const double* sum_second, const double* position,
                             const std::int64_t* neg_position, std::size_t n,
                             const double* total_mean,
                             const double* total_second, std::size_t count0,
                             const double* recips, std::size_t num_pushes,
                             double* best, std::int64_t* best_index) {
  Ops().streaming_batch_sweep(error, sum_mean, sum_second, position,
                              neg_position, n, total_mean, total_second,
                              count0, recips, num_pushes, best, best_index);
}

const char* WaveletSplitKernelName(WaveletSplitKernel kind) {
  switch (kind) {
    case WaveletSplitKernel::kAuto: return "auto";
    case WaveletSplitKernel::kReference: return "reference";
    case WaveletSplitKernel::kBudgetSplit: return "budget-split";
  }
  return "?";
}

}  // namespace probsyn
