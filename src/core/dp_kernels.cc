#include "core/dp_kernels.h"

#include <algorithm>
#include <limits>

#include "core/abs_oracle.h"
#include "core/max_oracle.h"
#include "core/sse_oracle.h"
#include "core/ssre_oracle.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/thread_pool.h"

namespace probsyn {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

double Combine(DpCombiner combiner, double prefix, double bucket) {
  return combiner == DpCombiner::kSum ? prefix + bucket
                                      : std::max(prefix, bucket);
}

// One DP cell for layer b >= 2: err[b-1][j] over splits l < j plus the
// inherit transition. `prev` is layer b-2 (budget b-1), `cost[s]` is
// Cost([s, j]). This scalar scan defines the reference semantics every
// fast path below must reproduce bit-exactly: the winning choice is the
// FIRST split attaining the candidate minimum, and the inherit transition
// wins all ties against splits.
inline void ComputeCellReference(DpCombiner combiner, const double* prev,
                                 const double* cost, std::size_t j,
                                 double* err_out, std::int64_t* choice_out) {
  // Start from "b-1 buckets were already enough".
  double best = prev[j];
  std::int64_t best_choice = HistogramDpResult::kInheritChoice;
  for (std::size_t l = 0; l < j; ++l) {
    double v = Combine(combiner, prev[l], cost[l + 1]);
    if (v < best) {
      best = v;
      best_choice = static_cast<std::int64_t>(l);
    }
  }
  *err_out = best;
  *choice_out = best_choice;
}

// kSum fast cell: chunked branch-free min-reduction, then the reference
// tie-break — the first split attaining the minimum — resolved inside the
// FIRST chunk attaining it. Four independent min accumulators break the
// loop-carried minsd latency chain (and give the vectorizer parallel
// lanes); floating-point min is exact whatever the accumulation order, so
// the chunked minimum is bit-equal to the sequential scan's. ~0.4 ns per
// candidate against the reference scan's ~1.8 (compare-branch per
// candidate, GCC 12 -O3 x86-64 baseline).
inline void ComputeCellSumFast(const double* prev, const double* cost,
                               std::size_t j, double* err_out,
                               std::int64_t* choice_out) {
  constexpr std::size_t kChunk = 512;
  const double inherit = prev[j];
  double best = kInfinity;
  std::size_t best_begin = 0;
  const double* cost1 = cost + 1;  // cost1[l] = Cost([l+1, j])
  for (std::size_t begin = 0; begin < j; begin += kChunk) {
    const std::size_t end = std::min(j, begin + kChunk);
    double m0 = kInfinity;
    double m1 = kInfinity;
    double m2 = kInfinity;
    double m3 = kInfinity;
    std::size_t l = begin;
    for (; l + 4 <= end; l += 4) {
      m0 = std::min(m0, prev[l] + cost1[l]);
      m1 = std::min(m1, prev[l + 1] + cost1[l + 1]);
      m2 = std::min(m2, prev[l + 2] + cost1[l + 2]);
      m3 = std::min(m3, prev[l + 3] + cost1[l + 3]);
    }
    double m = std::min(std::min(m0, m1), std::min(m2, m3));
    for (; l < end; ++l) {
      m = std::min(m, prev[l] + cost1[l]);
    }
    // Strict < keeps the earliest chunk attaining the global minimum, which
    // is where the first attaining split lives.
    if (m < best) {
      best = m;
      best_begin = begin;
    }
  }
  if (best < inherit) {
    const std::size_t end = std::min(j, best_begin + kChunk);
    for (std::size_t l = best_begin; l < end; ++l) {
      if (prev[l] + cost1[l] == best) {
        *err_out = best;
        *choice_out = static_cast<std::int64_t>(l);
        return;
      }
    }
    PROBSYN_CHECK(false);  // the chunk's minimum is attained in the chunk
  }
  *err_out = inherit;
  *choice_out = HistogramDpResult::kInheritChoice;
}

// Shared chunk geometry of the fast kMax cell and its bound tables.
constexpr std::size_t kMaxChunk = 512;

inline std::size_t NumChunks(std::size_t n) {
  return (n + kMaxChunk - 1) / kMaxChunk;
}

// Branch-free min over l in [begin, end) of max(prev[l], cost1[l]); four
// accumulators as in the kSum cell. min/max are exact whatever the
// accumulation order.
inline double ChunkMaxMin(const double* prev, const double* cost1,
                          std::size_t begin, std::size_t end) {
  double m0 = kInfinity;
  double m1 = kInfinity;
  double m2 = kInfinity;
  double m3 = kInfinity;
  std::size_t l = begin;
  for (; l + 4 <= end; l += 4) {
    m0 = std::min(m0, std::max(prev[l], cost1[l]));
    m1 = std::min(m1, std::max(prev[l + 1], cost1[l + 1]));
    m2 = std::min(m2, std::max(prev[l + 2], cost1[l + 2]));
    m3 = std::min(m3, std::max(prev[l + 3], cost1[l + 3]));
  }
  double m = std::min(std::min(m0, m1), std::min(m2, m3));
  for (; l < end; ++l) {
    m = std::min(m, std::max(prev[l], cost1[l]));
  }
  return m;
}

// kMax fast cell: bisection-seeded monotone-split pruning with an EXACT
// bound-verified sweep. Candidate l has value v(l) = max(prev[l],
// cost1[l]) where, mathematically, prev[] (prefix errors under a fixed
// budget) is non-decreasing in l and cost1[l] (the cost of bucket
// [l+1, j], shrinking as l grows) is non-increasing — so v is the max of a
// falling and a rising curve, minimized at their crossing. The COMPUTED
// arrays can violate that monotonicity by rounding (catastrophic
// cancellation in the variance-style cost formulas), so a raw bisection is
// not bit-safe. Instead:
//
//  1. bisect for the crossing and take real candidate values there as the
//     starting minimum `m` (any true v value only helps pruning, never
//     correctness);
//  2. exact-minimum sweep: per chunk of 512 splits, skip iff
//     max(prev_cmin[c], cost_cmin[c]) >= m — a true lower bound of every
//     v in the chunk, from maintained chunk minima of the prev row and the
//     cost column — else scan the chunk branch-free and lower m. On
//     monotone data the bisection seed prunes everything except the
//     crossing neighborhood (the paper's O(log j) behavior, plus O(j/512)
//     bound probes); on adversarial data this degrades gracefully to the
//     vectorized scan, never to a wrong answer.
//  3. reference tie-break: first chunk whose lower bound admits m
//     (strict >) is equality-scanned for the first split attaining m.
inline void ComputeCellMaxFast(const double* prev, const double* cost,
                               std::size_t j, const double* prev_cmin,
                               const double* cost_cmin, double* err_out,
                               std::int64_t* choice_out) {
  const double inherit = prev[j];
  if (j == 0) {
    *err_out = inherit;
    *choice_out = HistogramDpResult::kInheritChoice;
    return;
  }
  const double* cost1 = cost + 1;  // cost1[l] = Cost([l+1, j])

  // 1. Seed from the (approximate) crossing: first l with
  // prev[l] >= cost1[l] under bisection, clamped into [0, j); probe it and
  // its left neighbor — on monotone data one of them is the true minimum.
  std::size_t lo = 0;
  std::size_t hi = j;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (prev[mid] >= cost1[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t seed = lo < j ? lo : j - 1;
  double m = std::max(prev[seed], cost1[seed]);
  if (seed > 0) {
    m = std::min(m, std::max(prev[seed - 1], cost1[seed - 1]));
  }

  // 2. Exact minimum with chunk-bound pruning. Skipping on >= is safe for
  // the VALUE: a skipped chunk's minimum is >= its bound >= m.
  const std::size_t chunks = NumChunks(j);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (std::max(prev_cmin[c], cost_cmin[c]) >= m) continue;
    const std::size_t begin = c * kMaxChunk;
    const std::size_t end = std::min(j, begin + kMaxChunk);
    m = std::min(m, ChunkMaxMin(prev, cost1, begin, end));
  }

  if (m < inherit) {
    // 3. First split attaining m; chunks whose bound EQUALS m may contain
    // it, so only strictly-greater bounds are skipped.
    for (std::size_t c = 0; c < chunks; ++c) {
      if (std::max(prev_cmin[c], cost_cmin[c]) > m) continue;
      const std::size_t begin = c * kMaxChunk;
      const std::size_t end = std::min(j, begin + kMaxChunk);
      for (std::size_t l = begin; l < end; ++l) {
        if (std::max(prev[l], cost1[l]) == m) {
          *err_out = m;
          *choice_out = static_cast<std::int64_t>(l);
          return;
        }
      }
    }
    PROBSYN_CHECK(false);  // the minimum is attained in some chunk
  }
  *err_out = inherit;
  *choice_out = HistogramDpResult::kInheritChoice;
}

template <bool kFastCells>
inline void ComputeCellKernel(DpCombiner combiner, const double* prev,
                              const double* cost, std::size_t j,
                              const double* prev_cmin, const double* cost_cmin,
                              double* err_out, std::int64_t* choice_out) {
  if constexpr (kFastCells) {
    if (combiner == DpCombiner::kSum) {
      ComputeCellSumFast(prev, cost, j, err_out, choice_out);
    } else {
      ComputeCellMaxFast(prev, cost, j, prev_cmin, cost_cmin, err_out,
                         choice_out);
    }
  } else {
    ComputeCellReference(combiner, prev, cost, j, err_out, choice_out);
  }
}

// ---------------------------------------------------------------------------
// Cost-column fillers: cost[s] = Cost([s, j]).cost and rep[s] = its optimal
// representative, for s = 0..j. One filler per specialized kernel; each
// reproduces the corresponding oracle's Cost()/Extend() arithmetic verbatim
// (same expression sequence over the same arrays), which is what makes the
// kernels bit-identical to the virtual-dispatch reference.

// Virtual-dispatch baseline (and the route for oracle types without a
// specialized kernel).
struct ReferenceFiller {
  const BucketCostOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    auto sweep = oracle->StartSweep(j);
    for (std::size_t s = j;; --s) {
      BucketCost c = sweep->Extend();
      cost[s] = c.cost;
      rep[s] = c.representative;
      if (s == 0) break;
    }
  }
};

// SseMomentOracle::Cost over hoisted raw cumulative arrays.
struct SseMomentFiller {
  const double* weight;    // weight_prefix().cumulative()
  const double* mean;      // mean_prefix().cumulative()
  const double* second;    // second_prefix().cumulative()
  const double* variance;  // variance_prefix().cumulative()
  const double* raw_mean;  // raw_mean_prefix().cumulative()
  bool world_mean;

  void Fill(std::size_t j, double* cost, double* rep) const {
    const double w_hi = weight[j + 1];
    const double m_hi = mean[j + 1];
    const double s_hi = second[j + 1];
    const double v_hi = variance[j + 1];
    const double r_hi = raw_mean[j + 1];
    for (std::size_t s = 0; s <= j; ++s) {
      const double sum_weight = w_hi - weight[s];
      const double sum_mean = m_hi - mean[s];
      const double sum_second = s_hi - second[s];
      if (sum_weight <= 0.0) {
        // Workload ignores every item in the bucket (see
        // SseMomentOracle::Cost).
        const double nb = static_cast<double>(j - s + 1);
        rep[s] = (r_hi - raw_mean[s]) / nb;
        cost[s] = 0.0;
        continue;
      }
      const double representative = sum_mean / sum_weight;
      double expected_square_of_sum = sum_mean * sum_mean;
      if (world_mean) expected_square_of_sum += v_hi - variance[s];
      const double c = sum_second - expected_square_of_sum / sum_weight;
      rep[s] = representative;
      cost[s] = ClampTinyNegative(c, 1e-6);
    }
  }
};

// SsreOracle::Cost over hoisted raw X/Y/Z cumulative arrays.
struct SsreFiller {
  const double* x;
  const double* y;
  const double* z;

  void Fill(std::size_t j, double* cost, double* rep) const {
    const double x_hi = x[j + 1];
    const double y_hi = y[j + 1];
    const double z_hi = z[j + 1];
    for (std::size_t s = 0; s <= j; ++s) {
      const double xs = x_hi - x[s];
      const double ys = y_hi - y[s];
      const double zs = z_hi - z[s];
      if (zs <= 0.0) {
        // Every item in the bucket has zero workload weight.
        rep[s] = 0.0;
        cost[s] = 0.0;
        continue;
      }
      rep[s] = ys / zs;
      const double c = xs - ys * ys / zs;
      cost[s] = ClampTinyNegative(c, 1e-6);
    }
  }
};

// AbsCumulativeOracle: drive the concrete warm-started FlatSweep directly —
// the identical hint-carrying convex search the oracle's own StartSweep
// runs (core/abs_oracle.cc), minus the virtual adapter. Warm starts shave
// the cold search's O(log |V|) probes to O(1) on most cells; parity with
// the reference path holds by construction because both sides run the same
// FlatSweep probe sequence.
struct AbsFiller {
  const AbsCumulativeOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    AbsCumulativeOracle::FlatSweep sweep(*oracle, j);
    for (std::size_t s = j;; --s) {
      BucketCost c = sweep.Extend();
      cost[s] = c.cost;
      rep[s] = c.representative;
      if (s == 0) break;
    }
  }
};

// MaxErrorOracle: per-bucket envelope minimization is irreducibly
// O(n_b log(n_b |V|)); the kernel's win is the devirtualized concrete call
// (the class is final) and skipping the per-column sweep allocation.
struct MaxErrorFiller {
  const MaxErrorOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    for (std::size_t s = 0; s <= j; ++s) {
      BucketCost c = oracle->Cost(s, j);
      cost[s] = c.cost;
      rep[s] = c.representative;
    }
  }
};

// SseTupleWorldMeanOracle: drive the concrete FlatSweep directly — the
// identical incremental sum_q2 arithmetic, minus the virtual adapter.
struct TupleSseFiller {
  const SseTupleWorldMeanOracle* oracle;

  void Fill(std::size_t j, double* cost, double* rep) const {
    SseTupleWorldMeanOracle::FlatSweep sweep(*oracle, j);
    for (std::size_t s = j;; --s) {
      BucketCost c = sweep.Extend();
      cost[s] = c.cost;
      rep[s] = c.representative;
      if (s == 0) break;
    }
  }
};

// ---------------------------------------------------------------------------
// The DP driver, shared by every kernel. Sequential and blocked-parallel
// forms compute every cell from identical inputs with the identical cell
// function, so all configurations produce the same table bit-for-bit.

// The workspace's buffers, unwrapped by the friend entry point (only it can
// reach DpWorkspace's privates).
struct DpTables {
  std::vector<double>& err;
  std::vector<std::int64_t>& choice;
  std::vector<double>& rep;
  std::vector<double>& cost_cols;
  std::vector<double>& rep_cols;
  std::vector<double>& layer_cmin;
  std::vector<double>& cost_cmin;
};

template <bool kFastCells, typename Filler>
void RunDp(const Filler& filler, std::size_t n, std::size_t cap,
           DpCombiner combiner, ThreadPool* pool, DpTables ws) {
  ws.err.resize(cap * n);
  ws.choice.resize(cap * n);
  ws.rep.resize(cap * n);
  double* err = ws.err.data();
  std::int64_t* choice = ws.choice.data();
  double* rep = ws.rep.data();

  // The fast kMax cell consumes chunk-minimum lower bounds of the err rows
  // and of each cost column (see ComputeCellMaxFast); maintain them only
  // when that cell runs.
  const bool track_bounds = kFastCells && combiner == DpCombiner::kMax;
  const std::size_t nchunks = NumChunks(n);
  double* layer_cmin = nullptr;
  if (track_bounds) {
    ws.layer_cmin.resize(cap * nchunks);
    layer_cmin = ws.layer_cmin.data();
  }
  // Chunk minima of err row `layer_idx` are rebuilt left-to-right as the
  // row's columns are produced: the first column of a chunk assigns (which
  // is what makes reused workspaces safe), later columns fold in.
  auto update_layer_cmin = [&](std::size_t layer_idx, std::size_t j) {
    double* slot = &layer_cmin[layer_idx * nchunks + j / kMaxChunk];
    double v = err[layer_idx * n + j];
    *slot = (j % kMaxChunk == 0) ? v : std::min(*slot, v);
  };
  // Chunk minima over cost[l+1] for splits l in [0, j), per column.
  auto fill_cost_cmin = [](const double* costcol, std::size_t j,
                           double* cmin) {
    for (std::size_t begin = 0; begin < j; begin += kMaxChunk) {
      const std::size_t end = std::min(j, begin + kMaxChunk);
      double m = kInfinity;
      for (std::size_t l = begin; l < end; ++l) {
        m = std::min(m, costcol[l + 1]);
      }
      cmin[begin / kMaxChunk] = m;
    }
  };

  auto first_layer = [&](std::size_t j, const double* costcol,
                         const double* repcol) {
    err[j] = costcol[0];
    choice[j] = HistogramDpResult::kWholePrefix;
    rep[j] = repcol[0];
  };
  auto finish_cell = [&](std::size_t b, std::size_t j, const double* costcol,
                         const double* repcol, const double* costcol_cmin) {
    double* err_cell = &err[(b - 1) * n + j];
    std::int64_t* choice_cell = &choice[(b - 1) * n + j];
    const double* prev_cmin =
        track_bounds ? &layer_cmin[(b - 2) * nchunks] : nullptr;
    ComputeCellKernel<kFastCells>(combiner, &err[(b - 2) * n], costcol, j,
                                  prev_cmin, costcol_cmin, err_cell,
                                  choice_cell);
    // Cache the traceback bucket's representative so ExtractHistogram never
    // calls back into the oracle. Inherit cells end no bucket at j.
    rep[(b - 1) * n + j] =
        *choice_cell >= 0 ? repcol[*choice_cell + 1] : 0.0;
  };

  if (pool == nullptr || pool->num_threads() == 0 || n < 2) {
    // Sequential path: one leftward cost-column fill per right end j, then
    // every budget layer's cell for column j.
    ws.cost_cols.resize(n);
    ws.rep_cols.resize(n);
    if (track_bounds) ws.cost_cmin.resize(nchunks);
    double* costcol = ws.cost_cols.data();
    double* repcol = ws.rep_cols.data();
    double* cost_cmin = track_bounds ? ws.cost_cmin.data() : nullptr;
    for (std::size_t j = 0; j < n; ++j) {
      filler.Fill(j, costcol, repcol);
      if (track_bounds) fill_cost_cmin(costcol, j, cost_cmin);
      first_layer(j, costcol, repcol);
      if (track_bounds) update_layer_cmin(0, j);
      for (std::size_t b = 2; b <= cap; ++b) {
        finish_cell(b, j, costcol, repcol, cost_cmin);
        if (track_bounds) update_layer_cmin(b - 1, j);
      }
    }
    return;
  }

  // Blocked parallel path. Columns are processed in blocks; per block the
  // column fills (mutually independent) fan out first, then each budget
  // layer's cells fan out — cell (b, j) only reads layer b-1 at columns
  // <= j, all complete by then (earlier blocks ran every layer already;
  // this block ran layer b-1 in the previous iteration). Chunk-minimum
  // maintenance runs on the calling thread between fan-outs (block size <=
  // 256 < chunk size 512, so concurrent workers could otherwise race on a
  // shared chunk slot). The block size balances fork-join overhead against
  // the two column buffers (~32 MB total cap).
  const std::size_t block =
      std::clamp<std::size_t>((16u << 20) / (sizeof(double) * n), 16, 256);
  ws.cost_cols.resize(block * n);
  ws.rep_cols.resize(block * n);
  if (track_bounds) ws.cost_cmin.resize(block * nchunks);
  double* cost_block = ws.cost_cols.data();
  double* rep_block = ws.rep_cols.data();
  double* cost_cmin_block = track_bounds ? ws.cost_cmin.data() : nullptr;
  for (std::size_t j0 = 0; j0 < n; j0 += block) {
    const std::size_t j1 = std::min(n, j0 + block);
    pool->ParallelFor(j0, j1, [&](std::size_t jb, std::size_t je) {
      for (std::size_t j = jb; j < je; ++j) {
        double* costcol = &cost_block[(j - j0) * n];
        double* repcol = &rep_block[(j - j0) * n];
        filler.Fill(j, costcol, repcol);
        if (track_bounds) {
          fill_cost_cmin(costcol, j, &cost_cmin_block[(j - j0) * nchunks]);
        }
        first_layer(j, costcol, repcol);
      }
    });
    if (track_bounds) {
      for (std::size_t j = j0; j < j1; ++j) update_layer_cmin(0, j);
    }
    for (std::size_t b = 2; b <= cap; ++b) {
      pool->ParallelFor(j0, j1, [&](std::size_t jb, std::size_t je) {
        for (std::size_t j = jb; j < je; ++j) {
          finish_cell(b, j, &cost_block[(j - j0) * n],
                      &rep_block[(j - j0) * n],
                      track_bounds ? &cost_cmin_block[(j - j0) * nchunks]
                                   : nullptr);
        }
      });
      if (track_bounds) {
        for (std::size_t j = j0; j < j1; ++j) update_layer_cmin(b - 1, j);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Approximate-DP point-cost kernels. The (1 + eps) DP evaluates a sparse
// candidate set, so instead of column fillers each kernel exposes one
// devirtualized Cost(s, e) evaluation reproducing the oracle's arithmetic
// verbatim — bit-identical cost values make the shared driver's every
// comparison, class boundary, and traceback identical to the reference.
//
// AbsCumulativeOracle deliberately runs the COLD search here (no warm
// hints, unlike its FlatSweep): the reference path evaluates candidates
// through the cold virtual Cost(), and a warm-accepted optimum can land on
// a different grid index when rounding splits a cost plateau into several
// equal-valued pits — legal as an answer, fatal for bit parity. The win is
// the inlined probe loop (no std::function per probe).

struct ReferencePointCost {
  const BucketCostOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    return oracle->Cost(s, e).cost;
  }
};

// SseMomentOracle::Cost over hoisted raw cumulative arrays (cost part only;
// the approximate DP re-costs final buckets through the oracle itself).
struct SseMomentPointCost {
  const double* weight;
  const double* mean;
  const double* second;
  const double* variance;
  bool world_mean;

  double Cost(std::size_t s, std::size_t e) const {
    const double sum_weight = weight[e + 1] - weight[s];
    if (sum_weight <= 0.0) return 0.0;
    const double sum_mean = mean[e + 1] - mean[s];
    const double sum_second = second[e + 1] - second[s];
    double expected_square_of_sum = sum_mean * sum_mean;
    if (world_mean) expected_square_of_sum += variance[e + 1] - variance[s];
    const double c = sum_second - expected_square_of_sum / sum_weight;
    return ClampTinyNegative(c, 1e-6);
  }
};

// SsreOracle::Cost over hoisted raw X/Y/Z cumulative arrays.
struct SsrePointCost {
  const double* x;
  const double* y;
  const double* z;

  double Cost(std::size_t s, std::size_t e) const {
    const double zs = z[e + 1] - z[s];
    if (zs <= 0.0) return 0.0;
    const double xs = x[e + 1] - x[s];
    const double ys = y[e + 1] - y[s];
    const double c = xs - ys * ys / zs;
    return ClampTinyNegative(c, 1e-6);
  }
};

// AbsCumulativeOracle's cold convex search with the probe lambda inlined
// (OptimalGridIndex without a hint runs the identical probe sequence as
// the std::function-based Cost()).
struct AbsPointCost {
  const AbsCumulativeOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    const std::size_t best =
        oracle->OptimalGridIndex(s, e, AbsCumulativeOracle::kNoHint);
    return std::max(0.0, oracle->CostAtGridIndex(s, e, best));
  }
};

// MaxErrorOracle / SseTupleWorldMeanOracle: the classes are final, so the
// concrete call devirtualizes; their per-bucket work is irreducible.
struct MaxErrorPointCost {
  const MaxErrorOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    return oracle->Cost(s, e).cost;
  }
};

struct TupleSsePointCost {
  const SseTupleWorldMeanOracle* oracle;

  double Cost(std::size_t s, std::size_t e) const {
    return oracle->Cost(s, e).cost;
  }
};

// The approximate-DP driver, shared by every point-cost kernel: identical
// control flow, comparisons, and evaluation counting in every
// configuration, so bit-identical cost evaluations imply bit-identical
// histograms, costs, and oracle_evaluations.
template <typename CostFn>
StatusOr<ApproxHistogramResult> RunApproxDp(const BucketCostOracle& oracle,
                                            const CostFn& cost_fn,
                                            std::size_t max_buckets,
                                            double epsilon,
                                            DpKernelKind kind) {
  const std::size_t n = oracle.domain_size();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (max_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const std::size_t cap = std::min(max_buckets, n);
  // Per-layer slack; (1 + delta)^(cap-1) <= e^(eps/2) <= 1 + eps for
  // eps <= 1. Larger eps values still yield a valid (coarser) guarantee.
  const double delta =
      std::min(0.5, epsilon / (2.0 * static_cast<double>(cap)));

  std::size_t evaluations = 0;

  std::vector<std::vector<std::int64_t>> choice(
      cap, std::vector<std::int64_t>(n, HistogramDpResult::kWholePrefix));
  constexpr std::int64_t kInherit = -2;

  std::vector<double> prev(n), cur(n);
  for (std::size_t j = 0; j < n; ++j) {
    prev[j] = cost_fn.Cost(0, j);
    ++evaluations;
  }

  std::vector<std::size_t> candidates;
  for (std::size_t b = 2; b <= cap; ++b) {
    // Geometric error classes of the previous (monotone) layer; keep the
    // rightmost position of each class. Classes are contiguous intervals
    // because prev[] is non-decreasing in j.
    candidates.clear();
    double class_base = prev[0];
    for (std::size_t j = 0; j + 1 < n; ++j) {
      bool class_ends = (prev[j + 1] > class_base * (1.0 + delta)) ||
                        (class_base == 0.0 && prev[j + 1] > 0.0);
      if (class_ends) {
        candidates.push_back(j);
        class_base = prev[j + 1];
      }
    }
    if (n >= 1) candidates.push_back(n - 1);

    for (std::size_t j = 0; j < n; ++j) {
      double best = prev[j];  // Inherit: fewer buckets already optimal.
      std::int64_t best_choice = kInherit;
      auto consider = [&](std::size_t l) {
        double v = prev[l] + cost_fn.Cost(l + 1, j);
        ++evaluations;
        if (v < best) {
          best = v;
          best_choice = static_cast<std::int64_t>(l);
        }
      };
      for (std::size_t l : candidates) {
        if (l + 1 > j) break;  // candidates ascending; l must be < j
        consider(l);
      }
      if (j >= 1) consider(j - 1);
      cur[j] = best;
      choice[b - 1][j] = best_choice;
    }
    prev.swap(cur);
  }

  // Traceback (same scheme as the exact DP).
  std::vector<HistogramBucket> buckets;
  std::size_t layer = cap;
  std::size_t j = n - 1;
  for (;;) {
    std::int64_t c = layer >= 2 ? choice[layer - 1][j]
                                : HistogramDpResult::kWholePrefix;
    if (c == kInherit) {
      --layer;
      continue;
    }
    if (c == HistogramDpResult::kWholePrefix) {
      buckets.push_back({0, j, 0.0});
      break;
    }
    std::size_t l = static_cast<std::size_t>(c);
    buckets.push_back({l + 1, j, 0.0});
    j = l;
    PROBSYN_CHECK(layer > 1);
    --layer;
  }
  std::reverse(buckets.begin(), buckets.end());
  double total = 0.0;
  for (HistogramBucket& b : buckets) {
    BucketCost bc = oracle.Cost(b.start, b.end);
    b.representative = bc.representative;
    total += bc.cost;
  }

  ApproxHistogramResult result;
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  result.oracle_evaluations = evaluations;
  result.kernel = kind;
  return result;
}

}  // namespace

void DpWorkspacePool::Lease::Release() {
  if (pool_ != nullptr && workspace_ != nullptr) {
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    pool_->free_.push_back(std::move(workspace_));
  }
}

DpWorkspacePool::Lease DpWorkspacePool::Acquire() {
  std::unique_ptr<DpWorkspace> workspace;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      workspace = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (workspace == nullptr) workspace = std::make_unique<DpWorkspace>();
  return Lease(this, std::move(workspace));
}

DpKernelKind SelectDpKernel(const BucketCostOracle& oracle) {
  if (dynamic_cast<const SseMomentOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kSseMoment;
  }
  if (dynamic_cast<const SsreOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kSsre;
  }
  if (dynamic_cast<const AbsCumulativeOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kAbsCumulative;
  }
  if (dynamic_cast<const MaxErrorOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kMaxError;
  }
  if (dynamic_cast<const SseTupleWorldMeanOracle*>(&oracle) != nullptr) {
    return DpKernelKind::kTupleSse;
  }
  return DpKernelKind::kReference;
}

HistogramDpResult SolveHistogramDpWithKernel(const BucketCostOracle& oracle,
                                             std::size_t max_buckets,
                                             DpCombiner combiner,
                                             const DpKernelOptions& options) {
  const std::size_t n = oracle.domain_size();
  PROBSYN_CHECK(n > 0 && max_buckets >= 1);
  // Budgets beyond n buckets cannot help; cap the table, not the API.
  const std::size_t cap = std::min(max_buckets, n);

  HistogramDpResult result;
  result.n_ = n;
  result.max_buckets_ = max_buckets;
  result.cap_ = cap;
  DpWorkspace* ws = options.workspace;
  if (ws == nullptr) {
    result.owned_ = std::make_shared<DpWorkspace>();
    ws = result.owned_.get();
  }

  const DpKernelKind kind = options.kernel == DpKernelKind::kAuto
                                ? SelectDpKernel(oracle)
                                : options.kernel;
  ThreadPool* pool = options.pool;
  DpTables tables{ws->err_,      ws->choice_,    ws->rep_,
                  ws->cost_cols_, ws->rep_cols_, ws->layer_cmin_,
                  ws->cost_cmin_};
  switch (kind) {
    case DpKernelKind::kReference: {
      ReferenceFiller filler{&oracle};
      RunDp<false>(filler, n, cap, combiner, pool, tables);
      break;
    }
    case DpKernelKind::kSseMoment: {
      const auto* sse = dynamic_cast<const SseMomentOracle*>(&oracle);
      PROBSYN_CHECK(sse != nullptr);
      SseMomentFiller filler{sse->weight_prefix().cumulative().data(),
                             sse->mean_prefix().cumulative().data(),
                             sse->second_prefix().cumulative().data(),
                             sse->variance_prefix().cumulative().data(),
                             sse->raw_mean_prefix().cumulative().data(),
                             sse->variant() == SseVariant::kWorldMean};
      RunDp<true>(filler, n, cap, combiner, pool, tables);
      break;
    }
    case DpKernelKind::kSsre: {
      const auto* ssre = dynamic_cast<const SsreOracle*>(&oracle);
      PROBSYN_CHECK(ssre != nullptr);
      SsreFiller filler{ssre->x_prefix().cumulative().data(),
                        ssre->y_prefix().cumulative().data(),
                        ssre->z_prefix().cumulative().data()};
      RunDp<true>(filler, n, cap, combiner, pool, tables);
      break;
    }
    case DpKernelKind::kAbsCumulative: {
      const auto* abs = dynamic_cast<const AbsCumulativeOracle*>(&oracle);
      PROBSYN_CHECK(abs != nullptr);
      AbsFiller filler{abs};
      RunDp<true>(filler, n, cap, combiner, pool, tables);
      break;
    }
    case DpKernelKind::kMaxError: {
      const auto* max = dynamic_cast<const MaxErrorOracle*>(&oracle);
      PROBSYN_CHECK(max != nullptr);
      MaxErrorFiller filler{max};
      RunDp<true>(filler, n, cap, combiner, pool, tables);
      break;
    }
    case DpKernelKind::kTupleSse: {
      const auto* tuple = dynamic_cast<const SseTupleWorldMeanOracle*>(&oracle);
      PROBSYN_CHECK(tuple != nullptr);
      TupleSseFiller filler{tuple};
      RunDp<true>(filler, n, cap, combiner, pool, tables);
      break;
    }
    case DpKernelKind::kAuto:
      PROBSYN_CHECK(false);  // resolved above
  }

  result.kernel_ = kind;
  result.err_ = ws->err_.data();
  result.choice_ = ws->choice_.data();
  result.rep_ = ws->rep_.data();
  return result;
}

StatusOr<ApproxHistogramResult> SolveApproxHistogramDpWithKernel(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon,
    const ApproxDpKernelOptions& options) {
  const DpKernelKind kind = options.kernel == DpKernelKind::kAuto
                                ? SelectDpKernel(oracle)
                                : options.kernel;
  switch (kind) {
    case DpKernelKind::kReference: {
      ReferencePointCost cost_fn{&oracle};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind);
    }
    case DpKernelKind::kSseMoment: {
      const auto* sse = dynamic_cast<const SseMomentOracle*>(&oracle);
      PROBSYN_CHECK(sse != nullptr);
      SseMomentPointCost cost_fn{sse->weight_prefix().cumulative().data(),
                                 sse->mean_prefix().cumulative().data(),
                                 sse->second_prefix().cumulative().data(),
                                 sse->variance_prefix().cumulative().data(),
                                 sse->variant() == SseVariant::kWorldMean};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind);
    }
    case DpKernelKind::kSsre: {
      const auto* ssre = dynamic_cast<const SsreOracle*>(&oracle);
      PROBSYN_CHECK(ssre != nullptr);
      SsrePointCost cost_fn{ssre->x_prefix().cumulative().data(),
                            ssre->y_prefix().cumulative().data(),
                            ssre->z_prefix().cumulative().data()};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind);
    }
    case DpKernelKind::kAbsCumulative: {
      const auto* abs = dynamic_cast<const AbsCumulativeOracle*>(&oracle);
      PROBSYN_CHECK(abs != nullptr);
      AbsPointCost cost_fn{abs};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind);
    }
    case DpKernelKind::kMaxError: {
      const auto* max = dynamic_cast<const MaxErrorOracle*>(&oracle);
      PROBSYN_CHECK(max != nullptr);
      MaxErrorPointCost cost_fn{max};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind);
    }
    case DpKernelKind::kTupleSse: {
      const auto* tuple = dynamic_cast<const SseTupleWorldMeanOracle*>(&oracle);
      PROBSYN_CHECK(tuple != nullptr);
      TupleSsePointCost cost_fn{tuple};
      return RunApproxDp(oracle, cost_fn, max_buckets, epsilon, kind);
    }
    case DpKernelKind::kAuto:
      break;  // resolved above
  }
  PROBSYN_CHECK(false);
  return Status::Internal("unreachable");
}

const char* WaveletSplitKernelName(WaveletSplitKernel kind) {
  switch (kind) {
    case WaveletSplitKernel::kAuto: return "auto";
    case WaveletSplitKernel::kReference: return "reference";
    case WaveletSplitKernel::kBudgetSplit: return "budget-split";
  }
  return "?";
}

}  // namespace probsyn
