#ifndef PROBSYN_CORE_HISTOGRAM_DP_H_
#define PROBSYN_CORE_HISTOGRAM_DP_H_

#include <cstddef>
#include <vector>

#include "core/bucket_oracle.h"
#include "core/histogram.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// How per-bucket errors aggregate into the histogram error: the paper's
/// h(x, y) — sum for cumulative objectives, max for maximum objectives
/// (equation (2)).
enum class DpCombiner { kSum, kMax };

/// Output of the exact DP: the whole optimal-cost curve over bucket
/// budgets, plus enough trace information to extract the optimal histogram
/// for ANY budget b <= max_buckets (the quality experiments of Figure 2
/// plot entire curves from one DP run).
///
/// Budgets are interpreted as "at most b buckets": OptimalCost(b) is
/// non-increasing in b. (Splitting a bucket never increases either a
/// cumulative or a maximum objective, so this matches "exactly b" whenever
/// b <= n.)
class HistogramDpResult {
 public:
  /// Optimal expected error with at most `num_buckets` buckets.
  double OptimalCost(std::size_t num_buckets) const;

  /// Extracts an optimal histogram (boundaries + optimal representatives)
  /// for the given budget. O(B log n + traceback oracle calls).
  Histogram ExtractHistogram(std::size_t num_buckets) const;

  std::size_t max_buckets() const { return max_buckets_; }
  std::size_t domain_size() const { return n_; }

  // Traceback markers shared with the approximate DP: kInheritChoice means
  // "the (b-1)-bucket solution was already optimal"; kWholePrefix encodes a
  // single bucket [0, j].
  static constexpr std::int64_t kInheritChoice = -2;
  static constexpr std::int64_t kWholePrefix = -1;

 private:
  friend HistogramDpResult SolveHistogramDp(const BucketCostOracle&,
                                            std::size_t, DpCombiner,
                                            ThreadPool*);

  // err_[b-1][j]: optimal cost of covering prefix [0..j] with <= b buckets.
  // choice_[b-1][j]: split l (last bucket is [l+1, j]).

  std::size_t n_ = 0;
  std::size_t max_buckets_ = 0;
  const BucketCostOracle* oracle_ = nullptr;
  std::vector<std::vector<double>> err_;
  std::vector<std::vector<std::int64_t>> choice_;
};

/// Solves the optimal-histogram DP (paper equation (2)) for every budget
/// 1..max_buckets in one pass.
///
/// Complexity: O(n) sweeps totalling O(n^2) bucket-cost extensions (done
/// once, independent of B) + O(B n^2) constant-time DP transitions — the
/// paper's O(m + B n^2) for the O(1) oracles (Theorems 1 and 2), with the
/// oracle's per-bucket factor multiplying the n^2 term otherwise.
///
/// The principle of optimality holds for probabilistic data because
/// expectation distributes over the per-bucket sum/max (section 3, opening).
///
/// When `pool` is non-null the DP runs in a blocked data-parallel form:
/// columns are processed in blocks, each block's bucket-cost sweeps run in
/// parallel (one independent oracle sweep per column), and within every
/// budget layer the block's cells are computed in parallel — legal because
/// a cell (b, j) depends only on layer b-1 at columns <= j, all finished
/// before layer b starts. Every cell is produced by the same scalar scan
/// in the same order as the sequential solver, so the result (costs AND
/// traceback choices) is bit-identical; a null pool is the reference
/// sequential path.
HistogramDpResult SolveHistogramDp(const BucketCostOracle& oracle,
                                   std::size_t max_buckets,
                                   DpCombiner combiner,
                                   ThreadPool* pool = nullptr);

/// Result of the approximate DP: the histogram and its (exact) cost under
/// the oracle, guaranteed within (1 + epsilon) of the optimum.
struct ApproxHistogramResult {
  Histogram histogram;
  double cost = 0.0;
  /// Bucket-cost oracle evaluations performed (the complexity currency of
  /// the paper's Theorem 5).
  std::size_t oracle_evaluations = 0;
};

/// (1 + epsilon)-approximate histogram construction in the style of Guha,
/// Koudas & Shim [13, 14] (paper section 3.5, Theorem 5): instead of
/// minimizing over every split point l, each DP layer keeps only the
/// rightmost split of each geometric error class of the previous layer
/// (classes are contiguous because prefix error curves are monotone in j).
/// Candidate splits per transition: O((B/eps) log(error range)), so the
/// total work is O((B^2/eps) n log n) oracle calls instead of O(B n^2).
///
/// Cumulative (sum-combiner) metrics only, matching Theorem 5's scope.
StatusOr<ApproxHistogramResult> SolveApproxHistogramDp(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon);

}  // namespace probsyn

#endif  // PROBSYN_CORE_HISTOGRAM_DP_H_
