#ifndef PROBSYN_CORE_HISTOGRAM_DP_H_
#define PROBSYN_CORE_HISTOGRAM_DP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/bucket_oracle.h"
#include "core/histogram.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;
class DpWorkspace;       // core/dp_kernels.h
struct DpKernelOptions;  // core/dp_kernels.h

/// How per-bucket errors aggregate into the histogram error: the paper's
/// h(x, y) — sum for cumulative objectives, max for maximum objectives
/// (equation (2)).
enum class DpCombiner { kSum, kMax };

/// Which inner-loop implementation the exact DP ran with. The specialized
/// kernels (core/dp_kernels.cc) hoist a concrete oracle's raw prefix-sum
/// tables into flat spans and replace the virtual Cost/Extend call per DP
/// cell with branch-free column fills plus a vectorizable min-reduction
/// (kSum) or a monotone-split bisection (kMax); every kernel is bit-identical
/// to kReference — costs, traceback choices, and representatives — which the
/// dp_kernel_parity tests pin down.
enum class DpKernelKind {
  kAuto,           ///< Resolve from the oracle's dynamic type (SelectDpKernel).
  kReference,      ///< Virtual-dispatch sweeps + scalar scan (parity baseline).
  kSseMoment,      ///< SseMomentOracle: flat mean/second/variance spans.
  kSsre,           ///< SsreOracle: flat X/Y/Z spans.
  kAbsCumulative,  ///< AbsCumulativeOracle: inlined U/D ternary search.
  kMaxError,       ///< MaxErrorOracle: devirtualized envelope costs.
  kTupleSse,       ///< SseTupleWorldMeanOracle: concrete FlatSweep.
};

/// Stable display name ("reference", "sse-moment", ...).
const char* DpKernelKindName(DpKernelKind kind);

/// Output of the exact DP: the whole optimal-cost curve over bucket
/// budgets, plus enough trace information to extract the optimal histogram
/// for ANY budget b <= max_buckets (the quality experiments of Figure 2
/// plot entire curves from one DP run).
///
/// Budgets are interpreted as "at most b buckets": OptimalCost(b) is
/// non-increasing in b. (Splitting a bucket never increases either a
/// cumulative or a maximum objective, so this matches "exactly b" whenever
/// b <= n.)
///
/// The DP tables (errors, traceback choices, and cached bucket
/// representatives) live in a DpWorkspace. When the solver was handed an
/// external workspace the result only BORROWS that storage: it must not be
/// read after the workspace is reused for another solve or destroyed.
/// Without an external workspace the result owns its storage and has no
/// lifetime constraints. Representatives are cached during the DP's cost
/// sweeps, so ExtractHistogram never calls back into the oracle.
class HistogramDpResult {
 public:
  /// Outcome of the solve. OK for every unbounded solve; when the solver
  /// ran under an ExecContext (DpKernelOptions::context) and was stopped,
  /// this carries kDeadlineExceeded/kCancelled (or the fan-out's failure)
  /// and the DP tables are PARTIAL — callers must check status() before
  /// reading any cost, row, or histogram.
  const Status& status() const { return status_; }

  /// Optimal expected error with at most `num_buckets` buckets.
  double OptimalCost(std::size_t num_buckets) const;

  /// Extracts an optimal histogram (boundaries + optimal representatives)
  /// for the given budget. O(B) — representatives come from the DP's
  /// cached per-cell BucketCost, not from fresh oracle calls. When
  /// status() is not OK the traceback tables are unusable and this returns
  /// an empty histogram rather than walking them; an empty domain (n = 0)
  /// likewise normalizes to the empty histogram — the unique partition of
  /// nothing, and the one Histogram that Validate(0) accepts.
  Histogram ExtractHistogram(std::size_t num_buckets) const;

  std::size_t max_buckets() const { return max_buckets_; }
  std::size_t domain_size() const { return n_; }
  /// Number of materialized DP layers: min(max_buckets, domain_size).
  std::size_t table_layers() const { return cap_; }
  /// The inner-loop implementation that produced this result (never kAuto).
  DpKernelKind kernel() const { return kernel_; }

  /// Raw DP rows for layer `num_buckets` (1-based, <= table_layers()):
  /// errors err[b-1][j], traceback choices choice[b-1][j], and the cached
  /// representative of the bucket ending at j under that choice (0.0 for
  /// kInheritChoice cells, whose representative is never read). Exposed for
  /// the kernel parity tests and for observability.
  std::span<const double> ErrorRow(std::size_t num_buckets) const;
  std::span<const std::int64_t> ChoiceRow(std::size_t num_buckets) const;
  std::span<const double> RepresentativeRow(std::size_t num_buckets) const;

  // Traceback markers shared with the approximate DP: kInheritChoice means
  // "the (b-1)-bucket solution was already optimal"; kWholePrefix encodes a
  // single bucket [0, j].
  static constexpr std::int64_t kInheritChoice = -2;
  static constexpr std::int64_t kWholePrefix = -1;

 private:
  friend HistogramDpResult SolveHistogramDpWithKernel(const BucketCostOracle&,
                                                      std::size_t,
                                                      DpCombiner,
                                                      const DpKernelOptions&);

  // err_[(b-1) * n_ + j]: optimal cost of covering prefix [0..j] with <= b
  // buckets. choice_: split l (last bucket is [l+1, j]). rep_: cached
  // representative of that last bucket.

  std::size_t n_ = 0;
  std::size_t max_buckets_ = 0;
  std::size_t cap_ = 0;
  Status status_;
  DpKernelKind kernel_ = DpKernelKind::kReference;
  const double* err_ = nullptr;
  const std::int64_t* choice_ = nullptr;
  const double* rep_ = nullptr;
  std::shared_ptr<DpWorkspace> owned_;  // null when borrowing a caller's
                                        // workspace
};

/// Solves the optimal-histogram DP (paper equation (2)) for every budget
/// 1..max_buckets in one pass.
///
/// Complexity: O(n) sweeps totalling O(n^2) bucket-cost extensions (done
/// once, independent of B) + O(B n^2) constant-time DP transitions — the
/// paper's O(m + B n^2) for the O(1) oracles (Theorems 1 and 2), with the
/// oracle's per-bucket factor multiplying the n^2 term otherwise. For max
/// combiners the specialized kernels cut the transition term to
/// O(B n log n) by bisecting for the monotone split crossing.
///
/// The principle of optimality holds for probabilistic data because
/// expectation distributes over the per-bucket sum/max (section 3, opening).
///
/// This entry point auto-selects the specialized kernel matching the
/// oracle's concrete type (see DpKernelKind); results are bit-identical to
/// the reference scalar solver in every configuration. When `pool` is
/// non-null the DP runs in a blocked data-parallel form: columns are
/// processed in blocks, each block's bucket-cost column fills run in one
/// fan-out, then the block's budget layers run either sequentially on the
/// caller (max-combiner fast cells, whose O(log n) bisections are cheaper
/// than any fan-out) or through a staggered diagonal schedule that fuses
/// layer batches into a handful of fork-joins (sum combiners and the
/// reference kernel). Every cell is produced by the same per-cell
/// computation on the same inputs as the sequential solver, so the result
/// (costs AND traceback choices) is bit-identical.
///
/// For explicit kernel choice or zero-allocation workspace reuse, use
/// SolveHistogramDpWithKernel (core/dp_kernels.h).
HistogramDpResult SolveHistogramDp(const BucketCostOracle& oracle,
                                   std::size_t max_buckets,
                                   DpCombiner combiner,
                                   ThreadPool* pool = nullptr);

/// Result of the approximate DP: the histogram and its (exact) cost under
/// the oracle, guaranteed within (1 + epsilon) of the optimum.
struct ApproxHistogramResult {
  Histogram histogram;
  double cost = 0.0;
  /// Bucket-cost oracle evaluations performed (the complexity currency of
  /// the paper's Theorem 5).
  std::size_t oracle_evaluations = 0;
  /// The point-cost implementation the solve ran with (never kAuto): a
  /// specialized kernel evaluates each candidate bucket cost inline over
  /// the oracle's raw prefix tables instead of through the virtual Cost().
  DpKernelKind kernel = DpKernelKind::kReference;
  /// cost_curve[b-1]: the approximate DP's layer-(b) value at the full
  /// domain — the (1 + epsilon)-optimal cost of covering [0, n) with at
  /// most b buckets, for b = 1..min(max_buckets, n). Exactly non-increasing
  /// in b (every layer seeds each cell with the previous layer's value), a
  /// property the sharded merge DP's MinBudgetSplit fast paths rely on.
  /// Note: cost_curve.back() is the DP's internal value of the returned
  /// histogram; `cost` re-costs the extracted buckets through the oracle
  /// and may differ in the last ulps.
  std::vector<double> cost_curve;
};

/// (1 + epsilon)-approximate histogram construction in the style of Guha,
/// Koudas & Shim [13, 14] (paper section 3.5, Theorem 5): instead of
/// minimizing over every split point l, each DP layer keeps only the
/// rightmost split of each geometric error class of the previous layer
/// (classes are contiguous because prefix error curves are monotone in j).
/// Candidate splits per transition: O((B/eps) log(error range)), so the
/// total work is O((B^2/eps) n log n) oracle calls instead of O(B n^2).
///
/// Cumulative (sum-combiner) metrics only, matching Theorem 5's scope.
///
/// This entry point auto-selects the specialized point-cost kernel matching
/// the oracle's concrete type and is bit-identical to the reference
/// virtual-dispatch solve in histogram, cost, and evaluation count (pinned
/// by the dp_kernel_parity tests). For explicit kernel choice use
/// SolveApproxHistogramDpWithKernel (core/dp_kernels.h).
StatusOr<ApproxHistogramResult> SolveApproxHistogramDp(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon);

}  // namespace probsyn

#endif  // PROBSYN_CORE_HISTOGRAM_DP_H_
