#include "core/builders.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace probsyn {

ValuePdfInput PointMassInput(std::span<const double> frequencies) {
  std::vector<ValuePdf> items;
  items.reserve(frequencies.size());
  for (double f : frequencies) items.push_back(ValuePdf::PointMass(f));
  return ValuePdfInput(std::move(items));
}

HistogramBuilder::HistogramBuilder(OracleBundle bundle,
                                   std::size_t max_buckets, ThreadPool* pool)
    : bundle_(std::move(bundle)),
      dp_(SolveHistogramDp(*bundle_.oracle, max_buckets, bundle_.combiner,
                           pool)) {}

StatusOr<HistogramBuilder> HistogramBuilder::Create(
    const ValuePdfInput& input, const SynopsisOptions& options,
    std::size_t max_buckets, ThreadPool* pool) {
  if (max_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  auto bundle = MakeBucketOracle(input, options, pool);
  if (!bundle.ok()) return bundle.status();
  return HistogramBuilder(std::move(bundle).value(), max_buckets, pool);
}

StatusOr<HistogramBuilder> HistogramBuilder::Create(
    const TuplePdfInput& input, const SynopsisOptions& options,
    std::size_t max_buckets, ThreadPool* pool) {
  if (max_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  auto bundle = MakeBucketOracle(input, options, pool);
  if (!bundle.ok()) return bundle.status();
  return HistogramBuilder(std::move(bundle).value(), max_buckets, pool);
}

StatusOr<HistogramBuilder> HistogramBuilder::CreateDeterministic(
    std::span<const double> frequencies, const SynopsisOptions& options,
    std::size_t max_buckets, ThreadPool* pool) {
  return Create(PointMassInput(frequencies), options, max_buckets, pool);
}

StatusOr<Histogram> BuildOptimalHistogram(const ValuePdfInput& input,
                                          const SynopsisOptions& options,
                                          std::size_t num_buckets) {
  auto builder = HistogramBuilder::Create(input, options, num_buckets);
  if (!builder.ok()) return builder.status();
  return builder->Extract(num_buckets);
}

StatusOr<Histogram> BuildOptimalHistogram(const TuplePdfInput& input,
                                          const SynopsisOptions& options,
                                          std::size_t num_buckets) {
  auto builder = HistogramBuilder::Create(input, options, num_buckets);
  if (!builder.ok()) return builder.status();
  return builder->Extract(num_buckets);
}

namespace {

StatusOr<ApproxHistogramResult> ApproxFromBundle(StatusOr<OracleBundle> bundle,
                                                 std::size_t num_buckets,
                                                 double epsilon) {
  if (!bundle.ok()) return bundle.status();
  if (bundle->combiner != DpCombiner::kSum) {
    return Status::Unimplemented(
        "approximate histogram construction targets cumulative metrics "
        "(paper Theorem 5)");
  }
  return SolveApproxHistogramDp(*bundle->oracle, num_buckets, epsilon);
}

}  // namespace

StatusOr<ApproxHistogramResult> BuildApproxHistogram(
    const ValuePdfInput& input, const SynopsisOptions& options,
    std::size_t num_buckets, double epsilon) {
  return ApproxFromBundle(MakeBucketOracle(input, options), num_buckets,
                          epsilon);
}

StatusOr<ApproxHistogramResult> BuildApproxHistogram(
    const TuplePdfInput& input, const SynopsisOptions& options,
    std::size_t num_buckets, double epsilon) {
  return ApproxFromBundle(MakeBucketOracle(input, options), num_buckets,
                          epsilon);
}

}  // namespace probsyn
