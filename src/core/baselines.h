#ifndef PROBSYN_CORE_BASELINES_H_
#define PROBSYN_CORE_BASELINES_H_

#include <cstddef>
#include <vector>

#include "core/builders.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/wavelet.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/random.h"
#include "util/status.h"

namespace probsyn {

/// The two naive deterministic baselines the paper's experiments compare
/// against (sections 2.3 and 5):
///
///  * Expectation — replace each uncertain item by its expected frequency
///    E[g_i], build the optimal deterministic synopsis of that vector.
///  * Sampled World — draw one possible world W ~ Pr[W], build the optimal
///    deterministic synopsis of W's frequency vector.
///
/// Both produce ordinary synopses that are then re-costed under the true
/// distribution with the evaluate.h routines; the paper's headline result
/// is how much worse they are than the direct probabilistic optimization.

/// Expected-frequency vector of the input (the "Expectation" data).
std::vector<double> ExpectationFrequencies(const ValuePdfInput& input);
std::vector<double> ExpectationFrequencies(const TuplePdfInput& input);

/// One sampled possible world's frequency vector.
std::vector<double> SampleWorldFrequencies(const ValuePdfInput& input,
                                           Rng& rng);
std::vector<double> SampleWorldFrequencies(const TuplePdfInput& input,
                                           Rng& rng);

/// Optimal deterministic histogram of the expectation vector.
StatusOr<Histogram> BuildExpectationHistogram(const ValuePdfInput& input,
                                              const SynopsisOptions& options,
                                              std::size_t num_buckets);
StatusOr<Histogram> BuildExpectationHistogram(const TuplePdfInput& input,
                                              const SynopsisOptions& options,
                                              std::size_t num_buckets);

/// Optimal deterministic histogram of one sampled world.
StatusOr<Histogram> BuildSampledWorldHistogram(const ValuePdfInput& input,
                                               const SynopsisOptions& options,
                                               std::size_t num_buckets,
                                               Rng& rng);
StatusOr<Histogram> BuildSampledWorldHistogram(const TuplePdfInput& input,
                                               const SynopsisOptions& options,
                                               std::size_t num_buckets,
                                               Rng& rng);

/// Equi-depth histogram over *expected* frequencies — the synopsis induced
/// by probabilistic quantiles (paper section 1.1: "the techniques to find
/// these show that it simplifies to the problem of finding quantiles over
/// weighted data, where the weight of each item is simply its expected
/// frequency" [5, 21]). Bucket boundaries split the expected mass into B
/// near-equal parts; representatives are then chosen optimally per bucket
/// for the requested metric. A structural baseline: boundaries ignore the
/// error objective entirely.
StatusOr<Histogram> BuildEquiDepthHistogram(const ValuePdfInput& input,
                                            const SynopsisOptions& options,
                                            std::size_t num_buckets);
StatusOr<Histogram> BuildEquiDepthHistogram(const TuplePdfInput& input,
                                            const SynopsisOptions& options,
                                            std::size_t num_buckets);

/// Wavelet baselines (section 5.2): B largest coefficients of a sampled
/// world's transform. (The Expectation wavelet baseline coincides with the
/// SSE-optimal probabilistic method by Theorem 7 — transform-of-expectation
/// IS the optimum — which the paper notes and we exploit as a test.)
StatusOr<WaveletSynopsis> BuildSampledWorldWavelet(const ValuePdfInput& input,
                                                   std::size_t num_coefficients,
                                                   Rng& rng);
StatusOr<WaveletSynopsis> BuildSampledWorldWavelet(const TuplePdfInput& input,
                                                   std::size_t num_coefficients,
                                                   Rng& rng);

}  // namespace probsyn

#endif  // PROBSYN_CORE_BASELINES_H_
