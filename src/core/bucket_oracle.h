#ifndef PROBSYN_CORE_BUCKET_ORACLE_H_
#define PROBSYN_CORE_BUCKET_ORACLE_H_

#include <cstddef>
#include <memory>

namespace probsyn {

/// Optimal representative and expected error of one histogram bucket:
/// the pair (bhat*, E_W[BERR([s,e], bhat*)]) of the paper's DP recurrence
/// (equation (2)).
struct BucketCost {
  double representative = 0.0;
  double cost = 0.0;
};

/// Per-metric bucket cost oracle. Most of the paper's technical content
/// (sections 3.1-3.4, 3.6) is exactly "make Cost(s, e) fast"; the DP on top
/// is metric-agnostic.
///
/// Two access patterns:
///  * `Cost(s, e)` — random access; O(1) or O(log |V|) for the cumulative
///    metrics, O(n_b log |V| + n_b log n_b) for max metrics, O(m) for the
///    exact tuple-pdf SSE oracle.
///  * `StartSweep(e)` — the DP's inner loop enumerates buckets [s, e] with
///    fixed right end and s descending from e to 0; sweeps let stateful
///    oracles (exact tuple-pdf SSE) extend the bucket leftward in amortized
///    O(1 + tuples touched) instead of recomputing from scratch.
class BucketCostOracle {
 public:
  virtual ~BucketCostOracle() = default;

  /// Size n of the item domain.
  virtual std::size_t domain_size() const = 0;

  /// Optimal representative and expected error for bucket [s, e],
  /// 0 <= s <= e < n.
  virtual BucketCost Cost(std::size_t s, std::size_t e) const = 0;

  /// Stateful leftward bucket extension with fixed right end `e`: the k-th
  /// call to Extend() returns Cost(e - k + 1, e).
  class Sweep {
   public:
    virtual ~Sweep() = default;
    virtual BucketCost Extend() = 0;
  };

  /// Default implementation delegates each Extend() to Cost(); oracles with
  /// O(1) random access need not override.
  virtual std::unique_ptr<Sweep> StartSweep(std::size_t e) const;
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_BUCKET_ORACLE_H_
