#include "core/oracle_factory.h"

#include "core/abs_oracle.h"
#include "core/max_oracle.h"
#include "core/sse_oracle.h"
#include "core/ssre_oracle.h"
#include "model/induced.h"
#include "util/fault_injection.h"

namespace probsyn {

std::shared_ptr<const PointErrorTables> PointErrorTablesCache::GetOrBuild(
    const ValuePdfInput& input, double sanity_c, ThreadPool* pool) {
  auto it = by_sanity_c_.find(sanity_c);
  if (it != by_sanity_c_.end()) return it->second;
  auto tables = std::make_shared<const PointErrorTables>(input, sanity_c, pool);
  by_sanity_c_.emplace(sanity_c, tables);
  return tables;
}

StatusOr<OracleBundle> MakeBucketOracle(const ValuePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool,
                                        PointErrorTablesCache* tables_cache) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kOraclePreprocess));
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }

  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument(
        "workload size must equal the domain size");
  }

  OracleBundle bundle;
  bundle.combiner =
      IsCumulativeMetric(options.metric) ? DpCombiner::kSum : DpCombiner::kMax;
  switch (options.metric) {
    case ErrorMetric::kSse:
      bundle.oracle = std::make_unique<SseMomentOracle>(
          SseMomentOracle::FromValuePdf(input, options.sse_variant,
                                        options.workload));
      bundle.kernel = DpKernelKind::kSseMoment;
      break;
    case ErrorMetric::kSsre:
      bundle.oracle = std::make_unique<SsreOracle>(input, options.sanity_c,
                                                   options.workload);
      bundle.kernel = DpKernelKind::kSsre;
      break;
    case ErrorMetric::kSae: {
      auto oracle = std::make_unique<AbsCumulativeOracle>(
          input, /*relative=*/false, options.sanity_c, options.workload, pool);
      PROBSYN_RETURN_IF_ERROR(oracle->preprocess_status());
      bundle.oracle = std::move(oracle);
      bundle.kernel = DpKernelKind::kAbsCumulative;
      break;
    }
    case ErrorMetric::kSare: {
      auto oracle = std::make_unique<AbsCumulativeOracle>(
          input, /*relative=*/true, options.sanity_c, options.workload, pool);
      PROBSYN_RETURN_IF_ERROR(oracle->preprocess_status());
      bundle.oracle = std::move(oracle);
      bundle.kernel = DpKernelKind::kAbsCumulative;
      break;
    }
    case ErrorMetric::kMae:
    case ErrorMetric::kMare: {
      std::shared_ptr<const PointErrorTables> tables =
          tables_cache != nullptr
              ? tables_cache->GetOrBuild(input, options.sanity_c, pool)
              : std::make_shared<const PointErrorTables>(
                    input, options.sanity_c, pool);
      PROBSYN_RETURN_IF_ERROR(tables->preprocess_status());
      bundle.tables = tables;
      bundle.oracle = std::make_unique<MaxErrorOracle>(
          tables, /*relative=*/options.metric == ErrorMetric::kMare,
          options.workload);
      bundle.kernel = DpKernelKind::kMaxError;
      break;
    }
  }
  return bundle;
}

StatusOr<OracleBundle> MakeBucketOracle(const TuplePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool,
                                        PointErrorTablesCache* tables_cache) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }

  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument(
        "workload size must equal the domain size");
  }

  if (options.metric == ErrorMetric::kSse) {
    OracleBundle bundle;
    bundle.combiner = DpCombiner::kSum;
    if (options.sse_variant == SseVariant::kWorldMean) {
      bundle.oracle = std::make_unique<SseTupleWorldMeanOracle>(input);
      bundle.kernel = DpKernelKind::kTupleSse;
    } else {
      bundle.oracle = std::make_unique<SseMomentOracle>(
          SseMomentOracle::FromTuplePdf(input, options.sse_variant,
                                        options.workload));
      bundle.kernel = DpKernelKind::kSseMoment;
    }
    return bundle;
  }

  auto induced = InduceValuePdf(input);
  if (!induced.ok()) return induced.status();
  return MakeBucketOracle(induced.value(), options, pool, tables_cache);
}

}  // namespace probsyn
