#include "core/oracle_factory.h"

#include "core/abs_oracle.h"
#include "core/max_oracle.h"
#include "core/sse_oracle.h"
#include "core/ssre_oracle.h"
#include "model/induced.h"

namespace probsyn {

StatusOr<OracleBundle> MakeBucketOracle(const ValuePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }

  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument(
        "workload size must equal the domain size");
  }

  OracleBundle bundle;
  bundle.combiner =
      IsCumulativeMetric(options.metric) ? DpCombiner::kSum : DpCombiner::kMax;
  switch (options.metric) {
    case ErrorMetric::kSse:
      bundle.oracle = std::make_unique<SseMomentOracle>(
          SseMomentOracle::FromValuePdf(input, options.sse_variant,
                                        options.workload));
      break;
    case ErrorMetric::kSsre:
      bundle.oracle = std::make_unique<SsreOracle>(input, options.sanity_c,
                                                   options.workload);
      break;
    case ErrorMetric::kSae:
      bundle.oracle = std::make_unique<AbsCumulativeOracle>(
          input, /*relative=*/false, options.sanity_c, options.workload, pool);
      break;
    case ErrorMetric::kSare:
      bundle.oracle = std::make_unique<AbsCumulativeOracle>(
          input, /*relative=*/true, options.sanity_c, options.workload, pool);
      break;
    case ErrorMetric::kMae:
    case ErrorMetric::kMare: {
      auto tables = std::make_shared<const PointErrorTables>(
          input, options.sanity_c, pool);
      bundle.tables = tables;
      bundle.oracle = std::make_unique<MaxErrorOracle>(
          tables, /*relative=*/options.metric == ErrorMetric::kMare,
          options.workload);
      break;
    }
  }
  return bundle;
}

StatusOr<OracleBundle> MakeBucketOracle(const TuplePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }

  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument(
        "workload size must equal the domain size");
  }

  if (options.metric == ErrorMetric::kSse) {
    OracleBundle bundle;
    bundle.combiner = DpCombiner::kSum;
    if (options.sse_variant == SseVariant::kWorldMean) {
      bundle.oracle = std::make_unique<SseTupleWorldMeanOracle>(input);
    } else {
      bundle.oracle = std::make_unique<SseMomentOracle>(
          SseMomentOracle::FromTuplePdf(input, options.sse_variant,
                                        options.workload));
    }
    return bundle;
  }

  auto induced = InduceValuePdf(input);
  if (!induced.ok()) return induced.status();
  return MakeBucketOracle(induced.value(), options, pool);
}

}  // namespace probsyn
