#ifndef PROBSYN_CORE_POINT_ERROR_H_
#define PROBSYN_CORE_POINT_ERROR_H_

#include <cstddef>
#include <vector>

#include "core/metrics.h"
#include "model/value_pdf.h"
#include "util/envelope.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// Precomputed per-item tables for evaluating expected point errors
/// E_W[err(g_i, v)] for arbitrary estimates v in O(1) / O(log |V|).
///
/// This is the machinery behind three parts of the paper:
///  * the MAE/MARE bucket oracle (section 3.6), which needs per-item error
///    curves f_i(bhat) and their linear pieces;
///  * the expected leaf errors OPTW[i, 0, v] of the wavelet DP
///    (section 4.2);
///  * evaluation of arbitrary synopses under every metric (section 5's
///    quality experiments re-cost baseline synopses under the true
///    distribution).
///
/// For the absolute metrics the curve f_i(v) = sum_j w_ij |v_j - v| is
/// convex piecewise-linear with breakpoints on the global value grid V; on
/// the segment [v_l, v_{l+1}] it equals
///     v * (2 CW_i[l] - TW_i) + (TWV_i - 2 CWV_i[l])
/// where CW/CWV are weight and weight*value prefix sums over grid indices.
/// Squared metrics expand to per-item quadratic forms in v.
class PointErrorTables {
 public:
  /// Builds tables for the given input and sanity constant. All six metrics
  /// are then answerable from the one object. Cost: O(n |V|) time/space.
  /// A non-null `pool` fans the per-item table fills out across workers
  /// (rows are independent given the shared value grid); results are
  /// identical to the sequential build.
  PointErrorTables(const ValuePdfInput& input, double sanity_c,
                   ThreadPool* pool = nullptr);

  std::size_t domain_size() const { return n_; }
  double sanity_c() const { return c_; }

  /// Outcome of the constructor's parallel table fill: non-OK when the
  /// fan-out failed (an injected thread-pool fault) — the tables are then
  /// garbage and must not be served. Checked by MakeBucketOracle.
  const Status& preprocess_status() const { return preprocess_status_; }

  /// The global sorted value grid V (always contains 0).
  const std::vector<double>& grid() const { return grid_; }

  /// E_W[err(g_i, v)] for the point error underlying `metric`.
  /// (For kSse this is E[(g_i - v)^2]; for kMae it is E[|g_i - v|]; etc. —
  /// max vs sum aggregation is the caller's concern.)
  double ExpectedPointError(ErrorMetric metric, std::size_t i, double v) const;

  /// E[(g_i - v)^2].
  double SquaredError(std::size_t i, double v) const;
  /// E[(g_i - v)^2 / max(c, g_i)^2].
  double SquaredRelativeError(std::size_t i, double v) const;
  /// E[|g_i - v|].
  double AbsoluteError(std::size_t i, double v) const;
  /// E[|g_i - v| / max(c, g_i)].
  double AbsoluteRelativeError(std::size_t i, double v) const;

  /// Index l of the grid segment containing v: largest l with grid[l] <= v,
  /// or size_t(-1) if v < grid[0]. O(log |V|).
  std::size_t SegmentOf(double v) const;

  /// The linear piece of f_i on segment [grid[l], grid[l+1]] for the
  /// absolute error (relative == true applies the 1/max(c, g) weight).
  /// l == size_t(-1) (left of the grid) and l == |V|-1 (right of it) give
  /// the outer rays. Used by the max-error oracle's envelope step.
  Line AbsoluteErrorLine(std::size_t i, std::size_t l, bool relative) const;

 private:
  double AbsErrorImpl(std::size_t i, double v, bool relative) const;

  std::size_t n_ = 0;
  double c_ = 1.0;
  std::vector<double> grid_;
  Status preprocess_status_;

  // Quadratic-form coefficients: E[(g-v)^2] = m2_[i] - 2 v m1_[i] + v^2,
  // and the weighted variant with w2(g) = 1/max(c,g)^2:
  // E[w2(g)(g-v)^2] = x_[i] - 2 v y_[i] + v^2 z_[i].
  std::vector<double> m1_, m2_;
  std::vector<double> x_, y_, z_;

  // Per-item grid-indexed prefix tables, row-major [i * K + l].
  // cw_abs_[i][l]  = sum_{j<=l} Pr[g_i = v_j]
  // cwv_abs_[i][l] = sum_{j<=l} Pr[g_i = v_j] * v_j
  // cw_rel_/cwv_rel_: same with the 1/max(c, v_j) weight folded in.
  std::size_t grid_size_ = 0;
  std::vector<double> cw_abs_, cwv_abs_, cw_rel_, cwv_rel_;
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_POINT_ERROR_H_
