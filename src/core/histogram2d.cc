#include "core/histogram2d.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <sstream>

#include "core/dp_kernels.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

StatusOr<ProbGrid2D> ProbGrid2D::Create(std::size_t width, std::size_t height,
                                        std::vector<ValuePdf> cells) {
  if (width == 0 || height == 0) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  if (cells.size() != width * height) {
    return Status::InvalidArgument("cell count does not match dimensions");
  }
  for (const ValuePdf& pdf : cells) {
    if (pdf.empty()) return Status::InvalidArgument("empty cell pdf");
  }
  ProbGrid2D grid;
  grid.width_ = width;
  grid.height_ = height;
  grid.cells_ = std::move(cells);
  return grid;
}

std::vector<double> ProbGrid2D::ExpectedFrequencies() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].Mean();
  return out;
}

Status Histogram2D::Validate(std::size_t width, std::size_t height) const {
  if (buckets_.empty()) {
    return Status::InvalidArgument("empty 2-D histogram");
  }
  // Exact tiling: total area matches and no two rectangles overlap.
  std::size_t area = 0;
  for (const Bucket2D& b : buckets_) {
    if (b.rect.x1 < b.rect.x0 || b.rect.y1 < b.rect.y0 ||
        b.rect.x1 >= width || b.rect.y1 >= height) {
      return Status::InvalidArgument("bucket rectangle out of bounds");
    }
    area += b.rect.area();
  }
  if (area != width * height) {
    return Status::InvalidArgument("buckets do not cover the grid exactly");
  }
  for (std::size_t a = 0; a < buckets_.size(); ++a) {
    for (std::size_t b = a + 1; b < buckets_.size(); ++b) {
      const Rect& r = buckets_[a].rect;
      const Rect& s = buckets_[b].rect;
      bool disjoint = r.x1 < s.x0 || s.x1 < r.x0 || r.y1 < s.y0 || s.y1 < r.y0;
      if (!disjoint) return Status::InvalidArgument("buckets overlap");
    }
  }
  return Status::OK();
}

double Histogram2D::Estimate(std::size_t x, std::size_t y) const {
  for (const Bucket2D& b : buckets_) {
    if (x >= b.rect.x0 && x <= b.rect.x1 && y >= b.rect.y0 && y <= b.rect.y1) {
      return b.representative;
    }
  }
  PROBSYN_CHECK(false);  // Validate() guarantees coverage.
  return 0.0;
}

double Histogram2D::EstimateRangeSum(const Rect& query) const {
  double total = 0.0;
  for (const Bucket2D& b : buckets_) {
    std::size_t x0 = std::max(query.x0, b.rect.x0);
    std::size_t x1 = std::min(query.x1, b.rect.x1);
    std::size_t y0 = std::max(query.y0, b.rect.y0);
    std::size_t y1 = std::min(query.y1, b.rect.y1);
    if (x0 <= x1 && y0 <= y1) {
      total += static_cast<double>((x1 - x0 + 1) * (y1 - y0 + 1)) *
               b.representative;
    }
  }
  return total;
}

std::string Histogram2D::ToString() const {
  std::ostringstream os;
  for (const Bucket2D& b : buckets_) {
    os << "[" << b.rect.x0 << ".." << b.rect.x1 << "] x [" << b.rect.y0
       << ".." << b.rect.y1 << "] -> " << b.representative << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------

StatusOr<RectCostOracle2D> RectCostOracle2D::Create(
    const ProbGrid2D& grid, const SynopsisOptions& options) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  if (options.metric != ErrorMetric::kSse &&
      options.metric != ErrorMetric::kSsre) {
    return Status::Unimplemented(
        "2-D rectangle oracle supports the quadratic metrics (SSE fixed-"
        "representative, SSRE)");
  }
  if (options.metric == ErrorMetric::kSse &&
      options.sse_variant != SseVariant::kFixedRepresentative) {
    return Status::Unimplemented(
        "2-D SSE uses fixed representatives; the world-mean variant is 1-D "
        "only");
  }
  if (options.HasWorkload()) {
    return Status::Unimplemented("2-D workload weights not supported yet");
  }

  RectCostOracle2D oracle;
  oracle.width_ = grid.width();
  oracle.height_ = grid.height();
  const std::size_t w = grid.width(), h = grid.height();
  oracle.x_.assign((w + 1) * (h + 1), 0.0);
  oracle.y_.assign((w + 1) * (h + 1), 0.0);
  oracle.z_.assign((w + 1) * (h + 1), 0.0);

  auto at = [w](std::vector<double>& t, std::size_t x, std::size_t y)
      -> double& { return t[y * (w + 1) + x]; };

  for (std::size_t y = 1; y <= h; ++y) {
    for (std::size_t x = 1; x <= w; ++x) {
      const ValuePdf& pdf = grid.cell(x - 1, y - 1);
      double cx, cy, cz;
      if (options.metric == ErrorMetric::kSse) {
        cx = pdf.SecondMoment();
        cy = pdf.Mean();
        cz = 1.0;
      } else {
        KahanSum sx, sy, sz;
        for (const ValueProb& e : pdf.entries()) {
          double w2 = SquaredRelativeWeight(e.value, options.sanity_c);
          sx.Add(e.probability * w2 * e.value * e.value);
          sy.Add(e.probability * w2 * e.value);
          sz.Add(e.probability * w2);
        }
        cx = sx.value();
        cy = sy.value();
        cz = sz.value();
      }
      at(oracle.x_, x, y) = cx + at(oracle.x_, x - 1, y) +
                            at(oracle.x_, x, y - 1) -
                            at(oracle.x_, x - 1, y - 1);
      at(oracle.y_, x, y) = cy + at(oracle.y_, x - 1, y) +
                            at(oracle.y_, x, y - 1) -
                            at(oracle.y_, x - 1, y - 1);
      at(oracle.z_, x, y) = cz + at(oracle.z_, x - 1, y) +
                            at(oracle.z_, x, y - 1) -
                            at(oracle.z_, x - 1, y - 1);
    }
  }
  return oracle;
}

double RectCostOracle2D::RectSum(const std::vector<double>& table,
                                 const Rect& r) const {
  auto at = [this, &table](std::size_t x, std::size_t y) {
    return table[y * (width_ + 1) + x];
  };
  return at(r.x1 + 1, r.y1 + 1) - at(r.x0, r.y1 + 1) - at(r.x1 + 1, r.y0) +
         at(r.x0, r.y0);
}

RectCostOracle2D::Cost2D RectCostOracle2D::Cost(const Rect& rect) const {
  PROBSYN_DCHECK(rect.x1 < width_ && rect.y1 < height_);
  double x = RectSum(x_, rect);
  double y = RectSum(y_, rect);
  double z = RectSum(z_, rect);
  PROBSYN_DCHECK(z > 0.0);
  return {y / z, ClampTinyNegative(x - y * y / z, 1e-6)};
}

// ---------------------------------------------------------------------------
// Exact guillotine DP.

namespace {

// Dense rectangle index: rectangles are identified by (x0, x1, y0, y1).
struct RectKey {
  std::uint64_t packed;
  RectKey(const Rect& r)  // NOLINT: internal implicit conversion
      : packed((static_cast<std::uint64_t>(r.x0) << 48) |
               (static_cast<std::uint64_t>(r.x1) << 32) |
               (static_cast<std::uint64_t>(r.y0) << 16) |
               static_cast<std::uint64_t>(r.y1)) {}
  bool operator<(const RectKey& other) const { return packed < other.packed; }
};

class GuillotineSolver {
 public:
  GuillotineSolver(const RectCostOracle2D& oracle, std::size_t budget)
      : oracle_(oracle), budget_(budget) {}

  double Best(const Rect& rect, std::size_t b) {
    b = std::min(b, rect.area());
    PROBSYN_CHECK(b >= 1);
    auto key = std::make_pair(RectKey(rect), b);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second.cost;

    Entry entry;
    entry.cost = oracle_.Cost(rect).cost;  // b == 1 or no split helps
    entry.split = Entry::kLeaf;
    if (b >= 2) {
      // Vertical splits: [x0..cut] | [cut+1..x1].
      for (std::size_t cut = rect.x0; cut < rect.x1; ++cut) {
        Rect left{rect.x0, rect.y0, cut, rect.y1};
        Rect right{cut + 1, rect.y0, rect.x1, rect.y1};
        TrySplits(entry, left, right, b, /*vertical=*/true, cut);
      }
      // Horizontal splits.
      for (std::size_t cut = rect.y0; cut < rect.y1; ++cut) {
        Rect top{rect.x0, rect.y0, rect.x1, cut};
        Rect bottom{rect.x0, cut + 1, rect.x1, rect.y1};
        TrySplits(entry, top, bottom, b, /*vertical=*/false, cut);
      }
    }
    memo_[key] = entry;
    return entry.cost;
  }

  void Extract(const Rect& rect, std::size_t b,
               std::vector<Bucket2D>& out) {
    b = std::min(b, rect.area());
    auto it = memo_.find(std::make_pair(RectKey(rect), b));
    PROBSYN_CHECK(it != memo_.end());
    const Entry& entry = it->second;
    if (entry.split == Entry::kLeaf) {
      out.push_back({rect, oracle_.Cost(rect).representative});
      return;
    }
    Rect a, c;
    if (entry.vertical) {
      a = {rect.x0, rect.y0, entry.cut, rect.y1};
      c = {entry.cut + 1, rect.y0, rect.x1, rect.y1};
    } else {
      a = {rect.x0, rect.y0, rect.x1, entry.cut};
      c = {rect.x0, entry.cut + 1, rect.x1, rect.y1};
    }
    Extract(a, entry.left_budget, out);
    Extract(c, b - entry.left_budget, out);
  }

 private:
  struct Entry {
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
    double cost = 0.0;
    std::size_t split = kLeaf;  // kLeaf or marker that a split was taken
    bool vertical = false;
    std::size_t cut = 0;
    std::size_t left_budget = 1;
  };

  void TrySplits(Entry& entry, const Rect& a, const Rect& c, std::size_t b,
                 bool vertical, std::size_t cut) {
    std::size_t max_left = std::min(b - 1, a.area());
    for (std::size_t bl = 1; bl <= max_left; ++bl) {
      if (b - bl > c.area()) continue;  // right side cannot absorb budget
      double cost = Best(a, bl) + Best(c, b - bl);
      if (cost < entry.cost) {
        entry.cost = cost;
        entry.split = 1;
        entry.vertical = vertical;
        entry.cut = cut;
        entry.left_budget = bl;
      }
    }
  }

  const RectCostOracle2D& oracle_;
  std::size_t budget_;
  std::map<std::pair<RectKey, std::size_t>, Entry> memo_;
};

// kMinScan guillotine solver: memoizes each rectangle's WHOLE optimal-cost
// vector over budgets 1..min(B, area) — one map probe per rectangle — and
// runs every cut's inner budget-allocation minimization
//
//   min over bl of best_left[bl] + best_right[b - bl]
//
// through the runtime-dispatched SIMD min-reduction (SimdMinPlusReverse),
// then resolves the reference tie-break: cuts in the reference order
// (vertical ascending, then horizontal), strict < against the running best,
// and the FIRST bl attaining a cut's minimum. FP min is exact in any
// order, so costs AND traceback (cut, orientation, left budget) are
// bit-identical to GuillotineSolver — the parity contract
// histogram2d_test.cc pins down.
class MinScanGuillotineSolver {
 public:
  MinScanGuillotineSolver(const RectCostOracle2D& oracle, std::size_t budget)
      : oracle_(oracle), budget_(budget) {}

  double Best(const Rect& rect, std::size_t b) {
    const RectEntry& entry = Solve(rect);
    return entry.cost[std::min(b, entry.cost.size() - 1)];
  }

  void Extract(const Rect& rect, std::size_t b, std::vector<Bucket2D>& out) {
    auto it = memo_.find(RectKey(rect));
    PROBSYN_CHECK(it != memo_.end());
    const RectEntry& entry = it->second;
    b = std::min(b, entry.cost.size() - 1);
    const Choice& choice = entry.choice[b];
    if (choice.is_leaf) {
      out.push_back({rect, oracle_.Cost(rect).representative});
      return;
    }
    Rect a, c;
    const std::size_t cut = choice.cut;
    if (choice.vertical) {
      a = {rect.x0, rect.y0, cut, rect.y1};
      c = {cut + 1, rect.y0, rect.x1, rect.y1};
    } else {
      a = {rect.x0, rect.y0, rect.x1, cut};
      c = {rect.x0, cut + 1, rect.x1, rect.y1};
    }
    Extract(a, choice.left_budget, out);
    Extract(c, b - choice.left_budget, out);
  }

 private:
  struct Choice {
    bool is_leaf = true;
    bool vertical = false;
    std::uint16_t cut = 0;
    std::uint16_t left_budget = 1;
  };
  struct RectEntry {
    std::vector<double> cost;    // cost[b], b = 1..min(B, area); [0] unused
    std::vector<Choice> choice;  // parallel to cost
  };

  const RectEntry& Solve(const Rect& rect) {
    const RectKey key(rect);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const std::size_t bmax = std::min(budget_, rect.area());
    RectEntry entry;
    const double leaf_cost = oracle_.Cost(rect).cost;
    entry.cost.assign(bmax + 1, leaf_cost);
    entry.choice.assign(bmax + 1, Choice{});

    if (bmax >= 2) {
      // Child entries per cut, resolved once (std::map references are
      // stable across the recursive inserts).
      struct CutChildren {
        const RectEntry* left;
        const RectEntry* right;
      };
      std::vector<CutChildren> vertical, horizontal;
      vertical.reserve(rect.x1 - rect.x0);
      for (std::size_t cut = rect.x0; cut < rect.x1; ++cut) {
        vertical.push_back({&Solve({rect.x0, rect.y0, cut, rect.y1}),
                            &Solve({cut + 1, rect.y0, rect.x1, rect.y1})});
      }
      horizontal.reserve(rect.y1 - rect.y0);
      for (std::size_t cut = rect.y0; cut < rect.y1; ++cut) {
        horizontal.push_back({&Solve({rect.x0, rect.y0, rect.x1, cut}),
                              &Solve({rect.x0, cut + 1, rect.x1, rect.y1})});
      }

      for (std::size_t b = 2; b <= bmax; ++b) {
        double best = entry.cost[b];  // leaf cost; splits win only strictly
        Choice best_choice{};
        auto try_cut = [&](const RectEntry& left, const RectEntry& right,
                           bool is_vertical, std::size_t cut) {
          const std::size_t left_max = left.cost.size() - 1;
          const std::size_t right_max = right.cost.size() - 1;
          const std::size_t lo = b > right_max ? b - right_max : 1;
          const std::size_t hi = std::min(b - 1, left_max);
          if (lo > hi) return;
          const double m = SimdMinPlusReverse(
              left.cost.data() + lo, right.cost.data() + (b - lo),
              hi - lo + 1);
          if (m < best) {
            best = m;
            for (std::size_t bl = lo; bl <= hi; ++bl) {
              if (left.cost[bl] + right.cost[b - bl] == m) {
                best_choice = {false, is_vertical,
                               static_cast<std::uint16_t>(cut),
                               static_cast<std::uint16_t>(bl)};
                break;
              }
            }
          }
        };
        for (std::size_t i = 0; i < vertical.size(); ++i) {
          try_cut(*vertical[i].left, *vertical[i].right, true, rect.x0 + i);
        }
        for (std::size_t i = 0; i < horizontal.size(); ++i) {
          try_cut(*horizontal[i].left, *horizontal[i].right, false,
                  rect.y0 + i);
        }
        entry.cost[b] = best;
        entry.choice[b] = best_choice;
      }
    }
    auto [pos, inserted] = memo_.emplace(key, std::move(entry));
    PROBSYN_CHECK(inserted);
    return pos->second;
  }

  const RectCostOracle2D& oracle_;
  std::size_t budget_;
  std::map<RectKey, RectEntry> memo_;
};

}  // namespace

const char* Guillotine2DKernelName(Guillotine2DKernel kind) {
  switch (kind) {
    case Guillotine2DKernel::kAuto: return "auto";
    case Guillotine2DKernel::kReference: return "reference";
    case Guillotine2DKernel::kMinScan: return "min-scan";
  }
  return "?";
}

StatusOr<Histogram2DResult> BuildOptimalGuillotineHistogram2D(
    const ProbGrid2D& grid, const SynopsisOptions& options,
    std::size_t num_buckets, std::size_t max_cells,
    Guillotine2DKernel kernel) {
  if (num_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  if (grid.num_cells() > max_cells) {
    return Status::OutOfRange(
        "grid too large for the exact guillotine DP; use "
        "BuildGreedyHistogram2D");
  }
  auto oracle = RectCostOracle2D::Create(grid, options);
  if (!oracle.ok()) return oracle.status();

  const Guillotine2DKernel resolved = kernel == Guillotine2DKernel::kAuto
                                          ? Guillotine2DKernel::kMinScan
                                          : kernel;
  Rect whole{0, 0, grid.width() - 1, grid.height() - 1};
  double cost;
  std::vector<Bucket2D> buckets;
  if (resolved == Guillotine2DKernel::kReference) {
    GuillotineSolver solver(*oracle, num_buckets);
    cost = solver.Best(whole, num_buckets);
    solver.Extract(whole, std::min(num_buckets, whole.area()), buckets);
  } else {
    MinScanGuillotineSolver solver(*oracle, num_buckets);
    cost = solver.Best(whole, num_buckets);
    solver.Extract(whole, std::min(num_buckets, whole.area()), buckets);
  }
  Histogram2D histogram(std::move(buckets));
  PROBSYN_RETURN_IF_ERROR(histogram.Validate(grid.width(), grid.height()));
  return Histogram2DResult{std::move(histogram), cost, resolved};
}

// ---------------------------------------------------------------------------
// Greedy MHIST-style splitting.

StatusOr<Histogram2DResult> BuildGreedyHistogram2D(
    const ProbGrid2D& grid, const SynopsisOptions& options,
    std::size_t num_buckets) {
  if (num_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  auto oracle = RectCostOracle2D::Create(grid, options);
  if (!oracle.ok()) return oracle.status();

  struct Candidate {
    Rect rect;
    double cost = 0.0;       // cost as one bucket
    double best_after = 0.0; // cost of the best single split
    bool vertical = false;
    std::size_t cut = 0;
    bool splittable = false;

    double gain() const { return splittable ? cost - best_after : -1.0; }
  };

  auto analyze = [&](const Rect& rect) {
    Candidate c;
    c.rect = rect;
    c.cost = oracle->Cost(rect).cost;
    c.best_after = std::numeric_limits<double>::infinity();
    for (std::size_t cut = rect.x0; cut < rect.x1; ++cut) {
      double split = oracle->Cost({rect.x0, rect.y0, cut, rect.y1}).cost +
                     oracle->Cost({cut + 1, rect.y0, rect.x1, rect.y1}).cost;
      if (split < c.best_after) {
        c.best_after = split;
        c.vertical = true;
        c.cut = cut;
        c.splittable = true;
      }
    }
    for (std::size_t cut = rect.y0; cut < rect.y1; ++cut) {
      double split = oracle->Cost({rect.x0, rect.y0, rect.x1, cut}).cost +
                     oracle->Cost({rect.x0, cut + 1, rect.x1, rect.y1}).cost;
      if (split < c.best_after) {
        c.best_after = split;
        c.vertical = false;
        c.cut = cut;
        c.splittable = true;
      }
    }
    return c;
  };

  auto by_gain = [](const Candidate& a, const Candidate& b) {
    return a.gain() < b.gain();
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(by_gain)>
      queue(by_gain);
  queue.push(analyze({0, 0, grid.width() - 1, grid.height() - 1}));

  std::vector<Candidate> finished;
  while (finished.size() + queue.size() < num_buckets && !queue.empty()) {
    Candidate top = queue.top();
    queue.pop();
    if (!top.splittable || top.gain() <= 0.0) {
      finished.push_back(top);
      continue;
    }
    Rect a, b;
    if (top.vertical) {
      a = {top.rect.x0, top.rect.y0, top.cut, top.rect.y1};
      b = {top.cut + 1, top.rect.y0, top.rect.x1, top.rect.y1};
    } else {
      a = {top.rect.x0, top.rect.y0, top.rect.x1, top.cut};
      b = {top.rect.x0, top.cut + 1, top.rect.x1, top.rect.y1};
    }
    queue.push(analyze(a));
    queue.push(analyze(b));
  }

  std::vector<Bucket2D> buckets;
  double total = 0.0;
  auto emit = [&](const Candidate& c) {
    buckets.push_back({c.rect, oracle->Cost(c.rect).representative});
    total += c.cost;
  };
  for (const Candidate& c : finished) emit(c);
  while (!queue.empty()) {
    emit(queue.top());
    queue.pop();
  }

  Histogram2D histogram(std::move(buckets));
  PROBSYN_RETURN_IF_ERROR(histogram.Validate(grid.width(), grid.height()));
  return Histogram2DResult{std::move(histogram), total};
}

StatusOr<double> EvaluateHistogram2D(const ProbGrid2D& grid,
                                     const Histogram2D& histogram,
                                     const SynopsisOptions& options) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(histogram.Validate(grid.width(), grid.height()));
  KahanSum sum;
  for (const Bucket2D& b : histogram.buckets()) {
    for (std::size_t y = b.rect.y0; y <= b.rect.y1; ++y) {
      for (std::size_t x = b.rect.x0; x <= b.rect.x1; ++x) {
        const ValuePdf& pdf = grid.cell(x, y);
        if (options.metric == ErrorMetric::kSse) {
          sum.Add(pdf.ExpectedSquaredDeviation(b.representative));
        } else if (options.metric == ErrorMetric::kSsre) {
          sum.Add(pdf.ExpectedSquaredRelDeviation(b.representative,
                                                  options.sanity_c));
        } else {
          return Status::Unimplemented("2-D evaluation: quadratic metrics only");
        }
      }
    }
  }
  return sum.value();
}

}  // namespace probsyn
