#include "core/bucket_oracle.h"

#include "util/logging.h"

namespace probsyn {

namespace {

class DefaultSweep : public BucketCostOracle::Sweep {
 public:
  DefaultSweep(const BucketCostOracle& oracle, std::size_t e)
      : oracle_(oracle), end_(e), next_start_(e) {}

  BucketCost Extend() override {
    PROBSYN_CHECK(next_start_ != static_cast<std::size_t>(-1));
    BucketCost cost = oracle_.Cost(next_start_, end_);
    --next_start_;  // Wraps to -1 after the [0, e] bucket; checked above.
    return cost;
  }

 private:
  const BucketCostOracle& oracle_;
  std::size_t end_;
  std::size_t next_start_;
};

}  // namespace

std::unique_ptr<BucketCostOracle::Sweep> BucketCostOracle::StartSweep(
    std::size_t e) const {
  return std::make_unique<DefaultSweep>(*this, e);
}

}  // namespace probsyn
