#ifndef PROBSYN_CORE_WAVELET_DP_H_
#define PROBSYN_CORE_WAVELET_DP_H_

#include <cstddef>

#include "core/dp_kernels.h"
#include "core/metrics.h"
#include "core/wavelet.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// Output of the restricted coefficient-tree DP.
struct WaveletDpResult {
  WaveletSynopsis synopsis;
  /// Optimal expected error (cumulative: E_W[sum err]; maximum:
  /// max_i E_W[err]) achieved by the synopsis.
  double cost = 0.0;
  /// The budget-split implementation the solve ran with (never kAuto);
  /// see WaveletSplitKernel in core/dp_kernels.h.
  WaveletSplitKernel kernel = WaveletSplitKernel::kReference;
  /// Memo layout of the solve: the iterative bottom-up solver indexes its
  /// per-state tables directly in a flat arena by (level, node,
  /// ancestor-decision mask) — recorded for observability (the engine puts
  /// it in solver strings as `memo=`).
  const char* memo = "dense-arena";
  /// Parallel lanes the arena fill ran with (calling thread included; 1 =
  /// sequential) — recorded for observability (the engine puts it in
  /// solver strings as `par=`). The fill is bit-identical at every lane
  /// count.
  std::size_t lanes = 1;
};

/// Optimal *restricted* B-term wavelet synopsis for non-SSE error metrics
/// over probabilistic data (paper section 4.2, Theorem 8).
///
/// "Restricted" (paper section 2.2): retained coefficients take their fixed
/// standard values — here the expected normalized Haar coefficients mu_ci,
/// as required for expected-error minimization. The DP is the classic
/// coefficient-tree recurrence OPTW[j, b, v] where v is the partial
/// reconstruction contributed by kept proper ancestors; v ranges over the
/// subsets of j's O(log n) ancestors, giving O(n^2 B^2)-ish work and O(n^2 B)
/// state — fine for the moderate n this synopsis targets. Expected leaf
/// errors E_W[err(g_i, v)] come from PointErrorTables in O(log |V|).
///
/// Supports all six metrics (the paper needs non-SSE; kSse is accepted too
/// and must agree with the greedy builder — a property we test). The domain
/// is zero-padded to a power of two with deterministic zero-frequency items.
///
/// Fails with InvalidArgument on empty input and with OutOfRange when the
/// padded domain exceeds `max_domain` (the O(n^2 B) state table would not
/// fit; callers opting into big inputs can raise the cap).
///
/// The solve is an iterative bottom-up pass over the coefficient tree:
/// states are enumerated leaf-level first in a topological order computed
/// once, and every state's `best` table is a span into one flat arena
/// (WaveletDpArena, core/dp_kernels.h) indexed directly by (level, node,
/// ancestor-decision mask). No hash memo, no per-state vectors, no
/// steady-state allocation: pass `workspace` (e.g. a DpWorkspacePool
/// lease, as the engine does) to reuse the arena across solves — repeat
/// solves then allocate nothing for DP state, which
/// WaveletDpArena::grow_events lets callers assert.
///
/// The child budget-split minimizations run through the kernel layer
/// (MinBudgetSplit, core/dp_kernels.h); `kernel` selects the
/// implementation, kAuto resolving to the fast kBudgetSplit, whose kSum
/// reductions ride the runtime-dispatched SIMD primitives. All kernels and
/// SIMD paths are bit-identical in cost and kept coefficients
/// (parity-tested).
///
/// A non-null `pool` fans each level's state sweep out across the workers
/// (util/thread_pool.h): states within a level are independent, chunks
/// write disjoint arena spans, and every state runs the identical scalar
/// computation, so the parallel fill is bit-identical to the sequential
/// one at every thread count and SIMD path (pinned by
/// tests/wavelet_parallel_test.cc). The lane count lands in
/// WaveletDpResult::lanes.
///
/// A non-null `context` is polled cooperatively (once per tree level plus
/// every 64 states inside a level sweep); a deadline or cancellation stops
/// the solve with kDeadlineExceeded/kCancelled, leaving the arena reusable.
/// When `max_workspace_bytes` is non-zero and the O(n^2 B) arena would
/// exceed it, the solve fails up front with kResourceExhausted instead of
/// attempting the allocation.
StatusOr<WaveletDpResult> BuildRestrictedWaveletDp(
    const ValuePdfInput& input, std::size_t num_coefficients,
    const SynopsisOptions& options, std::size_t max_domain = 2048,
    WaveletSplitKernel kernel = WaveletSplitKernel::kAuto,
    DpWorkspace* workspace = nullptr, ThreadPool* pool = nullptr,
    const ExecContext* context = nullptr, std::size_t max_workspace_bytes = 0);

}  // namespace probsyn

#endif  // PROBSYN_CORE_WAVELET_DP_H_
