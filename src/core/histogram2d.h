#ifndef PROBSYN_CORE_HISTOGRAM2D_H_
#define PROBSYN_CORE_HISTOGRAM2D_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// Two-dimensional probabilistic data: a width x height grid of independent
/// frequency pdfs (the value-pdf model lifted to 2-D) — the
/// multi-dimensional generalization the paper's concluding remarks call
/// for. Cells are addressed (x, y) with x the fast dimension.
class ProbGrid2D {
 public:
  ProbGrid2D() = default;

  /// `cells` is row-major: cells[y * width + x]. Fails when sizes disagree
  /// or any pdf is empty.
  static StatusOr<ProbGrid2D> Create(std::size_t width, std::size_t height,
                                     std::vector<ValuePdf> cells);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t num_cells() const { return width_ * height_; }
  const ValuePdf& cell(std::size_t x, std::size_t y) const {
    return cells_[y * width_ + x];
  }
  const std::vector<ValuePdf>& cells() const { return cells_; }

  /// Per-cell expected frequencies, row-major.
  std::vector<double> ExpectedFrequencies() const;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<ValuePdf> cells_;
};

/// An axis-aligned inclusive cell rectangle [x0, x1] x [y0, y1].
struct Rect {
  std::size_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  std::size_t width() const { return x1 - x0 + 1; }
  std::size_t height() const { return y1 - y0 + 1; }
  std::size_t area() const { return width() * height(); }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// One 2-D bucket: a rectangle approximated by a single representative.
struct Bucket2D {
  Rect rect;
  double representative = 0.0;

  friend bool operator==(const Bucket2D&, const Bucket2D&) = default;
};

/// A 2-D histogram synopsis: rectangles tiling the grid exactly.
class Histogram2D {
 public:
  Histogram2D() = default;
  explicit Histogram2D(std::vector<Bucket2D> buckets)
      : buckets_(std::move(buckets)) {}

  const std::vector<Bucket2D>& buckets() const { return buckets_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Checks that the buckets tile a width x height grid exactly.
  Status Validate(std::size_t width, std::size_t height) const;

  /// ghat at cell (x, y). O(B).
  double Estimate(std::size_t x, std::size_t y) const;

  /// Estimate of the expected count inside a query rectangle. O(B).
  double EstimateRangeSum(const Rect& query) const;

  std::string ToString() const;

 private:
  std::vector<Bucket2D> buckets_;
};

/// O(1) expected-error cost of any rectangle bucket, from 2-D prefix sums
/// of per-cell moments — the 2-D analogue of the paper's precomputed-array
/// technique. Supports the quadratic metrics (SSE with fixed
/// representative, SSRE); the absolute/maximum metrics would need 2-D
/// value-indexed banks and are left to future work, like the paper's own
/// 1-D-first treatment.
class RectCostOracle2D {
 public:
  /// metric must be kSse (kFixedRepresentative semantics) or kSsre.
  static StatusOr<RectCostOracle2D> Create(const ProbGrid2D& grid,
                                           const SynopsisOptions& options);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  struct Cost2D {
    double representative = 0.0;
    double cost = 0.0;
  };
  /// Optimal representative and expected error for the rectangle. O(1).
  Cost2D Cost(const Rect& rect) const;

 private:
  RectCostOracle2D() = default;

  double RectSum(const std::vector<double>& table, const Rect& rect) const;

  std::size_t width_ = 0;
  std::size_t height_ = 0;
  // (width+1) x (height+1) inclusive 2-D prefix tables of the quadratic
  // form: cost = X - Y^2 / Z with per-cell
  //   SSE:  x = E[g^2],      y = E[g],        z = 1
  //   SSRE: x = E[w2 g^2],   y = E[w2 g],     z = E[w2]
  std::vector<double> x_, y_, z_;
};

/// Which inner budget-allocation implementation the exact guillotine DP
/// runs. kMinScan memoizes each rectangle's WHOLE optimal-cost vector over
/// budgets (one map probe per rectangle instead of one per (rectangle,
/// budget)) and minimizes every cut's budget split with the chunked SIMD
/// min-reduction of the kernel layer (SimdMinPlusReverse,
/// core/dp_kernels.h) — the same recipe as the wavelet budget splits. Both
/// kernels are bit-identical in cost and returned buckets (costs,
/// traceback cut/budget ties), parity-gated in histogram2d_test.cc.
enum class Guillotine2DKernel {
  kAuto,       ///< Resolve to kMinScan.
  kReference,  ///< Per-(rectangle, budget) recursive scalar scan (baseline).
  kMinScan,    ///< Budget-vector memo + SIMD budget-split min-reduction.
};

/// Stable display name ("reference", "min-scan", ...).
const char* Guillotine2DKernelName(Guillotine2DKernel kind);

/// Exact optimal *guillotine* 2-D histogram: the best recursive
/// binary-split partition into at most `num_buckets` rectangles, by DP over
/// (rectangle, budget) states. The classic 2-D counterpart of equation (2);
/// exponential-free but heavy — O(W^2 H^2) rectangles x budget x splits —
/// so intended for small grids (the `max_cells` guard, default 4096 state
/// cells, rejects larger inputs).
struct Histogram2DResult {
  Histogram2D histogram;
  double cost = 0.0;
  /// The guillotine DP's inner-loop implementation (never kAuto). The
  /// greedy builder has no DP and leaves the default.
  Guillotine2DKernel kernel = Guillotine2DKernel::kReference;
};
StatusOr<Histogram2DResult> BuildOptimalGuillotineHistogram2D(
    const ProbGrid2D& grid, const SynopsisOptions& options,
    std::size_t num_buckets, std::size_t max_cells = 4096,
    Guillotine2DKernel kernel = Guillotine2DKernel::kAuto);

/// Scalable MHIST-style greedy 2-D histogram: repeatedly split the bucket
/// whose best single split yields the largest error reduction. No
/// optimality guarantee (2-D arbitrary-tiling optimization is NP-hard),
/// but near-guillotine quality in practice; O(B (W + H) log B + B W H)
/// after O(WH) preprocessing.
StatusOr<Histogram2DResult> BuildGreedyHistogram2D(
    const ProbGrid2D& grid, const SynopsisOptions& options,
    std::size_t num_buckets);

/// Exact expected error of a 2-D histogram under the oracle's metric.
StatusOr<double> EvaluateHistogram2D(const ProbGrid2D& grid,
                                     const Histogram2D& histogram,
                                     const SynopsisOptions& options);

}  // namespace probsyn

#endif  // PROBSYN_CORE_HISTOGRAM2D_H_
