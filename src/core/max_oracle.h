#ifndef PROBSYN_CORE_MAX_ORACLE_H_
#define PROBSYN_CORE_MAX_ORACLE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/bucket_oracle.h"
#include "core/point_error.h"

namespace probsyn {

/// Maximum-Absolute-Error / Maximum-Absolute-Relative-Error bucket oracle
/// (paper section 3.6): the bucket cost is
///
///     max_{s<=i<=e} E_W[w(g_i) |g_i - bhat|]
///
/// — the upper envelope of n_b convex piecewise-linear per-item curves.
/// The envelope is convex, so a ternary search over the value grid brackets
/// the optimal bhat between two adjacent grid values, and within each
/// candidate segment every curve is a line: the exact optimum is read off
/// the minimized upper envelope of lines (paper's min-of-max-of-lines step,
/// for which it cites the weighted-histogram machinery of [15]).
///
/// Cost per bucket: O(n_b log |V|) for the bracketing probes plus
/// O(n_b log n_b) for the two envelope minimizations — matching the
/// O(n_b log(n_b |V|)) of the paper's Theorem 6 analysis.
class MaxErrorOracle final : public BucketCostOracle {
 public:
  /// relative == false -> MAE; true -> MARE (c comes from `tables`).
  /// `weights` are optional per-item workload weights (empty = uniform):
  /// the objective becomes max_i phi_i E[err], still an upper envelope of
  /// convex piecewise-linear curves (each scaled by phi_i).
  MaxErrorOracle(std::shared_ptr<const PointErrorTables> tables, bool relative,
                 std::vector<double> weights = {});

  std::size_t domain_size() const override;
  BucketCost Cost(std::size_t s, std::size_t e) const override;

  /// max_{i in [s,e]} expected point error at representative v; exposed for
  /// tests (brute-force cross-checks of the searched optimum).
  double EnvelopeAt(std::size_t s, std::size_t e, double v) const;

 private:
  double WeightOf(std::size_t i) const {
    return weights_.empty() ? 1.0 : weights_[i];
  }

  std::shared_ptr<const PointErrorTables> tables_;
  bool relative_;
  std::vector<double> weights_;
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_MAX_ORACLE_H_
