#include "core/wavelet.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/haar.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

WaveletSynopsis::WaveletSynopsis(std::size_t domain_size,
                                 std::size_t transform_size,
                                 std::vector<WaveletCoefficient> coefficients)
    : domain_size_(domain_size),
      transform_size_(transform_size),
      coefficients_(std::move(coefficients)) {
  std::sort(coefficients_.begin(), coefficients_.end(),
            [](const WaveletCoefficient& a, const WaveletCoefficient& b) {
              return a.index < b.index;
            });
}

Status WaveletSynopsis::Validate() const {
  if (!IsPowerOfTwo(transform_size_)) {
    return Status::InvalidArgument("transform size must be a power of two");
  }
  if (domain_size_ > transform_size_) {
    return Status::InvalidArgument("domain exceeds transform size");
  }
  for (std::size_t k = 0; k < coefficients_.size(); ++k) {
    if (coefficients_[k].index >= transform_size_) {
      return Status::OutOfRange("coefficient index outside transform");
    }
    if (k > 0 && coefficients_[k].index <= coefficients_[k - 1].index) {
      return Status::InvalidArgument("duplicate coefficient index");
    }
  }
  return Status::OK();
}

double WaveletSynopsis::Estimate(std::size_t i) const {
  PROBSYN_CHECK(i < domain_size_);
  std::vector<std::size_t> indices;
  std::vector<double> values;
  indices.reserve(coefficients_.size());
  values.reserve(coefficients_.size());
  for (const WaveletCoefficient& c : coefficients_) {
    indices.push_back(c.index);
    values.push_back(c.value);
  }
  return ReconstructPointSparse(indices, values, i, transform_size_);
}

std::vector<double> WaveletSynopsis::ToFrequencyVector() const {
  std::vector<double> dense(transform_size_, 0.0);
  for (const WaveletCoefficient& c : coefficients_) dense[c.index] = c.value;
  std::vector<double> data = HaarInverse(dense);
  data.resize(domain_size_);
  return data;
}

double WaveletSynopsis::EstimateRangeSum(std::size_t a, std::size_t b) const {
  PROBSYN_CHECK(a <= b && b < domain_size_);
  std::vector<double> freq = ToFrequencyVector();
  KahanSum sum;
  for (std::size_t i = a; i <= b; ++i) sum.Add(freq[i]);
  return sum.value();
}

std::string WaveletSynopsis::ToString() const {
  std::ostringstream os;
  os << "wavelet synopsis: n=" << domain_size_
     << " transform=" << transform_size_ << " B=" << coefficients_.size()
     << "\n";
  for (const WaveletCoefficient& c : coefficients_) {
    os << "  c[" << c.index << "] = " << c.value << "\n";
  }
  return os.str();
}

std::vector<double> ExpectedHaarCoefficients(std::span<const double> expected) {
  std::vector<double> padded = PadToPowerOfTwo(expected);
  return HaarTransform(padded);
}

WaveletSynopsis BuildSseWaveletFromFrequencies(std::span<const double> freqs,
                                               std::size_t num_coefficients) {
  std::vector<double> coeffs = ExpectedHaarCoefficients(freqs);
  const std::size_t nt = coeffs.size();

  // Rank coefficients by |value| descending, index ascending on ties.
  std::vector<std::size_t> order(nt);
  std::iota(order.begin(), order.end(), 0);
  std::size_t keep = std::min(num_coefficients, nt);
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      double fa = std::fabs(coeffs[a]);
                      double fb = std::fabs(coeffs[b]);
                      if (fa != fb) return fa > fb;
                      return a < b;
                    });

  std::vector<WaveletCoefficient> retained;
  retained.reserve(keep);
  for (std::size_t k = 0; k < keep; ++k) {
    retained.push_back({order[k], coeffs[order[k]]});
  }
  return WaveletSynopsis(freqs.size(), nt, std::move(retained));
}

StatusOr<WaveletSynopsis> BuildSseOptimalWavelet(const ValuePdfInput& input,
                                                 std::size_t num_coefficients) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  return BuildSseWaveletFromFrequencies(input.ExpectedFrequencies(),
                                        num_coefficients);
}

StatusOr<WaveletSynopsis> BuildSseOptimalWavelet(const TuplePdfInput& input,
                                                 std::size_t num_coefficients) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  return BuildSseWaveletFromFrequencies(input.ExpectedFrequencies(),
                                        num_coefficients);
}

}  // namespace probsyn
