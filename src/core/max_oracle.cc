#include "core/max_oracle.h"

#include <algorithm>
#include <vector>

#include "util/envelope.h"
#include "util/logging.h"
#include "util/search.h"

namespace probsyn {

MaxErrorOracle::MaxErrorOracle(std::shared_ptr<const PointErrorTables> tables,
                               bool relative, std::vector<double> weights)
    : tables_(std::move(tables)),
      relative_(relative),
      weights_(std::move(weights)) {
  PROBSYN_CHECK(tables_ != nullptr);
  PROBSYN_CHECK(weights_.empty() || weights_.size() == tables_->domain_size());
}

std::size_t MaxErrorOracle::domain_size() const {
  return tables_->domain_size();
}

double MaxErrorOracle::EnvelopeAt(std::size_t s, std::size_t e,
                                  double v) const {
  double worst = 0.0;
  for (std::size_t i = s; i <= e; ++i) {
    double err = relative_ ? tables_->AbsoluteRelativeError(i, v)
                           : tables_->AbsoluteError(i, v);
    worst = std::max(worst, WeightOf(i) * err);
  }
  return worst;
}

BucketCost MaxErrorOracle::Cost(std::size_t s, std::size_t e) const {
  const std::vector<double>& grid = tables_->grid();
  PROBSYN_DCHECK(s <= e && e < domain_size());

  // Bracket the optimum on the grid (the envelope is convex in bhat).
  std::size_t l_star = TernarySearchMinIndex(
      0, grid.size() - 1,
      [&](std::size_t l) { return EnvelopeAt(s, e, grid[l]); });

  // The continuous optimum lies in one of the two segments adjacent to
  // l_star. Within a segment every per-item curve is a line; minimize the
  // upper envelope of lines exactly. (Outside [v_0, v_{K-1}] every curve
  // only grows, so the outer rays never need searching.)
  std::vector<Line> lines;
  lines.reserve(e - s + 1);
  BucketCost best{grid[l_star], EnvelopeAt(s, e, grid[l_star])};
  auto consider_segment = [&](std::size_t l) {
    if (l + 1 >= grid.size()) return;
    lines.clear();
    for (std::size_t i = s; i <= e; ++i) {
      Line line = tables_->AbsoluteErrorLine(i, l, relative_);
      double phi = WeightOf(i);
      lines.push_back(Line{line.slope * phi, line.intercept * phi});
    }
    EnvelopeMin m = MinimizeUpperEnvelope(lines, grid[l], grid[l + 1]);
    if (m.value < best.cost) best = {m.x, m.value};
  };
  if (l_star > 0) consider_segment(l_star - 1);
  consider_segment(l_star);

  best.cost = std::max(0.0, best.cost);
  return best;
}

}  // namespace probsyn
