#include "core/evaluate.h"

#include <algorithm>

#include "core/haar.h"
#include "core/sse_oracle.h"
#include "model/induced.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

double EvaluateHistogram(const PointErrorTables& tables, const Histogram& h,
                         ErrorMetric metric, std::span<const double> weights) {
  PROBSYN_CHECK(h.domain_size() == tables.domain_size());
  PROBSYN_CHECK(weights.empty() || weights.size() == tables.domain_size());
  bool cumulative = IsCumulativeMetric(metric);
  KahanSum sum;
  double worst = 0.0;
  for (const HistogramBucket& b : h.buckets()) {
    for (std::size_t i = b.start; i <= b.end; ++i) {
      double err = tables.ExpectedPointError(metric, i, b.representative);
      if (!weights.empty()) err *= weights[i];
      if (cumulative) {
        sum.Add(err);
      } else {
        worst = std::max(worst, err);
      }
    }
  }
  return cumulative ? sum.value() : worst;
}

StatusOr<double> EvaluateHistogram(const ValuePdfInput& input,
                                   const Histogram& h,
                                   const SynopsisOptions& options) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  PROBSYN_RETURN_IF_ERROR(h.Validate(input.domain_size()));
  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument("workload size must equal the domain size");
  }
  PointErrorTables tables(input, options.sanity_c);
  return EvaluateHistogram(tables, h, options.metric, options.workload);
}

StatusOr<double> EvaluateHistogram(const TuplePdfInput& input,
                                   const Histogram& h,
                                   const SynopsisOptions& options) {
  auto induced = InduceValuePdf(input);
  if (!induced.ok()) return induced.status();
  return EvaluateHistogram(induced.value(), h, options);
}

namespace {

// Shared boundary-only evaluation against a world-mean SSE oracle.
double SumBucketCosts(const BucketCostOracle& oracle, const Histogram& h) {
  KahanSum sum;
  for (const HistogramBucket& b : h.buckets()) {
    sum.Add(oracle.Cost(b.start, b.end).cost);
  }
  return sum.value();
}

}  // namespace

StatusOr<double> EvaluateHistogramWorldMeanSse(const ValuePdfInput& input,
                                               const Histogram& h) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  PROBSYN_RETURN_IF_ERROR(h.Validate(input.domain_size()));
  SseMomentOracle oracle =
      SseMomentOracle::FromValuePdf(input, SseVariant::kWorldMean);
  return SumBucketCosts(oracle, h);
}

StatusOr<double> EvaluateHistogramWorldMeanSse(const TuplePdfInput& input,
                                               const Histogram& h) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  PROBSYN_RETURN_IF_ERROR(h.Validate(input.domain_size()));
  SseTupleWorldMeanOracle oracle(input);
  return SumBucketCosts(oracle, h);
}

namespace {

StatusOr<double> EvaluateWaveletOnValuePdf(const ValuePdfInput& input,
                                           const WaveletSynopsis& synopsis,
                                           const SynopsisOptions& options) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  PROBSYN_RETURN_IF_ERROR(synopsis.Validate());
  if (synopsis.domain_size() != input.domain_size()) {
    return Status::InvalidArgument("synopsis/input domain mismatch");
  }
  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument("workload size must equal the domain size");
  }

  // Pad with deterministic zeros so the evaluation domain matches the
  // transform domain the synopsis was selected over.
  std::vector<ValuePdf> items = input.items();
  items.reserve(synopsis.transform_size());
  while (items.size() < synopsis.transform_size()) {
    items.push_back(ValuePdf::PointMass(0.0));
  }
  ValuePdfInput padded(std::move(items));
  PointErrorTables tables(padded, options.sanity_c);

  std::vector<double> dense(synopsis.transform_size(), 0.0);
  for (const WaveletCoefficient& c : synopsis.coefficients()) {
    dense[c.index] = c.value;
  }
  std::vector<double> ghat = HaarInverse(dense);

  bool cumulative = IsCumulativeMetric(options.metric);
  KahanSum sum;
  double worst = 0.0;
  for (std::size_t i = 0; i < padded.domain_size(); ++i) {
    double err = tables.ExpectedPointError(options.metric, i, ghat[i]);
    if (options.HasWorkload()) {
      // Padded items beyond the caller's domain carry zero workload.
      err *= i < options.workload.size() ? options.workload[i] : 0.0;
    }
    if (cumulative) {
      sum.Add(err);
    } else {
      worst = std::max(worst, err);
    }
  }
  return cumulative ? sum.value() : worst;
}

}  // namespace

StatusOr<double> EvaluateWavelet(const ValuePdfInput& input,
                                 const WaveletSynopsis& synopsis,
                                 const SynopsisOptions& options) {
  return EvaluateWaveletOnValuePdf(input, synopsis, options);
}

StatusOr<double> EvaluateWavelet(const TuplePdfInput& input,
                                 const WaveletSynopsis& synopsis,
                                 const SynopsisOptions& options) {
  auto induced = InduceValuePdf(input);
  if (!induced.ok()) return induced.status();
  return EvaluateWaveletOnValuePdf(induced.value(), synopsis, options);
}

double WaveletUnretainedEnergyPercent(std::span<const double> mu,
                                      const WaveletSynopsis& synopsis) {
  KahanSum total;
  for (double m : mu) total.Add(m * m);
  KahanSum retained;
  for (const WaveletCoefficient& c : synopsis.coefficients()) {
    PROBSYN_CHECK(c.index < mu.size());
    retained.Add(mu[c.index] * mu[c.index]);
  }
  if (total.value() <= 0.0) return 0.0;
  double missed = total.value() - retained.value();
  return std::clamp(100.0 * missed / total.value(), 0.0, 100.0);
}

double ErrorScale::Percent(double cost) const {
  double range = max_cost - min_cost;
  if (!(range > 0.0)) return 0.0;
  return std::clamp(100.0 * (cost - min_cost) / range, 0.0, 100.0);
}

ErrorScale ComputeErrorScale(const BucketCostOracle& oracle,
                             bool cumulative_metric) {
  const std::size_t n = oracle.domain_size();
  PROBSYN_CHECK(n > 0);
  ErrorScale scale;
  scale.max_cost = oracle.Cost(0, n - 1).cost;
  if (cumulative_metric) {
    KahanSum sum;
    for (std::size_t i = 0; i < n; ++i) sum.Add(oracle.Cost(i, i).cost);
    scale.min_cost = sum.value();
  } else {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, oracle.Cost(i, i).cost);
    }
    scale.min_cost = worst;
  }
  return scale;
}

}  // namespace probsyn
