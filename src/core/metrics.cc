#include "core/metrics.h"

#include <cmath>

#include "util/math.h"

namespace probsyn {

bool IsCumulativeMetric(ErrorMetric metric) {
  switch (metric) {
    case ErrorMetric::kSse:
    case ErrorMetric::kSsre:
    case ErrorMetric::kSae:
    case ErrorMetric::kSare:
      return true;
    case ErrorMetric::kMae:
    case ErrorMetric::kMare:
      return false;
  }
  return true;
}

bool IsRelativeMetric(ErrorMetric metric) {
  switch (metric) {
    case ErrorMetric::kSsre:
    case ErrorMetric::kSare:
    case ErrorMetric::kMare:
      return true;
    case ErrorMetric::kSse:
    case ErrorMetric::kSae:
    case ErrorMetric::kMae:
      return false;
  }
  return false;
}

const char* ErrorMetricName(ErrorMetric metric) {
  switch (metric) {
    case ErrorMetric::kSse:
      return "SSE";
    case ErrorMetric::kSsre:
      return "SSRE";
    case ErrorMetric::kSae:
      return "SAE";
    case ErrorMetric::kSare:
      return "SARE";
    case ErrorMetric::kMae:
      return "MAE";
    case ErrorMetric::kMare:
      return "MARE";
  }
  return "?";
}

StatusOr<ErrorMetric> ParseErrorMetric(const std::string& name) {
  if (name == "SSE") return ErrorMetric::kSse;
  if (name == "SSRE") return ErrorMetric::kSsre;
  if (name == "SAE") return ErrorMetric::kSae;
  if (name == "SARE") return ErrorMetric::kSare;
  if (name == "MAE") return ErrorMetric::kMae;
  if (name == "MARE") return ErrorMetric::kMare;
  return Status::InvalidArgument("unknown error metric: " + name);
}

double PointError(ErrorMetric metric, double g, double ghat, double c) {
  double diff = g - ghat;
  switch (metric) {
    case ErrorMetric::kSse:
      return diff * diff;
    case ErrorMetric::kSsre:
      return diff * diff * SquaredRelativeWeight(g, c);
    case ErrorMetric::kSae:
      return std::fabs(diff);
    case ErrorMetric::kSare:
      return std::fabs(diff) * RelativeWeight(g, c);
    case ErrorMetric::kMae:
      return std::fabs(diff);
    case ErrorMetric::kMare:
      return std::fabs(diff) * RelativeWeight(g, c);
  }
  return 0.0;
}

Status SynopsisOptions::Validate() const {
  if (IsRelativeMetric(metric) && !(sanity_c > 0.0)) {
    return Status::InvalidArgument(
        "relative-error metrics require a positive sanity constant c");
  }
  if (HasWorkload()) {
    double total = 0.0;
    for (double w : workload) {
      if (!(w >= 0.0)) {
        return Status::InvalidArgument("workload weights must be nonnegative");
      }
      total += w;
    }
    if (!(total > 0.0)) {
      return Status::InvalidArgument(
          "workload must have at least one positive weight");
    }
    if (metric == ErrorMetric::kSse && sse_variant == SseVariant::kWorldMean) {
      return Status::Unimplemented(
          "workload weights are not defined for the world-mean SSE variant; "
          "use SseVariant::kFixedRepresentative");
    }
  }
  return Status::OK();
}

}  // namespace probsyn
