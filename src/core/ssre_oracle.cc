#include "core/ssre_oracle.h"

#include <vector>

#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

namespace {

struct XyzColumns {
  std::vector<double> x, y, z;
};

XyzColumns ComputeColumns(const ValuePdfInput& input, double c,
                          std::span<const double> weights) {
  XyzColumns cols;
  std::size_t n = input.domain_size();
  cols.x.resize(n);
  cols.y.resize(n);
  cols.z.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double phi = weights.empty() ? 1.0 : weights[i];
    KahanSum x, y, z;
    for (const ValueProb& e : input.item(i).entries()) {
      double w = phi * SquaredRelativeWeight(e.value, c);
      x.Add(e.probability * w * e.value * e.value);
      y.Add(e.probability * w * e.value);
      z.Add(e.probability * w);
    }
    cols.x[i] = x.value();
    cols.y[i] = y.value();
    cols.z[i] = z.value();
  }
  return cols;
}

}  // namespace

SsreOracle::SsreOracle(const ValuePdfInput& input, double sanity_c,
                       std::span<const double> weights)
    : n_(input.domain_size()) {
  XyzColumns cols = ComputeColumns(input, sanity_c, weights);
  x_ = PrefixSums(cols.x);
  y_ = PrefixSums(cols.y);
  z_ = PrefixSums(cols.z);
}

BucketCost SsreOracle::Cost(std::size_t s, std::size_t e) const {
  PROBSYN_DCHECK(s <= e && e < n_);
  double x = x_.RangeSum(s, e);
  double y = y_.RangeSum(s, e);
  double z = z_.RangeSum(s, e);
  if (z <= 0.0) {
    // Every item in the bucket has zero workload weight.
    return {0.0, 0.0};
  }
  double representative = y / z;
  double cost = x - y * y / z;
  return {representative, ClampTinyNegative(cost, 1e-6)};
}

}  // namespace probsyn
