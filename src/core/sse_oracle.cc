#include "core/sse_oracle.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

namespace {

std::vector<double> ScaleBy(std::vector<double> values,
                            const std::vector<double>& weights) {
  if (weights.empty()) return values;
  PROBSYN_CHECK(weights.size() == values.size());
  for (std::size_t i = 0; i < values.size(); ++i) values[i] *= weights[i];
  return values;
}

}  // namespace

SseMomentOracle::SseMomentOracle(std::vector<double> means,
                                 std::vector<double> second_moments,
                                 std::vector<double> variances,
                                 SseVariant variant,
                                 std::vector<double> weights)
    : n_(means.size()),
      variant_(variant),
      weighted_(!weights.empty()),
      mean_(ScaleBy(means, weights)),
      second_(ScaleBy(std::move(second_moments), weights)),
      variance_(variances),
      weight_(weighted_ ? weights : std::vector<double>(n_, 1.0)),
      raw_mean_(means) {
  PROBSYN_CHECK(variances.size() == n_);
  PROBSYN_CHECK(!(weighted_ && variant_ == SseVariant::kWorldMean));
}

SseMomentOracle SseMomentOracle::FromValuePdf(const ValuePdfInput& input,
                                              SseVariant variant,
                                              std::vector<double> weights) {
  return SseMomentOracle(input.ExpectedFrequencies(),
                         input.FrequencySecondMoments(),
                         input.FrequencyVariances(), variant,
                         std::move(weights));
}

SseMomentOracle SseMomentOracle::FromTuplePdf(const TuplePdfInput& input,
                                              SseVariant variant,
                                              std::vector<double> weights) {
  return SseMomentOracle(input.ExpectedFrequencies(),
                         input.FrequencySecondMoments(),
                         input.FrequencyVariances(), variant,
                         std::move(weights));
}

BucketCost SseMomentOracle::Cost(std::size_t s, std::size_t e) const {
  PROBSYN_DCHECK(s <= e && e < n_);
  double sum_weight = weight_.RangeSum(s, e);
  double sum_mean = mean_.RangeSum(s, e);      // sum phi E[g]
  double sum_second = second_.RangeSum(s, e);  // sum phi E[g^2]

  if (sum_weight <= 0.0) {
    // Workload ignores every item in the bucket: any representative works;
    // report the unweighted mean for sane reconstructions.
    double nb = static_cast<double>(e - s + 1);
    return {raw_mean_.RangeSum(s, e) / nb, 0.0};
  }

  double representative = sum_mean / sum_weight;
  double expected_square_of_sum = sum_mean * sum_mean;
  if (variant_ == SseVariant::kWorldMean) {
    expected_square_of_sum += variance_.RangeSum(s, e);
  }
  double cost = sum_second - expected_square_of_sum / sum_weight;
  return {representative, ClampTinyNegative(cost, 1e-6)};
}

// ---------------------------------------------------------------------------

SseTupleWorldMeanOracle::SseTupleWorldMeanOracle(const TuplePdfInput& input)
    : n_(input.domain_size()),
      mean_(input.ExpectedFrequencies()),
      second_(input.FrequencySecondMoments()),
      postings_(input.domain_size()),
      num_tuples_(input.num_tuples()),
      tuples_(input.tuples()) {
  for (std::size_t t = 0; t < tuples_.size(); ++t) {
    for (const TupleAlternative& a : tuples_[t].alternatives()) {
      postings_[a.item].push_back({static_cast<std::uint32_t>(t), a.probability});
    }
  }
}

BucketCost SseTupleWorldMeanOracle::Cost(std::size_t s, std::size_t e) const {
  PROBSYN_DCHECK(s <= e && e < n_);
  double nb = static_cast<double>(e - s + 1);
  double sum_mean = mean_.RangeSum(s, e);
  double sum_second = second_.RangeSum(s, e);

  // E[(sum g)^2] = (sum_t q_t)^2 + sum_t q_t (1 - q_t); sum_t q_t == the
  // expected bucket weight sum_mean.
  double sum_q2 = 0.0;
  for (const ProbTuple& t : tuples_) {
    double q = t.ProbItemInRange(s, e);
    sum_q2 += q * q;
  }
  double expected_square_of_sum = sum_mean * sum_mean + (sum_mean - sum_q2);
  double cost = sum_second - expected_square_of_sum / nb;
  return {sum_mean / nb, ClampTinyNegative(cost, 1e-6)};
}

SseTupleWorldMeanOracle::FlatSweep::FlatSweep(
    const SseTupleWorldMeanOracle& oracle, std::size_t e)
    : oracle_(oracle),
      end_(e),
      next_start_(e),
      tuple_q_(oracle.num_tuples_, 0.0) {}

BucketCost SseTupleWorldMeanOracle::FlatSweep::Extend() {
  PROBSYN_CHECK(next_start_ != static_cast<std::size_t>(-1));
  std::size_t s = next_start_;
  --next_start_;
  // Absorb item s into the bucket: every tuple with an alternative at s
  // has its in-range probability q_t increased by that alternative's
  // probability; maintain sum_t q_t^2 under those increments.
  for (const Posting& p : oracle_.postings_[s]) {
    double q_old = tuple_q_[p.tuple];
    sum_q2_ += p.probability * (2.0 * q_old + p.probability);
    tuple_q_[p.tuple] = q_old + p.probability;
  }
  double nb = static_cast<double>(end_ - s + 1);
  double sum_mean = oracle_.mean_.RangeSum(s, end_);
  double sum_second = oracle_.second_.RangeSum(s, end_);
  double expected_square_of_sum =
      sum_mean * sum_mean + (sum_mean - sum_q2_);
  double cost = sum_second - expected_square_of_sum / nb;
  return {sum_mean / nb, ClampTinyNegative(cost, 1e-6)};
}

class SseTupleWorldMeanOracle::SweepImpl : public BucketCostOracle::Sweep {
 public:
  SweepImpl(const SseTupleWorldMeanOracle& oracle, std::size_t e)
      : sweep_(oracle, e) {}

  BucketCost Extend() override { return sweep_.Extend(); }

 private:
  FlatSweep sweep_;
};

std::unique_ptr<BucketCostOracle::Sweep> SseTupleWorldMeanOracle::StartSweep(
    std::size_t e) const {
  return std::make_unique<SweepImpl>(*this, e);
}

}  // namespace probsyn
