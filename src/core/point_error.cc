#include "core/point_error.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"
#include "util/thread_pool.h"

namespace probsyn {

PointErrorTables::PointErrorTables(const ValuePdfInput& input, double sanity_c,
                                   ThreadPool* pool)
    : n_(input.domain_size()), c_(sanity_c), grid_(input.ValueGrid()) {
  grid_size_ = grid_.size();
  m1_.resize(n_);
  m2_.resize(n_);
  x_.resize(n_);
  y_.resize(n_);
  z_.resize(n_);
  cw_abs_.assign(n_ * grid_size_, 0.0);
  cwv_abs_.assign(n_ * grid_size_, 0.0);
  cw_rel_.assign(n_ * grid_size_, 0.0);
  cwv_rel_.assign(n_ * grid_size_, 0.0);

  // Every item fills disjoint table rows against the shared read-only
  // grid, so the O(n |V|) preprocessing is a clean parallel-for.
  auto fill_items = [&](std::size_t item_begin, std::size_t item_end) {
  for (std::size_t i = item_begin; i < item_end; ++i) {
    const ValuePdf& pdf = input.item(i);
    m1_[i] = pdf.Mean();
    m2_[i] = pdf.SecondMoment();
    KahanSum x, y, z;
    for (const ValueProb& e : pdf.entries()) {
      double w2 = SquaredRelativeWeight(e.value, c_);
      x.Add(e.probability * w2 * e.value * e.value);
      y.Add(e.probability * w2 * e.value);
      z.Add(e.probability * w2);
    }
    x_[i] = x.value();
    y_[i] = y.value();
    z_[i] = z.value();

    // Fill the grid-indexed cumulative weight tables. The item's support is
    // a subset of the grid; walk both in lockstep.
    double* cw_abs = &cw_abs_[i * grid_size_];
    double* cwv_abs = &cwv_abs_[i * grid_size_];
    double* cw_rel = &cw_rel_[i * grid_size_];
    double* cwv_rel = &cwv_rel_[i * grid_size_];
    std::size_t entry = 0;
    double acc_w = 0.0, acc_wv = 0.0, acc_rw = 0.0, acc_rwv = 0.0;
    for (std::size_t l = 0; l < grid_size_; ++l) {
      if (entry < pdf.size() && pdf.entries()[entry].value == grid_[l]) {
        const ValueProb& e = pdf.entries()[entry];
        double rw = RelativeWeight(e.value, c_);
        acc_w += e.probability;
        acc_wv += e.probability * e.value;
        acc_rw += e.probability * rw;
        acc_rwv += e.probability * rw * e.value;
        ++entry;
      }
      cw_abs[l] = acc_w;
      cwv_abs[l] = acc_wv;
      cw_rel[l] = acc_rw;
      cwv_rel[l] = acc_rwv;
    }
    PROBSYN_CHECK(entry == pdf.size());
  }
  };
  if (pool != nullptr) {
    preprocess_status_ = pool->ParallelFor(0, n_, fill_items);
  } else {
    fill_items(0, n_);
  }
}

std::size_t PointErrorTables::SegmentOf(double v) const {
  // Largest l with grid_[l] <= v.
  auto it = std::upper_bound(grid_.begin(), grid_.end(), v);
  if (it == grid_.begin()) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - grid_.begin()) - 1;
}

double PointErrorTables::SquaredError(std::size_t i, double v) const {
  return ClampTinyNegative(m2_[i] - 2.0 * v * m1_[i] + v * v);
}

double PointErrorTables::SquaredRelativeError(std::size_t i, double v) const {
  return ClampTinyNegative(x_[i] - 2.0 * v * y_[i] + v * v * z_[i]);
}

double PointErrorTables::AbsErrorImpl(std::size_t i, double v,
                                      bool relative) const {
  std::size_t l = SegmentOf(v);
  Line line = AbsoluteErrorLine(i, l, relative);
  return std::max(0.0, line.At(v));
}

double PointErrorTables::AbsoluteError(std::size_t i, double v) const {
  return AbsErrorImpl(i, v, /*relative=*/false);
}

double PointErrorTables::AbsoluteRelativeError(std::size_t i, double v) const {
  return AbsErrorImpl(i, v, /*relative=*/true);
}

Line PointErrorTables::AbsoluteErrorLine(std::size_t i, std::size_t l,
                                         bool relative) const {
  const double* cw = relative ? &cw_rel_[i * grid_size_] : &cw_abs_[i * grid_size_];
  const double* cwv =
      relative ? &cwv_rel_[i * grid_size_] : &cwv_abs_[i * grid_size_];
  double tw = cw[grid_size_ - 1];
  double twv = cwv[grid_size_ - 1];
  if (l == static_cast<std::size_t>(-1)) {
    // Left of the whole grid: f_i(v) = sum w (v_j - v) = twv - v * tw.
    return Line{-tw, twv};
  }
  PROBSYN_DCHECK(l < grid_size_);
  // f_i(v) = v (2 CW[l] - TW) + (TWV - 2 CWV[l]) for v in
  // [grid[l], grid[l+1]] (or beyond the last grid point when l = K-1).
  return Line{2.0 * cw[l] - tw, twv - 2.0 * cwv[l]};
}

double PointErrorTables::ExpectedPointError(ErrorMetric metric, std::size_t i,
                                            double v) const {
  switch (metric) {
    case ErrorMetric::kSse:
      return SquaredError(i, v);
    case ErrorMetric::kSsre:
      return SquaredRelativeError(i, v);
    case ErrorMetric::kSae:
    case ErrorMetric::kMae:
      return AbsoluteError(i, v);
    case ErrorMetric::kSare:
    case ErrorMetric::kMare:
      return AbsoluteRelativeError(i, v);
  }
  return 0.0;
}

}  // namespace probsyn
