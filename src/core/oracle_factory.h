#ifndef PROBSYN_CORE_ORACLE_FACTORY_H_
#define PROBSYN_CORE_ORACLE_FACTORY_H_

#include <map>
#include <memory>

#include "core/bucket_oracle.h"
#include "core/histogram_dp.h"
#include "core/metrics.h"
#include "core/point_error.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// A bucket oracle plus everything it needs to stay alive, and the DP
/// combiner matching the metric.
struct OracleBundle {
  std::unique_ptr<BucketCostOracle> oracle;
  /// Shared point-error tables, populated when the metric needs them
  /// (MAE/MARE) — also handy for evaluation; may be null otherwise.
  std::shared_ptr<const PointErrorTables> tables;
  DpCombiner combiner = DpCombiner::kSum;
  /// The specialized exact-DP kernel matching the oracle's concrete type
  /// (core/dp_kernels.h). Known here at plan time, so solvers skip the
  /// dynamic_cast chain of SelectDpKernel.
  DpKernelKind kernel = DpKernelKind::kReference;
};

/// Reuses PointErrorTables across oracle constructions that share the same
/// input and sanity constant. The tables depend on nothing else — not the
/// metric's relative flag, the DP combiner, or workload weights — so a
/// batch mixing MAE and MARE requests (or re-costing evaluations) pays the
/// O(n |V|) table fill once instead of per group.
///
/// One cache instance serves ONE logical input; keying is by sanity_c only.
/// Not thread-safe: confine an instance to one batch execution.
class PointErrorTablesCache {
 public:
  std::shared_ptr<const PointErrorTables> GetOrBuild(const ValuePdfInput& input,
                                                     double sanity_c,
                                                     ThreadPool* pool);

 private:
  std::map<double, std::shared_ptr<const PointErrorTables>> by_sanity_c_;
};

/// Builds the bucket-cost oracle for value-pdf input under the given
/// metric (paper sections 3.1-3.4, 3.6 — value-pdf branches). A non-null
/// `pool` parallelizes the O(n |V|) prefix-table preprocessing of the
/// absolute/maximum-error oracles; the produced oracle is identical. A
/// non-null `tables_cache` shares PointErrorTables across calls with the
/// same input (see PointErrorTablesCache).
StatusOr<OracleBundle> MakeBucketOracle(const ValuePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool = nullptr,
                                        PointErrorTablesCache* tables_cache =
                                            nullptr);

/// Builds the bucket-cost oracle for tuple-pdf input. All metrics other
/// than world-mean SSE route through the induced value pdf (exact, since
/// those costs are per-item decomposable — sections 3.2-3.6); world-mean
/// SSE uses the exact joint-distribution oracle.
StatusOr<OracleBundle> MakeBucketOracle(const TuplePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool = nullptr,
                                        PointErrorTablesCache* tables_cache =
                                            nullptr);

}  // namespace probsyn

#endif  // PROBSYN_CORE_ORACLE_FACTORY_H_
