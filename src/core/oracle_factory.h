#ifndef PROBSYN_CORE_ORACLE_FACTORY_H_
#define PROBSYN_CORE_ORACLE_FACTORY_H_

#include <memory>

#include "core/bucket_oracle.h"
#include "core/histogram_dp.h"
#include "core/metrics.h"
#include "core/point_error.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// A bucket oracle plus everything it needs to stay alive, and the DP
/// combiner matching the metric.
struct OracleBundle {
  std::unique_ptr<BucketCostOracle> oracle;
  /// Shared point-error tables, populated when the metric needs them
  /// (MAE/MARE) — also handy for evaluation; may be null otherwise.
  std::shared_ptr<const PointErrorTables> tables;
  DpCombiner combiner = DpCombiner::kSum;
};

/// Builds the bucket-cost oracle for value-pdf input under the given
/// metric (paper sections 3.1-3.4, 3.6 — value-pdf branches). A non-null
/// `pool` parallelizes the O(n |V|) prefix-table preprocessing of the
/// absolute/maximum-error oracles; the produced oracle is identical.
StatusOr<OracleBundle> MakeBucketOracle(const ValuePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool = nullptr);

/// Builds the bucket-cost oracle for tuple-pdf input. All metrics other
/// than world-mean SSE route through the induced value pdf (exact, since
/// those costs are per-item decomposable — sections 3.2-3.6); world-mean
/// SSE uses the exact joint-distribution oracle.
StatusOr<OracleBundle> MakeBucketOracle(const TuplePdfInput& input,
                                        const SynopsisOptions& options,
                                        ThreadPool* pool = nullptr);

}  // namespace probsyn

#endif  // PROBSYN_CORE_ORACLE_FACTORY_H_
