#include "core/wavelet_dp.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/haar.h"
#include "core/point_error.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

namespace {

// Packs a traceback decision: keep flag plus the budgets granted to the
// left and right children.
struct Decision {
  bool keep = false;
  std::uint16_t left_budget = 0;
  std::uint16_t right_budget = 0;
};

struct StateEntry {
  std::vector<double> best;        // best[b], b = 0..B
  std::vector<Decision> decision;  // parallel to best
};

class WaveletDpSolver {
 public:
  WaveletDpSolver(const ValuePdfInput& padded, std::size_t num_coefficients,
                  const SynopsisOptions& options, WaveletSplitKernel kernel)
      : n_(padded.domain_size()),
        budget_(num_coefficients),
        metric_(options.metric),
        cumulative_(IsCumulativeMetric(options.metric)),
        kernel_(kernel == WaveletSplitKernel::kAuto
                    ? WaveletSplitKernel::kBudgetSplit
                    : kernel),
        tables_(padded, options.sanity_c),
        mu_(HaarTransform(PadToPowerOfTwo(padded.ExpectedFrequencies()))) {
    if (options.HasWorkload()) {
      weights_ = options.workload;
      weights_.resize(n_, 0.0);  // padded items carry zero workload
    }
  }

  WaveletSplitKernel kernel() const { return kernel_; }

  WaveletDpResult Solve() {
    std::vector<WaveletCoefficient> kept;
    double best_cost;
    if (n_ == 1) {
      // Only the scaling coefficient exists.
      double with = LeafError(0, mu_[0] * LeafContributionScale(0, 1));
      double without = LeafError(0, 0.0);
      if (budget_ >= 1 && with <= without) {
        kept.push_back({0, mu_[0]});
        best_cost = with;
      } else {
        best_cost = without;
      }
      return {WaveletSynopsis(n_, n_, std::move(kept)), best_cost};
    }

    double scale0 = LeafContributionScale(0, n_);
    // Root choice: keep or drop the scaling coefficient c0.
    double cost_keep = std::numeric_limits<double>::infinity();
    if (budget_ >= 1) {
      cost_keep = NodeState(1, 1, mu_[0] * scale0)
                      .best[std::min(budget_ - 1, SubtreeCap(1))];
    }
    double cost_drop =
        NodeState(1, 0, 0.0).best[std::min(budget_, SubtreeCap(1))];

    bool keep0 = cost_keep < cost_drop;
    best_cost = keep0 ? cost_keep : cost_drop;
    if (keep0) kept.push_back({0, mu_[0]});
    std::size_t b_root =
        std::min(budget_ - (keep0 ? 1 : 0), SubtreeCap(1));
    Trace(1, keep0 ? 1 : 0, keep0 ? mu_[0] * scale0 : 0.0, b_root, kept);

    return {WaveletSynopsis(n_, n_, std::move(kept)), best_cost};
  }

 private:
  // Number of coefficients inside the subtree rooted at detail node j
  // (itself included): its support size minus one... plus one for itself.
  // Support s has s/2 leaves' worth of structure below: subtree size = s-1
  // where s = support width? For node j with support width s there are
  // exactly s - 1 detail coefficients in its subtree (including j).
  std::size_t SubtreeCap(std::size_t j) const {
    SupportRange r = CoefficientSupport(j, n_);
    return (r.hi - r.lo) - 1;
  }

  double LeafError(std::size_t item, double v) const {
    double err = tables_.ExpectedPointError(metric_, item, v);
    return weights_.empty() ? err : weights_[item] * err;
  }

  double Combine(double a, double b) const {
    return cumulative_ ? a + b : std::max(a, b);
  }

  // Memoized optimal-error table for detail node j with ancestor-decision
  // bitmask `mask` (bit history root->here, c0 included) and incoming
  // partial reconstruction v.
  const StateEntry& NodeState(std::size_t j, std::uint64_t mask, double v) {
    std::uint64_t key = (static_cast<std::uint64_t>(j) << 16) | mask;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    StateEntry entry;
    std::size_t cap = std::min(budget_, SubtreeCap(j));
    entry.best.assign(cap + 1, 0.0);
    entry.decision.assign(cap + 1, {});

    double contribution = mu_[j] * LeafContributionScale(j, n_);
    bool leaf_children = (2 * j >= n_);

    for (std::size_t keep = 0; keep <= 1; ++keep) {
      double v_left = keep ? v + contribution : v;
      double v_right = keep ? v - contribution : v;

      if (leaf_children) {
        std::size_t left_item = 2 * j - n_;
        double err = Combine(LeafError(left_item, v_left),
                             LeafError(left_item + 1, v_right));
        // The keep == 0 pass runs first and initializes every budget; the
        // keep == 1 pass (b >= 1) overwrites where strictly better.
        for (std::size_t b = keep; b <= cap; ++b) {
          if (keep == 0 || err < entry.best[b]) {
            entry.best[b] = err;
            entry.decision[b] = {keep == 1, 0, 0};
          }
        }
        continue;
      }

      const std::size_t left = 2 * j, right = 2 * j + 1;
      std::size_t cap_left = std::min(budget_, SubtreeCap(left));
      std::size_t cap_right = std::min(budget_, SubtreeCap(right));
      // Child states (computed before the loops to fix references).
      const StateEntry& ls = NodeState(left, (mask << 1) | keep, v_left);
      // NOTE: ls may dangle after computing rs (rehash); copy the vector.
      std::vector<double> left_best = ls.best;
      const StateEntry& rs = NodeState(right, (mask << 1) | keep, v_right);
      std::vector<double> right_best = rs.best;

      const DpCombiner combiner =
          cumulative_ ? DpCombiner::kSum : DpCombiner::kMax;
      for (std::size_t b = keep; b <= cap; ++b) {
        std::size_t rem = b - keep;
        // The split minimization runs through the kernel layer; the keep
        // passes preserve the reference tie-break (keep == 0 assigns
        // unconditionally, keep == 1 wins only strictly).
        BudgetSplit split =
            MinBudgetSplit(combiner, left_best.data(), std::min(rem, cap_left),
                           right_best.data(), cap_right, rem, kernel_);
        if (keep == 0 || split.value < entry.best[b]) {
          std::size_t br = std::min(rem - split.left_budget, cap_right);
          entry.best[b] = split.value;
          entry.decision[b] = {keep == 1,
                               static_cast<std::uint16_t>(split.left_budget),
                               static_cast<std::uint16_t>(br)};
        }
      }
    }

    auto [pos, inserted] = memo_.emplace(key, std::move(entry));
    PROBSYN_CHECK(inserted);
    return pos->second;
  }

  // Replays the stored decisions, collecting kept coefficients.
  void Trace(std::size_t j, std::uint64_t mask, double v, std::size_t b,
             std::vector<WaveletCoefficient>& out) {
    std::uint64_t key = (static_cast<std::uint64_t>(j) << 16) | mask;
    auto it = memo_.find(key);
    PROBSYN_CHECK(it != memo_.end());
    b = std::min(b, it->second.best.size() - 1);
    Decision d = it->second.decision[b];
    if (d.keep) out.push_back({j, mu_[j]});

    double contribution = mu_[j] * LeafContributionScale(j, n_);
    double v_left = d.keep ? v + contribution : v;
    double v_right = d.keep ? v - contribution : v;
    if (2 * j >= n_) return;  // children are data leaves
    Trace(2 * j, (mask << 1) | (d.keep ? 1 : 0), v_left, d.left_budget, out);
    Trace(2 * j + 1, (mask << 1) | (d.keep ? 1 : 0), v_right, d.right_budget,
          out);
  }

  std::size_t n_;
  std::size_t budget_;
  ErrorMetric metric_;
  bool cumulative_;
  WaveletSplitKernel kernel_;
  PointErrorTables tables_;
  std::vector<double> mu_;
  std::vector<double> weights_;  // empty = uniform
  std::unordered_map<std::uint64_t, StateEntry> memo_;
};

// Pads value-pdf input to a power-of-two domain with deterministic zeros.
ValuePdfInput PadInput(const ValuePdfInput& input) {
  std::size_t n = NextPowerOfTwo(input.domain_size());
  if (n == input.domain_size()) return input;
  std::vector<ValuePdf> items = input.items();
  items.reserve(n);
  while (items.size() < n) items.push_back(ValuePdf::PointMass(0.0));
  return ValuePdfInput(std::move(items));
}

}  // namespace

StatusOr<WaveletDpResult> BuildRestrictedWaveletDp(
    const ValuePdfInput& input, std::size_t num_coefficients,
    const SynopsisOptions& options, std::size_t max_domain,
    WaveletSplitKernel kernel) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument("workload size must equal the domain size");
  }
  std::size_t padded_n = NextPowerOfTwo(input.domain_size());
  if (padded_n > max_domain) {
    return Status::OutOfRange(
        "restricted wavelet DP state table would exceed max_domain; "
        "raise max_domain explicitly for large inputs");
  }

  ValuePdfInput padded = PadInput(input);
  WaveletDpSolver solver(padded, num_coefficients, options, kernel);
  WaveletDpResult result = solver.Solve();
  result.kernel = solver.kernel();
  // Report the synopsis against the caller's (unpadded) domain.
  result.synopsis = WaveletSynopsis(
      input.domain_size(), padded_n,
      std::vector<WaveletCoefficient>(result.synopsis.coefficients()));
  return result;
}

}  // namespace probsyn
