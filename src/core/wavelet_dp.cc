#include "core/wavelet_dp.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/haar.h"
#include "core/point_error.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/thread_pool.h"

namespace probsyn {

namespace {

// Grow-only resize with pool-stats accounting: once a leased arena has
// served a solve of a given shape, later solves of that shape (or smaller)
// perform zero allocations — WaveletDpArena::grow_events stays flat, which
// the zero-allocation tests assert.
template <typename T>
void GrowTo(std::vector<T>& v, std::size_t size, std::size_t& grow_events) {
  if (size > v.capacity()) ++grow_events;
  v.resize(size);
}

// Iterative bottom-up solver for the restricted coefficient-tree DP.
//
// State space: detail node j (1 <= j < n) at tree level d = floor(log2 j),
// crossed with the 2^(d+1) ancestor-decision masks (bit d = the scaling
// coefficient c0, bit s-1 = the decision of ancestor j >> s). Every mask is
// reachable (both keep branches of every ancestor are explored), so the
// space is dense and a state's tables live at a directly computed arena
// offset:
//
//   level_base[d] + ((j - 2^d) * 2^(d+1) + mask) * stride(d)
//
// with stride(d) = min(B, n/2^d - 1) + 1 entries per state (the budget cap
// of a level-d subtree). Levels are filled deepest-first — a topological
// order of the child dependencies computed once from the tree shape — so
// child `best` spans are complete, stable arena memory by the time a parent
// reads them. This replaces the old recursive solver's hash-map memo, whose
// per-state heap vectors and rehash-unstable references (the historical
// "copy the child vector" workaround) dominated the solve.
//
// The partial-reconstruction value v of a state is a pure function of
// (j, mask): the signed contributions of its kept ancestors, accumulated
// root-downward in the exact order the recursive solver added them — only
// leaf-level states consume v, so it is materialized on the fly there.
class WaveletDpSolver {
 public:
  WaveletDpSolver(const ValuePdfInput& padded, std::size_t num_coefficients,
                  const SynopsisOptions& options, WaveletSplitKernel kernel,
                  WaveletDpArena* arena, ThreadPool* pool,
                  const ExecContext* context, std::size_t max_workspace_bytes)
      : n_(padded.domain_size()),
        levels_(n_ > 1 ? FloorLog2(n_) : 0),
        budget_(num_coefficients),
        metric_(options.metric),
        cumulative_(IsCumulativeMetric(options.metric)),
        kernel_(kernel == WaveletSplitKernel::kAuto
                    ? WaveletSplitKernel::kBudgetSplit
                    : kernel),
        arena_(arena),
        pool_(pool != nullptr && pool->num_threads() > 0 ? pool : nullptr),
        ctx_(context),
        max_workspace_bytes_(max_workspace_bytes),
        tables_(padded, options.sanity_c),
        mu_(HaarTransform(PadToPowerOfTwo(padded.ExpectedFrequencies()))) {
    if (options.HasWorkload()) {
      weights_ = options.workload;
      weights_.resize(n_, 0.0);  // padded items carry zero workload
    }
  }

  WaveletSplitKernel kernel() const { return kernel_; }

  std::size_t lanes() const {
    return pool_ == nullptr ? 1 : pool_->num_threads() + 1;
  }

  StatusOr<WaveletDpResult> Solve() {
    std::vector<WaveletCoefficient> kept;
    double best_cost;
    if (n_ == 1) {
      // Only the scaling coefficient exists.
      double with = LeafError(0, mu_[0] * LeafContributionScale(0, 1));
      double without = LeafError(0, 0.0);
      if (budget_ >= 1 && with <= without) {
        kept.push_back({0, mu_[0]});
        best_cost = with;
      } else {
        best_cost = without;
      }
      return WaveletDpResult{WaveletSynopsis(n_, n_, std::move(kept)),
                             best_cost};
    }

    PROBSYN_RETURN_IF_ERROR(LayoutArena());
    FillContributions();
    for (std::size_t d = levels_; d-- > 0;) {
      PROBSYN_RETURN_IF_ERROR(FillLevel(d));
    }
    ++arena_->solves;

    // Root choice: keep or drop the scaling coefficient c0.
    const std::size_t root_cap = n_ - 1;  // subtree cap of node 1
    double cost_keep = std::numeric_limits<double>::infinity();
    if (budget_ >= 1) {
      cost_keep = BestTable(0, 1, 1)[std::min(budget_ - 1, root_cap)];
    }
    double cost_drop = BestTable(0, 1, 0)[std::min(budget_, root_cap)];

    bool keep0 = cost_keep < cost_drop;
    best_cost = keep0 ? cost_keep : cost_drop;
    if (keep0) kept.push_back({0, mu_[0]});
    std::size_t b_root = std::min(budget_ - (keep0 ? 1 : 0), root_cap);
    Trace(1, keep0 ? 1 : 0, b_root, kept);

    return WaveletDpResult{WaveletSynopsis(n_, n_, std::move(kept)),
                           best_cost};
  }

 private:
  // Budget cap of one level-d subtree: the number of detail coefficients it
  // contains, n / 2^d - 1, clamped by the global budget.
  std::size_t CapAt(std::size_t d) const {
    return std::min(budget_, (n_ >> d) - 1);
  }

  std::size_t Stride(std::size_t d) const { return CapAt(d) + 1; }

  std::size_t StateSlot(std::size_t d, std::size_t j,
                        std::uint64_t mask) const {
    return ((j - (std::size_t{1} << d)) << (d + 1)) | mask;
  }

  double* BestTable(std::size_t d, std::size_t j, std::uint64_t mask) const {
    return arena_->best.data() + arena_->level_base[d] +
           StateSlot(d, j, mask) * Stride(d);
  }

  WaveletDpDecision* DecisionTable(std::size_t d, std::size_t j,
                                   std::uint64_t mask) const {
    return arena_->decision.data() + arena_->level_base[d] +
           StateSlot(d, j, mask) * Stride(d);
  }

  Status LayoutArena() {
    GrowTo(arena_->level_base, levels_, arena_->grow_events);
    std::size_t total = 0;
    for (std::size_t d = 0; d < levels_; ++d) {
      arena_->level_base[d] = total;
      // 2^d nodes x 2^(d+1) masks per level, Stride(d) entries per state.
      total += (std::size_t{1} << (2 * d + 1)) * Stride(d);
    }
    // The O(n^2 B) arena is the dominant allocation of this solver; honor
    // the caller's byte budget before committing to it, and surface an
    // injected allocation failure at the same point.
    const std::size_t bytes =
        total * (sizeof(double) + sizeof(WaveletDpDecision)) +
        n_ * sizeof(double) + levels_ * sizeof(std::size_t);
    if (max_workspace_bytes_ != 0 && bytes > max_workspace_bytes_) {
      return Status::ResourceExhausted(
          "restricted wavelet DP arena (" + std::to_string(bytes) +
          " bytes) exceeds max_workspace_bytes (" +
          std::to_string(max_workspace_bytes_) + ")");
    }
    PROBSYN_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kWorkspaceAlloc));
    GrowTo(arena_->best, total, arena_->grow_events);
    GrowTo(arena_->decision, total, arena_->grow_events);
    return Status::OK();
  }

  void FillContributions() {
    GrowTo(arena_->contribution, n_, arena_->grow_events);
    for (std::size_t j = 0; j < n_; ++j) {
      arena_->contribution[j] = mu_[j] * LeafContributionScale(j, n_);
    }
  }

  double LeafError(std::size_t item, double v) const {
    double err = tables_.ExpectedPointError(metric_, item, v);
    return weights_.empty() ? err : weights_[item] * err;
  }

  double Combine(double a, double b) const {
    return cumulative_ ? a + b : std::max(a, b);
  }

  // Partial reconstruction entering state (j, mask): signed contributions
  // of the kept ancestors, applied root-downward — one add/subtract per
  // level, in the identical order (and with the identical operands) the
  // recursive formulation accumulated them, so the value is bit-equal.
  double StateV(std::size_t d, std::size_t j, std::uint64_t mask) const {
    const double* contribution = arena_->contribution.data();
    double v = ((mask >> d) & 1) ? contribution[0] : 0.0;
    for (std::size_t s = d; s >= 1; --s) {
      if ((mask >> (s - 1)) & 1) {
        const double c = contribution[j >> s];
        v = ((j >> (s - 1)) & 1) ? v - c : v + c;
      }
    }
    return v;
  }

  // One level is an embarrassingly parallel sweep: its states read only the
  // completed level below (stable arena memory) and write disjoint spans of
  // their own level, so the range splits into contiguous chunks dispatched
  // across the pool with identical per-state computation — the parallel
  // fill is bit-identical to the sequential one at every thread count.
  Status FillLevel(std::size_t d) {
    if (StopRequested(ctx_)) {
      return ctx_->StopStatus("wavelet-dp", "level", levels_ - 1 - d,
                              levels_);
    }
    const std::size_t states = std::size_t{1} << (2 * d + 1);
    // Below the cutoff the fork-join handshake costs more than the level;
    // the top of the tree (2, 8, 32 states) always runs on the caller.
    constexpr std::size_t kMinParallelStates = 64;
    if (pool_ != nullptr && states >= kMinParallelStates) {
      PROBSYN_RETURN_IF_ERROR(
          pool_->ParallelFor(0, states, [this, d](std::size_t begin,
                                                  std::size_t end) {
            FillStates(d, begin, end);
          }));
    } else {
      FillStates(d, 0, states);
    }
    // A stop inside a chunk leaves partially filled spans; polling again
    // here turns that into a stop status before any partial table is read.
    if (StopRequested(ctx_)) {
      return ctx_->StopStatus("wavelet-dp", "level", levels_ - 1 - d,
                              levels_);
    }
    return Status::OK();
  }

  // Fills the contiguous state range [state_begin, state_end) of level d.
  // The flat state index s enumerates (node, mask) exactly like the arena
  // layout — s == StateSlot(d, j, mask) — so a range's writes are one
  // disjoint arena span.
  void FillStates(std::size_t d, std::size_t state_begin,
                  std::size_t state_end) {
    const bool leaf_children = d == levels_ - 1;  // 2j >= n for the level
    const std::size_t cap = CapAt(d);
    const std::size_t node0 = std::size_t{1} << d;
    const std::size_t masks = std::size_t{1} << (d + 1);
    const std::size_t cap_child = leaf_children ? 0 : CapAt(d + 1);
    const DpCombiner combiner =
        cumulative_ ? DpCombiner::kSum : DpCombiner::kMax;
    const double* contribution = arena_->contribution.data();

    for (std::size_t s = state_begin; s < state_end; ++s) {
      if (((s - state_begin) & 63u) == 0 && StopRequested(ctx_)) return;
      const std::size_t j = node0 + (s >> (d + 1));
      const std::uint64_t mask = s & (masks - 1);
      double* best = BestTable(d, j, mask);
      WaveletDpDecision* decision = DecisionTable(d, j, mask);

      if (leaf_children) {
        const double v = StateV(d, j, mask);
        const std::size_t left_item = 2 * j - n_;
        // keep == 0 initializes every budget; keep == 1 (b >= 1)
        // overwrites where strictly better — the reference tie-break.
        const double err0 =
            Combine(LeafError(left_item, v), LeafError(left_item + 1, v));
        for (std::size_t b = 0; b <= cap; ++b) {
          best[b] = err0;
          decision[b] = {false, 0, 0};
        }
        if (cap >= 1) {
          const double c = contribution[j];
          const double err1 = Combine(LeafError(left_item, v + c),
                                      LeafError(left_item + 1, v - c));
          for (std::size_t b = 1; b <= cap; ++b) {
            if (err1 < best[b]) {
              best[b] = err1;
              decision[b] = {true, 0, 0};
            }
          }
        }
        continue;
      }

      for (std::size_t keep = 0; keep <= 1 && keep <= cap; ++keep) {
        const std::uint64_t child_mask = (mask << 1) | keep;
        const double* left = BestTable(d + 1, 2 * j, child_mask);
        const double* right = BestTable(d + 1, 2 * j + 1, child_mask);
        for (std::size_t b = keep; b <= cap; ++b) {
          const std::size_t rem = b - keep;
          // The split minimization runs through the kernel layer; the
          // keep passes preserve the reference tie-break (keep == 0
          // assigns unconditionally, keep == 1 wins only strictly).
          BudgetSplit split =
              MinBudgetSplit(combiner, left, std::min(rem, cap_child),
                             right, cap_child, rem, kernel_);
          if (keep == 0 || split.value < best[b]) {
            const std::size_t br =
                std::min(rem - split.left_budget, cap_child);
            best[b] = split.value;
            decision[b] = {keep == 1,
                           static_cast<std::uint16_t>(split.left_budget),
                           static_cast<std::uint16_t>(br)};
          }
        }
      }
    }
  }

  // Replays the stored decisions, collecting kept coefficients.
  void Trace(std::size_t j, std::uint64_t mask, std::size_t b,
             std::vector<WaveletCoefficient>& out) const {
    const std::size_t d = FloorLog2(j);
    b = std::min(b, CapAt(d));
    const WaveletDpDecision decision = DecisionTable(d, j, mask)[b];
    if (decision.keep) out.push_back({j, mu_[j]});
    if (2 * j >= n_) return;  // children are data leaves
    const std::uint64_t child_mask = (mask << 1) | (decision.keep ? 1 : 0);
    Trace(2 * j, child_mask, decision.left_budget, out);
    Trace(2 * j + 1, child_mask, decision.right_budget, out);
  }

  std::size_t n_;
  std::size_t levels_;  // log2(n); tree levels 0 .. levels_-1
  std::size_t budget_;
  ErrorMetric metric_;
  bool cumulative_;
  WaveletSplitKernel kernel_;
  WaveletDpArena* arena_;
  ThreadPool* pool_;        // null = sequential fill
  const ExecContext* ctx_;  // null = unbounded solve
  std::size_t max_workspace_bytes_;  // 0 = uncapped
  PointErrorTables tables_;
  std::vector<double> mu_;
  std::vector<double> weights_;  // empty = uniform
};

// Pads value-pdf input to a power-of-two domain with deterministic zeros.
ValuePdfInput PadInput(const ValuePdfInput& input) {
  std::size_t n = NextPowerOfTwo(input.domain_size());
  if (n == input.domain_size()) return input;
  std::vector<ValuePdf> items = input.items();
  items.reserve(n);
  while (items.size() < n) items.push_back(ValuePdf::PointMass(0.0));
  return ValuePdfInput(std::move(items));
}

}  // namespace

StatusOr<WaveletDpResult> BuildRestrictedWaveletDp(
    const ValuePdfInput& input, std::size_t num_coefficients,
    const SynopsisOptions& options, std::size_t max_domain,
    WaveletSplitKernel kernel, DpWorkspace* workspace, ThreadPool* pool,
    const ExecContext* context, std::size_t max_workspace_bytes) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument("workload size must equal the domain size");
  }
  std::size_t padded_n = NextPowerOfTwo(input.domain_size());
  if (padded_n > max_domain) {
    return Status::OutOfRange(
        "restricted wavelet DP state table would exceed max_domain; "
        "raise max_domain explicitly for large inputs");
  }
  if (padded_n > (std::size_t{1} << 16)) {
    // WaveletDpDecision packs child budgets as uint16; the O(n^2 B) state
    // arena is far past practical memory by this point anyway.
    return Status::OutOfRange(
        "restricted wavelet DP supports padded domains up to 65536");
  }

  ValuePdfInput padded = PadInput(input);
  WaveletDpArena local_arena;
  WaveletDpArena* arena =
      workspace != nullptr ? &workspace->wavelet_arena() : &local_arena;
  WaveletDpSolver solver(padded, num_coefficients, options, kernel, arena,
                         pool, context, max_workspace_bytes);
  PROBSYN_ASSIGN_OR_RETURN(WaveletDpResult result, solver.Solve());
  result.kernel = solver.kernel();
  result.lanes = solver.lanes();
  // Report the synopsis against the caller's (unpadded) domain.
  result.synopsis = WaveletSynopsis(
      input.domain_size(), padded_n,
      std::vector<WaveletCoefficient>(result.synopsis.coefficients()));
  return result;
}

}  // namespace probsyn
