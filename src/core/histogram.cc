#include "core/histogram.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/logging.h"

namespace probsyn {

Status Histogram::Validate(std::size_t n) const {
  if (buckets_.empty()) {
    return n == 0 ? Status::OK()
                  : Status::InvalidArgument("empty histogram, nonempty domain");
  }
  if (buckets_.front().start != 0) {
    return Status::InvalidArgument("first bucket must start at 0");
  }
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    const HistogramBucket& b = buckets_[k];
    if (b.end < b.start) {
      return Status::InvalidArgument("bucket end precedes start");
    }
    if (k > 0 && b.start != buckets_[k - 1].end + 1) {
      return Status::InvalidArgument("buckets do not tile the domain");
    }
  }
  if (buckets_.back().end != n - 1) {
    return Status::InvalidArgument("last bucket must end at n-1");
  }
  return Status::OK();
}

std::size_t Histogram::BucketIndexOf(std::size_t i) const {
  PROBSYN_CHECK(!buckets_.empty() && i <= buckets_.back().end);
  // First bucket whose end >= i.
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), i,
      [](const HistogramBucket& b, std::size_t x) { return b.end < x; });
  PROBSYN_DCHECK(it != buckets_.end());
  return static_cast<std::size_t>(it - buckets_.begin());
}

double Histogram::Estimate(std::size_t i) const {
  return buckets_[BucketIndexOf(i)].representative;
}

double Histogram::EstimateRangeSum(std::size_t a, std::size_t b) const {
  PROBSYN_CHECK(a <= b);
  double total = 0.0;
  for (std::size_t k = BucketIndexOf(a); k < buckets_.size(); ++k) {
    const HistogramBucket& bucket = buckets_[k];
    if (bucket.start > b) break;
    std::size_t lo = std::max(a, bucket.start);
    std::size_t hi = std::min(b, bucket.end);
    total += static_cast<double>(hi - lo + 1) * bucket.representative;
  }
  return total;
}

std::vector<double> Histogram::ToFrequencyVector() const {
  std::vector<double> out(domain_size(), 0.0);
  for (const HistogramBucket& b : buckets_) {
    for (std::size_t i = b.start; i <= b.end; ++i) out[i] = b.representative;
  }
  return out;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (const HistogramBucket& b : buckets_) {
    os << "[" << b.start << ", " << b.end << "] -> " << b.representative
       << "\n";
  }
  return os.str();
}

void ForEachBucketization(
    std::size_t n, std::size_t num_buckets,
    const std::function<void(const std::vector<std::size_t>&)>& fn) {
  if (num_buckets == 0 || num_buckets > n) return;
  // Choose num_buckets-1 interior boundaries among positions 0..n-2, then
  // append the forced final boundary n-1.
  std::vector<std::size_t> ends(num_buckets);
  std::function<void(std::size_t, std::size_t)> rec =
      [&](std::size_t k, std::size_t next_start) {
        if (k + 1 == num_buckets) {
          ends[k] = n - 1;
          fn(ends);
          return;
        }
        // Bucket k may end anywhere leaving room for the remaining buckets.
        for (std::size_t e = next_start; e + (num_buckets - 1 - k) <= n - 1;
             ++e) {
          ends[k] = e;
          rec(k + 1, e + 1);
        }
      };
  rec(0, 0);
}

}  // namespace probsyn
