#include "core/sharded_dp.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "core/dp_kernels.h"
#include "core/oracle_factory.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace probsyn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Everything one shard's solve leaves behind for the merge and extraction
// phases. The exact path keeps the leased workspace alive because the
// HistogramDpResult only borrows its storage; the approx path keeps the
// oracle bundle (and the sub-input its prefix tables span) alive for the
// re-solve at the assigned budget.
struct ShardSlot {
  Status status;
  ValuePdfInput sub;
  OracleBundle bundle;
  std::optional<DpWorkspacePool::Lease> lease;
  HistogramDpResult dp;  // exact solver only
  // curve[b]: best shard cost with at most b buckets, b = 0..shard cap;
  // curve[0] = +inf (every shard needs at least one bucket). Exactly
  // non-increasing for b >= 1 — see the merge DP below.
  std::vector<double> curve;
  std::size_t evaluations = 0;
  Histogram extracted;
  double extracted_cost = 0.0;
};

}  // namespace

std::vector<ShardRange> PlanShards(std::size_t n, std::size_t shards) {
  std::vector<ShardRange> plan(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    plan[s] = {s * n / shards, (s + 1) * n / shards};
  }
  return plan;
}

std::size_t ResolveShardCount(std::size_t n, std::size_t budget,
                              std::size_t requested) {
  std::size_t s = requested != 0
                      ? requested
                      : std::clamp<std::size_t>(n / 8192, 2, 64);
  return std::clamp<std::size_t>(s, 1, std::min(n, budget));
}

std::size_t ResolveMaxShardBudget(std::size_t budget, std::size_t shards,
                                  std::size_t requested) {
  const std::size_t floor_cap = (budget + shards - 1) / shards;
  const std::size_t ceil_cap = budget - shards + 1;
  const std::size_t cap =
      requested != 0 ? requested : std::max<std::size_t>(8, 4 * floor_cap);
  return std::clamp(cap, floor_cap, ceil_cap);
}

StatusOr<ShardedDpResult> BuildShardedHistogram(
    const ValuePdfInput& input, std::size_t budget,
    const SynopsisOptions& options, const ShardedDpOptions& sharded) {
  const std::size_t n = input.domain_size();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (budget < 1) {
    return Status::InvalidArgument("synopsis budget must be >= 1");
  }
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  if (sharded.solver == ShardSolver::kApprox) {
    if (!(sharded.epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (!IsCumulativeMetric(options.metric)) {
      return Status::InvalidArgument(
          "approximate shard solves support cumulative metrics only "
          "(Theorem 5)");
    }
  }
  if (options.HasWorkload() && options.workload.size() != n) {
    return Status::InvalidArgument("workload size must match the domain");
  }

  const std::size_t total_budget = std::min(budget, n);
  const std::size_t num_shards =
      ResolveShardCount(n, total_budget, sharded.shards);
  const std::size_t shard_cap =
      ResolveMaxShardBudget(total_budget, num_shards, sharded.max_shard_budget);
  const std::vector<ShardRange> plan = PlanShards(n, num_shards);
  const DpCombiner combiner = IsCumulativeMetric(options.metric)
                                  ? DpCombiner::kSum
                                  : DpCombiner::kMax;

  const ExecContext* ctx = sharded.context;
  if (StopRequested(ctx)) {
    return ctx->StopStatus("sharded-dp", "shard", 0, num_shards);
  }

  ThreadPool* pool = (sharded.pool != nullptr &&
                      sharded.pool->num_threads() > 0 && num_shards > 1)
                         ? sharded.pool
                         : nullptr;
  const std::size_t lanes =
      pool != nullptr ? std::min(num_shards, pool->num_threads() + 1) : 1;

  // The exact fan-out pins every shard's DP tables at once (the merge and
  // extraction phases read them); refuse up front when that footprint
  // exceeds the caller's byte budget. err/rep are doubles and choice is
  // int64, all cap_s x ns.
  if (sharded.solver == ShardSolver::kExact &&
      sharded.max_workspace_bytes != 0) {
    std::size_t bytes = 0;
    for (const ShardRange& range : plan) {
      const std::size_t ns = range.end - range.begin;
      bytes += std::min(shard_cap, ns) * ns *
               (2 * sizeof(double) + sizeof(std::int64_t));
    }
    if (bytes > sharded.max_workspace_bytes) {
      return Status::ResourceExhausted(
          "sharded exact DP would pin " + std::to_string(bytes) +
          " workspace bytes across " + std::to_string(num_shards) +
          " shards, exceeding max_workspace_bytes (" +
          std::to_string(sharded.max_workspace_bytes) + ")");
    }
  }

  // Declared before the slots so shard leases release back into it before
  // it is destroyed when no external workspace pool was provided.
  DpWorkspacePool local_workspaces;
  DpWorkspacePool* workspaces = sharded.workspaces != nullptr
                                    ? sharded.workspaces
                                    : &local_workspaces;

  // Phase A: independent per-shard solves, one fork-join over the shards.
  // Each slot is written by exactly one task; solvers get no pool (nested
  // ParallelFor calls inside a worker run inline anyway).
  std::vector<ShardSlot> slots(num_shards);
  auto solve_shard = [&](std::size_t s) {
    ShardSlot& slot = slots[s];
    if (StopRequested(ctx)) {
      slot.status = ctx->StopStatus("sharded-dp", "shard", s, num_shards);
      return;
    }
    const ShardRange range = plan[s];
    const std::size_t ns = range.end - range.begin;
    const std::size_t cap_s = std::min(shard_cap, ns);
    slot.sub = ValuePdfInput(std::vector<ValuePdf>(
        input.items().begin() + static_cast<std::ptrdiff_t>(range.begin),
        input.items().begin() + static_cast<std::ptrdiff_t>(range.end)));
    SynopsisOptions shard_options = options;
    if (options.HasWorkload()) {
      shard_options.workload.assign(
          options.workload.begin() + static_cast<std::ptrdiff_t>(range.begin),
          options.workload.begin() + static_cast<std::ptrdiff_t>(range.end));
    }
    auto bundle = MakeBucketOracle(slot.sub, shard_options);
    if (!bundle.ok()) {
      slot.status = bundle.status();
      return;
    }
    slot.bundle = std::move(bundle).value();
    slot.curve.assign(cap_s + 1, kInf);
    if (sharded.solver == ShardSolver::kExact) {
      slot.status = MaybeInjectFault(FaultSite::kWorkspaceAlloc);
      if (!slot.status.ok()) return;
      slot.lease.emplace(workspaces->Acquire());
      DpKernelOptions dp_options;
      dp_options.workspace = slot.lease->get();
      dp_options.kernel = slot.bundle.kernel;
      dp_options.context = ctx;
      slot.dp = SolveHistogramDpWithKernel(*slot.bundle.oracle, cap_s,
                                           combiner, dp_options);
      if (!slot.dp.status().ok()) {
        slot.status = slot.dp.status();
        return;
      }
      for (std::size_t b = 1; b <= cap_s; ++b) {
        slot.curve[b] = slot.dp.OptimalCost(b);
      }
    } else {
      ApproxDpKernelOptions approx_options;
      approx_options.kernel = slot.bundle.kernel;
      approx_options.context = ctx;
      auto approx = SolveApproxHistogramDpWithKernel(
          *slot.bundle.oracle, cap_s, sharded.epsilon, approx_options);
      if (!approx.ok()) {
        slot.status = approx.status();
        return;
      }
      slot.evaluations = approx->oracle_evaluations;
      for (std::size_t b = 1; b <= cap_s; ++b) {
        slot.curve[b] = approx->cost_curve[b - 1];
      }
    }
  };
  if (pool != nullptr) {
    PROBSYN_RETURN_IF_ERROR(
        pool->ParallelFor(0, num_shards, [&](std::size_t sb, std::size_t se) {
          for (std::size_t s = sb; s < se; ++s) solve_shard(s);
        }));
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) solve_shard(s);
  }
  for (const ShardSlot& slot : slots) {
    if (!slot.status.ok()) return slot.status;
  }

  // Phase B: cross-shard budget allocation. fold[j] after absorbing shard
  // k = best combined cost of shards 0..k under at most j buckets total
  // (at least one per shard), computed by MinBudgetSplit over the running
  // fold and shard k's curve. Every curve is exactly non-increasing past
  // its +inf prefix — OptimalCost(b) by "at most b" semantics, the approx
  // cost_curve by its inherit seeding — and +/max of non-increasing
  // sequences is non-increasing, so the fold stays monotone and the fast
  // split kernels (min-plus reduction for kSum, bisection for kMax) remain
  // exact at every step. O(S B log B) total for kMax, O(S B^2 / simd)
  // for kSum — noise next to the shard solves.
  const std::size_t B = total_budget;
  std::vector<double> fold(slots[0].curve);
  fold.resize(B + 1, fold.back());
  std::vector<double> next_fold(B + 1, kInf);
  // choice[(k-1) * (B+1) + j]: buckets the fold kept left of shard k on
  // the path to fold value j.
  std::vector<std::uint32_t> choice(
      num_shards > 1 ? (num_shards - 1) * (B + 1) : 0, 0);
  for (std::size_t k = 1; k < num_shards; ++k) {
    if (StopRequested(ctx)) {
      return ctx->StopStatus("sharded-dp", "merge shard", k, num_shards);
    }
    const std::vector<double>& right = slots[k].curve;
    const std::size_t cap_k = right.size() - 1;
    for (std::size_t j = 0; j <= B; ++j) {
      if (j < k + 1) {
        next_fold[j] = kInf;  // k+1 shards need at least k+1 buckets
        continue;
      }
      const BudgetSplit split =
          MinBudgetSplit(combiner, fold.data(), j - 1, right.data(), cap_k, j,
                         WaveletSplitKernel::kBudgetSplit);
      next_fold[j] = split.value;
      choice[(k - 1) * (B + 1) + j] =
          static_cast<std::uint32_t>(split.left_budget);
    }
    fold.swap(next_fold);
  }
  if (!(fold[B] < kInf)) {
    return Status::Internal("sharded merge DP found no feasible allocation");
  }

  // Traceback: walk the choice rows right to left. Finite fold values
  // imply the left budget covers at least one bucket per remaining shard.
  std::vector<std::size_t> alloc(num_shards);
  {
    std::size_t j = B;
    for (std::size_t k = num_shards; k-- > 1;) {
      const std::size_t bl = choice[(k - 1) * (B + 1) + j];
      alloc[k] = std::min(j - bl, slots[k].curve.size() - 1);
      j = bl;
    }
    alloc[0] = std::min(j, slots[0].curve.size() - 1);
  }

  // Phase C: per-shard extraction at the assigned budgets. Exact shards
  // read the already-solved DP (O(B)); approx shards re-solve at the
  // assigned budget — the expensive part, so it fans out again. (The rerun
  // uses a per-layer slack derived from the smaller budget, so its cost can
  // differ slightly from the curve entry the allocation used; the reported
  // cost is always the actual extracted histogram's.)
  auto extract_shard = [&](std::size_t s) {
    ShardSlot& slot = slots[s];
    if (StopRequested(ctx)) {
      slot.status = ctx->StopStatus("sharded-dp", "extract shard", s,
                                    num_shards);
      return;
    }
    if (sharded.solver == ShardSolver::kExact) {
      slot.extracted = slot.dp.ExtractHistogram(alloc[s]);
      slot.extracted_cost = slot.dp.OptimalCost(alloc[s]);
      return;
    }
    ApproxDpKernelOptions approx_options;
    approx_options.kernel = slot.bundle.kernel;
    approx_options.context = ctx;
    auto approx = SolveApproxHistogramDpWithKernel(
        *slot.bundle.oracle, alloc[s], sharded.epsilon, approx_options);
    if (!approx.ok()) {
      slot.status = approx.status();
      return;
    }
    slot.evaluations += approx->oracle_evaluations;
    slot.extracted = std::move(approx->histogram);
    slot.extracted_cost = approx->cost;
  };
  if (pool != nullptr && sharded.solver == ShardSolver::kApprox) {
    PROBSYN_RETURN_IF_ERROR(
        pool->ParallelFor(0, num_shards, [&](std::size_t sb, std::size_t se) {
          for (std::size_t s = sb; s < se; ++s) extract_shard(s);
        }));
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) extract_shard(s);
  }
  for (const ShardSlot& slot : slots) {
    if (!slot.status.ok()) return slot.status;
  }

  ShardedDpResult result;
  result.shards = num_shards;
  result.lanes = lanes;
  result.max_shard_budget = shard_cap;
  result.kernel = slots[0].bundle.kernel;
  result.shard_budgets = alloc;

  std::vector<HistogramBucket> buckets;
  buckets.reserve(B);
  double total = 0.0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const ShardSlot& slot = slots[s];
    for (const HistogramBucket& b : slot.extracted.buckets()) {
      buckets.push_back({b.start + plan[s].begin, b.end + plan[s].begin,
                         b.representative});
    }
    total = s == 0 ? slot.extracted_cost
                   : (combiner == DpCombiner::kSum
                          ? total + slot.extracted_cost
                          : std::max(total, slot.extracted_cost));
    result.oracle_evaluations += slot.evaluations;
  }
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  return result;
}

}  // namespace probsyn
