#include "core/haar.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

std::vector<double> HaarTransform(std::span<const double> data) {
  const std::size_t n = data.size();
  PROBSYN_CHECK(IsPowerOfTwo(n));
  std::vector<double> coeffs(data.begin(), data.end());
  std::vector<double> scratch(n);
  for (std::size_t len = n; len > 1; len /= 2) {
    std::size_t half = len / 2;
    // Write averages and details into scratch first: detail slots
    // [half, len) overlap the pair positions still being read.
    for (std::size_t k = 0; k < half; ++k) {
      double a = coeffs[2 * k];
      double b = coeffs[2 * k + 1];
      scratch[k] = (a + b) * kInvSqrt2;         // running averages
      scratch[half + k] = (a - b) * kInvSqrt2;  // details at this level
    }
    std::copy(scratch.begin(), scratch.begin() + len, coeffs.begin());
  }
  return coeffs;
}

std::vector<double> HaarInverse(std::span<const double> coefficients) {
  const std::size_t n = coefficients.size();
  PROBSYN_CHECK(IsPowerOfTwo(n));
  std::vector<double> data(coefficients.begin(), coefficients.end());
  std::vector<double> scratch(n);
  for (std::size_t len = 2; len <= n; len *= 2) {
    std::size_t half = len / 2;
    for (std::size_t k = 0; k < half; ++k) {
      double avg = data[k];
      double det = data[half + k];
      scratch[2 * k] = (avg + det) * kInvSqrt2;
      scratch[2 * k + 1] = (avg - det) * kInvSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + len, data.begin());
  }
  return data;
}

std::vector<double> PadToPowerOfTwo(std::span<const double> data) {
  std::size_t n = NextPowerOfTwo(data.size());
  std::vector<double> padded(data.begin(), data.end());
  padded.resize(n, 0.0);
  return padded;
}

std::size_t CoefficientLevel(std::size_t index) {
  return index == 0 ? 0 : FloorLog2(index);
}

SupportRange CoefficientSupport(std::size_t index, std::size_t n) {
  PROBSYN_CHECK(IsPowerOfTwo(n) && index < n);
  if (index == 0) return {0, n};
  std::size_t level = FloorLog2(index);
  std::size_t span = n >> level;  // n / 2^level
  std::size_t offset = index - (static_cast<std::size_t>(1) << level);
  return {offset * span, (offset + 1) * span};
}

double LeafContributionScale(std::size_t index, std::size_t n) {
  PROBSYN_CHECK(IsPowerOfTwo(n) && index < n);
  if (index == 0) return 1.0 / std::sqrt(static_cast<double>(n));
  std::size_t level = FloorLog2(index);
  return std::sqrt(static_cast<double>(1ull << level) /
                   static_cast<double>(n));
}

double ReconstructPointSparse(std::span<const std::size_t> indices,
                              std::span<const double> values, std::size_t i,
                              std::size_t n) {
  PROBSYN_CHECK(IsPowerOfTwo(n) && i < n);
  PROBSYN_CHECK(indices.size() == values.size());
  auto lookup = [&](std::size_t idx) -> double {
    auto it = std::lower_bound(indices.begin(), indices.end(), idx);
    if (it != indices.end() && *it == idx) {
      return values[static_cast<std::size_t>(it - indices.begin())];
    }
    return 0.0;
  };

  double total = lookup(0) * LeafContributionScale(0, n);
  // Walk the detail chain covering leaf i.
  std::size_t node = 1;
  std::size_t lo = 0, hi = n;
  while (node < n) {
    std::size_t mid = (lo + hi) / 2;
    double sign = (i < mid) ? 1.0 : -1.0;
    total += sign * lookup(node) * LeafContributionScale(node, n);
    if (i < mid) {
      hi = mid;
      node = 2 * node;
    } else {
      lo = mid;
      node = 2 * node + 1;
    }
  }
  return total;
}

}  // namespace probsyn
