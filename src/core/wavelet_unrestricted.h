#ifndef PROBSYN_CORE_WAVELET_UNRESTRICTED_H_
#define PROBSYN_CORE_WAVELET_UNRESTRICTED_H_

#include <cstddef>

#include "core/dp_kernels.h"
#include "core/metrics.h"
#include "core/wavelet.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// Options for the unrestricted (free-coefficient-value) wavelet DP.
struct UnrestrictedWaveletOptions {
  /// Number of grid points per unit... more precisely: the reconstruction
  /// grid has `grid_points` uniformly spaced values spanning
  /// [min V - padding, max V + padding]. Larger grids are slower
  /// (O(n q^2 B^2) work) but can only improve the synopsis.
  std::size_t grid_points = 33;
  /// Extra head-room added on both ends of the value range, as a fraction
  /// of the range (pessimistic coefficient-range estimate, paper
  /// section 4.2's first option).
  double range_padding = 0.125;
  /// Budget-split implementation of the DP's inner minimizations
  /// (MinBudgetSplit, core/dp_kernels.h); kAuto resolves to the fast
  /// kBudgetSplit, kReference is the scalar parity baseline. All choices
  /// are bit-identical in cost and kept coefficients (parity-tested).
  WaveletSplitKernel kernel = WaveletSplitKernel::kAuto;
  /// Optional deadline/cancellation context, polled once per node and every
  /// few grid rows inside a node solve; a stop yields
  /// kDeadlineExceeded/kCancelled. Null = unbounded solve.
  const ExecContext* context = nullptr;
};

struct UnrestrictedWaveletResult {
  WaveletSynopsis synopsis;
  /// Expected error of the synopsis (exact for the returned coefficient
  /// values; optimal over the quantized policy class described below).
  double cost = 0.0;
  /// The budget-split implementation the solve ran with (never kAuto).
  WaveletSplitKernel kernel = WaveletSplitKernel::kReference;
};

/// Optimal *unrestricted* B-term wavelet synopsis over a quantized
/// coefficient space — the extension the paper sketches and defers
/// (section 4.2, final paragraph): retained coefficient values are chosen
/// freely to minimize the target expected error, with the value range
/// bounded pessimistically and quantized.
///
/// Formulation: the DP state is (node j, incoming partial reconstruction
/// v, budget b) with v restricted to a uniform grid G over the padded
/// frequency-value range. Keeping node j with coefficient value
/// c = k * step / scale_j moves the children's incoming values to
/// v +- k * step — exactly grid points again, so the DP is *internally
/// exact*: the reported cost equals the true expected error of the
/// returned synopsis, and the synopsis is optimal among all synopses whose
/// leaf reconstructions stay on G. Refining the grid approaches the true
/// unrestricted optimum (the paper's [12] quantization argument).
///
/// Unlike the restricted DP's O(n^2) ancestor-subset state, the grid
/// state is O(n |G| B), so this handles larger domains.
///
/// Supports all six metrics; for kSse note that the unrestricted optimum
/// coincides with Theorem 7's greedy solution as the grid refines.
StatusOr<UnrestrictedWaveletResult> BuildUnrestrictedWaveletDp(
    const ValuePdfInput& input, std::size_t num_coefficients,
    const SynopsisOptions& options,
    const UnrestrictedWaveletOptions& dp_options = {});

}  // namespace probsyn

#endif  // PROBSYN_CORE_WAVELET_UNRESTRICTED_H_
