#include "core/abs_oracle.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"
#include "util/search.h"
#include "util/thread_pool.h"

namespace probsyn {

AbsCumulativeOracle::AbsCumulativeOracle(const ValuePdfInput& input,
                                         bool relative, double sanity_c,
                                         std::span<const double> weights,
                                         ThreadPool* pool)
    : n_(input.domain_size()), grid_(input.ValueGrid()) {
  const std::size_t K = grid_.size();

  // Temporary matrices, row-major [l * n + i].
  std::vector<double> below(K * n_, 0.0);
  std::vector<double> above(K * n_, 0.0);

  // Per item: walk the grid accumulating cumulative weight W_i(j), filling
  // U_i(l) = U_i(l-1) + W_i(l-1) d_{l-1} upward and
  // D_i(l) = D_i(l+1) + W*_i(l) d_l downward. Items write disjoint matrix
  // columns, so the fill parallelizes cleanly across item ranges.
  auto fill_items = [&](std::size_t item_begin, std::size_t item_end) {
  std::vector<double> cw(K);  // W_i(j) for the current item.
  for (std::size_t i = item_begin; i < item_end; ++i) {
    const ValuePdf& pdf = input.item(i);
    std::size_t entry = 0;
    double acc = 0.0;
    for (std::size_t j = 0; j < K; ++j) {
      if (entry < pdf.size() && pdf.entries()[entry].value == grid_[j]) {
        double w = pdf.entries()[entry].probability;
        if (relative) w *= RelativeWeight(grid_[j], sanity_c);
        if (!weights.empty()) w *= weights[i];
        acc += w;
        ++entry;
      }
      cw[j] = acc;
    }
    PROBSYN_CHECK(entry == pdf.size());
    double total = acc;

    double run_below = 0.0;
    for (std::size_t l = 0; l < K; ++l) {
      below[l * n_ + i] = run_below;
      if (l + 1 < K) run_below += cw[l] * (grid_[l + 1] - grid_[l]);
    }
    double run_above = 0.0;
    for (std::size_t l = K; l-- > 0;) {
      if (l + 1 < K) run_above += (total - cw[l]) * (grid_[l + 1] - grid_[l]);
      above[l * n_ + i] = run_above;
    }
  }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, n_, fill_items);
  } else {
    fill_items(0, n_);
  }

  below_ = PrefixSumsBank(K, n_, [&](std::size_t l, std::size_t i) {
    return below[l * n_ + i];
  });
  above_ = PrefixSumsBank(K, n_, [&](std::size_t l, std::size_t i) {
    return above[l * n_ + i];
  });
}

double AbsCumulativeOracle::CostAtGridIndex(std::size_t s, std::size_t e,
                                            std::size_t l) const {
  return below_.RangeSum(l, s, e) + above_.RangeSum(l, s, e);
}

BucketCost AbsCumulativeOracle::Cost(std::size_t s, std::size_t e) const {
  PROBSYN_DCHECK(s <= e && e < n_);
  std::size_t best = TernarySearchMinIndex(
      0, grid_.size() - 1,
      [&](std::size_t l) { return CostAtGridIndex(s, e, l); });
  return {grid_[best], std::max(0.0, CostAtGridIndex(s, e, best))};
}

}  // namespace probsyn
