#include "core/abs_oracle.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"
#include "util/search.h"
#include "util/thread_pool.h"

namespace probsyn {

AbsCumulativeOracle::AbsCumulativeOracle(const ValuePdfInput& input,
                                         bool relative, double sanity_c,
                                         std::span<const double> weights,
                                         ThreadPool* pool)
    : n_(input.domain_size()), grid_(input.ValueGrid()) {
  const std::size_t K = grid_.size();

  // Temporary matrices, row-major [l * n + i].
  std::vector<double> below(K * n_, 0.0);
  std::vector<double> above(K * n_, 0.0);

  // Per item: walk the grid accumulating cumulative weight W_i(j), filling
  // U_i(l) = U_i(l-1) + W_i(l-1) d_{l-1} upward and
  // D_i(l) = D_i(l+1) + W*_i(l) d_l downward. Items write disjoint matrix
  // columns, so the fill parallelizes cleanly across item ranges.
  auto fill_items = [&](std::size_t item_begin, std::size_t item_end) {
  std::vector<double> cw(K);  // W_i(j) for the current item.
  for (std::size_t i = item_begin; i < item_end; ++i) {
    const ValuePdf& pdf = input.item(i);
    std::size_t entry = 0;
    double acc = 0.0;
    for (std::size_t j = 0; j < K; ++j) {
      if (entry < pdf.size() && pdf.entries()[entry].value == grid_[j]) {
        double w = pdf.entries()[entry].probability;
        if (relative) w *= RelativeWeight(grid_[j], sanity_c);
        if (!weights.empty()) w *= weights[i];
        acc += w;
        ++entry;
      }
      cw[j] = acc;
    }
    PROBSYN_CHECK(entry == pdf.size());
    double total = acc;

    double run_below = 0.0;
    for (std::size_t l = 0; l < K; ++l) {
      below[l * n_ + i] = run_below;
      if (l + 1 < K) run_below += cw[l] * (grid_[l + 1] - grid_[l]);
    }
    double run_above = 0.0;
    for (std::size_t l = K; l-- > 0;) {
      if (l + 1 < K) run_above += (total - cw[l]) * (grid_[l + 1] - grid_[l]);
      above[l * n_ + i] = run_above;
    }
  }
  };
  if (pool != nullptr) {
    preprocess_status_ = pool->ParallelFor(0, n_, fill_items);
  } else {
    fill_items(0, n_);
  }

  below_ = PrefixSumsBank(K, n_, [&](std::size_t l, std::size_t i) {
    return below[l * n_ + i];
  });
  above_ = PrefixSumsBank(K, n_, [&](std::size_t l, std::size_t i) {
    return above[l * n_ + i];
  });
}

std::size_t AbsCumulativeOracle::OptimalGridIndex(std::size_t s, std::size_t e,
                                                  std::size_t hint) const {
  const std::size_t hi = grid_.size() - 1;
  auto f = [&](std::size_t l) { return CostAtGridIndex(s, e, l); };
  if (hint != kNoHint && hi >= 2) {
    // Probe the 3-point window around the hint (values cached — the pit
    // check below reuses them); leftmost argmin within it.
    const std::size_t w0 = hint > 0 ? hint - 1 : 0;
    const std::size_t w1 = hint + 1 < hi ? hint + 1 : hi;
    double value[3];
    std::size_t best = w0;
    value[0] = f(w0);
    double best_value = value[0];
    for (std::size_t l = w0 + 1; l <= w1; ++l) {
      value[l - w0] = f(l);
      if (value[l - w0] < best_value) {
        best_value = value[l - w0];
        best = l;
      }
    }
    // Accept only a strict pit: under convexity that is the unique global
    // minimizer, which is what the cold search below returns. Anything else
    // (plateau tie, drift past the window, boundary) restarts cold. A
    // neighbor outside the probed window costs one extra probe.
    if (best > 0 && best < hi) {
      const double left_value =
          best - 1 >= w0 ? value[best - 1 - w0] : f(best - 1);
      const double right_value =
          best + 1 <= w1 ? value[best + 1 - w0] : f(best + 1);
      if (left_value > best_value && right_value > best_value) return best;
    }
  }
  return TernarySearchMinIndexOver(std::size_t{0}, hi, f);
}

BucketCost AbsCumulativeOracle::Cost(std::size_t s, std::size_t e) const {
  PROBSYN_DCHECK(s <= e && e < n_);
  // The hint-less search below is exactly the historical ternary search
  // (identical probe sequence), with the probe lambda inlined.
  std::size_t best = OptimalGridIndex(s, e, kNoHint);
  return {grid_[best], std::max(0.0, CostAtGridIndex(s, e, best))};
}

AbsCumulativeOracle::FlatSweep::FlatSweep(const AbsCumulativeOracle& oracle,
                                          std::size_t e)
    : oracle_(oracle), end_(e), next_start_(e) {}

BucketCost AbsCumulativeOracle::FlatSweep::Extend() {
  const std::size_t s = next_start_;
  PROBSYN_DCHECK(s <= end_ && end_ < oracle_.n_);
  hint_ = oracle_.OptimalGridIndex(s, end_, hint_);
  BucketCost result{oracle_.grid_[hint_],
                    std::max(0.0, oracle_.CostAtGridIndex(s, end_, hint_))};
  if (next_start_ > 0) --next_start_;
  return result;
}

namespace {

// Virtual adapter over FlatSweep, so the reference (virtual-dispatch) DP
// path and the devirtualized kernel run the identical warm-started probe
// sequence.
class AbsSweepAdapter final : public BucketCostOracle::Sweep {
 public:
  AbsSweepAdapter(const AbsCumulativeOracle& oracle, std::size_t e)
      : sweep_(oracle, e) {}
  BucketCost Extend() override { return sweep_.Extend(); }

 private:
  AbsCumulativeOracle::FlatSweep sweep_;
};

}  // namespace

std::unique_ptr<BucketCostOracle::Sweep> AbsCumulativeOracle::StartSweep(
    std::size_t e) const {
  return std::make_unique<AbsSweepAdapter>(*this, e);
}

}  // namespace probsyn
