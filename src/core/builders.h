#ifndef PROBSYN_CORE_BUILDERS_H_
#define PROBSYN_CORE_BUILDERS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/histogram.h"
#include "core/histogram_dp.h"
#include "core/metrics.h"
#include "core/oracle_factory.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// Wraps a frequency vector as deterministic value-pdf input (point masses)
/// — the paper's device for running one code path over probabilistic and
/// deterministic data alike (section 5, "for consistency, we use the same
/// code ... since deterministic data can be interpreted as probabilistic
/// data in the value pdf model with probability 1").
ValuePdfInput PointMassInput(std::span<const double> frequencies);

/// Owns a solved histogram DP (oracle + tables + trace), from which
/// optimal histograms and costs can be extracted for every budget
/// b <= max_buckets. This is the workhorse of the Figure 2 experiments,
/// which plot whole cost-vs-B curves from a single DP run.
///
/// Move-only; extraction is const and cheap.
class HistogramBuilder {
 public:
  /// A non-null `pool` parallelizes both the oracle preprocessing and the
  /// exact DP (bit-identical results; see SolveHistogramDp).
  static StatusOr<HistogramBuilder> Create(const ValuePdfInput& input,
                                           const SynopsisOptions& options,
                                           std::size_t max_buckets,
                                           ThreadPool* pool = nullptr);
  static StatusOr<HistogramBuilder> Create(const TuplePdfInput& input,
                                           const SynopsisOptions& options,
                                           std::size_t max_buckets,
                                           ThreadPool* pool = nullptr);
  /// Deterministic data (expectation / sampled-world baselines).
  static StatusOr<HistogramBuilder> CreateDeterministic(
      std::span<const double> frequencies, const SynopsisOptions& options,
      std::size_t max_buckets, ThreadPool* pool = nullptr);

  HistogramBuilder(HistogramBuilder&&) = default;
  HistogramBuilder& operator=(HistogramBuilder&&) = default;

  /// Optimal expected error with at most `num_buckets` buckets.
  double OptimalCost(std::size_t num_buckets) const {
    return dp_.OptimalCost(num_buckets);
  }

  /// Optimal histogram for the given budget (boundaries + representatives).
  Histogram Extract(std::size_t num_buckets) const {
    return dp_.ExtractHistogram(num_buckets);
  }

  std::size_t max_buckets() const { return dp_.max_buckets(); }
  std::size_t domain_size() const { return dp_.domain_size(); }
  const BucketCostOracle& oracle() const { return *bundle_.oracle; }

 private:
  HistogramBuilder(OracleBundle bundle, std::size_t max_buckets,
                   ThreadPool* pool);

  OracleBundle bundle_;
  HistogramDpResult dp_;
};

/// One-shot convenience: the optimal B-bucket histogram.
StatusOr<Histogram> BuildOptimalHistogram(const ValuePdfInput& input,
                                          const SynopsisOptions& options,
                                          std::size_t num_buckets);
StatusOr<Histogram> BuildOptimalHistogram(const TuplePdfInput& input,
                                          const SynopsisOptions& options,
                                          std::size_t num_buckets);

/// One-shot (1+epsilon)-approximate histogram (paper section 3.5,
/// Theorem 5). Cumulative metrics only.
StatusOr<ApproxHistogramResult> BuildApproxHistogram(
    const ValuePdfInput& input, const SynopsisOptions& options,
    std::size_t num_buckets, double epsilon);
StatusOr<ApproxHistogramResult> BuildApproxHistogram(
    const TuplePdfInput& input, const SynopsisOptions& options,
    std::size_t num_buckets, double epsilon);

}  // namespace probsyn

#endif  // PROBSYN_CORE_BUILDERS_H_
