#ifndef PROBSYN_CORE_HAAR_H_
#define PROBSYN_CORE_HAAR_H_

#include <cstddef>
#include <span>
#include <vector>

namespace probsyn {

/// Orthonormal Haar DWT utilities (paper section 2.2, Figure 1).
///
/// Coefficient indexing is the standard Mallat layout for a power-of-two
/// input of size n:
///   * index 0: the scaling coefficient (overall average * sqrt(n));
///   * index i in [2^l, 2^{l+1}): the detail coefficient at resolution
///     level l (l = 0 coarsest), supported on the dyadic interval of
///     length n / 2^l starting at (i - 2^l) * n / 2^l;
///   * the children of detail node i are 2i and 2i+1 (while 2i < n); for
///     i >= n/2 the "children" are the data leaves 2i - n and 2i + 1 - n.
///
/// Normalization is orthonormal: sum of squared coefficients equals the sum
/// of squared data values (Parseval), so greedy selection by |coefficient|
/// is SSE-optimal.

/// Forward transform; `data.size()` must be a power of two.
std::vector<double> HaarTransform(std::span<const double> data);

/// Inverse transform; exact round trip up to fp rounding.
std::vector<double> HaarInverse(std::span<const double> coefficients);

/// Zero-pads to the next power of two (identity if already a power of two).
/// Padding with zeros matches extending the probabilistic domain with
/// deterministic zero-frequency items.
std::vector<double> PadToPowerOfTwo(std::span<const double> data);

/// Resolution level of a coefficient index (0 for the scaling coefficient
/// and for detail index 1; in general floor(log2(i)) for i >= 1).
std::size_t CoefficientLevel(std::size_t index);

/// Dyadic support [lo, hi) of coefficient `index` over a domain of size n.
struct SupportRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};
SupportRange CoefficientSupport(std::size_t index, std::size_t n);

/// |per-leaf reconstruction contribution| of coefficient `index` in an
/// n-point transform: 1/sqrt(n) for the scaling coefficient,
/// sqrt(2^l / n) for a detail coefficient at level l. The sign is + on the
/// left half of the support and - on the right half.
double LeafContributionScale(std::size_t index, std::size_t n);

/// Reconstructs data point `i` from a sparse coefficient set given as
/// parallel arrays sorted by index. O(log n * log B).
double ReconstructPointSparse(std::span<const std::size_t> indices,
                              std::span<const double> values, std::size_t i,
                              std::size_t n);

}  // namespace probsyn

#endif  // PROBSYN_CORE_HAAR_H_
