#ifndef PROBSYN_CORE_DP_KERNELS_H_
#define PROBSYN_CORE_DP_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/bucket_oracle.h"
#include "core/histogram_dp.h"
#include "util/deadline.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

// ---------------------------------------------------------------------------
// Runtime-dispatched SIMD min-reductions. Every chunked kSum/kMax
// min-reduction in the kernel layer (exact-DP cells, wavelet budget
// splits, the approximate DP's candidate minimization, the streaming
// merge and 2-D split scans) funnels through the primitives below, which
// resolve once at runtime to the widest instruction set the CPU offers.

/// Which explicit-SIMD implementation the min-reduction primitives run
/// with. Floating-point min/max are exact in any accumulation order, so
/// every path returns the same value (operator==; a tie between +0.0 and
/// -0.0 may surface either sign) for NaN-free inputs — the bit-parity
/// contract of the DP kernels is SIMD-path independent, pinned by
/// tests/simd_dispatch_test.cc. Resolution order: a test override
/// (ForceSimdPath), then the PROBSYN_SIMD environment variable
/// ("scalar" / "avx2" / "avx512" / "auto"), then CPUID feature detection;
/// requests the CPU or build cannot honor clamp down to the widest
/// supported path.
enum class SimdPath {
  kScalar,  ///< Four-accumulator scalar loops (the auto-vectorized baseline).
  kAvx2,    ///< 256-bit vminpd reductions (4 lanes x 4 accumulators).
  kAvx512,  ///< 512-bit vminpd reductions (8 lanes x 4 accumulators).
};

/// Stable display name ("scalar", "avx2", "avx512") — the engine records it
/// as `simd=` in DP-route solver strings.
const char* SimdPathName(SimdPath path);

/// The path the primitives currently dispatch to (after override, env var,
/// and CPUID clamping).
SimdPath ActiveSimdPath();

/// Test hook: force the dispatch onto `path` (clamped to what the CPU and
/// build support) and return the path actually in effect. Call with the
/// previous value to restore; not thread-safe against concurrent solves.
SimdPath ForceSimdPath(SimdPath path);

/// min over i in [0, n) of a[i] + add; +infinity when n == 0.
double SimdMinPlusConst(const double* a, std::size_t n, double add);

/// min over i in [0, n) of a[i] + b[i]; +infinity when n == 0.
double SimdMinPlusPairs(const double* a, const double* b, std::size_t n);

/// min over i in [0, n) of a[i] + b[-i] (b walks DOWNWARD from its base:
/// the budget-split form left[lo + i] + right[hi - i]); +infinity when
/// n == 0.
double SimdMinPlusReverse(const double* a, const double* b, std::size_t n);

/// min over i in [0, n) of max(a[i], b[i]); +infinity when n == 0.
double SimdMinMaxPairs(const double* a, const double* b, std::size_t n);

/// min over i in [0, n) of a[i]; +infinity when n == 0.
double SimdMinArray(const double* a, std::size_t n);

/// Fused approximate-DP candidate column for the quadratic oracles
/// (SSE/SSRE point-cost kernels): over per-layer GATHERED candidate
/// columns computes, bit-for-bit like the scalar point evaluators,
///
///   sum_c = c_hi - c[i]
///   esos  = (b_hi - b[i])^2  (+ v_hi - v[i] when v != nullptr)
///   cost  = sum_c <= 0 ? 0
///                      : clamp_tiny_negative((a_hi - a[i]) - esos / sum_c,
///                                            1e-6)
///   values[i] = prev[i] + cost
///
/// writes values[0..n), and returns their minimum (+infinity when n == 0).
/// For SSE: a/b/c/v = second/mean/weight/variance prefix rows; for SSRE:
/// a/b/c = X/Y/Z and v = nullptr.
double SimdApproxQuadColumn(const double* prev, const double* a,
                            const double* b, const double* c, const double* v,
                            std::size_t n, double a_hi, double b_hi,
                            double c_hi, double v_hi, double* values);

/// Fused streaming-merge point-cost column (stream/streaming_histogram.cc):
/// for each committed breakpoint i computes
///
///   cost_i  = clamp_tiny_negative(second_i - mean_i^2 / width_i, 1e-6)
///   values[i] = position[i] >= count ? +inf : error[i] + cost_i
///
/// with width_i = count - position[i], mean_i = total_mean - sum_mean[i],
/// second_i = total_second - sum_second[i], writes values[0..n), and
/// returns their minimum. Elementwise arithmetic (IEEE divide included) is
/// identical on every SIMD path, so the column and its minimum are
/// bit-identical to the scalar loop. Positions are carried as doubles
/// (exact for any realistic stream length).
double SimdStreamingMergeColumn(const double* error, const double* sum_mean,
                                const double* sum_second,
                                const double* position, std::size_t n,
                                double count, double total_mean,
                                double total_second, double* values);

/// Batched streaming-merge sweep — the PushBatch counterpart of
/// SimdStreamingMergeColumn. For each of `num_pushes` CONSECUTIVE stream
/// positions count0, count0+1, ..., count0+num_pushes-1 (lane j's running
/// totals are total_mean[j] / total_second[j]) it computes, over the same
/// committed-breakpoint columns,
///
///   best[j]       = min_i error[i] + cost(i, j)
///   best_index[j] = FIRST i attaining best[j]   (-1 when n == 0)
///   cost(i, j)    = clamp_tiny_negative(second_ij - mean_ij^2 / width_ij)
///
/// with width_ij = (count0 + j) - position[i]. Preconditions: every
/// position[i] < count0 (the caller's visibility timeline guarantees all
/// candidates strictly precede the batch group, so the >= count guard of
/// the single-push column is dead); neg_position[i] == -position[i]
/// (int64, the vector paths' reciprocal-table index column); and
/// recips[w] == 1.0/w for every width 1 <= w <= count0 + num_pushes - 1.
///
/// Bit-parity contract, pinned by the PushBatch differential tests: every
/// dispatch path returns exactly what num_pushes single-push column scans
/// would. The scalar and AVX2 paths use the reference divide + clamp
/// elementwise; the AVX-512 path runs one push per lane with the division
/// recovered from the reciprocal table by a Markstein fused step (y =
/// RN(1/w) exact, q0 = RN(a*y), q = RN(fma(fma(-w, q0, a), y, q0)) =
/// RN(a/w) — correctly rounded, hence bit-identical) and drops the
/// tiny-negative clamp from the hot loop; a per-lane min-cost detector
/// re-sweeps any lane whose column produced a negative cost through the
/// exact scalar path, so clamp-sensitive columns still match the
/// reference bit-for-bit.
void SimdStreamingBatchSweep(const double* error, const double* sum_mean,
                             const double* sum_second, const double* position,
                             const std::int64_t* neg_position, std::size_t n,
                             const double* total_mean,
                             const double* total_second, std::size_t count0,
                             const double* recips, std::size_t num_pushes,
                             double* best, std::int64_t* best_index);

/// Packed traceback decision of one restricted-wavelet-DP cell: the keep
/// flag for the node's coefficient plus the budgets granted to its two
/// children. uint16 budgets cap the padded domain at 65536, matching the
/// solver's own state-key limits.
struct WaveletDpDecision {
  bool keep = false;
  std::uint16_t left_budget = 0;
  std::uint16_t right_budget = 0;
};

/// Persistent shared-suffix store of streaming boundary chains
/// (stream/streaming_histogram.cc): each node is one bucket boundary (a
/// prefix-moment snapshot) plus a parent pointer to the chain of the
/// boundaries before it, so extending a winner's chain by one boundary is
/// O(1) and chains sharing a suffix share its nodes physically. Nodes are
/// hash-consed — Extend() returns the existing node when an identical
/// (parent, position) chain is already live — and refcounted: every chain
/// head held by a breakpoint owns one reference, every node owns one on
/// its parent, and Release() returns zero-refcount nodes (and, cascading,
/// their newly unreferenced ancestors) to an internal free list.
///
/// Storage is arena-pooled like WaveletDpArena: the node pool, hash
/// table, and free list grow geometrically but never shrink, so a store
/// leased across streams (via DpWorkspace::stream_chains()) performs zero
/// steady-state allocations — `Stats::grow_events` counts capacity
/// growths and `Stats::live` must return to zero once every holder has
/// released (the leak tests in tests/streaming_test.cc assert both).
///
/// The store is NOT thread-safe; like the rest of a DpWorkspace it serves
/// one solve/stream at a time.
class StreamChainStore {
 public:
  /// Handle of a chain head inside the store; kNil is the empty chain.
  using Ref = std::uint32_t;

  /// Sentinel: the empty chain / no parent.
  static constexpr Ref kNil = 0xFFFFFFFFu;

  /// Observability counters (monotone except `live`).
  struct Stats {
    std::size_t created = 0;      ///< Nodes physically taken from the pool.
    std::size_t consed = 0;       ///< Extend() calls served by an existing node.
    std::size_t freed = 0;        ///< Nodes returned to the free list.
    std::size_t grow_events = 0;  ///< Capacity growths (node pool or table).
    std::size_t live = 0;         ///< Currently allocated nodes.
  };

  /// The chain `parent` extended by one boundary snapshot. Returns an
  /// owned reference: the existing node when (parent, position) is already
  /// live (their moment sums are then necessarily equal — snapshots of one
  /// stream at one position are unique), else a fresh node referencing
  /// `parent`.
  Ref Extend(Ref parent, double sum_mean, double sum_second,
             std::size_t position);

  /// Takes one additional owned reference on `node` (O(1) chain sharing).
  void AddRef(Ref node);

  /// Drops one owned reference; frees the node and cascades up the parent
  /// chain while refcounts hit zero. Release(kNil) is a no-op.
  void Release(Ref node);

  /// Payload accessors of a live node (extraction walks parents once).
  double sum_mean(Ref node) const { return nodes_[node].sum_mean; }
  /// Running second-moment sum at the boundary.
  double sum_second(Ref node) const { return nodes_[node].sum_second; }
  /// Stream position of the boundary (items before the cut).
  std::size_t position(Ref node) const { return nodes_[node].position; }
  /// The chain of the boundaries before this one (kNil at the root).
  Ref parent(Ref node) const { return nodes_[node].parent; }

  /// Counter snapshot (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  struct Node {
    double sum_mean = 0.0;
    double sum_second = 0.0;
    std::size_t position = 0;
    Ref parent = kNil;
    Ref hash_next = kNil;
    std::uint32_t refcount = 0;  // 0 = free slot
  };

  std::size_t BucketOf(Ref parent, std::size_t position) const;
  void Rehash();

  std::vector<Node> nodes_;
  std::vector<Ref> buckets_;  // power-of-two; kNil-terminated chains
  std::vector<Ref> free_;
  Stats stats_;
};

/// Flat arena of the restricted wavelet DP (core/wavelet_dp.cc): per-state
/// `best` tables and traceback decisions stored contiguously, indexed
/// directly by (level, node, ancestor-decision mask) — no hash memo, no
/// per-state vectors, no rehash-unstable references. Buffers grow but
/// never shrink, so repeated solves through one arena allocate nothing in
/// steady state; `grow_events` counts capacity growths (a pool-stats hook
/// the zero-allocation tests assert on).
struct WaveletDpArena {
  std::vector<double> best;                  ///< Concatenated best tables.
  std::vector<WaveletDpDecision> decision;   ///< Parallel to `best`.
  std::vector<std::size_t> level_base;       ///< Arena offset per tree level.
  std::vector<double> contribution;          ///< mu[j] * leaf scale, per node.
  std::size_t grow_events = 0;  ///< Buffer growths since construction.
  std::size_t solves = 0;       ///< Solves served (observability only).
};

/// Reusable storage arena for the exact-DP solver: the err/choice/rep
/// layers plus the bucket-cost column buffers of the sequential and blocked
/// parallel paths. Repeated solves through the same workspace reach zero
/// steady-state allocation — buffers are resized (never shrunk below
/// capacity) and every cell is overwritten before it is read, so no
/// clearing pass is needed either.
///
/// The workspace also hosts the restricted wavelet DP's flat arena
/// (wavelet_arena()) and the streaming builder's boundary-chain store
/// (stream_chains()), so an engine batch leases ONE workspace and serves
/// exact-DP, wavelet, and streaming requests from the same recycled
/// storage.
///
/// A workspace serves ONE solve at a time; results borrow its storage (see
/// HistogramDpResult), so reuse only after the previous result is consumed.
/// The solver's internal parallelism is fine — a workspace is not tied to a
/// thread — but two concurrent solves need two workspaces (DpWorkspacePool).
class DpWorkspace {
 public:
  DpWorkspace() = default;

  DpWorkspace(const DpWorkspace&) = delete;
  DpWorkspace& operator=(const DpWorkspace&) = delete;

  /// The restricted wavelet DP's reusable flat arena (see WaveletDpArena);
  /// serves one solve at a time, like the histogram buffers.
  WaveletDpArena& wavelet_arena() { return wavelet_arena_; }

  /// The streaming builder's reusable boundary-chain store (see
  /// StreamChainStore); serves one stream at a time.
  StreamChainStore& stream_chains() { return stream_chains_; }

 private:
  friend HistogramDpResult SolveHistogramDpWithKernel(const BucketCostOracle&,
                                                      std::size_t,
                                                      DpCombiner,
                                                      const DpKernelOptions&);

  std::vector<double> err_;            // cap x n, row-major
  std::vector<std::int64_t> choice_;   // cap x n
  std::vector<double> rep_;            // cap x n
  std::vector<double> cost_cols_;      // n (sequential) or block x n
  std::vector<double> rep_cols_;       // same shape as cost_cols_
  // Chunk-minimum bound tables of the fast kMax cell (see dp_kernels.cc):
  // per-layer minima of the err rows and per-column minima of the cost
  // columns, at 512-split granularity.
  std::vector<double> layer_cmin_;     // cap x ceil(n/512)
  std::vector<double> cost_cmin_;     // ceil(n/512) or block x ceil(n/512)

  WaveletDpArena wavelet_arena_;
  StreamChainStore stream_chains_;
};

/// Mutex-guarded free list of DpWorkspaces for engines whose const entry
/// points may run on many user threads at once: each solve leases a
/// workspace (creating one only when the list is empty) and returns it on
/// destruction of the lease, so steady-state batches allocate nothing.
class DpWorkspacePool {
 public:
  /// Lease accounting, exposed so robustness tests can assert that failed
  /// solves leak no lease: `outstanding` must return to zero once every
  /// in-flight build — successful or not — has unwound.
  struct Stats {
    std::size_t created = 0;      ///< Workspaces ever constructed.
    std::size_t outstanding = 0;  ///< Leases currently held.
  };

  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), workspace_(std::move(other.workspace_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();  // return the current workspace, don't destroy it
        pool_ = other.pool_;
        workspace_ = std::move(other.workspace_);
      }
      return *this;
    }
    ~Lease() { Release(); }

    DpWorkspace* get() const { return workspace_.get(); }

   private:
    friend class DpWorkspacePool;
    Lease(DpWorkspacePool* pool, std::unique_ptr<DpWorkspace> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}

    void Release();

    DpWorkspacePool* pool_;
    std::unique_ptr<DpWorkspace> workspace_;
  };

  Lease Acquire();

  /// Counter snapshot (see Stats).
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<DpWorkspace>> free_;
  Stats stats_;
};

/// Maps an oracle's dynamic type to its specialized kernel; kReference for
/// oracle types without one. The engine's planner records the factory-known
/// kind instead (OracleBundle::kernel) and skips this dynamic_cast chain.
DpKernelKind SelectDpKernel(const BucketCostOracle& oracle);

/// Knobs of the kernel-level solve entry point. Defaults reproduce
/// SolveHistogramDp(oracle, max_buckets, combiner): auto-selected kernel,
/// sequential, self-owned storage.
struct DpKernelOptions {
  /// Non-null runs the blocked data-parallel DP (bit-identical output).
  ThreadPool* pool = nullptr;
  /// Non-null reuses the given arena; the result then only borrows its
  /// storage (see HistogramDpResult lifetime note).
  DpWorkspace* workspace = nullptr;
  /// kAuto resolves via SelectDpKernel. A concrete kind must match the
  /// oracle's dynamic type (checked); kReference always applies and is the
  /// parity baseline the kernel tests compare against.
  DpKernelKind kernel = DpKernelKind::kAuto;
  /// Non-null arms cooperative stopping: the solver polls per column /
  /// layer batch (work units far above the poll cost, so overhead stays
  /// under the engine's 2% budget) and on a hit abandons the fill and
  /// returns a result whose status() is kDeadlineExceeded/kCancelled. The
  /// workspace stays reusable — every buffer is fully overwritten by the
  /// next solve.
  const ExecContext* context = nullptr;
};

/// The exact-DP solver behind SolveHistogramDp, with explicit control over
/// kernel choice, parallelism, and storage reuse. All configurations are
/// bit-identical in costs, traceback choices, and representatives; the
/// specialized kernels only change how fast the table is filled:
///
///  * column fills run devirtualized — each concrete oracle's prefix-sum
///    tables are hoisted into flat spans (SSE/SSRE), its ternary search is
///    inlined over the raw U/D banks (SAE/SARE), or its concrete sweep is
///    driven directly (tuple SSE) — instead of one virtual
///    Cost()/Extend() call per cell;
///  * kSum transitions use a chunked branch-free min-reduction that
///    auto-vectorizes, then resolve the reference tie-break (first index
///    attaining the minimum, inherit wins ties) inside the winning chunk;
///  * kMax transitions exploit that prefix errors are non-decreasing and
///    bucket costs non-increasing in the split point: the optimal split is
///    bisected at the crossing in O(log j) instead of scanned in O(j),
///    with the same first-attaining-index tie-break.
HistogramDpResult SolveHistogramDpWithKernel(const BucketCostOracle& oracle,
                                             std::size_t max_buckets,
                                             DpCombiner combiner,
                                             const DpKernelOptions& options);

/// Knobs of the kernel-level approximate-DP entry point. Defaults reproduce
/// SolveApproxHistogramDp(oracle, max_buckets, epsilon).
struct ApproxDpKernelOptions {
  /// kAuto resolves via SelectDpKernel. A concrete kind must match the
  /// oracle's dynamic type (checked); kReference always applies and is the
  /// parity baseline the kernel tests compare against.
  DpKernelKind kernel = DpKernelKind::kAuto;
  /// Non-null arms cooperative stopping (poll per budget layer and every
  /// 256 columns); the solve then fails with kDeadlineExceeded/kCancelled.
  const ExecContext* context = nullptr;
};

/// The (1 + epsilon)-approximate DP behind SolveApproxHistogramDp, with
/// explicit control over the point-cost kernel. Unlike the exact DP — whose
/// kernels fill whole bucket-cost columns — the approximate DP evaluates a
/// SPARSE set of candidate buckets (Theorem 5's geometric error classes),
/// so its kernels are devirtualized point-cost evaluators: each candidate's
/// Cost(s, e) arithmetic is inlined over the oracle's raw prefix-sum spans
/// (SSE/SSRE), run through the cold convex search with the probe lambda
/// inlined (SAE/SARE — cold rather than warm-started, because the
/// reference path's virtual Cost() searches cold and plateau rounding can
/// make a warm-accepted optimum land on a different grid index), or issued
/// as a concrete `final`-class call (MAE/MARE, tuple-SSE) — never a
/// virtual dispatch per candidate.
///
/// Every kernel is bit-identical to kReference in the returned histogram,
/// cost, and oracle_evaluations count (the driver is shared; only the cost
/// evaluation is specialized), pinned by tests/dp_kernel_parity_test.cc.
StatusOr<ApproxHistogramResult> SolveApproxHistogramDpWithKernel(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon,
    const ApproxDpKernelOptions& options);

/// Which inner-loop implementation the wavelet DPs' budget-split
/// minimizations ran with. Both coefficient-tree DPs (restricted and
/// unrestricted, core/wavelet_dp.cc and core/wavelet_unrestricted.cc)
/// spend their time minimizing over child budget splits; kBudgetSplit
/// replaces the scalar scan with the same machinery the exact histogram DP
/// uses — a chunked 4-accumulator min-reduction for sum combiners and a
/// monotone-split bisection for max combiners — and is bit-identical to
/// kReference (costs, kept coefficients, traceback ties), which the
/// dp_kernel_parity tests pin down.
enum class WaveletSplitKernel {
  kAuto,         ///< Resolve to kBudgetSplit (structure-based, always applies).
  kReference,    ///< Ascending scalar scan (parity baseline).
  kBudgetSplit,  ///< Chunked min-reduction (sum) / exact bisection (max).
};

/// Stable display name ("reference", "budget-split", ...).
const char* WaveletSplitKernelName(WaveletSplitKernel kind);

/// One budget-split minimization: over bl = 0..bl_max, with
/// br = min(rem - bl, cap_right), minimize Combine(left[bl], right[br])
/// where Combine is + (kSum) or max (kMax). Returns the minimum value and
/// the FIRST bl attaining it — the wavelet DPs' ascending-scan tie-break.
struct BudgetSplit {
  double value = 0.0;
  std::size_t left_budget = 0;
};

// Implementation detail of MinBudgetSplit below; defined inline (like the
// templated search in util/search.h) so the wavelet solvers' hot loops
// inline the split machinery instead of paying a cross-TU call per split.
namespace budget_split_internal {

inline BudgetSplit Reference(DpCombiner combiner, const double* left,
                             std::size_t bl_max, const double* right,
                             std::size_t cap_right, std::size_t rem) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_bl = 0;
  for (std::size_t bl = 0; bl <= bl_max; ++bl) {
    const std::size_t br = std::min(rem - bl, cap_right);
    const double v = combiner == DpCombiner::kSum
                         ? left[bl] + right[br]
                         : std::max(left[bl], right[br]);
    if (v < best) {
      best = v;
      best_bl = bl;
    }
  }
  return {best, best_bl};
}

// kSum: two constant-stride segments (br pinned at cap_right, then
// br = rem - bl), each reduced through the runtime-dispatched SIMD
// min-reduction primitives (exact in any order), then the first split
// attaining the minimum located in whichever segment owns it — the
// reference ascending-scan tie-break.
inline BudgetSplit SumFast(const double* left, std::size_t bl_max,
                           const double* right, std::size_t cap_right,
                           std::size_t rem) {
  // Segment 1: bl in [0, seg1_end) has rem - bl >= cap_right.
  const std::size_t seg1_end =
      rem >= cap_right ? std::min(bl_max + 1, rem - cap_right + 1) : 0;
  const double rc = right[cap_right];

  const double m1 = SimdMinPlusConst(left, seg1_end, rc);
  // Guard the pointer arithmetic: when segment 2 is empty, rem - seg1_end
  // may underflow (seg1_end can reach rem + 1).
  const std::size_t seg2_count = bl_max + 1 - seg1_end;
  const double m2 =
      seg2_count == 0
          ? std::numeric_limits<double>::infinity()
          : SimdMinPlusReverse(left + seg1_end, right + (rem - seg1_end),
                               seg2_count);

  // First-attaining split: segment 1's indices precede segment 2's, so a
  // tie between the segment minima resolves into segment 1. A segment's
  // exact minimum is always attained inside it, so one scan returns.
  if (m1 <= m2) {
    for (std::size_t bl = 0; bl < seg1_end; ++bl) {
      if (left[bl] + rc == m1) return {m1, bl};
    }
  }
  for (std::size_t bl = seg1_end; bl <= bl_max; ++bl) {
    if (left[bl] + right[rem - bl] == m2) return {m2, bl};
  }
  return {m2, bl_max};  // unreachable: the minimum is attained above
}

// kMax: v(bl) = max(F, R) with F(bl) = left[bl] exactly non-increasing and
// R(bl) = right[min(rem - bl, cap_right)] exactly non-decreasing, so v
// falls until the first crossing (first bl with R > F) and rises after it.
// Everything reduces to two exact binary searches on monotone predicates:
// locate the crossing c, then the first split attaining
// min(F(c - 1), R(c)).
inline BudgetSplit MaxFast(const double* left, std::size_t bl_max,
                           const double* right, std::size_t cap_right,
                           std::size_t rem) {
  auto value_at = [&](std::size_t bl) {
    return std::max(left[bl], right[std::min(rem - bl, cap_right)]);
  };
  // c = first bl in [0, bl_max] with R(bl) > F(bl); bl_max + 1 if none.
  std::size_t lo = 0;
  std::size_t hi = bl_max + 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (right[std::min(rem - mid, cap_right)] > left[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t c = lo;
  if (c == 0) {
    // v is non-decreasing on the whole range: bl = 0 is first-attaining.
    return {value_at(0), 0};
  }

  // On [0, c) R <= F, so v = F there and the prefix minimum is F(c - 1).
  const double prefix_min = left[c - 1];
  const double suffix_min =
      c <= bl_max ? right[std::min(rem - c, cap_right)]
                  : std::numeric_limits<double>::infinity();
  if (prefix_min <= suffix_min) {
    // First bl with F(bl) <= prefix_min (F non-increasing => monotone
    // predicate); F(bl) >= F(c - 1) on the prefix makes it the first
    // attaining split overall.
    std::size_t flo = 0;
    std::size_t fhi = c - 1;
    while (flo < fhi) {
      const std::size_t mid = flo + (fhi - flo) / 2;
      if (left[mid] <= prefix_min) {
        fhi = mid;
      } else {
        flo = mid + 1;
      }
    }
    return {value_at(flo), flo};
  }
  // The prefix values all exceed R(c), and v = R is non-decreasing from c.
  return {value_at(c), c};
}

}  // namespace budget_split_internal

/// Candidate-count cutoff of MinBudgetSplit's hybrid dispatch: below it
/// the scalar scan wins on sheer simplicity (one predictable pass beats
/// reduction or bisection set-up), so the fast kernel runs the identical
/// reference scan there — the asymptotic machinery engages only where it
/// pays.
inline constexpr std::size_t kSmallBudgetSplit = 32;

/// Runs one budget-split minimization with the chosen kernel. Requires
/// bl_max <= rem. The kBudgetSplit fast paths rely on `left` and `right`
/// being non-increasing in the budget index — true by construction for the
/// wavelet DPs' optimal-error tables, exactly (not just mathematically):
/// granting a child one more coefficient re-minimizes over a pointwise-<=
/// candidate set, and FP min/max/+ are monotone, so the computed tables
/// inherit monotonicity bit-for-bit. That makes the kMax bisection exact
/// (no verification sweep needed, unlike the histogram kMax cell whose
/// cost columns can be non-monotone by rounding).
inline BudgetSplit MinBudgetSplit(DpCombiner combiner, const double* left,
                                  std::size_t bl_max, const double* right,
                                  std::size_t cap_right, std::size_t rem,
                                  WaveletSplitKernel kernel) {
  if (kernel != WaveletSplitKernel::kReference &&
      bl_max >= kSmallBudgetSplit) {
    return combiner == DpCombiner::kSum
               ? budget_split_internal::SumFast(left, bl_max, right,
                                                cap_right, rem)
               : budget_split_internal::MaxFast(left, bl_max, right,
                                                cap_right, rem);
  }
  return budget_split_internal::Reference(combiner, left, bl_max, right,
                                          cap_right, rem);
}

}  // namespace probsyn

#endif  // PROBSYN_CORE_DP_KERNELS_H_
