#ifndef PROBSYN_CORE_DP_KERNELS_H_
#define PROBSYN_CORE_DP_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/bucket_oracle.h"
#include "core/histogram_dp.h"

namespace probsyn {

class ThreadPool;

/// Reusable storage arena for the exact-DP solver: the err/choice/rep
/// layers plus the bucket-cost column buffers of the sequential and blocked
/// parallel paths. Repeated solves through the same workspace reach zero
/// steady-state allocation — buffers are resized (never shrunk below
/// capacity) and every cell is overwritten before it is read, so no
/// clearing pass is needed either.
///
/// A workspace serves ONE solve at a time; results borrow its storage (see
/// HistogramDpResult), so reuse only after the previous result is consumed.
/// The solver's internal parallelism is fine — a workspace is not tied to a
/// thread — but two concurrent solves need two workspaces (DpWorkspacePool).
class DpWorkspace {
 public:
  DpWorkspace() = default;

  DpWorkspace(const DpWorkspace&) = delete;
  DpWorkspace& operator=(const DpWorkspace&) = delete;

 private:
  friend HistogramDpResult SolveHistogramDpWithKernel(const BucketCostOracle&,
                                                      std::size_t,
                                                      DpCombiner,
                                                      const DpKernelOptions&);

  std::vector<double> err_;            // cap x n, row-major
  std::vector<std::int64_t> choice_;   // cap x n
  std::vector<double> rep_;            // cap x n
  std::vector<double> cost_cols_;      // n (sequential) or block x n
  std::vector<double> rep_cols_;       // same shape as cost_cols_
  // Chunk-minimum bound tables of the fast kMax cell (see dp_kernels.cc):
  // per-layer minima of the err rows and per-column minima of the cost
  // columns, at 512-split granularity.
  std::vector<double> layer_cmin_;     // cap x ceil(n/512)
  std::vector<double> cost_cmin_;     // ceil(n/512) or block x ceil(n/512)
};

/// Mutex-guarded free list of DpWorkspaces for engines whose const entry
/// points may run on many user threads at once: each solve leases a
/// workspace (creating one only when the list is empty) and returns it on
/// destruction of the lease, so steady-state batches allocate nothing.
class DpWorkspacePool {
 public:
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), workspace_(std::move(other.workspace_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();  // return the current workspace, don't destroy it
        pool_ = other.pool_;
        workspace_ = std::move(other.workspace_);
      }
      return *this;
    }
    ~Lease() { Release(); }

    DpWorkspace* get() const { return workspace_.get(); }

   private:
    friend class DpWorkspacePool;
    Lease(DpWorkspacePool* pool, std::unique_ptr<DpWorkspace> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}

    void Release();

    DpWorkspacePool* pool_;
    std::unique_ptr<DpWorkspace> workspace_;
  };

  Lease Acquire();

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<DpWorkspace>> free_;
};

/// Maps an oracle's dynamic type to its specialized kernel; kReference for
/// oracle types without one. The engine's planner records the factory-known
/// kind instead (OracleBundle::kernel) and skips this dynamic_cast chain.
DpKernelKind SelectDpKernel(const BucketCostOracle& oracle);

/// Knobs of the kernel-level solve entry point. Defaults reproduce
/// SolveHistogramDp(oracle, max_buckets, combiner): auto-selected kernel,
/// sequential, self-owned storage.
struct DpKernelOptions {
  /// Non-null runs the blocked data-parallel DP (bit-identical output).
  ThreadPool* pool = nullptr;
  /// Non-null reuses the given arena; the result then only borrows its
  /// storage (see HistogramDpResult lifetime note).
  DpWorkspace* workspace = nullptr;
  /// kAuto resolves via SelectDpKernel. A concrete kind must match the
  /// oracle's dynamic type (checked); kReference always applies and is the
  /// parity baseline the kernel tests compare against.
  DpKernelKind kernel = DpKernelKind::kAuto;
};

/// The exact-DP solver behind SolveHistogramDp, with explicit control over
/// kernel choice, parallelism, and storage reuse. All configurations are
/// bit-identical in costs, traceback choices, and representatives; the
/// specialized kernels only change how fast the table is filled:
///
///  * column fills run devirtualized — each concrete oracle's prefix-sum
///    tables are hoisted into flat spans (SSE/SSRE), its ternary search is
///    inlined over the raw U/D banks (SAE/SARE), or its concrete sweep is
///    driven directly (tuple SSE) — instead of one virtual
///    Cost()/Extend() call per cell;
///  * kSum transitions use a chunked branch-free min-reduction that
///    auto-vectorizes, then resolve the reference tie-break (first index
///    attaining the minimum, inherit wins ties) inside the winning chunk;
///  * kMax transitions exploit that prefix errors are non-decreasing and
///    bucket costs non-increasing in the split point: the optimal split is
///    bisected at the crossing in O(log j) instead of scanned in O(j),
///    with the same first-attaining-index tie-break.
HistogramDpResult SolveHistogramDpWithKernel(const BucketCostOracle& oracle,
                                             std::size_t max_buckets,
                                             DpCombiner combiner,
                                             const DpKernelOptions& options);

}  // namespace probsyn

#endif  // PROBSYN_CORE_DP_KERNELS_H_
