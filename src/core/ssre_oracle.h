#ifndef PROBSYN_CORE_SSRE_ORACLE_H_
#define PROBSYN_CORE_SSRE_ORACLE_H_

#include <cstddef>
#include <span>

#include "core/bucket_oracle.h"
#include "model/value_pdf.h"
#include "util/prefix_sums.h"

namespace probsyn {

/// Sum-Squared-Relative-Error bucket oracle (paper section 3.2).
///
/// The expected bucket cost is a quadratic in the representative bhat:
///     SSRE(b, bhat) = X - 2 bhat Y + bhat^2 Z,
/// over the precomputed item-prefix arrays (paper's X/Y/Z)
///     X[e] = sum_{i<=e} sum_j Pr[g_i=v_j] w(v_j) v_j^2,
///     Y[e] = sum_{i<=e} sum_j Pr[g_i=v_j] w(v_j) v_j,
///     Z[e] = sum_{i<=e} sum_j Pr[g_i=v_j] w(v_j),
/// with w(v) = 1/max(c^2, v^2); optimal bhat = Y/Z, optimal cost
/// X - Y^2/Z. O(m) preprocessing, O(1) per bucket. Tuple-pdf input goes
/// through the induced value pdf first (the cost is per-item decomposable,
/// section 3.2 "Tuple pdf model").
class SsreOracle final : public BucketCostOracle {
 public:
  /// `weights` are optional per-item workload weights (empty = uniform);
  /// they fold multiplicatively into the X/Y/Z arrays.
  SsreOracle(const ValuePdfInput& input, double sanity_c,
             std::span<const double> weights = {});

  std::size_t domain_size() const override { return n_; }
  BucketCost Cost(std::size_t s, std::size_t e) const override;

  /// Raw X/Y/Z prefix tables for the devirtualized DP kernel
  /// (core/dp_kernels.cc), which replicates Cost() over flat spans.
  const PrefixSums& x_prefix() const { return x_; }
  const PrefixSums& y_prefix() const { return y_; }
  const PrefixSums& z_prefix() const { return z_; }

 private:
  std::size_t n_;
  PrefixSums x_;
  PrefixSums y_;
  PrefixSums z_;
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_SSRE_ORACLE_H_
