#include "core/wavelet_unrestricted.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/haar.h"
#include "core/point_error.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

namespace {

// Per-(state, budget) traceback record.
struct Decision {
  bool keep = false;
  std::int32_t offset = 0;  // grid-index offset k; children get g +- k
  std::uint16_t left_budget = 0;
  std::uint16_t right_budget = 0;
};

class UnrestrictedSolver {
 public:
  UnrestrictedSolver(const ValuePdfInput& padded, std::size_t budget,
                     const SynopsisOptions& options,
                     const UnrestrictedWaveletOptions& dp_options)
      : n_(padded.domain_size()),
        budget_(budget),
        metric_(options.metric),
        cumulative_(IsCumulativeMetric(options.metric)),
        kernel_(dp_options.kernel == WaveletSplitKernel::kAuto
                    ? WaveletSplitKernel::kBudgetSplit
                    : dp_options.kernel),
        ctx_(dp_options.context),
        tables_(padded, options.sanity_c) {
    if (options.HasWorkload()) {
      weights_ = options.workload;
      weights_.resize(n_, 0.0);  // padded items carry zero workload
    }
    BuildGrid(padded, dp_options);
    PrecomputeLeafErrors();
  }

  WaveletSplitKernel kernel() const { return kernel_; }

  StatusOr<UnrestrictedWaveletResult> Solve() {
    if (n_ == 1) return SolveSingleton();

    node_cost_.assign(n_, {});
    node_decision_.assign(n_, {});
    // Bottom-up over detail nodes; children of j are 2j / 2j+1.
    for (std::size_t j = n_ - 1; j >= 1; --j) {
      if (StopRequested(ctx_)) {
        return ctx_->StopStatus("unrestricted-wavelet-dp", "node",
                                n_ - 1 - j, n_ - 1);
      }
      SolveNode(j);
    }
    if (StopRequested(ctx_)) {
      return ctx_->StopStatus("unrestricted-wavelet-dp", "node", n_ - 1,
                              n_ - 1);
    }

    // Root: optionally spend one coefficient on c0 = value * sqrt(n).
    const std::size_t cap1 = Cap(1);
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_g = zero_index_;
    bool best_keep0 = false;
    {
      std::size_t b1 = std::min(budget_, cap1);
      double drop = NodeBest(1, zero_index_, b1);
      best = drop;
    }
    if (budget_ >= 1) {
      std::size_t b1 = std::min(budget_ - 1, cap1);
      for (std::size_t g = 0; g < grid_.size(); ++g) {
        double err = NodeBest(1, g, b1);
        if (err < best) {
          best = err;
          best_g = g;
          best_keep0 = true;
        }
      }
    }

    std::vector<WaveletCoefficient> kept;
    if (best_keep0) {
      kept.push_back({0, grid_[best_g] * std::sqrt(static_cast<double>(n_))});
    }
    std::size_t b1 = std::min(budget_ - (best_keep0 ? 1 : 0), cap1);
    Trace(1, best_g, b1, kept);
    return UnrestrictedWaveletResult{WaveletSynopsis(n_, n_, std::move(kept)),
                                     best};
  }

 private:
  void BuildGrid(const ValuePdfInput& padded,
                 const UnrestrictedWaveletOptions& dp_options) {
    std::vector<double> values = padded.ValueGrid();
    double lo = values.front(), hi = values.back();
    if (hi <= lo) hi = lo + 1.0;
    double pad = dp_options.range_padding * (hi - lo);
    lo = std::min(0.0, lo - pad);
    hi = hi + pad;
    std::size_t q = std::max<std::size_t>(3, dp_options.grid_points);
    step_ = (hi - lo) / static_cast<double>(q - 1);
    // Align so that 0 is exactly a grid point (the "drop everything"
    // reconstruction must be representable).
    zero_index_ = static_cast<std::size_t>(std::llround((0.0 - lo) / step_));
    zero_index_ = std::min(zero_index_, q - 1);
    grid_.resize(q);
    for (std::size_t g = 0; g < q; ++g) {
      grid_[g] =
          (static_cast<double>(g) - static_cast<double>(zero_index_)) * step_;
    }
  }

  void PrecomputeLeafErrors() {
    const std::size_t q = grid_.size();
    leaf_error_.assign(n_ * q, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      double phi = weights_.empty() ? 1.0 : weights_[i];
      for (std::size_t g = 0; g < q; ++g) {
        leaf_error_[i * q + g] =
            phi * tables_.ExpectedPointError(metric_, i, grid_[g]);
      }
    }
  }

  UnrestrictedWaveletResult SolveSingleton() {
    double best = leaf_error_[zero_index_];
    std::size_t best_g = zero_index_;
    if (budget_ >= 1) {
      for (std::size_t g = 0; g < grid_.size(); ++g) {
        if (leaf_error_[g] < best) {
          best = leaf_error_[g];
          best_g = g;
        }
      }
    }
    std::vector<WaveletCoefficient> kept;
    if (budget_ >= 1 && grid_[best_g] != 0.0) {
      kept.push_back({0, grid_[best_g]});
    }
    return {WaveletSynopsis(1, 1, std::move(kept)), best};
  }

  std::size_t Cap(std::size_t j) const {
    SupportRange r = CoefficientSupport(j, n_);
    return std::min(budget_, (r.hi - r.lo) - 1);
  }

  double NodeBest(std::size_t j, std::size_t g, std::size_t b) const {
    return node_cost_[j][g * (Cap(j) + 1) + std::min(b, Cap(j))];
  }

  // Child row for incoming grid index g: a solved node table (indexed by
  // budget) or the single budget-independent leaf-error cell (cap 0) —
  // flat spans for the budget-split kernel.
  const double* ChildRow(std::size_t child, std::size_t child_cap,
                         std::size_t g) const {
    if (child >= n_) return &leaf_error_[(child - n_) * grid_.size() + g];
    return node_cost_[child].data() + g * (child_cap + 1);
  }

  void SolveNode(std::size_t j) {
    const std::size_t q = grid_.size();
    const std::size_t cap = Cap(j);
    node_cost_[j].assign(q * (cap + 1),
                         std::numeric_limits<double>::infinity());
    node_decision_[j].assign(q * (cap + 1), {});
    const std::size_t left = 2 * j, right = 2 * j + 1;
    const std::size_t cap_left = left < n_ ? Cap(left) : 0;
    const std::size_t cap_right = right < n_ ? Cap(right) : 0;
    const DpCombiner combiner =
        cumulative_ ? DpCombiner::kSum : DpCombiner::kMax;

    for (std::size_t g = 0; g < q; ++g) {
      if ((g & 7u) == 0 && StopRequested(ctx_)) return;  // tables abandoned
      double* row = &node_cost_[j][g * (cap + 1)];
      Decision* dec = &node_decision_[j][g * (cap + 1)];
      for (std::size_t b = 0; b <= cap; ++b) {
        // Option 1: drop c_j; children inherit g. The budget split runs
        // through the kernel layer (first-attaining tie-break preserved).
        BudgetSplit split = MinBudgetSplit(
            combiner, ChildRow(left, cap_left, g), std::min(b, cap_left),
            ChildRow(right, cap_right, g), cap_right, b, kernel_);
        double best = split.value;
        Decision choice{
            false, 0, static_cast<std::uint16_t>(split.left_budget),
            static_cast<std::uint16_t>(
                std::min(b - split.left_budget, cap_right))};
        // Option 2: keep c_j = k * step / scale_j; children land on grid
        // points g + k and g - k. k stays a scalar loop (each offset pair
        // is a fresh split); ascending k keeps the reference tie order.
        if (b >= 1) {
          std::size_t rem = b - 1;
          std::int64_t max_off = static_cast<std::int64_t>(
              std::min(g, q - 1 - g));
          for (std::int64_t k = -max_off; k <= max_off; ++k) {
            if (k == 0) continue;  // identical to dropping, wastes budget
            std::size_t gl = static_cast<std::size_t>(
                static_cast<std::int64_t>(g) + k);
            std::size_t gr = static_cast<std::size_t>(
                static_cast<std::int64_t>(g) - k);
            BudgetSplit ks = MinBudgetSplit(
                combiner, ChildRow(left, cap_left, gl),
                std::min(rem, cap_left), ChildRow(right, cap_right, gr),
                cap_right, rem, kernel_);
            if (ks.value < best) {
              best = ks.value;
              choice = {true, static_cast<std::int32_t>(k),
                        static_cast<std::uint16_t>(ks.left_budget),
                        static_cast<std::uint16_t>(
                            std::min(rem - ks.left_budget, cap_right))};
            }
          }
        }
        row[b] = best;
        dec[b] = choice;
      }
    }
  }

  void Trace(std::size_t j, std::size_t g, std::size_t b,
             std::vector<WaveletCoefficient>& out) const {
    if (j >= n_) return;
    const std::size_t cap = Cap(j);
    b = std::min(b, cap);
    const Decision& d = node_decision_[j][g * (cap + 1) + b];
    std::size_t gl = g, gr = g;
    if (d.keep) {
      double scale = LeafContributionScale(j, n_);
      out.push_back({j, static_cast<double>(d.offset) * step_ / scale});
      gl = static_cast<std::size_t>(static_cast<std::int64_t>(g) + d.offset);
      gr = static_cast<std::size_t>(static_cast<std::int64_t>(g) - d.offset);
    }
    Trace(2 * j, gl, d.left_budget, out);
    Trace(2 * j + 1, gr, d.right_budget, out);
  }

  std::size_t n_;
  std::size_t budget_;
  ErrorMetric metric_;
  bool cumulative_;
  WaveletSplitKernel kernel_;
  const ExecContext* ctx_;  // null = unbounded solve
  PointErrorTables tables_;

  std::vector<double> grid_;
  double step_ = 1.0;
  std::size_t zero_index_ = 0;
  std::vector<double> weights_;     // empty = uniform
  std::vector<double> leaf_error_;  // [item * q + g]

  // Per node j: cost/decision indexed by [g * (cap_j + 1) + b].
  std::vector<std::vector<double>> node_cost_;
  std::vector<std::vector<Decision>> node_decision_;
};

ValuePdfInput PadInput(const ValuePdfInput& input) {
  std::size_t n = NextPowerOfTwo(input.domain_size());
  if (n == input.domain_size()) return input;
  std::vector<ValuePdf> items = input.items();
  items.reserve(n);
  while (items.size() < n) items.push_back(ValuePdf::PointMass(0.0));
  return ValuePdfInput(std::move(items));
}

}  // namespace

StatusOr<UnrestrictedWaveletResult> BuildUnrestrictedWaveletDp(
    const ValuePdfInput& input, std::size_t num_coefficients,
    const SynopsisOptions& options,
    const UnrestrictedWaveletOptions& dp_options) {
  PROBSYN_RETURN_IF_ERROR(options.Validate());
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  if (options.HasWorkload() &&
      options.workload.size() != input.domain_size()) {
    return Status::InvalidArgument("workload size must equal the domain size");
  }
  if (dp_options.grid_points < 3) {
    return Status::InvalidArgument("need at least 3 grid points");
  }
  if (!(dp_options.range_padding >= 0.0)) {
    return Status::InvalidArgument("range padding must be nonnegative");
  }

  ValuePdfInput padded = PadInput(input);
  UnrestrictedSolver solver(padded, num_coefficients, options, dp_options);
  PROBSYN_ASSIGN_OR_RETURN(UnrestrictedWaveletResult result, solver.Solve());
  result.kernel = solver.kernel();
  result.synopsis = WaveletSynopsis(
      input.domain_size(), padded.domain_size(),
      std::vector<WaveletCoefficient>(result.synopsis.coefficients()));
  return result;
}

}  // namespace probsyn
