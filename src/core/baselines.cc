#include "core/baselines.h"

#include "model/worlds.h"

namespace probsyn {

std::vector<double> ExpectationFrequencies(const ValuePdfInput& input) {
  return input.ExpectedFrequencies();
}

std::vector<double> ExpectationFrequencies(const TuplePdfInput& input) {
  return input.ExpectedFrequencies();
}

std::vector<double> SampleWorldFrequencies(const ValuePdfInput& input,
                                           Rng& rng) {
  return ValuePdfWorldSampler(input).Sample(rng);
}

std::vector<double> SampleWorldFrequencies(const TuplePdfInput& input,
                                           Rng& rng) {
  return TuplePdfWorldSampler(input).Sample(rng);
}

namespace {

StatusOr<Histogram> DeterministicHistogram(std::vector<double> freqs,
                                           const SynopsisOptions& options,
                                           std::size_t num_buckets) {
  auto builder =
      HistogramBuilder::CreateDeterministic(freqs, options, num_buckets);
  if (!builder.ok()) return builder.status();
  return builder->Extract(num_buckets);
}

}  // namespace

StatusOr<Histogram> BuildExpectationHistogram(const ValuePdfInput& input,
                                              const SynopsisOptions& options,
                                              std::size_t num_buckets) {
  return DeterministicHistogram(ExpectationFrequencies(input), options,
                                num_buckets);
}

StatusOr<Histogram> BuildExpectationHistogram(const TuplePdfInput& input,
                                              const SynopsisOptions& options,
                                              std::size_t num_buckets) {
  return DeterministicHistogram(ExpectationFrequencies(input), options,
                                num_buckets);
}

StatusOr<Histogram> BuildSampledWorldHistogram(const ValuePdfInput& input,
                                               const SynopsisOptions& options,
                                               std::size_t num_buckets,
                                               Rng& rng) {
  return DeterministicHistogram(SampleWorldFrequencies(input, rng), options,
                                num_buckets);
}

StatusOr<Histogram> BuildSampledWorldHistogram(const TuplePdfInput& input,
                                               const SynopsisOptions& options,
                                               std::size_t num_buckets,
                                               Rng& rng) {
  return DeterministicHistogram(SampleWorldFrequencies(input, rng), options,
                                num_buckets);
}

namespace {

// Shared equi-depth construction: boundaries from expected-mass quantiles,
// representatives from the metric's bucket oracle.
template <typename Input>
StatusOr<Histogram> EquiDepthImpl(const Input& input,
                                  const SynopsisOptions& options,
                                  std::size_t num_buckets) {
  if (num_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  auto bundle = MakeBucketOracle(input, options);
  if (!bundle.ok()) return bundle.status();
  const std::size_t n = input.domain_size();
  num_buckets = std::min(num_buckets, n);

  std::vector<double> mean = input.ExpectedFrequencies();
  double total = 0.0;
  for (double m : mean) total += m;

  std::vector<HistogramBucket> buckets;
  buckets.reserve(num_buckets);
  double mass = 0.0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mass += mean[i];
    std::size_t remaining_items = n - i - 1;
    std::size_t remaining_buckets = num_buckets - buckets.size() - 1;
    double target = total * static_cast<double>(buckets.size() + 1) /
                    static_cast<double>(num_buckets);
    bool close_here =
        (mass >= target && remaining_buckets > 0) ||
        remaining_items == remaining_buckets || i + 1 == n;
    if (close_here) {
      buckets.push_back({start, i, 0.0});
      start = i + 1;
      if (buckets.size() == num_buckets) break;
    }
  }
  // Guard against pathological mass distributions leaving a tail.
  if (buckets.empty() || buckets.back().end != n - 1) {
    if (!buckets.empty() && buckets.back().end + 1 <= n - 1) {
      buckets.push_back({buckets.back().end + 1, n - 1, 0.0});
    } else if (buckets.empty()) {
      buckets.push_back({0, n - 1, 0.0});
    }
  }
  for (HistogramBucket& b : buckets) {
    b.representative = bundle->oracle->Cost(b.start, b.end).representative;
  }
  Histogram histogram(std::move(buckets));
  PROBSYN_RETURN_IF_ERROR(histogram.Validate(n));
  return histogram;
}

}  // namespace

StatusOr<Histogram> BuildEquiDepthHistogram(const ValuePdfInput& input,
                                            const SynopsisOptions& options,
                                            std::size_t num_buckets) {
  return EquiDepthImpl(input, options, num_buckets);
}

StatusOr<Histogram> BuildEquiDepthHistogram(const TuplePdfInput& input,
                                            const SynopsisOptions& options,
                                            std::size_t num_buckets) {
  return EquiDepthImpl(input, options, num_buckets);
}

StatusOr<WaveletSynopsis> BuildSampledWorldWavelet(
    const ValuePdfInput& input, std::size_t num_coefficients, Rng& rng) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  return BuildSseWaveletFromFrequencies(SampleWorldFrequencies(input, rng),
                                        num_coefficients);
}

StatusOr<WaveletSynopsis> BuildSampledWorldWavelet(
    const TuplePdfInput& input, std::size_t num_coefficients, Rng& rng) {
  PROBSYN_RETURN_IF_ERROR(input.Validate());
  if (input.domain_size() == 0) {
    return Status::InvalidArgument("empty domain");
  }
  return BuildSseWaveletFromFrequencies(SampleWorldFrequencies(input, rng),
                                        num_coefficients);
}

}  // namespace probsyn
