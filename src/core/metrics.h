#ifndef PROBSYN_CORE_METRICS_H_
#define PROBSYN_CORE_METRICS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace probsyn {

/// The synopsis error objectives of the paper (section 2.2 for the
/// deterministic definitions, section 2.3 for their possible-worlds lift):
///
///   cumulative:  E_W[ sum_i err(g_i, ghat_i) ]
///   maximum:     max_i E_W[ err(g_i, ghat_i) ]
enum class ErrorMetric {
  kSse,   ///< Sum-Squared-Error (V-optimal), section 3.1.
  kSsre,  ///< Sum-Squared-Relative-Error, section 3.2.
  kSae,   ///< Sum-Absolute-Error, section 3.3.
  kSare,  ///< Sum-Absolute-Relative-Error, section 3.4.
  kMae,   ///< Maximum-Absolute-Error, section 3.6.
  kMare,  ///< Maximum-Absolute-Relative-Error, section 3.6.
};

/// The paper's SSE objective admits two readings, and the paper itself uses
/// both (see DESIGN.md section 8 item 3 discussion):
///
/// * `kFixedRepresentative` — the representative b-hat is part of the
///   synopsis and constant across worlds, so the bucket cost is
///   E_W[sum (g_i - bhat)^2], minimized at bhat = (1/n_b) E[sum g_i]. This
///   matches the problem statement in section 2.3 and is per-item
///   decomposable (no cross-item terms) in every model.
/// * `kWorldMean` — the paper's equation (5): bucket cost
///   sum E[g_i^2] - (1/n_b) E[(sum g_i)^2] = n_b * E_W[sample variance],
///   i.e. the expected within-bucket dissimilarity when each world is
///   scored against its own bucket mean. This is the quantity the paper's
///   worked example (29/36) computes, and in the tuple-pdf model it feels
///   the within-tuple anticorrelation between items.
///
/// Both are supported; kWorldMean is the paper-faithful default for SSE.
enum class SseVariant {
  kWorldMean,
  kFixedRepresentative,
};

/// True for SSE/SSRE/SAE/SARE (objective sums per-item errors; the DP
/// combiner h() is +). False for MAE/MARE (h() is max).
bool IsCumulativeMetric(ErrorMetric metric);

/// True for the metrics whose per-item error is scaled by
/// 1/max(c, |g_i|) or its square.
bool IsRelativeMetric(ErrorMetric metric);

/// Stable display name ("SSE", "SSRE", ...).
const char* ErrorMetricName(ErrorMetric metric);

/// Parses the display name back; inverse of ErrorMetricName.
StatusOr<ErrorMetric> ParseErrorMetric(const std::string& name);

/// Point error err(g, ghat) on a grounded (deterministic) frequency —
/// the per-world integrand. For SSE/SAE c is ignored.
double PointError(ErrorMetric metric, double g, double ghat, double c);

/// Options shared by all synopsis builders.
struct SynopsisOptions {
  ErrorMetric metric = ErrorMetric::kSse;
  /// The sanity-bound constant c of the relative-error metrics
  /// (sections 2.2, 3.2): denominators are max(c, |g|) (or its square).
  double sanity_c = 1.0;
  /// Which SSE objective to use when metric == kSse.
  SseVariant sse_variant = SseVariant::kWorldMean;
  /// Optional per-item query-workload weights phi_i — the extension the
  /// paper's concluding remarks call for ("in addition to a distribution
  /// over the input data, there is also a distribution over the queries").
  /// Empty means uniform. When set (size must equal the domain size), the
  /// objectives become
  ///     cumulative:  E_W[ sum_i phi_i err(g_i, ghat_i) ]
  ///     maximum:     max_i phi_i E_W[ err(g_i, ghat_i) ]
  /// Weights must be nonnegative with at least one positive. Supported by
  /// every metric except the kWorldMean SSE variant (whose per-world
  /// bucket-mean objective has no per-item decomposition to weight).
  std::vector<double> workload;

  bool HasWorkload() const { return !workload.empty(); }

  Status Validate() const;
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_METRICS_H_
