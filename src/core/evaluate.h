#ifndef PROBSYN_CORE_EVALUATE_H_
#define PROBSYN_CORE_EVALUATE_H_

#include <cstddef>
#include <span>

#include "core/bucket_oracle.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/point_error.h"
#include "core/wavelet.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// Exact expected error of an arbitrary histogram synopsis (its fixed
/// representatives included) under any metric:
///   cumulative:  E_W[sum_i err(g_i, ghat_i)] = sum_i E_W[err(g_i, ghat_i)]
///   maximum:     max_i E_W[err(g_i, ghat_i)]
/// computed analytically from per-item marginals. This is how section 5's
/// experiments re-cost the Expectation / Sampled-World baselines under the
/// true distribution. O(n log |V|).
/// `weights` are optional per-item workload weights (empty = uniform),
/// matching SynopsisOptions::workload.
double EvaluateHistogram(const PointErrorTables& tables, const Histogram& h,
                         ErrorMetric metric,
                         std::span<const double> weights = {});
StatusOr<double> EvaluateHistogram(const ValuePdfInput& input,
                                   const Histogram& h,
                                   const SynopsisOptions& options);
/// Tuple-pdf overload. Exact for every metric: with fixed representatives
/// all six objectives are per-item decomposable, so the induced value pdf
/// suffices even for SSE.
StatusOr<double> EvaluateHistogram(const TuplePdfInput& input,
                                   const Histogram& h,
                                   const SynopsisOptions& options);

/// The paper's SSE objective in its equation-(5) (world-mean) form:
///   sum_buckets [ sum_i E[g_i^2] - E[(sum_i g_i)^2] / n_b ],
/// which depends only on the bucket *boundaries* (each possible world is
/// scored against its own bucket means). Exact in both models, including
/// the within-tuple anticorrelation for tuple-pdf input.
StatusOr<double> EvaluateHistogramWorldMeanSse(const ValuePdfInput& input,
                                               const Histogram& h);
StatusOr<double> EvaluateHistogramWorldMeanSse(const TuplePdfInput& input,
                                               const Histogram& h);

/// Exact expected error of a wavelet synopsis. The synopsis' padded
/// transform domain is evaluated in full — items beyond the input domain
/// are deterministic zeros, matching the selection objective. For kSse this
/// realizes E_W[SSE] = sum_{i in I} sigma_ci^2 + sum_{i not in I} E[c_i^2]
/// of section 4.1 (evaluated in the data domain).
StatusOr<double> EvaluateWavelet(const ValuePdfInput& input,
                                 const WaveletSynopsis& synopsis,
                                 const SynopsisOptions& options);
StatusOr<double> EvaluateWavelet(const TuplePdfInput& input,
                                 const WaveletSynopsis& synopsis,
                                 const SynopsisOptions& options);

/// The Figure-4 quality measure: percentage of expected-coefficient energy
/// NOT captured by the synopsis, 100 * sum_{i not in I} mu_i^2 / sum mu_i^2.
/// `mu` is the full expected-coefficient vector (ExpectedHaarCoefficients).
double WaveletUnretainedEnergyPercent(std::span<const double> mu,
                                      const WaveletSynopsis& synopsis);

/// The paper's error-% normalization for histograms (section 5.1): a
/// histogram's cost is placed between the 1-bucket cost (worst) and the
/// n-bucket cost (best achievable — NONZERO on uncertain data, since even
/// per-item buckets must commit to one representative).
struct ErrorScale {
  double max_cost = 0.0;  ///< 1-bucket optimal cost.
  double min_cost = 0.0;  ///< n-bucket optimal cost.

  /// 100 * (cost - min) / (max - min), clamped to [0, 100] against fp
  /// drift; 0 when the scale is degenerate.
  double Percent(double cost) const;
};

/// Computes the scale from any bucket oracle (1-bucket vs per-item buckets).
ErrorScale ComputeErrorScale(const BucketCostOracle& oracle,
                             bool cumulative_metric);

}  // namespace probsyn

#endif  // PROBSYN_CORE_EVALUATE_H_
