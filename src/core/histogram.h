#ifndef PROBSYN_CORE_HISTOGRAM_H_
#define PROBSYN_CORE_HISTOGRAM_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace probsyn {

/// One histogram bucket b_k = (s_k, e_k) with representative b-hat
/// (paper section 2.2). Spans items s..e inclusive.
struct HistogramBucket {
  std::size_t start = 0;
  std::size_t end = 0;
  double representative = 0.0;

  std::size_t width() const { return end - start + 1; }

  friend bool operator==(const HistogramBucket&, const HistogramBucket&) =
      default;
};

/// A B-bucket histogram synopsis: buckets partition the ordered domain [n]
/// (s_1 = 0, e_B = n-1, s_{k+1} = e_k + 1).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<HistogramBucket> buckets)
      : buckets_(std::move(buckets)) {}

  const std::vector<HistogramBucket>& buckets() const { return buckets_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Domain size covered (0 for an empty histogram).
  std::size_t domain_size() const {
    return buckets_.empty() ? 0 : buckets_.back().end + 1;
  }

  /// Checks the partition invariants against a domain of size n.
  Status Validate(std::size_t n) const;

  /// The synopsis estimate ghat_i: the representative of i's bucket.
  /// O(log B).
  double Estimate(std::size_t i) const;

  /// Index of the bucket containing item i. O(log B).
  std::size_t BucketIndexOf(std::size_t i) const;

  /// Estimate of sum_{i=a..b} g_i — the canonical approximate range-count
  /// query a histogram synopsis answers. O(log B + buckets overlapped).
  double EstimateRangeSum(std::size_t a, std::size_t b) const;

  /// Materializes [ghat_0, ..., ghat_{n-1}].
  std::vector<double> ToFrequencyVector() const;

  /// Human-readable one-line-per-bucket dump.
  std::string ToString() const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::vector<HistogramBucket> buckets_;
};

/// Enumerates every partition of [n] into exactly B contiguous buckets and
/// invokes `fn` with the bucket boundary list (end indices, ascending; the
/// last is always n-1). Exponential-in-B test oracle for DP optimality.
void ForEachBucketization(
    std::size_t n, std::size_t num_buckets,
    const std::function<void(const std::vector<std::size_t>&)>& fn);

}  // namespace probsyn

#endif  // PROBSYN_CORE_HISTOGRAM_H_
