#include "core/histogram_dp.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace probsyn {

namespace {

double Combine(DpCombiner combiner, double prefix, double bucket) {
  return combiner == DpCombiner::kSum ? prefix + bucket
                                      : std::max(prefix, bucket);
}

// One DP cell for layer b >= 2: err[b-1][j] over splits l < j plus the
// inherit transition. `prev` is layer b-2 (budget b-1), `costcol[s]` is
// Cost([s, j]). This single scalar scan is shared by the sequential and
// parallel solvers, which is what makes their outputs bit-identical.
inline void ComputeCell(DpCombiner combiner, const double* prev,
                        const double* costcol, std::size_t j, double* err_out,
                        std::int64_t* choice_out) {
  // Start from "b-1 buckets were already enough".
  double best = prev[j];
  std::int64_t best_choice = HistogramDpResult::kInheritChoice;
  for (std::size_t l = 0; l < j; ++l) {
    double v = Combine(combiner, prev[l], costcol[l + 1]);
    if (v < best) {
      best = v;
      best_choice = static_cast<std::int64_t>(l);
    }
  }
  *err_out = best;
  *choice_out = best_choice;
}

}  // namespace

double HistogramDpResult::OptimalCost(std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && n_ > 0);
  std::size_t b = std::min(num_buckets, err_.size());
  return err_[b - 1][n_ - 1];
}

Histogram HistogramDpResult::ExtractHistogram(std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && n_ > 0);
  std::size_t layer = std::min(num_buckets, err_.size());
  std::vector<HistogramBucket> buckets;
  std::size_t j = n_ - 1;
  for (;;) {
    std::int64_t c = choice_[layer - 1][j];
    if (c == kInheritChoice) {
      PROBSYN_CHECK(layer > 1);
      --layer;
      continue;
    }
    if (c == kWholePrefix) {
      buckets.push_back({0, j, 0.0});
      break;
    }
    std::size_t l = static_cast<std::size_t>(c);
    buckets.push_back({l + 1, j, 0.0});
    j = l;
    PROBSYN_CHECK(layer > 1);
    --layer;
  }
  std::reverse(buckets.begin(), buckets.end());
  for (HistogramBucket& b : buckets) {
    b.representative = oracle_->Cost(b.start, b.end).representative;
  }
  return Histogram(std::move(buckets));
}

HistogramDpResult SolveHistogramDp(const BucketCostOracle& oracle,
                                   std::size_t max_buckets, DpCombiner combiner,
                                   ThreadPool* pool) {
  const std::size_t n = oracle.domain_size();
  PROBSYN_CHECK(n > 0 && max_buckets >= 1);
  // Budgets beyond n buckets cannot help; cap the table, not the API.
  const std::size_t cap = std::min(max_buckets, n);

  HistogramDpResult result;
  result.n_ = n;
  result.max_buckets_ = max_buckets;
  result.oracle_ = &oracle;
  result.err_.assign(cap, std::vector<double>(n, 0.0));
  result.choice_.assign(
      cap, std::vector<std::int64_t>(n, HistogramDpResult::kWholePrefix));

  if (pool == nullptr || pool->num_threads() == 0 || n < 2) {
    // Sequential reference path: one leftward sweep per right end j,
    // then every budget layer's cell for column j.
    std::vector<double> costcol(n);  // costcol[s] = Cost([s, j])
    for (std::size_t j = 0; j < n; ++j) {
      auto sweep = oracle.StartSweep(j);
      for (std::size_t s = j;; --s) {
        costcol[s] = sweep->Extend().cost;
        if (s == 0) break;
      }

      result.err_[0][j] = costcol[0];
      result.choice_[0][j] = HistogramDpResult::kWholePrefix;

      for (std::size_t b = 2; b <= cap; ++b) {
        ComputeCell(combiner, result.err_[b - 2].data(), costcol.data(), j,
                    &result.err_[b - 1][j], &result.choice_[b - 1][j]);
      }
    }
    return result;
  }

  // Blocked parallel path. Columns are processed in blocks; per block the
  // oracle sweeps (one per column, mutually independent) fan out first,
  // then each budget layer's cells fan out — cell (b, j) only reads layer
  // b-1 at columns <= j, all complete by then (earlier blocks ran every
  // layer already; this block ran layer b-1 in the previous iteration).
  // The block size balances fork-join overhead against the O(block * n)
  // bucket-cost buffer (~32 MB cap).
  const std::size_t block =
      std::clamp<std::size_t>((32u << 20) / (sizeof(double) * n), 16, 256);
  std::vector<double> costs(block * n);  // row j - j0, entry s: Cost([s, j])
  for (std::size_t j0 = 0; j0 < n; j0 += block) {
    const std::size_t j1 = std::min(n, j0 + block);
    pool->ParallelFor(j0, j1, [&](std::size_t jb, std::size_t je) {
      for (std::size_t j = jb; j < je; ++j) {
        double* costcol = &costs[(j - j0) * n];
        auto sweep = oracle.StartSweep(j);
        for (std::size_t s = j;; --s) {
          costcol[s] = sweep->Extend().cost;
          if (s == 0) break;
        }
        result.err_[0][j] = costcol[0];
        result.choice_[0][j] = HistogramDpResult::kWholePrefix;
      }
    });
    for (std::size_t b = 2; b <= cap; ++b) {
      const double* prev = result.err_[b - 2].data();
      pool->ParallelFor(j0, j1, [&](std::size_t jb, std::size_t je) {
        for (std::size_t j = jb; j < je; ++j) {
          ComputeCell(combiner, prev, &costs[(j - j0) * n], j,
                      &result.err_[b - 1][j], &result.choice_[b - 1][j]);
        }
      });
    }
  }
  return result;
}

StatusOr<ApproxHistogramResult> SolveApproxHistogramDp(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon) {
  const std::size_t n = oracle.domain_size();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (max_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const std::size_t cap = std::min(max_buckets, n);
  // Per-layer slack; (1 + delta)^(cap-1) <= e^(eps/2) <= 1 + eps for
  // eps <= 1. Larger eps values still yield a valid (coarser) guarantee.
  const double delta = std::min(0.5, epsilon / (2.0 * static_cast<double>(cap)));

  std::size_t evaluations = 0;
  auto bucket_cost = [&](std::size_t s, std::size_t e) {
    ++evaluations;
    return oracle.Cost(s, e).cost;
  };

  std::vector<std::vector<std::int64_t>> choice(
      cap, std::vector<std::int64_t>(n, HistogramDpResult::kWholePrefix));
  constexpr std::int64_t kInherit = -2;

  std::vector<double> prev(n), cur(n);
  for (std::size_t j = 0; j < n; ++j) prev[j] = bucket_cost(0, j);

  std::vector<std::size_t> candidates;
  for (std::size_t b = 2; b <= cap; ++b) {
    // Geometric error classes of the previous (monotone) layer; keep the
    // rightmost position of each class. Classes are contiguous intervals
    // because prev[] is non-decreasing in j.
    candidates.clear();
    double class_base = prev[0];
    for (std::size_t j = 0; j + 1 < n; ++j) {
      bool class_ends = (prev[j + 1] > class_base * (1.0 + delta)) ||
                        (class_base == 0.0 && prev[j + 1] > 0.0);
      if (class_ends) {
        candidates.push_back(j);
        class_base = prev[j + 1];
      }
    }
    if (n >= 1) candidates.push_back(n - 1);

    for (std::size_t j = 0; j < n; ++j) {
      double best = prev[j];  // Inherit: fewer buckets already optimal.
      std::int64_t best_choice = kInherit;
      auto consider = [&](std::size_t l) {
        double v = prev[l] + bucket_cost(l + 1, j);
        if (v < best) {
          best = v;
          best_choice = static_cast<std::int64_t>(l);
        }
      };
      for (std::size_t l : candidates) {
        if (l + 1 > j) break;  // candidates ascending; l must be < j
        consider(l);
      }
      if (j >= 1) consider(j - 1);
      cur[j] = best;
      choice[b - 1][j] = best_choice;
    }
    prev.swap(cur);
  }

  // Traceback (same scheme as the exact DP).
  std::vector<HistogramBucket> buckets;
  std::size_t layer = cap;
  std::size_t j = n - 1;
  for (;;) {
    std::int64_t c = layer >= 2 ? choice[layer - 1][j]
                                : HistogramDpResult::kWholePrefix;
    if (c == kInherit) {
      --layer;
      continue;
    }
    if (c == HistogramDpResult::kWholePrefix) {
      buckets.push_back({0, j, 0.0});
      break;
    }
    std::size_t l = static_cast<std::size_t>(c);
    buckets.push_back({l + 1, j, 0.0});
    j = l;
    PROBSYN_CHECK(layer > 1);
    --layer;
  }
  std::reverse(buckets.begin(), buckets.end());
  double total = 0.0;
  for (HistogramBucket& b : buckets) {
    BucketCost bc = oracle.Cost(b.start, b.end);
    b.representative = bc.representative;
    total += bc.cost;
  }

  ApproxHistogramResult result;
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  result.oracle_evaluations = evaluations;
  return result;
}

}  // namespace probsyn
