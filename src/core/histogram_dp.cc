#include "core/histogram_dp.h"

#include <algorithm>
#include <limits>

#include "core/dp_kernels.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace probsyn {

const char* DpKernelKindName(DpKernelKind kind) {
  switch (kind) {
    case DpKernelKind::kAuto: return "auto";
    case DpKernelKind::kReference: return "reference";
    case DpKernelKind::kSseMoment: return "sse-moment";
    case DpKernelKind::kSsre: return "ssre";
    case DpKernelKind::kAbsCumulative: return "abs-cumulative";
    case DpKernelKind::kMaxError: return "max-error";
    case DpKernelKind::kTupleSse: return "tuple-sse";
  }
  return "?";
}

double HistogramDpResult::OptimalCost(std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && n_ > 0);
  std::size_t b = std::min(num_buckets, cap_);
  return err_[(b - 1) * n_ + (n_ - 1)];
}

std::span<const double> HistogramDpResult::ErrorRow(
    std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && num_buckets <= cap_);
  return {err_ + (num_buckets - 1) * n_, n_};
}

std::span<const std::int64_t> HistogramDpResult::ChoiceRow(
    std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && num_buckets <= cap_);
  return {choice_ + (num_buckets - 1) * n_, n_};
}

std::span<const double> HistogramDpResult::RepresentativeRow(
    std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && num_buckets <= cap_);
  return {rep_ + (num_buckets - 1) * n_, n_};
}

Histogram HistogramDpResult::ExtractHistogram(std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && n_ > 0);
  std::size_t layer = std::min(num_buckets, cap_);
  std::vector<HistogramBucket> buckets;
  std::size_t j = n_ - 1;
  for (;;) {
    std::int64_t c = choice_[(layer - 1) * n_ + j];
    if (c == kInheritChoice) {
      PROBSYN_CHECK(layer > 1);
      --layer;
      continue;
    }
    // The representative was cached alongside the choice during the DP's
    // cost sweeps, so extraction never calls back into the oracle.
    if (c == kWholePrefix) {
      buckets.push_back({0, j, rep_[(layer - 1) * n_ + j]});
      break;
    }
    std::size_t l = static_cast<std::size_t>(c);
    buckets.push_back({l + 1, j, rep_[(layer - 1) * n_ + j]});
    j = l;
    PROBSYN_CHECK(layer > 1);
    --layer;
  }
  std::reverse(buckets.begin(), buckets.end());
  return Histogram(std::move(buckets));
}

HistogramDpResult SolveHistogramDp(const BucketCostOracle& oracle,
                                   std::size_t max_buckets, DpCombiner combiner,
                                   ThreadPool* pool) {
  DpKernelOptions options;
  options.pool = pool;
  return SolveHistogramDpWithKernel(oracle, max_buckets, combiner, options);
}

StatusOr<ApproxHistogramResult> SolveApproxHistogramDp(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon) {
  const std::size_t n = oracle.domain_size();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (max_buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const std::size_t cap = std::min(max_buckets, n);
  // Per-layer slack; (1 + delta)^(cap-1) <= e^(eps/2) <= 1 + eps for
  // eps <= 1. Larger eps values still yield a valid (coarser) guarantee.
  const double delta = std::min(0.5, epsilon / (2.0 * static_cast<double>(cap)));

  std::size_t evaluations = 0;
  auto bucket_cost = [&](std::size_t s, std::size_t e) {
    ++evaluations;
    return oracle.Cost(s, e).cost;
  };

  std::vector<std::vector<std::int64_t>> choice(
      cap, std::vector<std::int64_t>(n, HistogramDpResult::kWholePrefix));
  constexpr std::int64_t kInherit = -2;

  std::vector<double> prev(n), cur(n);
  for (std::size_t j = 0; j < n; ++j) prev[j] = bucket_cost(0, j);

  std::vector<std::size_t> candidates;
  for (std::size_t b = 2; b <= cap; ++b) {
    // Geometric error classes of the previous (monotone) layer; keep the
    // rightmost position of each class. Classes are contiguous intervals
    // because prev[] is non-decreasing in j.
    candidates.clear();
    double class_base = prev[0];
    for (std::size_t j = 0; j + 1 < n; ++j) {
      bool class_ends = (prev[j + 1] > class_base * (1.0 + delta)) ||
                        (class_base == 0.0 && prev[j + 1] > 0.0);
      if (class_ends) {
        candidates.push_back(j);
        class_base = prev[j + 1];
      }
    }
    if (n >= 1) candidates.push_back(n - 1);

    for (std::size_t j = 0; j < n; ++j) {
      double best = prev[j];  // Inherit: fewer buckets already optimal.
      std::int64_t best_choice = kInherit;
      auto consider = [&](std::size_t l) {
        double v = prev[l] + bucket_cost(l + 1, j);
        if (v < best) {
          best = v;
          best_choice = static_cast<std::int64_t>(l);
        }
      };
      for (std::size_t l : candidates) {
        if (l + 1 > j) break;  // candidates ascending; l must be < j
        consider(l);
      }
      if (j >= 1) consider(j - 1);
      cur[j] = best;
      choice[b - 1][j] = best_choice;
    }
    prev.swap(cur);
  }

  // Traceback (same scheme as the exact DP).
  std::vector<HistogramBucket> buckets;
  std::size_t layer = cap;
  std::size_t j = n - 1;
  for (;;) {
    std::int64_t c = layer >= 2 ? choice[layer - 1][j]
                                : HistogramDpResult::kWholePrefix;
    if (c == kInherit) {
      --layer;
      continue;
    }
    if (c == HistogramDpResult::kWholePrefix) {
      buckets.push_back({0, j, 0.0});
      break;
    }
    std::size_t l = static_cast<std::size_t>(c);
    buckets.push_back({l + 1, j, 0.0});
    j = l;
    PROBSYN_CHECK(layer > 1);
    --layer;
  }
  std::reverse(buckets.begin(), buckets.end());
  double total = 0.0;
  for (HistogramBucket& b : buckets) {
    BucketCost bc = oracle.Cost(b.start, b.end);
    b.representative = bc.representative;
    total += bc.cost;
  }

  ApproxHistogramResult result;
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  result.oracle_evaluations = evaluations;
  return result;
}

}  // namespace probsyn
