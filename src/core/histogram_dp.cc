#include "core/histogram_dp.h"

#include <algorithm>
#include <limits>

#include "core/dp_kernels.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace probsyn {

const char* DpKernelKindName(DpKernelKind kind) {
  switch (kind) {
    case DpKernelKind::kAuto: return "auto";
    case DpKernelKind::kReference: return "reference";
    case DpKernelKind::kSseMoment: return "sse-moment";
    case DpKernelKind::kSsre: return "ssre";
    case DpKernelKind::kAbsCumulative: return "abs-cumulative";
    case DpKernelKind::kMaxError: return "max-error";
    case DpKernelKind::kTupleSse: return "tuple-sse";
  }
  return "?";
}

double HistogramDpResult::OptimalCost(std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && n_ > 0);
  std::size_t b = std::min(num_buckets, cap_);
  return err_[(b - 1) * n_ + (n_ - 1)];
}

std::span<const double> HistogramDpResult::ErrorRow(
    std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && num_buckets <= cap_);
  return {err_ + (num_buckets - 1) * n_, n_};
}

std::span<const std::int64_t> HistogramDpResult::ChoiceRow(
    std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && num_buckets <= cap_);
  return {choice_ + (num_buckets - 1) * n_, n_};
}

std::span<const double> HistogramDpResult::RepresentativeRow(
    std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1 && num_buckets <= cap_);
  return {rep_ + (num_buckets - 1) * n_, n_};
}

Histogram HistogramDpResult::ExtractHistogram(std::size_t num_buckets) const {
  PROBSYN_CHECK(num_buckets >= 1);
  // An empty domain has exactly one histogram: the empty one (the only
  // partition of [0], and the only Histogram that Validate(0) accepts).
  // Normalize to it instead of walking tables that were never filled.
  if (n_ == 0) return Histogram();
  // A stopped or failed solve leaves the traceback tables partial (or, with
  // a reused workspace, holding a PREVIOUS solve's data). Walking them
  // could chase garbage split indices into a CHECK abort — or worse, stitch
  // together a plausible-looking wrong histogram. Serve the unambiguous
  // empty histogram instead; callers honoring the documented contract
  // (check status() first) never reach this.
  if (!status_.ok()) return Histogram(std::vector<HistogramBucket>{});
  std::size_t layer = std::min(num_buckets, cap_);
  std::vector<HistogramBucket> buckets;
  std::size_t j = n_ - 1;
  for (;;) {
    std::int64_t c = choice_[(layer - 1) * n_ + j];
    if (c == kInheritChoice) {
      PROBSYN_CHECK(layer > 1);
      --layer;
      continue;
    }
    // The representative was cached alongside the choice during the DP's
    // cost sweeps, so extraction never calls back into the oracle.
    if (c == kWholePrefix) {
      buckets.push_back({0, j, rep_[(layer - 1) * n_ + j]});
      break;
    }
    std::size_t l = static_cast<std::size_t>(c);
    buckets.push_back({l + 1, j, rep_[(layer - 1) * n_ + j]});
    j = l;
    PROBSYN_CHECK(layer > 1);
    --layer;
  }
  std::reverse(buckets.begin(), buckets.end());
  return Histogram(std::move(buckets));
}

HistogramDpResult SolveHistogramDp(const BucketCostOracle& oracle,
                                   std::size_t max_buckets, DpCombiner combiner,
                                   ThreadPool* pool) {
  DpKernelOptions options;
  options.pool = pool;
  return SolveHistogramDpWithKernel(oracle, max_buckets, combiner, options);
}

StatusOr<ApproxHistogramResult> SolveApproxHistogramDp(
    const BucketCostOracle& oracle, std::size_t max_buckets, double epsilon) {
  // Auto-select the point-cost kernel; the driver and all comparisons live
  // in core/dp_kernels.cc and are bit-identical across kernels.
  return SolveApproxHistogramDpWithKernel(oracle, max_buckets, epsilon, {});
}

}  // namespace probsyn
