#ifndef PROBSYN_CORE_ABS_ORACLE_H_
#define PROBSYN_CORE_ABS_ORACLE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/bucket_oracle.h"
#include "model/value_pdf.h"
#include "util/prefix_sums.h"

namespace probsyn {

class ThreadPool;

/// Sum-Absolute-Error / Sum-Absolute-Relative-Error bucket oracle
/// (paper sections 3.3 and 3.4; SAE is the w_ij = Pr[g_i = v_j] special
/// case of the weighted SARE machinery).
///
/// With V = {v_0 < ... < v_{K-1}} the global value grid, d_j = v_{j+1}-v_j,
/// per-item cumulative weights W_i(j) = sum_{r<=j} w_ir and
/// W*_i(j) = sum_{r>j} w_ir, the bucket cost at representative bhat = v_l is
///
///   cost(l) = sum_{j<l} P_{j,s,e} d_j + sum_{j>=l} P*_{j,s,e} d_j,
///   P_{j,s,e} = sum_{i=s..e} W_i(j),   P*_{j,s,e} = sum_{i=s..e} W*_i(j),
///
/// and the paper shows the optimum is attained at some grid value, with
/// cost(l) the sampling of a convex function (P monotone up, P* down).
/// We precompute, for every l, item-prefix tables of
///   U_i(l) = sum_{j<l}  W_i(j)  d_j   and   D_i(l) = sum_{j>=l} W*_i(j) d_j,
/// so any (bucket, l) evaluation is two O(1) range sums, and locate the
/// optimal l by convex ternary search — O(log |V|) per bucket after
/// O(n |V|) preprocessing (the paper's Theorems 3 and 4).
class AbsCumulativeOracle final : public BucketCostOracle {
 public:
  /// relative == false -> SAE; true -> SARE with sanity constant c.
  /// `weights` are optional per-item workload weights (empty = uniform);
  /// they scale each item's w_ij. The paper's machinery already allows
  /// "arbitrary non-negative weights" here (section 3.4). A non-null
  /// `pool` parallelizes the O(n |V|) U/D table fill (independent items).
  AbsCumulativeOracle(const ValuePdfInput& input, bool relative,
                      double sanity_c, std::span<const double> weights = {},
                      ThreadPool* pool = nullptr);

  std::size_t domain_size() const override { return n_; }
  BucketCost Cost(std::size_t s, std::size_t e) const override;

  /// Expected bucket error for a *given* grid representative index; exposed
  /// for tests that verify convexity and optimality of the searched l.
  double CostAtGridIndex(std::size_t s, std::size_t e, std::size_t l) const;

  const std::vector<double>& grid() const { return grid_; }

 private:
  std::size_t n_;
  std::vector<double> grid_;
  PrefixSumsBank below_;  // row l: per-item U_i(l)
  PrefixSumsBank above_;  // row l: per-item D_i(l)
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_ABS_ORACLE_H_
