#ifndef PROBSYN_CORE_ABS_ORACLE_H_
#define PROBSYN_CORE_ABS_ORACLE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/bucket_oracle.h"
#include "model/value_pdf.h"
#include "util/prefix_sums.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// Sum-Absolute-Error / Sum-Absolute-Relative-Error bucket oracle
/// (paper sections 3.3 and 3.4; SAE is the w_ij = Pr[g_i = v_j] special
/// case of the weighted SARE machinery).
///
/// With V = {v_0 < ... < v_{K-1}} the global value grid, d_j = v_{j+1}-v_j,
/// per-item cumulative weights W_i(j) = sum_{r<=j} w_ir and
/// W*_i(j) = sum_{r>j} w_ir, the bucket cost at representative bhat = v_l is
///
///   cost(l) = sum_{j<l} P_{j,s,e} d_j + sum_{j>=l} P*_{j,s,e} d_j,
///   P_{j,s,e} = sum_{i=s..e} W_i(j),   P*_{j,s,e} = sum_{i=s..e} W*_i(j),
///
/// and the paper shows the optimum is attained at some grid value, with
/// cost(l) the sampling of a convex function (P monotone up, P* down).
/// We precompute, for every l, item-prefix tables of
///   U_i(l) = sum_{j<l}  W_i(j)  d_j   and   D_i(l) = sum_{j>=l} W*_i(j) d_j,
/// so any (bucket, l) evaluation is two O(1) range sums, and locate the
/// optimal l by convex ternary search — O(log |V|) per bucket after
/// O(n |V|) preprocessing (the paper's Theorems 3 and 4).
class AbsCumulativeOracle final : public BucketCostOracle {
 public:
  /// relative == false -> SAE; true -> SARE with sanity constant c.
  /// `weights` are optional per-item workload weights (empty = uniform);
  /// they scale each item's w_ij. The paper's machinery already allows
  /// "arbitrary non-negative weights" here (section 3.4). A non-null
  /// `pool` parallelizes the O(n |V|) U/D table fill (independent items).
  AbsCumulativeOracle(const ValuePdfInput& input, bool relative,
                      double sanity_c, std::span<const double> weights = {},
                      ThreadPool* pool = nullptr);

  std::size_t domain_size() const override { return n_; }
  BucketCost Cost(std::size_t s, std::size_t e) const override;
  std::unique_ptr<Sweep> StartSweep(std::size_t e) const override;

  /// Expected bucket error for a *given* grid representative index; exposed
  /// for tests that verify convexity and optimality of the searched l.
  /// Defined inline so the convex search's probe loop (OptimalGridIndex and
  /// the approximate DP's point-cost kernel) compiles down to direct bank
  /// reads with no cross-TU call per probe.
  double CostAtGridIndex(std::size_t s, std::size_t e, std::size_t l) const {
    return below_.RangeSum(l, s, e) + above_.RangeSum(l, s, e);
  }

  const std::vector<double>& grid() const { return grid_; }

  /// Outcome of the constructor's parallel U/D table fill: non-OK when the
  /// fan-out failed (an injected thread-pool fault) — the tables are then
  /// garbage and the oracle must not be used. Checked by MakeBucketOracle.
  const Status& preprocess_status() const { return preprocess_status_; }

  /// Sentinel for OptimalGridIndex / FlatSweep: no warm hint available.
  static constexpr std::size_t kNoHint = static_cast<std::size_t>(-1);

  /// Optimal representative grid index for bucket [s, e], optionally
  /// warm-started from a neighboring cell's optimum.
  ///
  /// With `hint == kNoHint` this is exactly the cold convex ternary search
  /// that Cost() runs (TernarySearchMinIndexOver over the full grid). With a
  /// hint, the 3-point window around the hint is probed first and its best
  /// index is accepted only when it is a STRICT pit — both neighbors
  /// strictly larger. On the convex cost curves the paper proves for
  /// SAE/SARE (Theorems 3 and 4) a strict pit is the unique global
  /// minimizer, i.e. exactly what the cold search returns; exact ties,
  /// plateaus, and drifts past the window fall back to the cold search.
  /// The warm fast path costs O(1) probes instead of the cold search's
  /// O(log |V|) — a DP sweep moves the optimum slowly, so most cells take
  /// it.
  ///
  /// Caveat (why the DP paths are wired the way they are): the COMPUTED
  /// cost sequence can deviate from convexity by rounding — a flat-bottomed
  /// plateau can split into several equal-valued strict pits — and then a
  /// warm-accepted pit may be a different, equally-optimal grid index than
  /// the cold search's. Both DP routes over this oracle (reference and
  /// kernel) therefore share ONE warm probe sequence via FlatSweep, making
  /// their parity independent of this caveat; only warm-vs-cold agreement
  /// is convexity-conditional.
  std::size_t OptimalGridIndex(std::size_t s, std::size_t e,
                               std::size_t hint) const;

  /// Non-virtual leftward sweep with fixed right end `e`: the k-th call to
  /// Extend() returns Cost(e - k + 1, e), warm-starting each cell's
  /// representative search from the previous cell's optimum (see
  /// OptimalGridIndex). This is the concrete engine behind the virtual
  /// StartSweep() adapter; the devirtualized DP kernel
  /// (core/dp_kernels.cc) drives it directly, so both paths run the
  /// identical probe sequence and stay bit-identical.
  class FlatSweep {
   public:
    FlatSweep(const AbsCumulativeOracle& oracle, std::size_t e);
    BucketCost Extend();

   private:
    const AbsCumulativeOracle& oracle_;
    std::size_t end_;
    std::size_t next_start_;
    std::size_t hint_ = kNoHint;
  };

 private:
  std::size_t n_;
  std::vector<double> grid_;
  Status preprocess_status_;
  PrefixSumsBank below_;  // row l: per-item U_i(l)
  PrefixSumsBank above_;  // row l: per-item D_i(l)
};

}  // namespace probsyn

#endif  // PROBSYN_CORE_ABS_ORACLE_H_
