#ifndef PROBSYN_CORE_SHARDED_DP_H_
#define PROBSYN_CORE_SHARDED_DP_H_

#include <cstddef>
#include <vector>

#include "core/histogram.h"
#include "core/histogram_dp.h"
#include "core/metrics.h"
#include "model/value_pdf.h"
#include "util/deadline.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;
class DpWorkspacePool;

/// One contiguous domain shard [begin, end) of a sharded construction
/// plan. Shards partition the ordered domain, so concatenating per-shard
/// histograms (bucket indices offset by `begin`) yields a valid histogram
/// of the whole input.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Near-equal contiguous partition of [0, n) into `shards` ranges with
/// boundaries at floor(s * n / shards). Requires 1 <= shards <= n; every
/// shard is non-empty and widths differ by at most one.
std::vector<ShardRange> PlanShards(std::size_t n, std::size_t shards);

/// Resolves the shard count S: `requested` when nonzero, else ~n/8192
/// clamped to [2, 64]; the result is always clamped to [1, min(n, budget)]
/// so every shard can receive at least one bucket.
std::size_t ResolveShardCount(std::size_t n, std::size_t budget,
                              std::size_t requested);

/// Resolves the per-shard bucket cap (the largest budget any single shard
/// may be assigned, and thus the size of each per-shard DP). Requires
/// 1 <= shards <= budget. `requested` when nonzero, else
/// max(8, 4 * ceil(budget / shards)); either way clamped to
/// [ceil(budget / shards), budget - shards + 1] — the lower bound keeps a
/// full allocation feasible, the upper bound is what one shard can get
/// when every other shard takes exactly one bucket.
std::size_t ResolveMaxShardBudget(std::size_t budget, std::size_t shards,
                                  std::size_t requested);

/// Which solver runs inside each shard.
enum class ShardSolver {
  kExact,   ///< Exact DP (paper equation (2)); any metric.
  kApprox,  ///< (1+eps) DP (Theorem 5); cumulative metrics only.
};

/// Knobs of BuildShardedHistogram.
struct ShardedDpOptions {
  /// Shard count; 0 = auto (see ResolveShardCount).
  std::size_t shards = 0;
  /// Per-shard bucket cap; 0 = auto (see ResolveMaxShardBudget).
  std::size_t max_shard_budget = 0;
  /// Per-shard solver.
  ShardSolver solver = ShardSolver::kExact;
  /// Approximation slack of ShardSolver::kApprox; must be > 0 there.
  double epsilon = 0.1;
  /// Runs the per-shard solves concurrently when non-null (one fork-join
  /// over the shards; solvers inside a shard see no pool — nested
  /// ParallelFor calls run inline).
  ThreadPool* pool = nullptr;
  /// Exact per-shard DPs lease their workspaces here when non-null (zero
  /// steady-state allocation across repeated builds); a local pool is used
  /// otherwise.
  DpWorkspacePool* workspaces = nullptr;
  /// Optional deadline/cancellation context: polled at every shard-solve
  /// entry, inside each shard's DP, per merge-fold row, and at every
  /// extraction; a stop returns kDeadlineExceeded/kCancelled with the
  /// shard-level progress, and every leased workspace is released on
  /// unwind. Null = unbounded build.
  const ExecContext* context = nullptr;
  /// Upper bound on the bytes of exact-DP workspace the fan-out may pin at
  /// once (all shard leases are live simultaneously). When non-zero and the
  /// estimate exceeds it the build fails up front with kResourceExhausted
  /// instead of thrashing or OOM-ing. 0 = uncapped.
  std::size_t max_workspace_bytes = 0;
};

/// Output of a sharded construction.
struct ShardedDpResult {
  /// Concatenation of the per-shard optimal histograms under the merge
  /// DP's budget allocation; a valid partition of the full domain with at
  /// most `budget` buckets.
  Histogram histogram;
  /// Cost of `histogram`: the per-shard solver costs combined left to
  /// right (sum or max per the metric), deterministically associated so
  /// repeated builds with one shard plan are bit-identical.
  double cost = 0.0;
  /// Resolved shard count S.
  std::size_t shards = 0;
  /// Parallel lanes the shard solves actually used (1 without a pool).
  std::size_t lanes = 0;
  /// Resolved per-shard bucket cap.
  std::size_t max_shard_budget = 0;
  /// The DP kernel the per-shard solves ran with.
  DpKernelKind kernel = DpKernelKind::kReference;
  /// Buckets the merge DP assigned each shard (sums to <= budget).
  std::vector<std::size_t> shard_budgets;
  /// Total bucket-oracle evaluations (kApprox shard solves only).
  std::size_t oracle_evaluations = 0;
};

/// Domain-sharded histogram construction: partitions the domain into S
/// contiguous shards (PlanShards), solves each shard's histogram DP
/// independently — concurrently when a pool is given — up to the per-shard
/// cap, then assigns each shard its bucket count with a cross-shard
/// budget-allocation DP (a left fold over per-shard cost-vs-budget curves
/// through the MinBudgetSplit kernels: chunked min-plus reduction for
/// cumulative metrics, monotone bisection for max metrics) and
/// concatenates the per-shard tracebacks.
///
/// Accuracy contract: per-bucket costs depend only on the items inside the
/// bucket, so the sharded cost is NEVER below the unsharded optimum, and
/// equals it exactly (for ShardSolver::kExact) whenever some optimal
/// B-bucket histogram (a) has a bucket boundary at every shard boundary
/// and (b) places at most max_shard_budget buckets in each shard — the
/// merge DP then recovers that solution's per-shard allocation and each
/// shard solves its sub-problem optimally. Otherwise the gap is
/// input-dependent; tests/sharded_dp_test.cc sweeps seeded inputs and pins
/// the measured error envelope. For ShardSolver::kApprox each shard
/// additionally carries the (1 + eps) per-shard guarantee, and the merge
/// allocates budgets over the shards' approximate curves (re-solving each
/// shard at its assigned budget), making the allocation itself heuristic
/// within those (1 + eps) factors.
///
/// Determinism: for a fixed shard plan (S, cap) and SIMD path the result
/// is bit-identical across thread counts — shard solves are independent,
/// and the merge and concatenation are sequential folds in shard order.
StatusOr<ShardedDpResult> BuildShardedHistogram(const ValuePdfInput& input,
                                                std::size_t budget,
                                                const SynopsisOptions& options,
                                                const ShardedDpOptions& sharded);

}  // namespace probsyn

#endif  // PROBSYN_CORE_SHARDED_DP_H_
