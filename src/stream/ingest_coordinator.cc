#include "stream/ingest_coordinator.h"

#include <chrono>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace probsyn {

const char* IngestBackpressureName(IngestBackpressure policy) {
  switch (policy) {
    case IngestBackpressure::kBlock:
      return "block";
    case IngestBackpressure::kRejectWithStatus:
      return "reject";
    case IngestBackpressure::kShedOldest:
      return "shed-oldest";
  }
  return "unknown";
}

IngestCoordinator::IngestCoordinator(const IngestOptions& options,
                                     ThreadPool* pool,
                                     DpWorkspacePool* workspaces)
    : options_(options), pool_(pool), workspaces_(workspaces) {
  PROBSYN_CHECK(options_.max_buckets >= 1);
  PROBSYN_CHECK(options_.epsilon > 0.0);
  PROBSYN_CHECK(options_.queue_capacity >= 1);
  PROBSYN_CHECK(options_.drain_batch >= 1);
}

IngestCoordinator::~IngestCoordinator() = default;

std::size_t IngestCoordinator::OpenStream() {
  auto stream = std::make_unique<Stream>();
  stream->buffer.resize(options_.queue_capacity);
  stream->drain_scratch.reserve(options_.drain_batch);
  StreamChainStore* store = nullptr;
  if (workspaces_ != nullptr) {
    stream->lease.emplace(workspaces_->Acquire());
    store = &stream->lease->get()->stream_chains();
  }
  stream->builder = std::make_unique<StreamingHistogramBuilder>(
      options_.max_buckets, options_.epsilon, StreamingKernel::kAuto, store);
  std::lock_guard<std::mutex> lock(streams_mutex_);
  streams_.push_back(std::move(stream));
  return streams_.size() - 1;
}

std::size_t IngestCoordinator::num_streams() const {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  return streams_.size();
}

std::size_t IngestCoordinator::TakeBlock(Stream& s, std::size_t drain_batch,
                                         std::vector<ValuePdf>& out) {
  const std::size_t capacity = s.buffer.size();
  const std::size_t take = s.size < drain_batch ? s.size : drain_batch;
  out.clear();
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(s.buffer[s.head]));
    s.head = s.head + 1 == capacity ? 0 : s.head + 1;
  }
  s.size -= take;
  return take;
}

Status IngestCoordinator::DrainStream(Stream& s) {
  std::unique_lock<std::mutex> lock(s.mutex);
  if (s.draining) return Status::OK();  // that thread is making progress
  s.draining = true;
  PollGate gate(1);  // between-blocks cadence; each block is >= 1 batch
  Status result = Status::OK();
  for (;;) {
    if (gate.ShouldStop(options_.context)) {
      result = options_.context->StopStatus(
          "ingest", "item", pushed_.load(std::memory_order_relaxed),
          accepted_.load(std::memory_order_relaxed));
      break;
    }
    const std::size_t taken =
        TakeBlock(s, options_.drain_batch, s.drain_scratch);
    if (taken == 0) break;
    s.space_cv.notify_all();
    lock.unlock();
    s.builder->PushBatch(
        std::span<const ValuePdf>(s.drain_scratch.data(), taken));
    batches_.fetch_add(1, std::memory_order_relaxed);
    pushed_.fetch_add(taken, std::memory_order_relaxed);
    lock.lock();
  }
  s.draining = false;
  s.space_cv.notify_all();  // wake submitters waiting on the role, too
  return result;
}

Status IngestCoordinator::Submit(std::size_t stream_id,
                                 const ValuePdf& item) {
  Stream* s = nullptr;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    if (stream_id >= streams_.size()) {
      return Status::InvalidArgument("Submit: unknown stream id " +
                                     std::to_string(stream_id));
    }
    s = streams_[stream_id].get();
  }
  std::unique_lock<std::mutex> lock(s->mutex);
  if (s->finished) {
    return Status::FailedPrecondition("Submit: stream " +
                                      std::to_string(stream_id) +
                                      " is finished");
  }
  const std::size_t capacity = s->buffer.size();
  while (s->size == capacity) {
    switch (options_.backpressure) {
      case IngestBackpressure::kRejectWithStatus:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "Submit: stream " + std::to_string(stream_id) +
            " queue full (" + std::to_string(capacity) + " items)");
      case IngestBackpressure::kShedOldest:
        s->head = s->head + 1 == capacity ? 0 : s->head + 1;
        --s->size;
        shed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case IngestBackpressure::kBlock: {
        if (StopRequested(options_.context)) {
          return options_.context->StopStatus(
              "ingest-submit", "item",
              pushed_.load(std::memory_order_relaxed),
              accepted_.load(std::memory_order_relaxed));
        }
        if (!s->draining) {
          // No active drainer: push one block through inline so a
          // single-threaded producer can never deadlock against itself.
          s->draining = true;
          const std::size_t taken =
              TakeBlock(*s, options_.drain_batch, s->drain_scratch);
          lock.unlock();
          s->builder->PushBatch(
              std::span<const ValuePdf>(s->drain_scratch.data(), taken));
          batches_.fetch_add(1, std::memory_order_relaxed);
          pushed_.fetch_add(taken, std::memory_order_relaxed);
          lock.lock();
          s->draining = false;
          s->space_cv.notify_all();
        } else {
          s->space_cv.wait_for(lock, std::chrono::milliseconds(1));
        }
        break;
      }
    }
  }
  s->buffer[(s->head + s->size) % capacity] = item;
  ++s->size;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status IngestCoordinator::SubmitBatch(std::size_t stream_id,
                                      std::span<const ValuePdf> items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    Status status = Submit(stream_id, items[i]);
    if (!status.ok()) {
      return Status(status.code(), "SubmitBatch item " + std::to_string(i) +
                                       "/" + std::to_string(items.size()) +
                                       ": " + status.message());
    }
  }
  return Status::OK();
}

Status IngestCoordinator::DrainAll() {
  std::vector<Stream*> snapshot;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    snapshot.reserve(streams_.size());
    for (const auto& s : streams_) snapshot.push_back(s.get());
  }
  std::vector<Status> statuses(snapshot.size());
  if (pool_ != nullptr && snapshot.size() > 1) {
    Status fan_out = pool_->ParallelFor(
        0, snapshot.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            statuses[i] = DrainStream(*snapshot[i]);
          }
        });
    if (!fan_out.ok()) return fan_out;
  } else {
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      statuses[i] = DrainStream(*snapshot[i]);
    }
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

StatusOr<StreamingHistogramBuilder::Result> IngestCoordinator::Finish(
    std::size_t stream_id) {
  Stream* s = nullptr;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    if (stream_id >= streams_.size()) {
      return Status::InvalidArgument("Finish: unknown stream id " +
                                     std::to_string(stream_id));
    }
    s = streams_[stream_id].get();
  }
  for (;;) {
    Status status = DrainStream(*s);
    if (!status.ok()) return status;
    std::unique_lock<std::mutex> lock(s->mutex);
    if (!s->draining && s->size == 0) {
      s->finished = true;
      break;
    }
    // Another thread holds the drain role; wait for it and retry (it may
    // exit early on a stop request, leaving items behind).
    s->space_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  return s->builder->Finish();
}

IngestCoordinator::Stats IngestCoordinator::stats() const {
  Stats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.pushed = pushed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace probsyn
