#ifndef PROBSYN_STREAM_STREAMING_HISTOGRAM_H_
#define PROBSYN_STREAM_STREAMING_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/dp_kernels.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// Which Push-loop implementation the streaming builder runs. kPointCost
/// hoists each layer's committed-breakpoint snapshots into flat parallel
/// columns, materializes the candidate extension costs with the identical
/// arithmetic, minimizes through the runtime-dispatched SIMD min-reduction
/// (core/dp_kernels.h), and records the winning boundary chain as an O(1)
/// persistent-chain reference (StreamChainStore: hash-consed parent
/// pointers with refcounts) — the reference path instead copies the full
/// winner chain per improving candidate, the historical O(B)-per-layer
/// behavior kept as the parity and differential-test baseline. Both
/// kernels are bit-identical in every returned histogram, cost, and
/// breakpoint count (parity-tested in streaming_test.cc).
enum class StreamingKernel {
  kAuto,       ///< Resolve to kPointCost.
  kReference,  ///< Per-candidate compare-and-copy scan (parity baseline).
  kPointCost,  ///< Hoisted snapshot columns + persistent chains.
};

/// Stable display name ("reference", "point-cost", ...).
const char* StreamingKernelName(StreamingKernel kind);

/// One-pass (1+epsilon)-approximate histogram construction over a stream
/// of per-item frequency pdfs arriving in domain order — the streaming
/// counterpart of SolveApproxHistogramDp, in the style of Guha, Koudas &
/// Shim's AHIST ([13, 14], which the paper's section 3.5 builds on).
///
/// Unlike the offline builders, this never materializes the input: each
/// layer b keeps only geometric *breakpoints* of its prefix-error curve
/// E_b(t), and each breakpoint stores an O(1) snapshot of the running
/// moment sums, from which the cost of any bucket starting right after the
/// breakpoint is recovered in O(1). Memory is O(B * breakpoints) =
/// O((B^2/eps) log(error range)) — independent of the stream length.
///
/// Supported objective: expected SSE with fixed representatives (the
/// snapshot is three running sums; other quadratic metrics would slot in
/// the same way, absolute metrics would need mergeable quantile sketches
/// and are out of scope, as in the original AHIST work).
///
/// Usage:
///     StreamingHistogramBuilder builder(B, epsilon);
///     for (each item pdf in domain order) builder.Push(pdf);
///     StatusOr<StreamingResult> r = builder.Finish();
class StreamingHistogramBuilder {
 public:
  struct Result {
    Histogram histogram;
    /// Expected SSE of `histogram` (exact for the returned buckets).
    double cost = 0.0;
    /// Peak number of breakpoints retained across all layers (the memory
    /// footprint driver).
    std::size_t peak_breakpoints = 0;
  };

  /// `max_buckets` >= 1; epsilon > 0 (the approximation slack). `kernel`
  /// selects the Push-loop implementation (kAuto = the fast kPointCost;
  /// results are bit-identical either way). A non-null `chain_store`
  /// (e.g. DpWorkspace::stream_chains(), as the engine passes) hosts the
  /// point-cost path's boundary-chain nodes so repeated streams reuse its
  /// warm capacity; null lets the builder own a private store. The builder
  /// releases every chain reference on destruction, returning the store's
  /// live-node count to what it was at construction.
  StreamingHistogramBuilder(std::size_t max_buckets, double epsilon,
                            StreamingKernel kernel = StreamingKernel::kAuto,
                            StreamChainStore* chain_store = nullptr);
  ~StreamingHistogramBuilder();

  StreamingHistogramBuilder(const StreamingHistogramBuilder&) = delete;
  StreamingHistogramBuilder& operator=(const StreamingHistogramBuilder&) =
      delete;

  /// The Push-loop implementation this builder runs (never kAuto).
  StreamingKernel kernel() const { return kernel_; }

  /// The boundary-chain store backing the point-cost path (the builder's
  /// own unless one was injected); null on the reference kernel, which
  /// keeps copy-based chains. Stats expose the O(1)-chain-work and
  /// zero-allocation counters the tests assert on.
  const StreamChainStore* chain_store() const { return chain_store_; }

  /// Appends the next item's frequency pdf (domain position = arrival
  /// order).
  void Push(const ValuePdf& pdf);
  /// Convenience: deterministic item.
  void PushDeterministic(double frequency) {
    Push(ValuePdf::PointMass(frequency));
  }

  /// Appends a block of consecutive items — BIT-IDENTICAL to calling
  /// Push(pdfs[0]), Push(pdfs[1]), ... in order (every committed
  /// breakpoint, error, chain, cost, and peak count; pinned by a seeded
  /// differential sweep in tests/ingest_test.cc), but amortizing the
  /// per-push work across the block: prefix snapshots and the
  /// reciprocal-of-width table extend once per block, each layer's
  /// committed columns are swept once for up to 8 pushes per SIMD register
  /// (SimdStreamingBatchSweep, lane-per-push), and chain-store commits
  /// replay in one pass per layer. Internally processes kBatchWidth-item
  /// blocks layer-major, with a per-push visibility timeline reproducing
  /// exactly the candidate set each sequential push would have seen.
  /// Arbitrary interleaving with single Push calls is allowed; the
  /// reference kernel falls back to looped Push.
  void PushBatch(std::span<const ValuePdf> pdfs);

  /// Number of items consumed so far.
  std::size_t items_seen() const { return count_; }

  /// Current number of retained breakpoints across layers.
  std::size_t breakpoints() const;

  /// Completes the pass and extracts the histogram. Fails on an empty
  /// stream. The builder can keep consuming afterwards (Finish is
  /// non-destructive), supporting periodic synopsis refresh.
  StatusOr<Result> Finish() const;

 private:
  // Running prefix moments at a cut position: sums over the first
  // `position` items.
  struct Snapshot {
    double sum_mean = 0.0;
    double sum_second = 0.0;
    std::size_t position = 0;
  };

  // A retained position of a layer's prefix-error curve: the prefix state,
  // the approximate error there, and the boundary chain (split snapshots)
  // of the solution achieving it — carrying the chain makes traceback
  // self-contained (no dangling parent indices when pendings rotate). The
  // reference path materializes the chain as a copied vector; the
  // point-cost path carries one owned StreamChainStore reference instead
  // (shared-suffix, O(1) to extend or hand over).
  struct Breakpoint {
    Snapshot at;
    double error = 0.0;
    std::vector<Snapshot> boundaries;            // reference path only
    StreamChainStore::Ref chain = StreamChainStore::kNil;  // point-cost only
  };

  // Per-layer state: committed breakpoints are the LAST position of each
  // geometric error class; `pending` tracks the most recent position. The
  // cand_* vectors are hoisted columns of `committed` (error, snapshot
  // moments, position, kept in lockstep) that the point-cost kernel scans
  // contiguously instead of striding through the breakpoint structs.
  // Positions are carried as doubles (exact below 2^53) so the fused SIMD
  // column kernel can guard and subtract them in vector lanes.
  struct Layer {
    std::vector<Breakpoint> committed;
    std::vector<double> cand_error;
    std::vector<double> cand_sum_mean;
    std::vector<double> cand_sum_second;
    std::vector<double> cand_position;
    // Negated integer positions (kept in lockstep with cand_position): the
    // batched sweep's AVX-512 path indexes its reciprocal table at
    // recips + count + neg_position[i], turning 8 consecutive widths into
    // one contiguous load.
    std::vector<std::int64_t> cand_neg_position;
    Breakpoint pending;
    bool has_pending = false;
    double class_base = 0.0;
  };

  // Expected-SSE cost of the bucket spanning (from.position, to.position]:
  // prefix-moment differences, best fixed representative.
  static double BucketCost(const Snapshot& from, const Snapshot& to);
  static double Representative(const Snapshot& from, const Snapshot& to);

  // Per-layer evaluation of the current position: the approximate prefix
  // error and the boundary chain achieving it (vector on the reference
  // path, owned store reference on the point-cost path).
  struct Eval {
    double error;  // initialized to +infinity by the Push loops
    std::vector<Snapshot> boundaries;
    StreamChainStore::Ref chain = StreamChainStore::kNil;
  };

  // The two Push-loop implementations (see StreamingKernel). Bit-identical
  // outputs; they differ in scan layout and chain representation only.
  void PushReference();
  void PushPointCost();

  // One <= kBatchWidth block of the batched point-cost path: layer-major
  // replay of the sequential recurrence (see PushBatch).
  void PushBatchPointCost(std::span<const ValuePdf> pdfs);

  // Shared commit/update step of both Push loops: applies the geometric
  // last-position-of-class rule to every layer from this push's
  // evaluations, keeping the hoisted candidate columns in lockstep with
  // `committed`. `use_chain_refs` transfers each evaluation's owned chain
  // reference into the pending slot (point-cost kernel, O(1)) instead of
  // copying its boundary vector (reference path).
  void CommitLayers(std::vector<Eval>& evals, bool use_chain_refs);

  std::size_t max_buckets_;
  double delta_;  // per-layer geometric slack
  StreamingKernel kernel_;
  std::size_t count_ = 0;
  Snapshot running_;
  std::vector<Layer> layers_;
  // Point-cost kernel scratch, recycled across pushes (capacity-preserving
  // clears keep the steady-state Push allocation-free).
  std::vector<double> candidate_values_;
  std::vector<Eval> evals_;
  std::size_t peak_breakpoints_ = 0;
  // Chain-node backing of the point-cost path: the injected store, or the
  // builder's own.
  std::unique_ptr<StreamChainStore> owned_chain_store_;
  StreamChainStore* chain_store_;

  // --- Batched-push (PushBatch) state. --------------------------------
  // Internal block size: 4 full AVX-512 lane groups per layer sweep —
  // measured knee of the amortization curve (larger blocks stopped
  // helping; see docs/benchmarks.md).
  static constexpr std::size_t kBatchWidth = 32;
  // recips_[w] == 1.0 / w for every bucket width seen so far; extended
  // once per block, consumed by the batched sweep's Markstein division.
  std::vector<double> recips_;
  // Per-block scratch, flat [layer * kBatchWidth + push] where it is
  // two-dimensional; capacities stick across blocks so steady-state
  // batches allocate nothing (beyond the shared chain store / committed
  // columns both push paths already grow).
  std::vector<Snapshot> batch_snapshots_;            // running_ after push k
  std::vector<double> batch_errors_;                 // eval errors, B x KB
  std::vector<StreamChainStore::Ref> batch_chains_;  // eval chains, B x KB
  std::vector<std::uint32_t> batch_visible_;  // committed size visible to
                                              // push k, B x (KB + 1)
  // Pre-block pendings, captured (with a chain reference held to block
  // end) before each layer's commit pass overwrites the pending slot: the
  // k = 0 column of the next layer's pending-candidate timeline.
  std::vector<Snapshot> batch_pend0_at_;
  std::vector<double> batch_pend0_error_;
  std::vector<StreamChainStore::Ref> batch_pend0_chain_;
  std::vector<unsigned char> batch_pend0_has_;
};

}  // namespace probsyn

#endif  // PROBSYN_STREAM_STREAMING_HISTOGRAM_H_
