#ifndef PROBSYN_STREAM_STREAMING_HISTOGRAM_H_
#define PROBSYN_STREAM_STREAMING_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "core/histogram.h"
#include "core/metrics.h"
#include "model/value_pdf.h"
#include "util/status.h"

namespace probsyn {

/// One-pass (1+epsilon)-approximate histogram construction over a stream
/// of per-item frequency pdfs arriving in domain order — the streaming
/// counterpart of SolveApproxHistogramDp, in the style of Guha, Koudas &
/// Shim's AHIST ([13, 14], which the paper's section 3.5 builds on).
///
/// Unlike the offline builders, this never materializes the input: each
/// layer b keeps only geometric *breakpoints* of its prefix-error curve
/// E_b(t), and each breakpoint stores an O(1) snapshot of the running
/// moment sums, from which the cost of any bucket starting right after the
/// breakpoint is recovered in O(1). Memory is O(B * breakpoints) =
/// O((B^2/eps) log(error range)) — independent of the stream length.
///
/// Supported objective: expected SSE with fixed representatives (the
/// snapshot is three running sums; other quadratic metrics would slot in
/// the same way, absolute metrics would need mergeable quantile sketches
/// and are out of scope, as in the original AHIST work).
///
/// Usage:
///     StreamingHistogramBuilder builder(B, epsilon);
///     for (each item pdf in domain order) builder.Push(pdf);
///     StatusOr<StreamingResult> r = builder.Finish();
class StreamingHistogramBuilder {
 public:
  struct Result {
    Histogram histogram;
    /// Expected SSE of `histogram` (exact for the returned buckets).
    double cost = 0.0;
    /// Peak number of breakpoints retained across all layers (the memory
    /// footprint driver).
    std::size_t peak_breakpoints = 0;
  };

  /// `max_buckets` >= 1; epsilon > 0 (the approximation slack).
  StreamingHistogramBuilder(std::size_t max_buckets, double epsilon);

  /// Appends the next item's frequency pdf (domain position = arrival
  /// order).
  void Push(const ValuePdf& pdf);
  /// Convenience: deterministic item.
  void PushDeterministic(double frequency) {
    Push(ValuePdf::PointMass(frequency));
  }

  /// Number of items consumed so far.
  std::size_t items_seen() const { return count_; }

  /// Current number of retained breakpoints across layers.
  std::size_t breakpoints() const;

  /// Completes the pass and extracts the histogram. Fails on an empty
  /// stream. The builder can keep consuming afterwards (Finish is
  /// non-destructive), supporting periodic synopsis refresh.
  StatusOr<Result> Finish() const;

 private:
  // Running prefix moments at a cut position: sums over the first
  // `position` items.
  struct Snapshot {
    double sum_mean = 0.0;
    double sum_second = 0.0;
    std::size_t position = 0;
  };

  // A retained position of a layer's prefix-error curve: the prefix state,
  // the approximate error there, and the boundary chain (split snapshots)
  // of the solution achieving it — carrying the chain makes traceback
  // self-contained (no dangling parent indices when pendings rotate).
  struct Breakpoint {
    Snapshot at;
    double error = 0.0;
    std::vector<Snapshot> boundaries;
  };

  // Per-layer state: committed breakpoints are the LAST position of each
  // geometric error class; `pending` tracks the most recent position.
  struct Layer {
    std::vector<Breakpoint> committed;
    Breakpoint pending;
    bool has_pending = false;
    double class_base = 0.0;
  };

  // Expected-SSE cost of the bucket spanning (from.position, to.position]:
  // prefix-moment differences, best fixed representative.
  static double BucketCost(const Snapshot& from, const Snapshot& to);
  static double Representative(const Snapshot& from, const Snapshot& to);

  std::size_t max_buckets_;
  double delta_;  // per-layer geometric slack
  std::size_t count_ = 0;
  Snapshot running_;
  std::vector<Layer> layers_;
  std::size_t peak_breakpoints_ = 0;
};

}  // namespace probsyn

#endif  // PROBSYN_STREAM_STREAMING_HISTOGRAM_H_
