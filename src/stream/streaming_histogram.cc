#include "stream/streaming_histogram.h"

#include <algorithm>
#include <limits>

#include "core/dp_kernels.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

const char* StreamingKernelName(StreamingKernel kind) {
  switch (kind) {
    case StreamingKernel::kAuto: return "auto";
    case StreamingKernel::kReference: return "reference";
    case StreamingKernel::kPointCost: return "point-cost";
  }
  return "?";
}

StreamingHistogramBuilder::StreamingHistogramBuilder(
    std::size_t max_buckets, double epsilon, StreamingKernel kernel,
    StreamChainStore* chain_store)
    : max_buckets_(std::max<std::size_t>(1, max_buckets)),
      delta_(std::min(
          0.5, std::max(epsilon, 1e-9) / (2.0 * static_cast<double>(
                                                    std::max<std::size_t>(
                                                        1, max_buckets))))),
      kernel_(kernel == StreamingKernel::kAuto ? StreamingKernel::kPointCost
                                               : kernel),
      owned_chain_store_(kernel_ == StreamingKernel::kPointCost &&
                                 chain_store == nullptr
                             ? std::make_unique<StreamChainStore>()
                             : nullptr),
      chain_store_(kernel_ == StreamingKernel::kPointCost
                       ? (chain_store == nullptr ? owned_chain_store_.get()
                                                 : chain_store)
                       : nullptr) {
  layers_.resize(max_buckets_);
}

StreamingHistogramBuilder::~StreamingHistogramBuilder() {
  if (chain_store_ == nullptr) return;  // reference path: copy-based chains
  // Hand every owned chain reference back so an injected store's live-node
  // count returns to its pre-builder baseline (leak-tested).
  for (Layer& layer : layers_) {
    for (Breakpoint& breakpoint : layer.committed) {
      chain_store_->Release(breakpoint.chain);
    }
    if (layer.has_pending) chain_store_->Release(layer.pending.chain);
  }
}

double StreamingHistogramBuilder::BucketCost(const Snapshot& from,
                                             const Snapshot& to) {
  PROBSYN_DCHECK(to.position > from.position);
  double width = static_cast<double>(to.position - from.position);
  double mean = to.sum_mean - from.sum_mean;
  double second = to.sum_second - from.sum_second;
  return ClampTinyNegative(second - mean * mean / width, 1e-6);
}

double StreamingHistogramBuilder::Representative(const Snapshot& from,
                                                 const Snapshot& to) {
  double width = static_cast<double>(to.position - from.position);
  return (to.sum_mean - from.sum_mean) / width;
}

void StreamingHistogramBuilder::Push(const ValuePdf& pdf) {
  ++count_;
  running_.position = count_;
  running_.sum_mean += pdf.Mean();
  running_.sum_second += pdf.SecondMoment();

  if (kernel_ == StreamingKernel::kReference) {
    PushReference();
  } else {
    PushPointCost();
  }
  peak_breakpoints_ = std::max(peak_breakpoints_, breakpoints());
}

// The pre-kernel scan, preserved as the parity baseline: one compare per
// candidate, copying the candidate's boundary chain on every improvement,
// with freshly allocated per-push evaluation state.
void StreamingHistogramBuilder::PushReference() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Evaluate every layer's prefix error at the current position using the
  // PREVIOUS pendings/breakpoints (all at positions <= count_-1).
  std::vector<Eval> evals(max_buckets_);
  for (Eval& eval : evals) eval.error = kInf;
  Snapshot origin;  // zero state at position 0
  evals[0].error = BucketCost(origin, running_);

  for (std::size_t b = 2; b <= max_buckets_; ++b) {
    Eval best;
    best.error = kInf;
    auto consider = [&](const Breakpoint& candidate) {
      if (candidate.at.position >= count_) return;  // empty last bucket
      double err = candidate.error + BucketCost(candidate.at, running_);
      if (err < best.error) {
        best.error = err;
        best.boundaries = candidate.boundaries;
        best.boundaries.push_back(candidate.at);
      }
    };
    const Layer& prev = layers_[b - 2];
    for (const Breakpoint& candidate : prev.committed) consider(candidate);
    if (prev.has_pending) consider(prev.pending);
    // "At most b" inheritance keeps layers monotone.
    if (evals[b - 2].error < best.error) best = evals[b - 2];
    evals[b - 1] = std::move(best);
  }

  CommitLayers(evals, /*move_chains=*/false);
}

// Point-cost kernel: per layer, materialize every committed candidate's
// extension cost from the hoisted snapshot columns (the identical
// prefix-moment arithmetic as BucketCost), minimize through the SIMD
// dispatch, resolve the reference tie-break (first committed candidate
// attaining the minimum; the pending and inherit candidates win only
// strictly, in that order), and record the winner's boundary chain as ONE
// persistent-chain operation — Extend() on the winner's chain reference
// (hash-consed: a re-chosen winner resolves to the already-live node) or
// an AddRef() when inheritance wins. Push therefore does O(1) chain work
// per layer REGARDLESS of chain length, where the reference path copies
// the full O(B) winner chain; steady-state pushes allocate nothing (the
// store recycles freed nodes, evaluation slots and value buffers reuse
// their capacity). Outputs are bit-identical to the reference scan.
void StreamingHistogramBuilder::PushPointCost() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr StreamChainStore::Ref kNil = StreamChainStore::kNil;
  evals_.resize(max_buckets_);
  for (Eval& eval : evals_) {
    eval.error = kInf;
    eval.chain = kNil;  // previous push transferred every owned reference
  }
  Snapshot origin;  // zero state at position 0
  evals_[0].error = BucketCost(origin, running_);

  for (std::size_t b = 2; b <= max_buckets_; ++b) {
    const Layer& prev = layers_[b - 2];
    Eval& best = evals_[b - 1];

    const std::size_t committed = prev.committed.size();
    candidate_values_.resize(committed);
    double error = SimdStreamingMergeColumn(
        prev.cand_error.data(), prev.cand_sum_mean.data(),
        prev.cand_sum_second.data(), prev.cand_position.data(), committed,
        static_cast<double>(count_), running_.sum_mean, running_.sum_second,
        candidate_values_.data());
    const Breakpoint* winner = nullptr;
    if (error < kInf) {
      for (std::size_t i = 0; i < committed; ++i) {
        if (candidate_values_[i] == error) {
          winner = &prev.committed[i];
          break;
        }
      }
    }
    if (prev.has_pending && prev.pending.at.position < count_) {
      double err = prev.pending.error + BucketCost(prev.pending.at, running_);
      if (err < error) {
        error = err;
        winner = &prev.pending;
      }
    }
    // "At most b" inheritance keeps layers monotone; it shares the
    // inherited evaluation's chain outright (one refcount bump).
    if (evals_[b - 2].error < error) {
      best.error = evals_[b - 2].error;
      best.chain = evals_[b - 2].chain;
      if (best.chain != kNil) chain_store_->AddRef(best.chain);
      continue;
    }
    best.error = error;
    if (winner != nullptr) {
      best.chain =
          chain_store_->Extend(winner->chain, winner->at.sum_mean,
                               winner->at.sum_second, winner->at.position);
    }
  }

  CommitLayers(evals_, /*use_chain_refs=*/true);
}

void StreamingHistogramBuilder::CommitLayers(std::vector<Eval>& evals,
                                             bool use_chain_refs) {
  // Last-position-of-class rule: commit the previous pending when the
  // error outgrows its geometric class.
  for (std::size_t b = 1; b <= max_buckets_; ++b) {
    Layer& layer = layers_[b - 1];
    Eval& eval = evals[b - 1];
    bool class_overflow =
        layer.has_pending &&
        (eval.error > (1.0 + delta_) * layer.class_base ||
         (layer.class_base == 0.0 && eval.error > 0.0));
    if (class_overflow) {
      layer.committed.push_back(layer.pending);
      // Keep the hoisted candidate columns in lockstep with `committed`.
      layer.cand_error.push_back(layer.pending.error);
      layer.cand_sum_mean.push_back(layer.pending.at.sum_mean);
      layer.cand_sum_second.push_back(layer.pending.at.sum_second);
      layer.cand_position.push_back(
          static_cast<double>(layer.pending.at.position));
      layer.class_base = eval.error;
      // The pending's owned chain reference moved into committed.back();
      // mark it handed over so the replacement below doesn't release it.
      layer.pending.chain = StreamChainStore::kNil;
    }
    if (!layer.has_pending) layer.class_base = eval.error;
    layer.pending.at = running_;
    layer.pending.error = eval.error;
    if (use_chain_refs) {
      // Transfer the evaluation's owned reference into the pending slot
      // (and drop the reference the replaced pending held) — O(1), no
      // copy, no allocation.
      chain_store_->Release(layer.pending.chain);
      layer.pending.chain = eval.chain;
      eval.chain = StreamChainStore::kNil;
    } else {
      layer.pending.boundaries = eval.boundaries;
    }
    layer.has_pending = true;
  }
}

std::size_t StreamingHistogramBuilder::breakpoints() const {
  std::size_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.committed.size() + (layer.has_pending ? 1 : 0);
  }
  return total;
}

StatusOr<StreamingHistogramBuilder::Result> StreamingHistogramBuilder::Finish()
    const {
  if (count_ == 0) return Status::FailedPrecondition("empty stream");
  const Layer& top = layers_[max_buckets_ - 1];
  PROBSYN_CHECK(top.has_pending);
  // The top layer's pending is exactly E_B at the final position, with its
  // boundary chain.
  const Breakpoint& final_state = top.pending;

  std::vector<HistogramBucket> buckets;
  std::vector<Snapshot> cuts;
  if (kernel_ == StreamingKernel::kReference) {
    cuts = final_state.boundaries;
  } else {
    // One parent walk recovers the boundaries newest-first; reversing
    // restores stream order — the only O(chain) step, paid once per
    // Finish instead of once per Push.
    for (StreamChainStore::Ref ref = final_state.chain;
         ref != StreamChainStore::kNil; ref = chain_store_->parent(ref)) {
      cuts.push_back({chain_store_->sum_mean(ref),
                      chain_store_->sum_second(ref),
                      chain_store_->position(ref)});
    }
    std::reverse(cuts.begin(), cuts.end());
  }
  cuts.push_back(running_);
  Snapshot prev;  // origin
  double total = 0.0;
  for (const Snapshot& cut : cuts) {
    PROBSYN_CHECK(cut.position > prev.position);
    HistogramBucket bucket;
    bucket.start = prev.position;
    bucket.end = cut.position - 1;
    bucket.representative = Representative(prev, cut);
    total += BucketCost(prev, cut);
    buckets.push_back(bucket);
    prev = cut;
  }

  Result result;
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  result.peak_breakpoints = peak_breakpoints_;
  PROBSYN_RETURN_IF_ERROR(result.histogram.Validate(count_));
  return result;
}

}  // namespace probsyn
