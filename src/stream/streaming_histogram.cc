#include "stream/streaming_histogram.h"

#include <algorithm>
#include <limits>

#include "core/dp_kernels.h"
#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

const char* StreamingKernelName(StreamingKernel kind) {
  switch (kind) {
    case StreamingKernel::kAuto: return "auto";
    case StreamingKernel::kReference: return "reference";
    case StreamingKernel::kPointCost: return "point-cost";
  }
  return "?";
}

StreamingHistogramBuilder::StreamingHistogramBuilder(
    std::size_t max_buckets, double epsilon, StreamingKernel kernel,
    StreamChainStore* chain_store)
    : max_buckets_(std::max<std::size_t>(1, max_buckets)),
      delta_(std::min(
          0.5, std::max(epsilon, 1e-9) / (2.0 * static_cast<double>(
                                                    std::max<std::size_t>(
                                                        1, max_buckets))))),
      kernel_(kernel == StreamingKernel::kAuto ? StreamingKernel::kPointCost
                                               : kernel),
      owned_chain_store_(kernel_ == StreamingKernel::kPointCost &&
                                 chain_store == nullptr
                             ? std::make_unique<StreamChainStore>()
                             : nullptr),
      chain_store_(kernel_ == StreamingKernel::kPointCost
                       ? (chain_store == nullptr ? owned_chain_store_.get()
                                                 : chain_store)
                       : nullptr) {
  layers_.resize(max_buckets_);
}

StreamingHistogramBuilder::~StreamingHistogramBuilder() {
  if (chain_store_ == nullptr) return;  // reference path: copy-based chains
  // Hand every owned chain reference back so an injected store's live-node
  // count returns to its pre-builder baseline (leak-tested).
  for (Layer& layer : layers_) {
    for (Breakpoint& breakpoint : layer.committed) {
      chain_store_->Release(breakpoint.chain);
    }
    if (layer.has_pending) chain_store_->Release(layer.pending.chain);
  }
}

double StreamingHistogramBuilder::BucketCost(const Snapshot& from,
                                             const Snapshot& to) {
  PROBSYN_DCHECK(to.position > from.position);
  double width = static_cast<double>(to.position - from.position);
  double mean = to.sum_mean - from.sum_mean;
  double second = to.sum_second - from.sum_second;
  return ClampTinyNegative(second - mean * mean / width, 1e-6);
}

double StreamingHistogramBuilder::Representative(const Snapshot& from,
                                                 const Snapshot& to) {
  double width = static_cast<double>(to.position - from.position);
  return (to.sum_mean - from.sum_mean) / width;
}

void StreamingHistogramBuilder::Push(const ValuePdf& pdf) {
  ++count_;
  running_.position = count_;
  running_.sum_mean += pdf.Mean();
  running_.sum_second += pdf.SecondMoment();

  if (kernel_ == StreamingKernel::kReference) {
    PushReference();
  } else {
    PushPointCost();
  }
  peak_breakpoints_ = std::max(peak_breakpoints_, breakpoints());
}

// The pre-kernel scan, preserved as the parity baseline: one compare per
// candidate, copying the candidate's boundary chain on every improvement,
// with freshly allocated per-push evaluation state.
void StreamingHistogramBuilder::PushReference() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Evaluate every layer's prefix error at the current position using the
  // PREVIOUS pendings/breakpoints (all at positions <= count_-1).
  std::vector<Eval> evals(max_buckets_);
  for (Eval& eval : evals) eval.error = kInf;
  Snapshot origin;  // zero state at position 0
  evals[0].error = BucketCost(origin, running_);

  for (std::size_t b = 2; b <= max_buckets_; ++b) {
    Eval best;
    best.error = kInf;
    auto consider = [&](const Breakpoint& candidate) {
      if (candidate.at.position >= count_) return;  // empty last bucket
      double err = candidate.error + BucketCost(candidate.at, running_);
      if (err < best.error) {
        best.error = err;
        best.boundaries = candidate.boundaries;
        best.boundaries.push_back(candidate.at);
      }
    };
    const Layer& prev = layers_[b - 2];
    for (const Breakpoint& candidate : prev.committed) consider(candidate);
    if (prev.has_pending) consider(prev.pending);
    // "At most b" inheritance keeps layers monotone.
    if (evals[b - 2].error < best.error) best = evals[b - 2];
    evals[b - 1] = std::move(best);
  }

  CommitLayers(evals, /*move_chains=*/false);
}

// Point-cost kernel: per layer, materialize every committed candidate's
// extension cost from the hoisted snapshot columns (the identical
// prefix-moment arithmetic as BucketCost), minimize through the SIMD
// dispatch, resolve the reference tie-break (first committed candidate
// attaining the minimum; the pending and inherit candidates win only
// strictly, in that order), and record the winner's boundary chain as ONE
// persistent-chain operation — Extend() on the winner's chain reference
// (hash-consed: a re-chosen winner resolves to the already-live node) or
// an AddRef() when inheritance wins. Push therefore does O(1) chain work
// per layer REGARDLESS of chain length, where the reference path copies
// the full O(B) winner chain; steady-state pushes allocate nothing (the
// store recycles freed nodes, evaluation slots and value buffers reuse
// their capacity). Outputs are bit-identical to the reference scan.
void StreamingHistogramBuilder::PushPointCost() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr StreamChainStore::Ref kNil = StreamChainStore::kNil;
  evals_.resize(max_buckets_);
  for (Eval& eval : evals_) {
    eval.error = kInf;
    eval.chain = kNil;  // previous push transferred every owned reference
  }
  Snapshot origin;  // zero state at position 0
  evals_[0].error = BucketCost(origin, running_);

  for (std::size_t b = 2; b <= max_buckets_; ++b) {
    const Layer& prev = layers_[b - 2];
    Eval& best = evals_[b - 1];

    const std::size_t committed = prev.committed.size();
    candidate_values_.resize(committed);
    double error = SimdStreamingMergeColumn(
        prev.cand_error.data(), prev.cand_sum_mean.data(),
        prev.cand_sum_second.data(), prev.cand_position.data(), committed,
        static_cast<double>(count_), running_.sum_mean, running_.sum_second,
        candidate_values_.data());
    const Breakpoint* winner = nullptr;
    if (error < kInf) {
      for (std::size_t i = 0; i < committed; ++i) {
        if (candidate_values_[i] == error) {
          winner = &prev.committed[i];
          break;
        }
      }
    }
    if (prev.has_pending && prev.pending.at.position < count_) {
      double err = prev.pending.error + BucketCost(prev.pending.at, running_);
      if (err < error) {
        error = err;
        winner = &prev.pending;
      }
    }
    // "At most b" inheritance keeps layers monotone; it shares the
    // inherited evaluation's chain outright (one refcount bump).
    if (evals_[b - 2].error < error) {
      best.error = evals_[b - 2].error;
      best.chain = evals_[b - 2].chain;
      if (best.chain != kNil) chain_store_->AddRef(best.chain);
      continue;
    }
    best.error = error;
    if (winner != nullptr) {
      best.chain =
          chain_store_->Extend(winner->chain, winner->at.sum_mean,
                               winner->at.sum_second, winner->at.position);
    }
  }

  CommitLayers(evals_, /*use_chain_refs=*/true);
}

void StreamingHistogramBuilder::PushBatch(std::span<const ValuePdf> pdfs) {
  if (kernel_ == StreamingKernel::kReference) {
    // The parity baseline has no batched form; semantics are identical.
    for (const ValuePdf& pdf : pdfs) Push(pdf);
    return;
  }
  std::size_t offset = 0;
  while (offset < pdfs.size()) {
    const std::size_t block =
        std::min<std::size_t>(kBatchWidth, pdfs.size() - offset);
    PushBatchPointCost(pdfs.subspan(offset, block));
    offset += block;
  }
}

// Layer-major replay of kk <= kBatchWidth sequential pushes. The
// sequential recurrence interleaves per-push scans and commits; here each
// layer is processed ONCE for the whole block — scan all kk evaluations
// of layer L (8 pushes per SIMD register), then replay its kk commit
// steps — which is legal because layer L's evaluations depend only on
// layer L-1's state, already fully replayed. Three bookkeeping devices
// keep the replay bit-identical to the sequential order:
//
//  * a visibility timeline per layer (batch_visible_): a candidate
//    committed while replaying push k' becomes visible only to pushes
//    k > k', so the batched sweep covers the pre-group prefix and a
//    scalar tail covers the mid-block arrivals each push would have seen;
//  * the pending-candidate timeline: at push k, layer L-1's pending is
//    its push-(k-1) evaluation — a row of this block's scratch — except
//    at k = 0, where it is the pre-block pending, captured (pend0) with a
//    chain reference held to block end before the commit pass rotates it;
//  * chain refcount discipline: every eval row owns one reference to its
//    chain for the whole block (the next layer extends or inherits from
//    it), committed breakpoints and the rotated pending take their own
//    references, and the block-end release pass drops the scratch ones —
//    leaving the exact live-node set the sequential pushes produce
//    (asserted by the differential tests).
void StreamingHistogramBuilder::PushBatchPointCost(
    std::span<const ValuePdf> pdfs) {
  constexpr StreamChainStore::Ref kNil = StreamChainStore::kNil;
  constexpr std::int64_t kPendingWins = -2;
  const std::size_t kk = pdfs.size();
  PROBSYN_DCHECK(kk >= 1 && kk <= kBatchWidth);

  // Extend the running prefix and the reciprocal table once per block.
  batch_snapshots_.resize(kk);
  for (std::size_t k = 0; k < kk; ++k) {
    ++count_;
    running_.position = count_;
    running_.sum_mean += pdfs[k].Mean();
    running_.sum_second += pdfs[k].SecondMoment();
    batch_snapshots_[k] = running_;
  }
  if (recips_.empty()) recips_.push_back(0.0);  // index 0: width is never 0
  while (recips_.size() <= count_) {
    recips_.push_back(1.0 / static_cast<double>(recips_.size()));
  }

  const std::size_t stride = kBatchWidth;
  batch_errors_.resize(max_buckets_ * stride);
  batch_chains_.resize(max_buckets_ * stride, kNil);
  batch_visible_.resize(max_buckets_ * (stride + 1));
  batch_pend0_at_.resize(max_buckets_);
  batch_pend0_error_.resize(max_buckets_);
  batch_pend0_chain_.resize(max_buckets_, kNil);
  batch_pend0_has_.resize(max_buckets_);

  const Snapshot origin;  // zero state at position 0
  for (std::size_t L = 0; L < max_buckets_; ++L) {
    double* err_row = batch_errors_.data() + L * stride;
    StreamChainStore::Ref* chain_row = batch_chains_.data() + L * stride;

    // --- Scan pass: evaluate layer L at every push of the block. ------
    if (L == 0) {
      for (std::size_t k = 0; k < kk; ++k) {
        err_row[k] = BucketCost(origin, batch_snapshots_[k]);
        chain_row[k] = kNil;  // the one-bucket solution has no boundaries
      }
    } else {
      const Layer& prev = layers_[L - 1];
      const double* prev_err_row = batch_errors_.data() + (L - 1) * stride;
      const StreamChainStore::Ref* prev_chain_row =
          batch_chains_.data() + (L - 1) * stride;
      const std::uint32_t* prev_vis =
          batch_visible_.data() + (L - 1) * (stride + 1);
      for (std::size_t k0 = 0; k0 < kk; k0 += 8) {
        const std::size_t group = std::min<std::size_t>(8, kk - k0);
        const std::size_t visible0 = prev_vis[k0];
        double total_mean[8];
        double total_second[8];
        double best_value[8];
        std::int64_t best_arg[8];
        for (std::size_t j = 0; j < group; ++j) {
          total_mean[j] = batch_snapshots_[k0 + j].sum_mean;
          total_second[j] = batch_snapshots_[k0 + j].sum_second;
        }
        SimdStreamingBatchSweep(
            prev.cand_error.data(), prev.cand_sum_mean.data(),
            prev.cand_sum_second.data(), prev.cand_position.data(),
            prev.cand_neg_position.data(), visible0, total_mean,
            total_second, batch_snapshots_[k0].position, recips_.data(),
            group, best_value, best_arg);
        for (std::size_t j = 0; j < group; ++j) {
          const std::size_t k = k0 + j;
          const Snapshot& s = batch_snapshots_[k];
          double best_error = best_value[j];
          std::int64_t winner = best_arg[j];
          // Scalar tail: candidates committed DURING the block become
          // visible push by push. Strict < keeps the earliest index on
          // ties, exactly like the full first-index-of-minimum scan.
          const double count = static_cast<double>(s.position);
          for (std::size_t i = visible0; i < prev_vis[k]; ++i) {
            const double width = count - prev.cand_position[i];
            const double mean = s.sum_mean - prev.cand_sum_mean[i];
            const double second = s.sum_second - prev.cand_sum_second[i];
            double cost = second - mean * mean / width;
            cost = (cost < 0.0 && cost > -1e-6) ? 0.0 : cost;
            const double v = prev.cand_error[i] + cost;
            if (v < best_error) {
              best_error = v;
              winner = static_cast<std::int64_t>(i);
            }
          }
          // Layer L-1's pending as push k saw it (wins strictly, after
          // the committed scan — the sequential candidate order).
          bool pending_has;
          Snapshot pending_at;
          double pending_error = 0.0;
          StreamChainStore::Ref pending_chain = kNil;
          if (k == 0) {
            pending_has = batch_pend0_has_[L - 1] != 0;
            pending_at = batch_pend0_at_[L - 1];
            pending_error = batch_pend0_error_[L - 1];
            pending_chain = batch_pend0_chain_[L - 1];
          } else {
            pending_has = true;
            pending_at = batch_snapshots_[k - 1];
            pending_error = prev_err_row[k - 1];
            pending_chain = prev_chain_row[k - 1];
          }
          if (pending_has && pending_at.position < s.position) {
            const double v = pending_error + BucketCost(pending_at, s);
            if (v < best_error) {
              best_error = v;
              winner = kPendingWins;
            }
          }
          // "At most b" inheritance keeps layers monotone; it shares the
          // inherited evaluation's chain outright (one refcount bump).
          if (prev_err_row[k] < best_error) {
            err_row[k] = prev_err_row[k];
            StreamChainStore::Ref chain = prev_chain_row[k];
            if (chain != kNil) chain_store_->AddRef(chain);
            chain_row[k] = chain;
            continue;
          }
          err_row[k] = best_error;
          if (winner >= 0) {
            const Breakpoint& won =
                prev.committed[static_cast<std::size_t>(winner)];
            chain_row[k] =
                chain_store_->Extend(won.chain, won.at.sum_mean,
                                     won.at.sum_second, won.at.position);
          } else if (winner == kPendingWins) {
            chain_row[k] = chain_store_->Extend(
                pending_chain, pending_at.sum_mean, pending_at.sum_second,
                pending_at.position);
          } else {
            chain_row[k] = kNil;  // no usable candidate (tiny first block)
          }
        }
      }
    }

    // --- Commit pass: replay layer L's kk last-position-of-class steps.
    Layer& layer = layers_[L];
    std::uint32_t* vis_row = batch_visible_.data() + L * (stride + 1);
    // pend0 capture: hold the pre-block pending (and a reference on its
    // chain) past this pass's pending rotation — the NEXT layer's k = 0
    // scan still needs it as a candidate.
    batch_pend0_has_[L] = layer.has_pending ? 1 : 0;
    batch_pend0_at_[L] = layer.pending.at;
    batch_pend0_error_[L] = layer.pending.error;
    batch_pend0_chain_[L] = layer.has_pending ? layer.pending.chain : kNil;
    if (batch_pend0_chain_[L] != kNil) {
      chain_store_->AddRef(batch_pend0_chain_[L]);
    }
    vis_row[0] = static_cast<std::uint32_t>(layer.committed.size());
    for (std::size_t k = 0; k < kk; ++k) {
      bool pending_has;
      const Snapshot* pending_at;
      double pending_error;
      StreamChainStore::Ref pending_chain;
      if (k == 0) {
        pending_has = batch_pend0_has_[L] != 0;
        pending_at = &batch_pend0_at_[L];
        pending_error = batch_pend0_error_[L];
        pending_chain = batch_pend0_chain_[L];
      } else {
        pending_has = true;
        pending_at = &batch_snapshots_[k - 1];
        pending_error = err_row[k - 1];
        pending_chain = chain_row[k - 1];
      }
      const double error = err_row[k];
      const bool class_overflow =
          pending_has && (error > (1.0 + delta_) * layer.class_base ||
                          (layer.class_base == 0.0 && error > 0.0));
      if (class_overflow) {
        Breakpoint committed;
        committed.at = *pending_at;
        committed.error = pending_error;
        if (pending_chain != kNil) chain_store_->AddRef(pending_chain);
        committed.chain = pending_chain;
        layer.committed.push_back(std::move(committed));
        layer.cand_error.push_back(pending_error);
        layer.cand_sum_mean.push_back(pending_at->sum_mean);
        layer.cand_sum_second.push_back(pending_at->sum_second);
        layer.cand_position.push_back(
            static_cast<double>(pending_at->position));
        layer.cand_neg_position.push_back(
            -static_cast<std::int64_t>(pending_at->position));
        layer.class_base = error;
      }
      if (!pending_has) layer.class_base = error;
      vis_row[k + 1] = static_cast<std::uint32_t>(layer.committed.size());
    }
    // Rotate the pending slot to the final push's evaluation, sharing its
    // chain (the eval rows keep their own references until block end).
    chain_store_->Release(layer.pending.chain);
    layer.pending.at = batch_snapshots_[kk - 1];
    layer.pending.error = err_row[kk - 1];
    StreamChainStore::Ref final_chain = chain_row[kk - 1];
    if (final_chain != kNil) chain_store_->AddRef(final_chain);
    layer.pending.chain = final_chain;
    layer.has_pending = true;
  }

  // Drop the block's transient references; what remains live is exactly
  // what the equivalent sequence of single pushes leaves live.
  for (std::size_t L = 0; L < max_buckets_; ++L) {
    StreamChainStore::Ref* chain_row = batch_chains_.data() + L * stride;
    for (std::size_t k = 0; k < kk; ++k) {
      chain_store_->Release(chain_row[k]);
      chain_row[k] = kNil;
    }
    chain_store_->Release(batch_pend0_chain_[L]);
    batch_pend0_chain_[L] = kNil;
  }
  // Committed counts and pending flags are monotone within a block, so
  // the block-end total equals the block's per-push maximum — the same
  // peak the sequential loop tracks push by push.
  peak_breakpoints_ = std::max(peak_breakpoints_, breakpoints());
}

void StreamingHistogramBuilder::CommitLayers(std::vector<Eval>& evals,
                                             bool use_chain_refs) {
  // Last-position-of-class rule: commit the previous pending when the
  // error outgrows its geometric class.
  for (std::size_t b = 1; b <= max_buckets_; ++b) {
    Layer& layer = layers_[b - 1];
    Eval& eval = evals[b - 1];
    bool class_overflow =
        layer.has_pending &&
        (eval.error > (1.0 + delta_) * layer.class_base ||
         (layer.class_base == 0.0 && eval.error > 0.0));
    if (class_overflow) {
      layer.committed.push_back(layer.pending);
      // Keep the hoisted candidate columns in lockstep with `committed`.
      layer.cand_error.push_back(layer.pending.error);
      layer.cand_sum_mean.push_back(layer.pending.at.sum_mean);
      layer.cand_sum_second.push_back(layer.pending.at.sum_second);
      layer.cand_position.push_back(
          static_cast<double>(layer.pending.at.position));
      layer.cand_neg_position.push_back(
          -static_cast<std::int64_t>(layer.pending.at.position));
      layer.class_base = eval.error;
      // The pending's owned chain reference moved into committed.back();
      // mark it handed over so the replacement below doesn't release it.
      layer.pending.chain = StreamChainStore::kNil;
    }
    if (!layer.has_pending) layer.class_base = eval.error;
    layer.pending.at = running_;
    layer.pending.error = eval.error;
    if (use_chain_refs) {
      // Transfer the evaluation's owned reference into the pending slot
      // (and drop the reference the replaced pending held) — O(1), no
      // copy, no allocation.
      chain_store_->Release(layer.pending.chain);
      layer.pending.chain = eval.chain;
      eval.chain = StreamChainStore::kNil;
    } else {
      layer.pending.boundaries = eval.boundaries;
    }
    layer.has_pending = true;
  }
}

std::size_t StreamingHistogramBuilder::breakpoints() const {
  std::size_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.committed.size() + (layer.has_pending ? 1 : 0);
  }
  return total;
}

StatusOr<StreamingHistogramBuilder::Result> StreamingHistogramBuilder::Finish()
    const {
  if (count_ == 0) return Status::FailedPrecondition("empty stream");
  const Layer& top = layers_[max_buckets_ - 1];
  PROBSYN_CHECK(top.has_pending);
  // The top layer's pending is exactly E_B at the final position, with its
  // boundary chain.
  const Breakpoint& final_state = top.pending;

  std::vector<HistogramBucket> buckets;
  std::vector<Snapshot> cuts;
  if (kernel_ == StreamingKernel::kReference) {
    cuts = final_state.boundaries;
  } else {
    // One parent walk recovers the boundaries newest-first; reversing
    // restores stream order — the only O(chain) step, paid once per
    // Finish instead of once per Push.
    for (StreamChainStore::Ref ref = final_state.chain;
         ref != StreamChainStore::kNil; ref = chain_store_->parent(ref)) {
      cuts.push_back({chain_store_->sum_mean(ref),
                      chain_store_->sum_second(ref),
                      chain_store_->position(ref)});
    }
    std::reverse(cuts.begin(), cuts.end());
  }
  cuts.push_back(running_);
  Snapshot prev;  // origin
  double total = 0.0;
  for (const Snapshot& cut : cuts) {
    PROBSYN_CHECK(cut.position > prev.position);
    HistogramBucket bucket;
    bucket.start = prev.position;
    bucket.end = cut.position - 1;
    bucket.representative = Representative(prev, cut);
    total += BucketCost(prev, cut);
    buckets.push_back(bucket);
    prev = cut;
  }

  Result result;
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  result.peak_breakpoints = peak_breakpoints_;
  PROBSYN_RETURN_IF_ERROR(result.histogram.Validate(count_));
  return result;
}

}  // namespace probsyn
