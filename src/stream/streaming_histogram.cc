#include "stream/streaming_histogram.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/math.h"

namespace probsyn {

StreamingHistogramBuilder::StreamingHistogramBuilder(std::size_t max_buckets,
                                                     double epsilon)
    : max_buckets_(std::max<std::size_t>(1, max_buckets)),
      delta_(std::min(
          0.5, std::max(epsilon, 1e-9) / (2.0 * static_cast<double>(
                                                    std::max<std::size_t>(
                                                        1, max_buckets))))) {
  layers_.resize(max_buckets_);
}

double StreamingHistogramBuilder::BucketCost(const Snapshot& from,
                                             const Snapshot& to) {
  PROBSYN_DCHECK(to.position > from.position);
  double width = static_cast<double>(to.position - from.position);
  double mean = to.sum_mean - from.sum_mean;
  double second = to.sum_second - from.sum_second;
  return ClampTinyNegative(second - mean * mean / width, 1e-6);
}

double StreamingHistogramBuilder::Representative(const Snapshot& from,
                                                 const Snapshot& to) {
  double width = static_cast<double>(to.position - from.position);
  return (to.sum_mean - from.sum_mean) / width;
}

void StreamingHistogramBuilder::Push(const ValuePdf& pdf) {
  ++count_;
  running_.position = count_;
  running_.sum_mean += pdf.Mean();
  running_.sum_second += pdf.SecondMoment();

  // Evaluate every layer's prefix error at the current position using the
  // PREVIOUS pendings/breakpoints (all at positions <= count_-1).
  struct Eval {
    double error = std::numeric_limits<double>::infinity();
    std::vector<Snapshot> boundaries;
  };
  std::vector<Eval> evals(max_buckets_);
  Snapshot origin;  // zero state at position 0
  evals[0].error = BucketCost(origin, running_);

  for (std::size_t b = 2; b <= max_buckets_; ++b) {
    Eval best;
    auto consider = [&](const Breakpoint& candidate) {
      if (candidate.at.position >= count_) return;  // empty last bucket
      double err = candidate.error + BucketCost(candidate.at, running_);
      if (err < best.error) {
        best.error = err;
        best.boundaries = candidate.boundaries;
        best.boundaries.push_back(candidate.at);
      }
    };
    const Layer& prev = layers_[b - 2];
    for (const Breakpoint& candidate : prev.committed) consider(candidate);
    if (prev.has_pending) consider(prev.pending);
    // "At most b" inheritance keeps layers monotone.
    if (evals[b - 2].error < best.error) best = evals[b - 2];
    evals[b - 1] = std::move(best);
  }

  // Update each layer's pending / committed breakpoints (last-position-of-
  // class rule: commit the previous pending when the error outgrows its
  // class).
  for (std::size_t b = 1; b <= max_buckets_; ++b) {
    Layer& layer = layers_[b - 1];
    const Eval& eval = evals[b - 1];
    bool class_overflow =
        layer.has_pending &&
        (eval.error > (1.0 + delta_) * layer.class_base ||
         (layer.class_base == 0.0 && eval.error > 0.0));
    if (class_overflow) {
      layer.committed.push_back(layer.pending);
      layer.class_base = eval.error;
    }
    if (!layer.has_pending) layer.class_base = eval.error;
    layer.pending.at = running_;
    layer.pending.error = eval.error;
    layer.pending.boundaries = eval.boundaries;
    layer.has_pending = true;
  }
  peak_breakpoints_ = std::max(peak_breakpoints_, breakpoints());
}

std::size_t StreamingHistogramBuilder::breakpoints() const {
  std::size_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.committed.size() + (layer.has_pending ? 1 : 0);
  }
  return total;
}

StatusOr<StreamingHistogramBuilder::Result> StreamingHistogramBuilder::Finish()
    const {
  if (count_ == 0) return Status::FailedPrecondition("empty stream");
  const Layer& top = layers_[max_buckets_ - 1];
  PROBSYN_CHECK(top.has_pending);
  // The top layer's pending is exactly E_B at the final position, with its
  // boundary chain.
  const Breakpoint& final_state = top.pending;

  std::vector<HistogramBucket> buckets;
  std::vector<Snapshot> cuts = final_state.boundaries;
  cuts.push_back(running_);
  Snapshot prev;  // origin
  double total = 0.0;
  for (const Snapshot& cut : cuts) {
    PROBSYN_CHECK(cut.position > prev.position);
    HistogramBucket bucket;
    bucket.start = prev.position;
    bucket.end = cut.position - 1;
    bucket.representative = Representative(prev, cut);
    total += BucketCost(prev, cut);
    buckets.push_back(bucket);
    prev = cut;
  }

  Result result;
  result.histogram = Histogram(std::move(buckets));
  result.cost = total;
  result.peak_breakpoints = peak_breakpoints_;
  PROBSYN_RETURN_IF_ERROR(result.histogram.Validate(count_));
  return result;
}

}  // namespace probsyn
