#ifndef PROBSYN_STREAM_INGEST_COORDINATOR_H_
#define PROBSYN_STREAM_INGEST_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/dp_kernels.h"
#include "model/value_pdf.h"
#include "stream/streaming_histogram.h"
#include "util/deadline.h"
#include "util/status.h"

namespace probsyn {

class ThreadPool;

/// What Submit does when a stream's bounded queue is full.
enum class IngestBackpressure {
  /// Drain the queue inline (or wait for the active drainer to free
  /// space), then enqueue. Submit never drops or fails on capacity — it
  /// only returns non-OK when the attached ExecContext stops the ingest.
  kBlock,
  /// Fail the Submit with kResourceExhausted and leave the queue
  /// untouched; the caller decides whether to retry, drain, or drop.
  kRejectWithStatus,
  /// Drop the OLDEST queued item to make room and enqueue the new one
  /// (counted in Stats::shed). The builder then sees a stream with a gap:
  /// use only when the synopsis may lag under overload, never when
  /// bit-exact replay matters.
  kShedOldest,
};

/// Stable display name ("block", "reject", "shed-oldest").
const char* IngestBackpressureName(IngestBackpressure policy);

/// Configuration of every stream opened by one IngestCoordinator.
struct IngestOptions {
  /// Bucket budget of each per-stream streaming builder; >= 1.
  std::size_t max_buckets = 8;
  /// Approximation slack of each builder; > 0.
  double epsilon = 0.25;
  /// Bounded capacity of each stream's submission queue (items); >= 1.
  /// Preallocated up front, so steady-state Submit never allocates.
  std::size_t queue_capacity = 4096;
  /// Maximum items one PushBatch call consumes per drain step; >= 1.
  /// Larger blocks amortize better; smaller blocks bound the latency of a
  /// cancellation poll (the drain loop polls between blocks).
  std::size_t drain_batch = 256;
  /// Queue-full policy; see IngestBackpressure.
  IngestBackpressure backpressure = IngestBackpressure::kBlock;
  /// Optional stop signal (deadline and/or cancel tokens) polled by the
  /// drain loops and by blocked Submits; must outlive the coordinator.
  /// Null never stops (the historical unbounded behavior).
  const ExecContext* context = nullptr;
};

/// Fans many independent item streams into per-stream
/// StreamingHistogramBuilders through one shared ThreadPool, with bounded
/// buffering and explicit backpressure between producers and the drain
/// work — the ingest tier in front of the streaming construction path.
///
/// Shape: each OpenStream() gets a preallocated single-ring submission
/// queue, a DpWorkspace lease of its own (chain stores are never shared
/// across streams — the builders' refcounted nodes are not thread-safe
/// across concurrent streams), and a builder configured from
/// IngestOptions. Producers Submit/SubmitBatch items (any thread,
/// serialized per stream); DrainAll() fans the queued backlog out over the
/// pool with one ParallelFor lane per stream; Finish(stream) drains the
/// stream's remainder and extracts its histogram.
///
/// Determinism: a stream's result depends only on the sequence of items
/// submitted to it — never on queue boundaries, drain timing, thread
/// count, or the pool's chunk assignment. This falls out of two
/// guarantees: the queue is strictly FIFO per stream, and
/// StreamingHistogramBuilder::PushBatch is bit-identical to the equivalent
/// single Pushes no matter how the backlog is split into blocks (pinned in
/// tests/ingest_test.cc across {1, 2, 8}-thread coordinators).
///
/// Thread safety: all public methods are thread-safe. Per-stream FIFO
/// order is the producers' responsibility when several threads submit to
/// ONE stream (the lock serializes them, but arrival order is then
/// scheduler-defined); the intended layout is one producer per stream.
class IngestCoordinator {
 public:
  /// Monotonic event counters across all streams (relaxed atomics — read
  /// them after the producing calls return, e.g. between DrainAll and the
  /// next Submit wave, for exact values).
  struct Stats {
    std::size_t accepted = 0;  ///< Items enqueued successfully.
    std::size_t rejected = 0;  ///< Submits failed by kRejectWithStatus.
    std::size_t shed = 0;      ///< Items dropped by kShedOldest.
    std::size_t batches = 0;   ///< PushBatch blocks fed to builders.
    std::size_t pushed = 0;    ///< Items consumed by builders.
  };

  /// `pool` (nullable) runs DrainAll's per-stream fan-out; null drains
  /// sequentially on the calling thread. `workspaces` (nullable) leases
  /// one DpWorkspace per stream so repeated coordinator generations reuse
  /// warm chain-store capacity; null lets each builder own a private
  /// store. Both must outlive the coordinator; `options` must already be
  /// validated (SynopsisEngine::OpenIngest validates, direct constructions
  /// are PROBSYN_CHECKed).
  IngestCoordinator(const IngestOptions& options, ThreadPool* pool,
                    DpWorkspacePool* workspaces);
  ~IngestCoordinator();

  IngestCoordinator(const IngestCoordinator&) = delete;
  IngestCoordinator& operator=(const IngestCoordinator&) = delete;

  /// Opens a new stream and returns its id (dense, starting at 0). The
  /// queue and builder are allocated here, not on the submit path.
  std::size_t OpenStream();

  /// Number of streams opened so far.
  std::size_t num_streams() const;

  /// Enqueues one item on `stream` (see IngestBackpressure for the
  /// queue-full behavior). Fails with kInvalidArgument on a bad stream id,
  /// kFailedPrecondition after Finish(stream), kResourceExhausted under
  /// kRejectWithStatus on a full queue, and the context's stop status when
  /// a blocked Submit is cancelled or deadlined.
  Status Submit(std::size_t stream, const ValuePdf& item);

  /// Enqueues a block of items in order; equivalent to Submitting each in
  /// sequence (on the first failure the prefix before it stays enqueued
  /// and the error reports the failing offset).
  Status SubmitBatch(std::size_t stream, std::span<const ValuePdf> items);

  /// Drains every stream's queued backlog into its builder, one pool lane
  /// per stream (sequentially without a pool). Returns the first stream's
  /// stop status when the attached context fires mid-drain; already-pushed
  /// items stay pushed (the builders remain valid and consistent).
  Status DrainAll();

  /// Drains the remaining backlog of `stream` and extracts its histogram
  /// (non-destructive: the stream stops accepting Submits, but its result
  /// stays extractable). Fails like Submit on bad ids plus whatever the
  /// builder's Finish reports (e.g. kInvalidArgument on an empty stream).
  StatusOr<StreamingHistogramBuilder::Result> Finish(std::size_t stream);

  /// Counter snapshot (see Stats).
  Stats stats() const;

 private:
  // One stream's state. Queue is a fixed-capacity ring over `buffer`;
  // `draining` is the single-consumer role claim — whoever sets it (a
  // DrainAll lane or a kBlock Submit going inline) owns the builder until
  // clearing it, so builder access needs no second lock.
  struct Stream {
    std::mutex mutex;
    std::condition_variable space_cv;
    std::vector<ValuePdf> buffer;  // capacity == queue_capacity, fixed
    std::size_t head = 0;          // ring read index
    std::size_t size = 0;          // queued item count
    bool draining = false;
    bool finished = false;
    std::optional<DpWorkspacePool::Lease> lease;
    std::unique_ptr<StreamingHistogramBuilder> builder;
    std::vector<ValuePdf> drain_scratch;  // capacity == drain_batch
  };

  // Moves up to drain_batch items out of the ring under the lock into
  // drain_scratch; returns the count (0 = queue empty).
  static std::size_t TakeBlock(Stream& s, std::size_t drain_batch,
                               std::vector<ValuePdf>& out);

  // Drains `s` until its queue is empty or the context stops; caller must
  // NOT hold s.mutex. Claims/releases the draining role itself; returns
  // immediately OK when another thread holds it (that thread is making
  // the progress).
  Status DrainStream(Stream& s);

  IngestOptions options_;
  ThreadPool* pool_;
  DpWorkspacePool* workspaces_;

  mutable std::mutex streams_mutex_;  // guards the streams_ vector shape
  std::vector<std::unique_ptr<Stream>> streams_;

  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> pushed_{0};
};

}  // namespace probsyn

#endif  // PROBSYN_STREAM_INGEST_COORDINATOR_H_
