#ifndef PROBSYN_TESTS_TEST_UTIL_H_
#define PROBSYN_TESTS_TEST_UTIL_H_

#include <cstddef>
#include <vector>

#include "core/dp_kernels.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "model/basic.h"
#include "model/tuple_pdf.h"
#include "model/value_pdf.h"
#include "model/worlds.h"

namespace probsyn::testing {

/// Forces the SIMD min-reduction dispatch onto `path` for the enclosing
/// scope and restores the previous decision on exit, so one test's forcing
/// never leaks into another. The request clamps to what the CPU and build
/// support; active() reports the path actually in effect.
class ScopedSimdPath {
 public:
  explicit ScopedSimdPath(SimdPath path)
      : previous_(ActiveSimdPath()), active_(ForceSimdPath(path)) {}
  ~ScopedSimdPath() { ForceSimdPath(previous_); }

  ScopedSimdPath(const ScopedSimdPath&) = delete;
  ScopedSimdPath& operator=(const ScopedSimdPath&) = delete;

  /// The path actually in effect (the request clamps to CPU/build support).
  SimdPath active() const { return active_; }

 private:
  SimdPath previous_;
  SimdPath active_;
};

/// The SIMD paths this machine can actually run (kScalar always).
std::vector<SimdPath> SupportedSimdPaths();

/// The paper's Example 1 (section 2.1), mapped to the 0-based domain
/// {0, 1, 2} (the paper's items 1, 2, 3).

/// Basic model: <1, 1/2>, <2, 1/3>, <2, 1/4>, <3, 1/2>.
BasicModelInput PaperExampleBasic();

/// Tuple pdf: <(1, 1/2), (2, 1/3)>, <(2, 1/4), (3, 1/2)>.
TuplePdfInput PaperExampleTuplePdf();

/// Value pdf: g1 ~ {0:1/2, 1:1/2}, g2 ~ {0:5/12, 1:1/3, 2:1/4},
/// g3 ~ {0:1/2, 1:1/2}.
ValuePdfInput PaperExampleValuePdf();

/// E_W[err(g_i, v)] by exhaustive possible-world enumeration.
double EnumeratedItemError(const std::vector<PossibleWorld>& worlds,
                           std::size_t item, double v, ErrorMetric metric,
                           double c);

/// The paper's synopsis objective for a concrete histogram, by exhaustive
/// enumeration: sum_i E_W[err] for cumulative metrics, max_i E_W[err] for
/// maximum metrics.
double EnumeratedHistogramCost(const std::vector<PossibleWorld>& worlds,
                               const Histogram& histogram, ErrorMetric metric,
                               double c);

/// n_b * E_W[sample variance] summed over buckets (the paper's equation (5)
/// world-mean SSE objective), by exhaustive enumeration.
double EnumeratedWorldMeanSse(const std::vector<PossibleWorld>& worlds,
                              const Histogram& histogram);

}  // namespace probsyn::testing

#endif  // PROBSYN_TESTS_TEST_UTIL_H_
