// Tuple-pdf inputs through the full metric grid: factory-built oracles
// (which route through the induced value pdf) checked against exhaustive
// possible-world enumeration, including within-tuple anticorrelation.

#include <limits>

#include <gtest/gtest.h>

#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "model/worlds.h"
#include "test_util.h"

namespace probsyn {
namespace {

struct TupleOracleCase {
  ErrorMetric metric;
  double c;
  bool allow_absent;
  std::uint64_t seed;
};

class TupleOracleGridTest : public ::testing::TestWithParam<TupleOracleCase> {};

TEST_P(TupleOracleGridTest, CostsMatchWorldEnumeration) {
  const TupleOracleCase& param = GetParam();
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 6,
       .num_tuples = 7,
       .max_alternatives = 3,
       .allow_absent = param.allow_absent,
       .seed = param.seed});
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());

  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();

  bool cumulative = IsCumulativeMetric(param.metric);
  for (std::size_t s = 0; s < 6; ++s) {
    for (std::size_t e = s; e < 6; ++e) {
      BucketCost got = bundle->oracle->Cost(s, e);
      // (a) Consistency: the reported cost is the enumerated expected
      // error at the reported representative.
      double sum = 0.0, worst = 0.0;
      for (std::size_t i = s; i <= e; ++i) {
        double err = testing::EnumeratedItemError(
            worlds.value(), i, got.representative, param.metric, param.c);
        sum += err;
        worst = std::max(worst, err);
      }
      double at_rep = cumulative ? sum : worst;
      EXPECT_NEAR(got.cost, at_rep, 1e-8)
          << ErrorMetricName(param.metric) << " [" << s << "," << e << "]";

      // (b) Optimality: no dense-grid candidate beats it.
      double best = std::numeric_limits<double>::infinity();
      for (int g = 0; g <= 500; ++g) {
        double v = 5.0 * g / 500.0;
        double cand_sum = 0.0, cand_worst = 0.0;
        for (std::size_t i = s; i <= e; ++i) {
          double err = testing::EnumeratedItemError(worlds.value(), i, v,
                                                    param.metric, param.c);
          cand_sum += err;
          cand_worst = std::max(cand_worst, err);
        }
        best = std::min(best, cumulative ? cand_sum : cand_worst);
      }
      EXPECT_LE(got.cost, best + 1e-6)
          << ErrorMetricName(param.metric) << " [" << s << "," << e << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, TupleOracleGridTest,
    ::testing::Values(
        TupleOracleCase{ErrorMetric::kSse, 1.0, true, 41},
        TupleOracleCase{ErrorMetric::kSse, 1.0, false, 42},
        TupleOracleCase{ErrorMetric::kSsre, 0.5, true, 43},
        TupleOracleCase{ErrorMetric::kSsre, 1.0, false, 44},
        TupleOracleCase{ErrorMetric::kSae, 1.0, true, 45},
        TupleOracleCase{ErrorMetric::kSae, 1.0, false, 46},
        TupleOracleCase{ErrorMetric::kSare, 0.5, true, 47},
        TupleOracleCase{ErrorMetric::kSare, 1.0, false, 48},
        TupleOracleCase{ErrorMetric::kMae, 1.0, true, 49},
        TupleOracleCase{ErrorMetric::kMare, 0.5, false, 50}),
    [](const ::testing::TestParamInfo<TupleOracleCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) +
             (info.param.allow_absent ? "_absent" : "_full") + "_seed" +
             std::to_string(info.param.seed);
    });

// Basic-model inputs must agree with their tuple-pdf embedding through the
// oracle layer (Definition 1 as a special case of Definition 2).
TEST(TupleOracleGrid, BasicModelEmbeddingIsTransparent) {
  BasicModelInput basic = testing::PaperExampleBasic();
  auto tuple_pdf = basic.ToTuplePdf();
  ASSERT_TRUE(tuple_pdf.ok());
  auto worlds = EnumerateWorlds(basic);
  ASSERT_TRUE(worlds.ok());

  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSae,
                             ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    options.sse_variant = SseVariant::kFixedRepresentative;
    auto bundle = MakeBucketOracle(tuple_pdf.value(), options);
    ASSERT_TRUE(bundle.ok());
    BucketCost whole = bundle->oracle->Cost(0, 2);
    double sum = 0.0, worst = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      double err = testing::EnumeratedItemError(
          worlds.value(), i, whole.representative, metric, 0.5);
      sum += err;
      worst = std::max(worst, err);
    }
    double expect = IsCumulativeMetric(metric) ? sum : worst;
    EXPECT_NEAR(whole.cost, expect, 1e-9) << ErrorMetricName(metric);
  }
}

}  // namespace
}  // namespace probsyn
