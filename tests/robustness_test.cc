// Deadline, cancellation, and graceful-degradation behavior of the engine:
// every construction route must stop cooperatively (kDeadlineExceeded /
// kCancelled with route + progress in the message), no DP-workspace lease
// may leak on any unwind path, the engine must stay fully usable after a
// stopped build, and RequestFallback::kDegrade must serve a truthfully
// re-costed cheaper synopsis instead of failing. The n=1e6 test pins the
// ISSUE acceptance criterion: a deadlined million-item approximate build
// under kDegrade returns a usable degraded synopsis within deadline+10ms,
// while kNone fails with kDeadlineExceeded.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluate.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "util/deadline.h"

namespace probsyn {
namespace {

using steady_clock = std::chrono::steady_clock;

double SecondsSince(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

// Multiplier on the wall-clock bounds below, so the same assertions hold
// under instrumented builds (CI's TSan cancellation run sets
// PROBSYN_TIMING_SLACK to absorb the sanitizer's slowdown). Plain builds
// run the bounds as written.
double TimingSlack() {
  static const double slack = [] {
    const char* value = std::getenv("PROBSYN_TIMING_SLACK");
    if (value == nullptr) return 1.0;
    double parsed = std::atof(value);
    return parsed >= 1.0 ? parsed : 1.0;
  }();
  return slack;
}

// Re-costs `histogram` exactly the way the engine's truthful re-costing
// does, so degraded results can be checked for honesty bit-for-bit.
double TruthfulCost(const ValuePdfInput& input, const Histogram& histogram,
                    const SynopsisOptions& options) {
  if (options.metric == ErrorMetric::kSse &&
      options.sse_variant == SseVariant::kWorldMean) {
    auto cost = EvaluateHistogramWorldMeanSse(input, histogram);
    EXPECT_TRUE(cost.ok()) << cost.status();
    return cost.ok() ? *cost : -1.0;
  }
  auto cost = EvaluateHistogram(input, histogram, options);
  EXPECT_TRUE(cost.ok()) << cost.status();
  return cost.ok() ? *cost : -1.0;
}

void ExpectNoLeakedLeases(const SynopsisEngine& engine) {
  EXPECT_EQ(engine.workspace_pool_stats().outstanding, 0u);
}

const ValuePdfInput& SmallInput() {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 64, .seed = 11});
  return input;
}

// Big enough that the exact DP runs for >~100ms (n=4096, B=64 fills
// ~1e9 cells), so a mid-solve deadline or cancel always lands inside it.
const ValuePdfInput& MidSolveInput() {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 4096, .seed = 17});
  return input;
}

const ValuePdfInput& MillionInput() {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 1000000, .seed = 31});
  return input;
}

// One request per construction route, all valid against SmallInput().
std::vector<SynopsisRequest> EveryRoute() {
  std::vector<SynopsisRequest> requests;

  SynopsisRequest exact;
  exact.method = HistogramMethod::kOptimal;
  exact.budget = 6;
  requests.push_back(exact);

  SynopsisRequest approx = exact;
  approx.method = HistogramMethod::kApprox;
  approx.epsilon = 0.25;
  requests.push_back(approx);

  SynopsisRequest streaming = exact;
  streaming.method = HistogramMethod::kStreaming;
  streaming.epsilon = 0.25;
  streaming.options.sse_variant = SseVariant::kFixedRepresentative;
  requests.push_back(streaming);

  SynopsisRequest equidepth = exact;
  equidepth.method = HistogramMethod::kEquiDepth;
  requests.push_back(equidepth);

  SynopsisRequest sharded = exact;
  sharded.sharding.mode = RequestSharding::Mode::kOn;
  requests.push_back(sharded);

  SynopsisRequest greedy;
  greedy.kind = SynopsisKind::kWavelet;
  greedy.wavelet_method = WaveletMethod::kGreedySse;
  greedy.budget = 8;
  requests.push_back(greedy);

  SynopsisRequest restricted = greedy;
  restricted.wavelet_method = WaveletMethod::kRestrictedDp;
  requests.push_back(restricted);

  SynopsisRequest unrestricted = greedy;
  unrestricted.wavelet_method = WaveletMethod::kUnrestrictedDp;
  requests.push_back(unrestricted);

  return requests;
}

// --- Expired / cancelled before any work --------------------------------

TEST(Robustness, ExpiredDeadlineOnEntryFailsEveryRoute) {
  SynopsisEngine engine;
  for (SynopsisRequest request : EveryRoute()) {
    request.deadline = Deadline::After(-1.0);
    auto result = engine.Build(SmallInput(), request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(result.status().message().find("stopped at"),
              std::string::npos)
        << result.status();
    ExpectNoLeakedLeases(engine);
  }
}

TEST(Robustness, ExpiredDeadlineFailsEvenUnderDegrade) {
  // Degradation picks a cheaper route for a tight deadline; it cannot
  // rescue one that already passed.
  SynopsisEngine engine;
  SynopsisRequest request;
  request.budget = 6;
  request.deadline = Deadline::After(-0.5);
  request.fallback = RequestFallback::kDegrade;
  auto result = engine.Build(SmallInput(), request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  ExpectNoLeakedLeases(engine);
}

TEST(Robustness, CancelledOnEntryFailsEveryRoute) {
  SynopsisEngine engine;
  CancelToken token;
  token.Cancel();
  for (SynopsisRequest request : EveryRoute()) {
    request.cancel = &token;
    auto result = engine.Build(SmallInput(), request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    ExpectNoLeakedLeases(engine);
  }
}

// --- Mid-solve deadline --------------------------------------------------

TEST(Robustness, MidSolveDeadlineStopsExactDpAndEngineStaysUsable) {
  SynopsisEngine engine;
  SynopsisRequest request;
  request.budget = 64;
  // The solve takes ~180ms; the deadline lands well inside it.
  request.deadline = Deadline::After(0.02);
  auto start = steady_clock::now();
  auto result = engine.Build(MidSolveInput(), request);
  double elapsed = SecondsSince(start);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("stopped at"), std::string::npos)
      << result.status();
  // Cooperative polls are coarse but frequent: the build must stop long
  // before the full ~180ms solve would have finished.
  EXPECT_LT(elapsed, 0.15 * TimingSlack())
      << "deadline ignored for " << elapsed << "s";
  ExpectNoLeakedLeases(engine);

  // The stopped build must leave the engine (and its leased workspace
  // pool) fully reusable.
  SynopsisRequest retry;
  retry.budget = 6;
  auto ok = engine.Build(SmallInput(), retry);
  ASSERT_TRUE(ok.ok()) << ok.status();
  ExpectNoLeakedLeases(engine);
}

// --- Mid-solve cancellation, every long-running route --------------------

struct CancelProbe {
  Status status;
  double latency_seconds = 0.0;  // Build return time minus Cancel() time.
};

CancelProbe CancelMidSolve(const SynopsisEngine& engine,
                           const ValuePdfInput& input,
                           SynopsisRequest request, double delay_seconds) {
  CancelToken token;
  request.cancel = &token;
  steady_clock::time_point cancelled_at;
  std::thread firer([&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(delay_seconds));
    cancelled_at = steady_clock::now();
    token.Cancel();
  });
  auto result = engine.Build(input, request);
  steady_clock::time_point returned_at = steady_clock::now();
  firer.join();
  CancelProbe probe;
  probe.status = result.ok() ? Status::OK() : result.status();
  probe.latency_seconds =
      std::chrono::duration<double>(returned_at - cancelled_at).count();
  return probe;
}

void ExpectPromptCancel(const SynopsisEngine& engine, const CancelProbe& probe,
                        const char* route) {
  EXPECT_EQ(probe.status.code(), StatusCode::kCancelled)
      << route << ": " << probe.status;
  EXPECT_NE(probe.status.message().find("cancelled"), std::string::npos)
      << route << ": " << probe.status;
  // The ISSUE acceptance bound: back in the caller's hands within 50ms of
  // the cancel, on every route.
  EXPECT_LE(probe.latency_seconds, 0.05 * TimingSlack())
      << route << " took " << probe.latency_seconds << "s to unwind";
  EXPECT_EQ(engine.workspace_pool_stats().outstanding, 0u) << route;
}

TEST(Robustness, MidSolveCancellationExactDp) {
  SynopsisEngine engine;
  SynopsisRequest request;
  request.budget = 64;
  ExpectPromptCancel(
      engine, CancelMidSolve(engine, MidSolveInput(), request, 0.02),
      "exact-dp");
}

TEST(Robustness, MidSolveCancellationApproxDp) {
  SynopsisEngine engine;
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 16384, .seed = 23});
  SynopsisRequest request;
  request.method = HistogramMethod::kApprox;
  request.budget = 32;
  request.epsilon = 0.1;
  request.sharding.mode = RequestSharding::Mode::kOff;
  ExpectPromptCancel(engine, CancelMidSolve(engine, input, request, 0.02),
                     "approx-dp");
}

TEST(Robustness, MidSolveCancellationShardedDp) {
  SynopsisEngine engine;
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 16384, .seed = 29});
  SynopsisRequest request;
  request.method = HistogramMethod::kApprox;
  request.budget = 32;
  request.epsilon = 0.1;
  request.sharding.mode = RequestSharding::Mode::kOn;
  ExpectPromptCancel(engine, CancelMidSolve(engine, input, request, 0.02),
                     "sharded-dp");
}

TEST(Robustness, MidSolveCancellationStreaming) {
  // Streaming pushes cost ~150us each at this scale, so the full pass
  // takes ~15s: the cancel must land mid-stream and unwind promptly.
  SynopsisEngine engine;
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 100000, .seed = 61});
  SynopsisRequest request;
  request.method = HistogramMethod::kStreaming;
  request.budget = 32;
  request.epsilon = 0.1;
  request.options.sse_variant = SseVariant::kFixedRepresentative;
  ExpectPromptCancel(engine, CancelMidSolve(engine, input, request, 0.05),
                     "streaming");
}

TEST(Robustness, MidSolveCancellationRestrictedWaveletDp) {
  // ~200ms solve (measured): the 20ms cancel lands well inside it.
  SynopsisEngine engine;
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 2048, .seed = 37});
  SynopsisRequest request;
  request.kind = SynopsisKind::kWavelet;
  request.wavelet_method = WaveletMethod::kRestrictedDp;
  request.wavelet_max_domain = 4096;
  request.budget = 48;
  ExpectPromptCancel(engine, CancelMidSolve(engine, input, request, 0.02),
                     "restricted-dp");
}

TEST(Robustness, MidSolveCancellationUnrestrictedWaveletDp) {
  // ~370ms solve (measured): the 20ms cancel lands well inside it.
  SynopsisEngine engine;
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 1024, .seed = 41});
  SynopsisRequest request;
  request.kind = SynopsisKind::kWavelet;
  request.wavelet_method = WaveletMethod::kUnrestrictedDp;
  request.budget = 24;
  request.unrestricted.grid_points = 129;
  ExpectPromptCancel(engine, CancelMidSolve(engine, input, request, 0.02),
                     "unrestricted-dp");
}

// --- Degradation ladder --------------------------------------------------

// The ISSUE acceptance criterion. A million-item approximate build whose
// predicted cost blows the deadline (tiny epsilon inflates the candidate
// count) must, under kDegrade, serve the equi-depth floor — truthfully
// re-costed, suffix-marked — within deadline + 10ms.
TEST(Robustness, MillionItemDeadlinedApproxDegradesWithinDeadline) {
  const ValuePdfInput& input = MillionInput();
  SynopsisEngine engine;
  SynopsisRequest request;
  request.method = HistogramMethod::kApprox;
  request.budget = 64;
  request.epsilon = 0.002;
  request.fallback = RequestFallback::kDegrade;

  const double deadline_seconds = 2.5;
  auto start = steady_clock::now();
  request.deadline = Deadline::After(deadline_seconds);
  auto result = engine.Build(input, request);
  double elapsed = SecondsSince(start);

  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(elapsed, deadline_seconds + 0.010)
      << "degraded build blew its deadline";
  EXPECT_NE(result->solver.find("[degraded=approx-dp->equidepth]"),
            std::string::npos)
      << result->solver;
  EXPECT_GE(result->histogram.num_buckets(), 1u);
  EXPECT_LE(result->histogram.num_buckets(), request.budget);
  // Truthful re-costing: the reported cost is the served histogram's true
  // cost under the requested metric, not the abandoned route's.
  EXPECT_DOUBLE_EQ(result->cost,
                   TruthfulCost(input, result->histogram, request.options));
  ExpectNoLeakedLeases(engine);
}

TEST(Robustness, MillionItemDeadlinedApproxFailsUnderNoFallback) {
  const ValuePdfInput& input = MillionInput();
  SynopsisEngine engine;
  SynopsisRequest request;
  request.method = HistogramMethod::kApprox;
  request.budget = 64;
  request.epsilon = 0.002;
  request.fallback = RequestFallback::kNone;
  request.deadline = Deadline::After(0.05);
  auto result = engine.Build(input, request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  ExpectNoLeakedLeases(engine);
}

// Middle rung: an exact build that cannot fit its deadline — but whose
// sharded construction can — degrades one rung to sharded-approx (the
// cumulative-metric replacement), not all the way to the floor.
TEST(Robustness, ExactCumulativeDegradesToShardedRung) {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 32768, .seed = 43});
  SynopsisEngine engine;
  SynopsisRequest request;
  request.budget = 8;  // predicted exact ~1.4s; sharded-approx ~0.5s
  request.fallback = RequestFallback::kDegrade;
  request.deadline = Deadline::After(2.0);
  auto result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("[degraded=exact-dp->sharded-approx]"),
            std::string::npos)
      << result->solver;
  ExpectNoLeakedLeases(engine);
}

TEST(Robustness, RestrictedWaveletDegradesToGreedy) {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 1024, .seed = 47});
  SynopsisEngine engine;
  SynopsisRequest request;
  request.kind = SynopsisKind::kWavelet;
  request.wavelet_method = WaveletMethod::kRestrictedDp;
  request.budget = 16;
  request.options.metric = ErrorMetric::kMae;
  request.options.sanity_c = 0.5;
  request.fallback = RequestFallback::kDegrade;
  request.deadline = Deadline::After(0.2);
  auto result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("[degraded=restricted-dp->greedy-sse]"),
            std::string::npos)
      << result->solver;
  EXPECT_EQ(result->kind, SynopsisKind::kWavelet);
  ExpectNoLeakedLeases(engine);
}

// Run-time (not plan-time) degradation: a workspace byte cap trips
// kResourceExhausted inside the solver, and kDegrade turns that into the
// greedy floor while kNone surfaces it.
TEST(Robustness, WorkspaceByteCapDegradesOrFails) {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 1024, .seed = 53});
  SynopsisEngine engine({.max_workspace_bytes = 1u << 20});
  SynopsisRequest request;
  request.kind = SynopsisKind::kWavelet;
  request.wavelet_method = WaveletMethod::kRestrictedDp;
  request.budget = 16;  // O(n^2 B) arena far beyond 1 MiB

  auto failed = engine.Build(input, request);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  ExpectNoLeakedLeases(engine);

  request.fallback = RequestFallback::kDegrade;
  auto degraded = engine.Build(input, request);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_NE(degraded->solver.find("[degraded=restricted-dp->greedy-sse]"),
            std::string::npos)
      << degraded->solver;
  ExpectNoLeakedLeases(engine);
}

// --- Batch semantics -----------------------------------------------------

TEST(Robustness, BatchFailsOnFirstStoppedMember) {
  SynopsisEngine engine;
  CancelToken cancelled;
  cancelled.Cancel();
  std::vector<SynopsisRequest> requests(3);
  requests[0].budget = 4;
  requests[1].budget = 6;
  requests[1].cancel = &cancelled;
  requests[2].budget = 5;
  requests[2].method = HistogramMethod::kEquiDepth;
  auto batch = engine.BuildBatch(SmallInput(), requests);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCancelled);
  ExpectNoLeakedLeases(engine);
}

// A member that plan-degrades out of an oracle-sharing group must not
// perturb the group's other members: the unbounded member's answer stays
// bit-identical to a build without the deadlined sibling.
TEST(Robustness, PlanTimeDegradationIsolatesGroupMembers) {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 4096, .seed = 59});
  SynopsisEngine engine;

  std::vector<SynopsisRequest> requests(2);
  requests[0].budget = 64;  // predicted ~180ms; cannot fit 100ms
  requests[0].deadline = Deadline::After(0.1);
  requests[0].fallback = RequestFallback::kDegrade;
  requests[1].budget = 8;  // unbounded sibling, same oracle requirements

  auto batch = engine.BuildBatch(input, requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_NE((*batch)[0].solver.find("[degraded=exact-dp->"),
            std::string::npos)
      << (*batch)[0].solver;

  SynopsisRequest alone;
  alone.budget = 8;
  auto reference = engine.Build(input, alone);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE((*batch)[1].histogram == reference->histogram);
  EXPECT_EQ((*batch)[1].cost, reference->cost);
  ExpectNoLeakedLeases(engine);
}

}  // namespace
}  // namespace probsyn
