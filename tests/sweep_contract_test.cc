// Sweep-contract tests: every oracle's StartSweep(e) must deliver exactly
// Cost(e, e), Cost(e-1, e), ..., Cost(0, e) — the DP relies on this.

#include <gtest/gtest.h>

#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "model/induced.h"

namespace probsyn {
namespace {

void CheckSweepContract(const BucketCostOracle& oracle) {
  const std::size_t n = oracle.domain_size();
  for (std::size_t e = 0; e < n; ++e) {
    auto sweep = oracle.StartSweep(e);
    for (std::size_t s = e;; --s) {
      BucketCost from_sweep = sweep->Extend();
      BucketCost direct = oracle.Cost(s, e);
      ASSERT_NEAR(from_sweep.cost, direct.cost, 1e-9)
          << "bucket [" << s << ", " << e << "]";
      ASSERT_NEAR(from_sweep.representative, direct.representative, 1e-9)
          << "bucket [" << s << ", " << e << "]";
      if (s == 0) break;
    }
  }
}

class SweepContractTest : public ::testing::TestWithParam<ErrorMetric> {};

TEST_P(SweepContractTest, ValuePdfOracles) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 14, .max_support = 3, .max_value = 6, .seed = 19});
  SynopsisOptions options;
  options.metric = GetParam();
  options.sanity_c = 0.5;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  CheckSweepContract(*bundle->oracle);
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, SweepContractTest,
    ::testing::Values(ErrorMetric::kSse, ErrorMetric::kSsre, ErrorMetric::kSae,
                      ErrorMetric::kSare, ErrorMetric::kMae,
                      ErrorMetric::kMare),
    [](const ::testing::TestParamInfo<ErrorMetric>& info) {
      return ErrorMetricName(info.param);
    });

TEST(SweepContract, ExactTupleSseWithWeightsAndAbsentRows) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 14, .num_tuples = 24, .max_alternatives = 4,
       .allow_absent = true, .seed = 23});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  CheckSweepContract(*bundle->oracle);
}

TEST(SweepContract, WeightedOracleSweeps) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 10, .max_support = 3, .max_value = 5, .seed = 29});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSare;
  options.sanity_c = 1.0;
  options.workload = {2, 0, 1, 3, 0, 0.5, 1, 1, 4, 0.25};
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  CheckSweepContract(*bundle->oracle);
}

}  // namespace
}  // namespace probsyn
