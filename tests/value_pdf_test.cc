#include "model/value_pdf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/math.h"

namespace probsyn {
namespace {

TEST(ValuePdf, CreateMaterializesZeroRemainder) {
  auto pdf = ValuePdf::Create({{2.0, 0.25}, {1.0, 0.25}});
  ASSERT_TRUE(pdf.ok());
  ASSERT_EQ(pdf->size(), 3u);
  EXPECT_DOUBLE_EQ(pdf->entries()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(pdf->entries()[0].probability, 0.5);
  EXPECT_DOUBLE_EQ(pdf->entries()[1].value, 1.0);
  EXPECT_DOUBLE_EQ(pdf->entries()[2].value, 2.0);
}

TEST(ValuePdf, CreateMergesDuplicateValues) {
  auto pdf = ValuePdf::Create({{1.0, 0.3}, {1.0, 0.2}, {2.0, 0.5}});
  ASSERT_TRUE(pdf.ok());
  ASSERT_EQ(pdf->size(), 2u);
  EXPECT_DOUBLE_EQ(pdf->entries()[0].probability, 0.5);
  EXPECT_DOUBLE_EQ(pdf->entries()[1].probability, 0.5);
}

TEST(ValuePdf, CreateMergesZeroRemainderIntoExplicitZero) {
  auto pdf = ValuePdf::Create({{0.0, 0.25}, {3.0, 0.25}});
  ASSERT_TRUE(pdf.ok());
  ASSERT_EQ(pdf->size(), 2u);
  EXPECT_DOUBLE_EQ(pdf->entries()[0].probability, 0.75);
}

TEST(ValuePdf, CreateDropsZeroProbabilityEntries) {
  auto pdf = ValuePdf::Create({{5.0, 0.0}, {1.0, 1.0}});
  ASSERT_TRUE(pdf.ok());
  ASSERT_EQ(pdf->size(), 1u);
  EXPECT_DOUBLE_EQ(pdf->entries()[0].value, 1.0);
}

TEST(ValuePdf, CreateRejectsOverflowingMass) {
  auto pdf = ValuePdf::Create({{1.0, 0.7}, {2.0, 0.7}});
  EXPECT_FALSE(pdf.ok());
  EXPECT_EQ(pdf.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValuePdf, CreateRejectsNegativeProbability) {
  EXPECT_FALSE(ValuePdf::Create({{1.0, -0.1}}).ok());
}

TEST(ValuePdf, CreateRejectsNegativeOrNonFiniteValues) {
  EXPECT_FALSE(ValuePdf::Create({{-1.0, 0.5}}).ok());
  EXPECT_FALSE(ValuePdf::Create({{std::nan(""), 0.5}}).ok());
}

TEST(ValuePdf, PointMass) {
  ValuePdf pdf = ValuePdf::PointMass(7.0);
  ASSERT_EQ(pdf.size(), 1u);
  EXPECT_DOUBLE_EQ(pdf.Mean(), 7.0);
  EXPECT_DOUBLE_EQ(pdf.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(pdf.SecondMoment(), 49.0);
}

TEST(ValuePdf, MomentsMatchHandComputation) {
  // g ~ {0: 5/12, 1: 1/3, 2: 1/4}  (paper Example 1's g2 in the value-pdf
  // variant): E[g] = 1/3 + 1/2 = 5/6; E[g^2] = 1/3 + 1 = 4/3.
  auto pdf = ValuePdf::Create({{1.0, 1.0 / 3}, {2.0, 1.0 / 4}});
  ASSERT_TRUE(pdf.ok());
  EXPECT_NEAR(pdf->Mean(), 5.0 / 6, 1e-12);
  EXPECT_NEAR(pdf->SecondMoment(), 4.0 / 3, 1e-12);
  EXPECT_NEAR(pdf->Variance(), 4.0 / 3 - 25.0 / 36, 1e-12);
}

TEST(ValuePdf, ProbQueries) {
  auto pdf = ValuePdf::Create({{1.0, 0.25}, {3.0, 0.25}});
  ASSERT_TRUE(pdf.ok());
  EXPECT_DOUBLE_EQ(pdf->ProbEquals(0.0), 0.5);
  EXPECT_DOUBLE_EQ(pdf->ProbEquals(1.0), 0.25);
  EXPECT_DOUBLE_EQ(pdf->ProbEquals(2.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf->ProbAtMost(0.5), 0.5);
  EXPECT_DOUBLE_EQ(pdf->ProbAtMost(1.0), 0.75);
  EXPECT_DOUBLE_EQ(pdf->ProbAtMost(10.0), 1.0);
  EXPECT_DOUBLE_EQ(pdf->ProbGreater(1.0), 0.25);
}

TEST(ValuePdf, ExpectedDeviations) {
  auto pdf = ValuePdf::Create({{2.0, 0.5}});  // {0: .5, 2: .5}
  ASSERT_TRUE(pdf.ok());
  EXPECT_NEAR(pdf->ExpectedAbsDeviation(1.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf->ExpectedAbsDeviation(0.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf->ExpectedSquaredDeviation(1.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf->ExpectedSquaredDeviation(0.0), 2.0, 1e-12);
  // Relative with c=1: weights 1/max(1,0)=1 and 1/max(1,2)=1/2.
  EXPECT_NEAR(pdf->ExpectedRelDeviation(1.0, 1.0), 0.5 * 1 + 0.5 * 0.5, 1e-12);
  EXPECT_NEAR(pdf->ExpectedSquaredRelDeviation(2.0, 1.0), 0.5 * 4.0, 1e-12);
}

TEST(ValuePdfInput, ValidateAcceptsNormalizedInput) {
  auto a = ValuePdf::Create({{1.0, 0.5}});
  auto b = ValuePdf::Create({{2.0, 1.0}});
  ASSERT_TRUE(a.ok() && b.ok());
  ValuePdfInput input({a.value(), b.value()});
  EXPECT_TRUE(input.Validate().ok());
  EXPECT_EQ(input.domain_size(), 2u);
  EXPECT_EQ(input.total_pairs(), 3u);  // zero entry materialized in `a`
}

TEST(ValuePdfInput, ValidateRejectsEmptyItemPdf) {
  ValuePdfInput input({ValuePdf()});
  EXPECT_FALSE(input.Validate().ok());
}

TEST(ValuePdfInput, ValueGridIncludesZeroAndIsSortedUnique) {
  auto a = ValuePdf::Create({{3.0, 0.5}, {1.0, 0.5}});
  auto b = ValuePdf::Create({{3.0, 1.0}});
  ASSERT_TRUE(a.ok() && b.ok());
  ValuePdfInput input({a.value(), b.value()});
  std::vector<double> grid = input.ValueGrid();
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_DOUBLE_EQ(grid[0], 0.0);
  EXPECT_DOUBLE_EQ(grid[1], 1.0);
  EXPECT_DOUBLE_EQ(grid[2], 3.0);
}

TEST(ValuePdfInput, MomentVectors) {
  auto a = ValuePdf::Create({{4.0, 0.5}});
  ASSERT_TRUE(a.ok());
  ValuePdfInput input({a.value(), ValuePdf::PointMass(2.0)});
  auto means = input.ExpectedFrequencies();
  auto vars = input.FrequencyVariances();
  auto seconds = input.FrequencySecondMoments();
  EXPECT_NEAR(means[0], 2.0, 1e-12);
  EXPECT_NEAR(vars[0], 4.0, 1e-12);
  EXPECT_NEAR(seconds[0], 8.0, 1e-12);
  EXPECT_NEAR(means[1], 2.0, 1e-12);
  EXPECT_NEAR(vars[1], 0.0, 1e-12);
  EXPECT_NEAR(seconds[1], 4.0, 1e-12);
}

}  // namespace
}  // namespace probsyn
