// Wavelet synopsis type + SSE-optimal thresholding (paper section 4.1).

#include "core/wavelet.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/haar.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "test_util.h"
#include "util/random.h"

namespace probsyn {
namespace {

TEST(WaveletSynopsis, ValidateChecksIndices) {
  WaveletSynopsis ok(6, 8, {{0, 1.0}, {3, -2.0}});
  EXPECT_TRUE(ok.Validate().ok());

  WaveletSynopsis bad_index(6, 8, {{9, 1.0}});
  EXPECT_FALSE(bad_index.Validate().ok());

  WaveletSynopsis dup(6, 8, {{3, 1.0}, {3, 2.0}});
  EXPECT_FALSE(dup.Validate().ok());

  WaveletSynopsis bad_transform(6, 6, {});
  EXPECT_FALSE(bad_transform.Validate().ok());
}

TEST(WaveletSynopsis, EstimateMatchesDenseReconstruction) {
  Rng rng(3);
  std::vector<double> data(16);
  for (double& d : data) d = rng.NextUniform(0, 10);
  WaveletSynopsis synopsis = BuildSseWaveletFromFrequencies(data, 5);
  std::vector<double> dense = synopsis.ToFrequencyVector();
  ASSERT_EQ(dense.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(synopsis.Estimate(i), dense[i], 1e-10);
  }
}

TEST(WaveletSynopsis, FullBudgetReconstructsExactly) {
  std::vector<double> data{2, 2, 0, 2, 3, 5, 4, 4};
  WaveletSynopsis synopsis = BuildSseWaveletFromFrequencies(data, 8);
  std::vector<double> back = synopsis.ToFrequencyVector();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i], data[i], 1e-10);
  }
}

TEST(WaveletSynopsis, RangeSumQueries) {
  std::vector<double> data{1, 1, 1, 1};
  WaveletSynopsis synopsis = BuildSseWaveletFromFrequencies(data, 1);
  // The retained coefficient is the scaling one; the range sums are exact.
  EXPECT_NEAR(synopsis.EstimateRangeSum(0, 3), 4.0, 1e-10);
  EXPECT_NEAR(synopsis.EstimateRangeSum(1, 2), 2.0, 1e-10);
}

TEST(WaveletSse, GreedySelectionKeepsLargestCoefficients) {
  std::vector<double> data{2, 2, 0, 2, 3, 5, 4, 4};
  std::vector<double> coeffs = HaarTransform(data);
  WaveletSynopsis synopsis = BuildSseWaveletFromFrequencies(data, 3);
  ASSERT_EQ(synopsis.num_coefficients(), 3u);
  // The smallest |retained| must be >= the largest |dropped|.
  double smallest_kept = std::numeric_limits<double>::infinity();
  std::vector<bool> kept(8, false);
  for (const WaveletCoefficient& c : synopsis.coefficients()) {
    kept[c.index] = true;
    smallest_kept = std::min(smallest_kept, std::fabs(c.value));
    EXPECT_DOUBLE_EQ(c.value, coeffs[c.index]);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    if (!kept[i]) {
      EXPECT_LE(std::fabs(coeffs[i]), smallest_kept + 1e-12);
    }
  }
}

TEST(WaveletSse, PadsNonPowerOfTwoDomains) {
  std::vector<double> data{1, 2, 3, 4, 5};
  WaveletSynopsis synopsis = BuildSseWaveletFromFrequencies(data, 3);
  EXPECT_EQ(synopsis.domain_size(), 5u);
  EXPECT_EQ(synopsis.transform_size(), 8u);
}

// The decomposition of section 4.1: expected SSE of a synopsis that keeps
// index set I with values mu_i equals sum_i Var[c_i] + sum_{i not in I}
// mu_i^2; in particular the greedy choice is optimal. Verify both against
// exhaustive subset search on a small input.
TEST(WaveletSse, GreedyIsOptimalAmongAllSubsets) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 8, .max_support = 3, .max_value = 6, .seed = 19});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;

  std::vector<double> mu =
      ExpectedHaarCoefficients(input.ExpectedFrequencies());
  const std::size_t n = 8;
  for (std::size_t budget : {1u, 2u, 3u, 5u}) {
    auto greedy = BuildSseOptimalWavelet(input, budget);
    ASSERT_TRUE(greedy.ok());
    auto greedy_cost = EvaluateWavelet(input, greedy.value(), options);
    ASSERT_TRUE(greedy_cost.ok());

    // Exhaustive: every subset of exactly `budget` indices, values fixed at
    // mu (the optimal retained values for expected SSE).
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t mask = 0; mask < (1u << n); ++mask) {
      if (static_cast<std::size_t>(__builtin_popcount(mask)) != budget) {
        continue;
      }
      std::vector<WaveletCoefficient> coeffs;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) coeffs.push_back({i, mu[i]});
      }
      WaveletSynopsis candidate(n, n, std::move(coeffs));
      auto cost = EvaluateWavelet(input, candidate, options);
      ASSERT_TRUE(cost.ok());
      best = std::min(best, *cost);
    }
    EXPECT_NEAR(*greedy_cost, best, 1e-9) << "budget " << budget;
  }
}

TEST(WaveletSse, ExpectedSseDecomposition) {
  // E[SSE] = sum_i Var[g_i] + sum_{i not in I} mu_i^2 for value-pdf input
  // (coefficient variances sum to data variances by orthonormality).
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 16, .max_support = 4, .max_value = 7, .seed = 23});
  std::vector<double> mu =
      ExpectedHaarCoefficients(input.ExpectedFrequencies());
  double total_var = 0.0;
  for (double v : input.FrequencyVariances()) total_var += v;

  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  for (std::size_t budget : {0u, 1u, 4u, 16u}) {
    auto synopsis = BuildSseOptimalWavelet(input, budget);
    ASSERT_TRUE(synopsis.ok());
    double dropped_energy = 0.0;
    std::vector<bool> kept(mu.size(), false);
    for (const WaveletCoefficient& c : synopsis->coefficients()) {
      kept[c.index] = true;
    }
    for (std::size_t i = 0; i < mu.size(); ++i) {
      if (!kept[i]) dropped_energy += mu[i] * mu[i];
    }
    auto cost = EvaluateWavelet(input, synopsis.value(), options);
    ASSERT_TRUE(cost.ok());
    EXPECT_NEAR(*cost, total_var + dropped_energy, 1e-8)
        << "budget " << budget;
  }
}

TEST(WaveletSse, ExpectedCoefficientsAreTransformOfExpectations) {
  // mu_ci = H_i(E[A]) — linearity (section 4.1). Check against the
  // coefficient-wise expectation over enumerated worlds.
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  std::vector<double> mu = ExpectedHaarCoefficients(input.ExpectedFrequencies());
  ASSERT_EQ(mu.size(), 4u);  // padded 3 -> 4
  for (std::size_t k = 0; k < 4; ++k) {
    double expect = ExpectationOverWorlds(
        worlds.value(), [k](const std::vector<double>& freq) {
          std::vector<double> padded(freq);
          padded.resize(4, 0.0);
          return HaarTransform(padded)[k];
        });
    EXPECT_NEAR(mu[k], expect, 1e-10) << "coefficient " << k;
  }
}

TEST(WaveletSse, TupleAndInducedValueInputsAgree) {
  // The tuple model and its induced value pdf share expected frequencies,
  // so the two synopses must capture the same coefficient energy. (The
  // retained index sets may differ on near-ties: the Poisson-binomial
  // convolution perturbs means at the 1e-16 level.)
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 16, .num_tuples = 30, .max_alternatives = 3, .seed = 29});
  auto induced = InduceValuePdf(input);
  ASSERT_TRUE(induced.ok());
  auto from_tuple = BuildSseOptimalWavelet(input, 5);
  auto from_value = BuildSseOptimalWavelet(induced.value(), 5);
  ASSERT_TRUE(from_tuple.ok() && from_value.ok());
  std::vector<double> mu = ExpectedHaarCoefficients(input.ExpectedFrequencies());
  EXPECT_NEAR(WaveletUnretainedEnergyPercent(mu, from_tuple.value()),
              WaveletUnretainedEnergyPercent(mu, from_value.value()), 1e-9);
}

TEST(WaveletSse, BudgetLargerThanTransformKeepsEverything) {
  std::vector<double> data{1, 2, 3, 4};
  WaveletSynopsis synopsis = BuildSseWaveletFromFrequencies(data, 100);
  EXPECT_EQ(synopsis.num_coefficients(), 4u);
}

}  // namespace
}  // namespace probsyn
