// Unit tests for the util substrate: Status/StatusOr, math helpers,
// prefix sums, searches, line envelopes.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/envelope.h"
#include "util/math.h"
#include "util/prefix_sums.h"
#include "util/random.h"
#include "util/search.h"
#include "util/status.h"

namespace probsyn {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kIOError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(Math, KahanSumBeatsNaiveOnCancellation) {
  // 1 + 1e-16 added 1e6 times: naive double drops the tail entirely.
  KahanSum sum(1.0);
  for (int i = 0; i < 1000000; ++i) sum.Add(1e-16);
  EXPECT_NEAR(sum.value(), 1.0 + 1e-10, 1e-14);
}

TEST(Math, SumStable) {
  std::vector<double> xs{0.1, 0.2, 0.3};
  EXPECT_NEAR(SumStable(xs), 0.6, 1e-15);
}

TEST(Math, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(0.0, 0.0));
  EXPECT_FALSE(AlmostEqual(std::nan(""), 1.0));
}

TEST(Math, SanityBoundAndWeights) {
  EXPECT_DOUBLE_EQ(SanityBound(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(SanityBound(3.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(RelativeWeight(4.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(SquaredRelativeWeight(4.0, 1.0), 1.0 / 16);
  EXPECT_DOUBLE_EQ(SquaredRelativeWeight(0.0, 0.5), 4.0);
}

TEST(Math, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(8), 8u);
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(9), 3u);
}

TEST(Math, ClampTinyNegative) {
  EXPECT_DOUBLE_EQ(ClampTinyNegative(-1e-12), 0.0);
  EXPECT_DOUBLE_EQ(ClampTinyNegative(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(ClampTinyNegative(2.0), 2.0);
}

TEST(PrefixSums, RangeSums) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  PrefixSums ps(xs);
  EXPECT_EQ(ps.size(), 5u);
  EXPECT_DOUBLE_EQ(ps.RangeSum(0, 4), 15.0);
  EXPECT_DOUBLE_EQ(ps.RangeSum(1, 3), 9.0);
  EXPECT_DOUBLE_EQ(ps.RangeSum(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(ps.Prefix(0), 1.0);
  EXPECT_DOUBLE_EQ(ps.Total(), 15.0);
}

TEST(PrefixSums, EmptyInput) {
  PrefixSums ps;
  EXPECT_EQ(ps.size(), 0u);
  EXPECT_DOUBLE_EQ(ps.Total(), 0.0);
}

TEST(PrefixSumsBank, RowsAreIndependent) {
  PrefixSumsBank bank(3, 4, [](std::size_t r, std::size_t i) {
    return static_cast<double>(r * 10 + i);
  });
  EXPECT_EQ(bank.rows(), 3u);
  EXPECT_EQ(bank.columns(), 4u);
  EXPECT_DOUBLE_EQ(bank.RangeSum(0, 0, 3), 0 + 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(bank.RangeSum(2, 1, 2), 21 + 22);
}

TEST(Search, TernaryFindsMinOfConvexSequence) {
  // f(l) = (l - 13)^2 over [0, 40].
  auto f = [](std::size_t l) {
    double d = static_cast<double>(l) - 13.0;
    return d * d;
  };
  EXPECT_EQ(TernarySearchMinIndex(0, 40, f), 13u);
  EXPECT_EQ(TernarySearchMinIndex(0, 13, f), 13u);
  EXPECT_EQ(TernarySearchMinIndex(13, 40, f), 13u);
  EXPECT_EQ(TernarySearchMinIndex(5, 5, f), 5u);
}

TEST(Search, TernaryHandlesPlateaus) {
  // Convex with a flat valley: min anywhere in [10, 20].
  auto f = [](std::size_t l) {
    if (l < 10) return static_cast<double>(10 - l);
    if (l > 20) return static_cast<double>(l - 20);
    return 0.0;
  };
  std::size_t best = TernarySearchMinIndex(0, 100, f);
  EXPECT_GE(best, 10u);
  EXPECT_LE(best, 20u);
}

TEST(Search, TernaryOnNonUniformConvexSamples) {
  // Samples of |x - 7| at an uneven grid — convex but with non-monotone
  // successive differences.
  std::vector<double> grid{0, 1, 6.5, 6.9, 7.2, 30, 100};
  auto f = [&](std::size_t l) { return std::fabs(grid[l] - 7.0); };
  std::size_t best = TernarySearchMinIndex(0, grid.size() - 1, f);
  EXPECT_EQ(best, 3u);  // 6.9 is the closest sample
}

TEST(Search, ContinuousTernary) {
  auto f = [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; };
  double x = TernarySearchMinContinuous(-10, 10, f);
  // Value-comparison minimization of a smooth function bottoms out at
  // ~sqrt(ulp) precision: near the minimum, f differences round away.
  EXPECT_NEAR(x, 2.5, 1e-6);
}

TEST(Envelope, SingleLine) {
  std::vector<Line> lines{{2.0, 1.0}};
  EnvelopeMin m = MinimizeUpperEnvelope(lines, -1.0, 3.0);
  EXPECT_DOUBLE_EQ(m.x, -1.0);  // positive slope: min at left end
  EXPECT_DOUBLE_EQ(m.value, -1.0);
}

TEST(Envelope, VShape) {
  // max(-x, x) minimized at 0.
  std::vector<Line> lines{{-1.0, 0.0}, {1.0, 0.0}};
  EnvelopeMin m = MinimizeUpperEnvelope(lines, -5.0, 5.0);
  EXPECT_NEAR(m.x, 0.0, 1e-12);
  EXPECT_NEAR(m.value, 0.0, 1e-12);
}

TEST(Envelope, MinAtInteriorKnot) {
  // max(-2x + 1, 0.5x + 2, x - 3): optimum where first two lines cross.
  std::vector<Line> lines{{-2.0, 1.0}, {0.5, 2.0}, {1.0, -3.0}};
  EnvelopeMin m = MinimizeUpperEnvelope(lines, -10.0, 10.0);
  double x_star = (2.0 - 1.0) / (-2.0 - 0.5);  // -0.4
  EXPECT_NEAR(m.x, x_star, 1e-12);
  EXPECT_NEAR(m.value, 0.5 * x_star + 2.0, 1e-12);
}

TEST(Envelope, RespectsRangeClipping) {
  std::vector<Line> lines{{-1.0, 0.0}, {1.0, 0.0}};
  EnvelopeMin m = MinimizeUpperEnvelope(lines, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(m.x, 2.0);
  EXPECT_DOUBLE_EQ(m.value, 2.0);
}

TEST(Envelope, MatchesBruteForceOnRandomLines) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t k = 1 + rng.NextBounded(12);
    std::vector<Line> lines(k);
    for (Line& l : lines) {
      l.slope = rng.NextUniform(-5, 5);
      l.intercept = rng.NextUniform(-5, 5);
    }
    double lo = rng.NextUniform(-3, 0), hi = rng.NextUniform(0, 3);
    EnvelopeMin m = MinimizeUpperEnvelope(lines, lo, hi);

    // Dense-grid brute force.
    double brute = std::numeric_limits<double>::infinity();
    for (int g = 0; g <= 2000; ++g) {
      double x = lo + (hi - lo) * g / 2000.0;
      double v = -std::numeric_limits<double>::infinity();
      for (const Line& l : lines) v = std::max(v, l.At(x));
      brute = std::min(brute, v);
    }
    EXPECT_LE(m.value, brute + 1e-9) << "trial " << trial;
    // And the reported (x, value) must be consistent.
    double at_x = -std::numeric_limits<double>::infinity();
    for (const Line& l : lines) at_x = std::max(at_x, l.At(m.x));
    EXPECT_NEAR(at_x, m.value, 1e-9);
  }
}

TEST(Random, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(Random, DoublesInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, BoundedWithinBound) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(Random, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Random, GaussianMoments) {
  Rng rng(14);
  double sum = 0, sum_sq = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(Random, ZipfIsSkewedAndInRange) {
  Rng rng(15);
  ZipfDistribution zipf(10, 1.2);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 100000; ++i) {
    std::size_t v = zipf.Sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 10u);
    counts[v]++;
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
}

TEST(Random, AliasSamplerMatchesWeights) {
  Rng rng(16);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(Random, ForkProducesIndependentStream) {
  Rng a(7);
  Rng forked = a.Fork();
  Rng b(7);
  b.Fork();
  // The parent stream advances identically after forking.
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  // And the fork differs from the parent.
  EXPECT_NE(forked.NextUint64(), a.NextUint64());
}

}  // namespace
}  // namespace probsyn
