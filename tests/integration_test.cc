// End-to-end pipelines mirroring the paper's experimental setup
// (section 5) at test-friendly scale: generate data, build probabilistic
// and baseline synopses, evaluate everything under the true distribution,
// check the orderings the paper reports.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/wavelet.h"
#include "gen/generators.h"
#include "io/pdata.h"
#include "model/induced.h"

namespace probsyn {
namespace {

class MovieLinkagePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    BasicModelInput basic =
        GenerateMovieLinkage({.domain_size = 96, .seed = 1234});
    auto tuple_pdf = basic.ToTuplePdf();
    ASSERT_TRUE(tuple_pdf.ok());
    input_ = std::move(tuple_pdf).value();
    auto induced = InduceValuePdf(input_);
    ASSERT_TRUE(induced.ok());
    induced_ = std::move(induced).value();
  }

  TuplePdfInput input_;
  ValuePdfInput induced_;
};

TEST_F(MovieLinkagePipeline, HistogramErrorPercentOrdering) {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;
  const std::size_t kBuckets = 12;

  auto builder = HistogramBuilder::Create(input_, options, kBuckets);
  ASSERT_TRUE(builder.ok());
  ErrorScale scale = ComputeErrorScale(builder->oracle(), true);

  Histogram prob = builder->Extract(kBuckets);
  auto expectation = BuildExpectationHistogram(input_, options, kBuckets);
  ASSERT_TRUE(expectation.ok());
  Rng rng(55);
  auto sampled = BuildSampledWorldHistogram(input_, options, kBuckets, rng);
  ASSERT_TRUE(sampled.ok());

  auto cost_prob = EvaluateHistogram(input_, prob, options);
  auto cost_exp = EvaluateHistogram(input_, expectation.value(), options);
  auto cost_smp = EvaluateHistogram(input_, sampled.value(), options);
  ASSERT_TRUE(cost_prob.ok() && cost_exp.ok() && cost_smp.ok());

  // DP optimality: probabilistic never loses. (The figure-2 headline.)
  EXPECT_LE(*cost_prob, *cost_exp + 1e-9);
  EXPECT_LE(*cost_prob, *cost_smp + 1e-9);

  // Error% stays in [0, 100] and the DP cost matches its own evaluation.
  double pct = scale.Percent(*cost_prob);
  EXPECT_GE(pct, 0.0);
  EXPECT_LE(pct, 100.0);
  EXPECT_NEAR(*cost_prob, builder->OptimalCost(kBuckets), 1e-8);
}

TEST_F(MovieLinkagePipeline, ApproximateHistogramNearOptimal) {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  const std::size_t kBuckets = 10;
  auto exact = HistogramBuilder::Create(input_, options, kBuckets);
  auto approx = BuildApproxHistogram(input_, options, kBuckets, 0.1);
  ASSERT_TRUE(exact.ok() && approx.ok());
  EXPECT_LE(approx->cost, 1.1 * exact->OptimalCost(kBuckets) + 1e-9);
}

TEST_F(MovieLinkagePipeline, WaveletEnergyOrdering) {
  const std::size_t kCoeffs = 10;
  std::vector<double> mu =
      ExpectedHaarCoefficients(input_.ExpectedFrequencies());
  auto prob = BuildSseOptimalWavelet(input_, kCoeffs);
  ASSERT_TRUE(prob.ok());
  Rng rng(8);
  auto sampled = BuildSampledWorldWavelet(input_, kCoeffs, rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_LE(WaveletUnretainedEnergyPercent(mu, prob.value()),
            WaveletUnretainedEnergyPercent(mu, sampled.value()) + 1e-9);
}

TEST_F(MovieLinkagePipeline, SynopsesAnswerRangeQueriesReasonably) {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto hist = BuildOptimalHistogram(input_, options, 16);
  auto wave = BuildSseOptimalWavelet(input_, 16);
  ASSERT_TRUE(hist.ok() && wave.ok());

  // True expected range counts vs synopsis answers over a few ranges.
  auto expected = input_.ExpectedFrequencies();
  for (auto [a, b] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 95}, {10, 30}, {50, 51}}) {
    double truth = 0.0;
    for (std::size_t i = a; i <= b; ++i) truth += expected[i];
    double from_hist = hist->EstimateRangeSum(a, b);
    double from_wave = wave->EstimateRangeSum(a, b);
    double span = static_cast<double>(b - a + 1);
    EXPECT_NEAR(from_hist, truth, 0.75 * span + 2.0) << a << ".." << b;
    EXPECT_NEAR(from_wave, truth, 0.75 * span + 2.0) << a << ".." << b;
  }
}

TEST_F(MovieLinkagePipeline, PersistAndReloadKeepsCostsIdentical) {
  std::string path = ::testing::TempDir() + "/pipeline.pdata";
  ASSERT_TRUE(SaveTuplePdf(path, input_).ok());
  auto reloaded = LoadTuplePdf(path);
  ASSERT_TRUE(reloaded.ok());

  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto h1 = BuildOptimalHistogram(input_, options, 8);
  auto h2 = BuildOptimalHistogram(reloaded.value(), options, 8);
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_EQ(h1.value(), h2.value());
}

TEST(MaybmsPipeline, TupleSseVariantsBothWork) {
  TuplePdfInput input = GenerateMaybmsTpch(
      {.domain_size = 64, .num_tuples = 256, .seed = 99});
  const std::size_t kBuckets = 8;

  SynopsisOptions world_mean;
  world_mean.metric = ErrorMetric::kSse;
  world_mean.sse_variant = SseVariant::kWorldMean;
  auto exact = HistogramBuilder::Create(input, world_mean, kBuckets);
  ASSERT_TRUE(exact.ok());

  SynopsisOptions fixed;
  fixed.metric = ErrorMetric::kSse;
  fixed.sse_variant = SseVariant::kFixedRepresentative;
  auto fixed_builder = HistogramBuilder::Create(input, fixed, kBuckets);
  ASSERT_TRUE(fixed_builder.ok());

  Histogram h_world = exact->Extract(kBuckets);
  Histogram h_fixed = fixed_builder->Extract(kBuckets);
  EXPECT_TRUE(h_world.Validate(64).ok());
  EXPECT_TRUE(h_fixed.Validate(64).ok());

  // Each variant is optimal under its own objective.
  auto world_cost_of_fixed = EvaluateHistogramWorldMeanSse(input, h_fixed);
  ASSERT_TRUE(world_cost_of_fixed.ok());
  EXPECT_LE(exact->OptimalCost(kBuckets), *world_cost_of_fixed + 1e-9);

  auto fixed_cost_of_world = EvaluateHistogram(input, h_world, fixed);
  ASSERT_TRUE(fixed_cost_of_world.ok());
  EXPECT_LE(fixed_builder->OptimalCost(kBuckets), *fixed_cost_of_world + 1e-9);
}

TEST(MaybmsPipeline, MaxErrorHistogramsOnTupleData) {
  TuplePdfInput input = GenerateMaybmsTpch(
      {.domain_size = 32, .num_tuples = 96, .seed = 5});
  SynopsisOptions options;
  options.metric = ErrorMetric::kMare;
  options.sanity_c = 1.0;
  auto builder = HistogramBuilder::Create(input, options, 6);
  ASSERT_TRUE(builder.ok());
  Histogram h = builder->Extract(6);
  EXPECT_TRUE(h.Validate(32).ok());
  auto evaluated = EvaluateHistogram(input, h, options);
  ASSERT_TRUE(evaluated.ok());
  EXPECT_NEAR(*evaluated, builder->OptimalCost(6), 1e-8);
}

}  // namespace
}  // namespace probsyn
