// One-pass streaming histogram builder: approximation guarantee against
// the offline exact DP, bounded memory, and exactness of returned costs.

#include "stream/streaming_histogram.h"

#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/evaluate.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "util/logging.h"
#include "test_util.h"

namespace probsyn {
namespace {

SynopsisOptions SseOptions() {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  return options;
}

struct StreamCase {
  std::size_t buckets;
  double epsilon;
  std::uint64_t seed;
};

class StreamingGuaranteeTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamingGuaranteeTest, WithinFactorOfOfflineOptimum) {
  const StreamCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 200, .max_support = 4, .max_value = 9,
       .seed = param.seed});

  StreamingHistogramBuilder builder(param.buckets, param.epsilon);
  for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
  auto result = builder.Finish();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->histogram.Validate(200).ok());
  EXPECT_LE(result->histogram.num_buckets(), param.buckets);

  // The reported cost is the exact expected SSE of the returned histogram.
  auto evaluated = EvaluateHistogram(input, result->histogram, SseOptions());
  ASSERT_TRUE(evaluated.ok());
  EXPECT_NEAR(*evaluated, result->cost, 1e-7);

  // And it is within (1 + eps) of the offline exact optimum.
  auto offline = HistogramBuilder::Create(input, SseOptions(), param.buckets);
  ASSERT_TRUE(offline.ok());
  double opt = offline->OptimalCost(param.buckets);
  EXPECT_GE(result->cost, opt - 1e-9);
  EXPECT_LE(result->cost, (1.0 + param.epsilon) * opt + 1e-6)
      << "B=" << param.buckets << " eps=" << param.epsilon << " seed "
      << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StreamingGuaranteeTest,
    ::testing::Values(StreamCase{4, 0.1, 1}, StreamCase{4, 0.1, 2},
                      StreamCase{8, 0.1, 3}, StreamCase{8, 0.25, 4},
                      StreamCase{8, 0.5, 5}, StreamCase{16, 0.1, 6},
                      StreamCase{16, 1.0, 7}, StreamCase{2, 0.05, 8},
                      StreamCase{1, 0.1, 9}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return "B" + std::to_string(info.param.buckets) + "_eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100)) +
             "_seed" + std::to_string(info.param.seed);
    });

TEST(Streaming, MemoryStaysSublinear) {
  // Breakpoint count is O((B^2/eps) log(error range)) by the geometric-
  // class argument: doubling the stream must grow memory only by the
  // log-range increment, not 2x.
  auto peak_for = [](std::size_t n) {
    BasicModelInput basic = GenerateMovieLinkage({.domain_size = n, .seed = 77});
    auto induced = InduceValuePdf(basic);
    PROBSYN_CHECK(induced.ok());
    StreamingHistogramBuilder builder(8, 0.25);
    for (const ValuePdf& pdf : induced->items()) builder.Push(pdf);
    auto result = builder.Finish();
    PROBSYN_CHECK(result.ok());
    PROBSYN_CHECK(result->histogram.Validate(n).ok());
    return result->peak_breakpoints;
  };
  std::size_t at_2000 = peak_for(2000);
  std::size_t at_4000 = peak_for(4000);
  EXPECT_LT(at_4000, 4000u);  // far below one-per-item
  EXPECT_LT(at_4000, at_2000 + at_2000 / 2)
      << "memory grew superlogarithmically: " << at_2000 << " -> " << at_4000;
}

TEST(Streaming, DeterministicStreamWithEnoughBucketsIsExact) {
  StreamingHistogramBuilder builder(4, 0.1);
  for (double f : {5.0, 5.0, 1.0, 1.0, 9.0, 9.0, 2.0, 2.0}) {
    builder.PushDeterministic(f);
  }
  auto result = builder.Finish();
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, 0.0, 1e-9);
  EXPECT_EQ(result->histogram.num_buckets(), 4u);
  EXPECT_DOUBLE_EQ(result->histogram.Estimate(0), 5.0);
  EXPECT_DOUBLE_EQ(result->histogram.Estimate(4), 9.0);
}

TEST(Streaming, FinishIsNonDestructiveAndRepeatable) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 50, .seed = 3});
  StreamingHistogramBuilder builder(5, 0.2);
  for (std::size_t i = 0; i < 25; ++i) builder.Push(input.item(i));
  auto first = builder.Finish();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->histogram.Validate(25).ok());

  for (std::size_t i = 25; i < 50; ++i) builder.Push(input.item(i));
  auto second = builder.Finish();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->histogram.Validate(50).ok());
  EXPECT_EQ(builder.items_seen(), 50u);

  // Costs never report below the offline optimum at either point.
  auto offline = HistogramBuilder::Create(input, SseOptions(), 5);
  ASSERT_TRUE(offline.ok());
  EXPECT_GE(second->cost, offline->OptimalCost(5) - 1e-9);
}

// The point-cost kernel (hoisted snapshot columns + SIMD min-reduction +
// single winner-chain copy) must reproduce the reference compare-and-copy
// scan bit-for-bit: same costs, same bucket boundaries and
// representatives, same breakpoint counts at every prefix.
TEST(Streaming, PointCostKernelMatchesReferenceBitForBit) {
  struct Case {
    std::size_t buckets;
    double epsilon;
    std::uint64_t seed;
  };
  for (const Case& c : {Case{4, 0.1, 11}, Case{8, 0.25, 12},
                        Case{16, 0.05, 13}, Case{1, 0.5, 14}}) {
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = 300, .max_support = 4, .max_value = 9,
         .seed = c.seed});
    StreamingHistogramBuilder reference(c.buckets, c.epsilon,
                                        StreamingKernel::kReference);
    StreamingHistogramBuilder fast(c.buckets, c.epsilon,
                                   StreamingKernel::kPointCost);
    EXPECT_EQ(reference.kernel(), StreamingKernel::kReference);
    EXPECT_EQ(fast.kernel(), StreamingKernel::kPointCost);
    for (std::size_t i = 0; i < input.domain_size(); ++i) {
      reference.Push(input.item(i));
      fast.Push(input.item(i));
      if (i % 50 == 0) {
        ASSERT_EQ(reference.breakpoints(), fast.breakpoints())
            << "prefix " << i << " B=" << c.buckets;
      }
    }
    auto ref_result = reference.Finish();
    auto fast_result = fast.Finish();
    ASSERT_TRUE(ref_result.ok() && fast_result.ok());
    EXPECT_EQ(ref_result->cost, fast_result->cost) << "B=" << c.buckets;
    EXPECT_EQ(ref_result->peak_breakpoints, fast_result->peak_breakpoints);
    ASSERT_EQ(ref_result->histogram.num_buckets(),
              fast_result->histogram.num_buckets());
    for (std::size_t i = 0; i < ref_result->histogram.num_buckets(); ++i) {
      const HistogramBucket& want = ref_result->histogram.buckets()[i];
      const HistogramBucket& got = fast_result->histogram.buckets()[i];
      EXPECT_EQ(want.start, got.start);
      EXPECT_EQ(want.end, got.end);
      EXPECT_EQ(want.representative, got.representative);
    }
  }
}

TEST(Streaming, DefaultKernelIsPointCost) {
  StreamingHistogramBuilder builder(4, 0.1);
  EXPECT_EQ(builder.kernel(), StreamingKernel::kPointCost);
}

// --- Persistent chain store (StreamChainStore) accounting. ---------------

// Every chain reference the builder takes must come back: with an injected
// store, the live-node count returns to its pre-builder baseline once the
// builder is destroyed (Finish is non-destructive and must not leak
// either). This is the refcount-leak half of the acceptance criteria.
TEST(Streaming, ChainNodeRefcountsReturnToBaselineAfterFinalize) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 400, .max_support = 4, .max_value = 9, .seed = 91});
  StreamChainStore store;
  {
    StreamingHistogramBuilder builder(8, 0.2, StreamingKernel::kAuto, &store);
    for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
    EXPECT_GT(store.stats().live, 0u);

    auto first = builder.Finish();
    ASSERT_TRUE(first.ok());
    const std::size_t live_after_finish = store.stats().live;

    // Finish walks chains read-only: no references taken or dropped.
    auto second = builder.Finish();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(store.stats().live, live_after_finish);
    EXPECT_EQ(first->cost, second->cost);
  }
  EXPECT_EQ(store.stats().live, 0u);
  EXPECT_EQ(store.stats().created, store.stats().freed);
}

// Zero steady-state allocation, mirroring the wavelet arena's
// WaveletDpArena::grow_events contract: a second stream through the same
// (warm) store must not grow the node pool, hash table, or free list.
TEST(Streaming, ChainStoreReuseAllocatesNoNodes) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 600, .max_support = 4, .max_value = 9, .seed = 92});
  StreamChainStore store;
  auto run_stream = [&] {
    StreamingHistogramBuilder builder(8, 0.25, StreamingKernel::kAuto,
                                      &store);
    for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
    auto result = builder.Finish();
    PROBSYN_CHECK(result.ok());
    return result->cost;
  };
  const double first = run_stream();
  const std::size_t grows_after_warmup = store.stats().grow_events;
  EXPECT_GT(grows_after_warmup, 0u);  // the warmup stream sized the pool
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(run_stream(), first);
    EXPECT_EQ(store.stats().grow_events, grows_after_warmup)
        << "repeat stream " << repeat << " grew the chain store";
  }
}

// O(1) chain work per Push: the point-cost path performs at most one
// chain-store operation per layer per push — Extend on the winner or a
// refcount bump on inheritance — REGARDLESS of chain length. The
// reference path copies the full winner chain instead, so its snapshot
// copies grow superlinearly in B; the counter pins the new bound.
TEST(Streaming, PushDoesConstantChainWorkPerLayer) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 500, .max_support = 4, .max_value = 9, .seed = 93});
  const std::size_t kBuckets = 16;
  StreamingHistogramBuilder builder(kBuckets, 0.1);
  for (const ValuePdf& pdf : input.items()) builder.Push(pdf);

  ASSERT_NE(builder.chain_store(), nullptr);
  const StreamChainStore::Stats& stats = builder.chain_store()->stats();
  // At most one node creation or cons hit per layer per push (layers 2..B
  // extend; layer 1 never does).
  EXPECT_LE(stats.created + stats.consed,
            input.domain_size() * (kBuckets - 1));
  // Shared suffixes keep the live set far below the sum of chain lengths:
  // every committed/pending breakpoint holds one head reference, so live
  // nodes can only beat breakpoints * (B - 1) through sharing.
  auto result = builder.Finish();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(stats.live, builder.breakpoints() * (kBuckets - 1));
  EXPECT_GT(stats.consed, 0u);  // hash-consing actually deduplicates
}

TEST(Streaming, EmptyStreamFails) {
  StreamingHistogramBuilder builder(4, 0.1);
  auto result = builder.Finish();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Streaming, SingleItem) {
  StreamingHistogramBuilder builder(4, 0.1);
  auto pdf = ValuePdf::Create({{3.0, 0.5}});
  ASSERT_TRUE(pdf.ok());
  builder.Push(pdf.value());
  auto result = builder.Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->histogram.num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(result->histogram.Estimate(0), 1.5);
  // Irreducible variance of {0: .5, 3: .5}.
  EXPECT_NEAR(result->cost, 0.5 * 9.0 - 1.5 * 1.5, 1e-12);
}

TEST(Streaming, MatchesPaperExampleOneBucket) {
  // Value-pdf Example 1 items pushed as a stream, B = 1: cost must equal
  // the offline 1-bucket SSE (fixed representative).
  ValuePdfInput input = testing::PaperExampleValuePdf();
  StreamingHistogramBuilder builder(1, 0.1);
  for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
  auto result = builder.Finish();
  ASSERT_TRUE(result.ok());
  auto offline = HistogramBuilder::Create(input, SseOptions(), 1);
  ASSERT_TRUE(offline.ok());
  EXPECT_NEAR(result->cost, offline->OptimalCost(1), 1e-12);
}

}  // namespace
}  // namespace probsyn
