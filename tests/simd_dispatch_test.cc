// Runtime-dispatched SIMD min-reductions (core/dp_kernels.h): every path
// the build and CPU support (scalar / AVX2 / AVX-512) must produce
// bit-identical results — raw primitives on adversarial FP columns, and
// end-to-end through every DP family that consumes them. CI runs this
// binary twice: once under native dispatch and once with the force-scalar
// override (PROBSYN_SIMD=scalar), so the scalar fallback stays honest on
// machines where it is never the auto-dispatched path.

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_kernels.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "core/wavelet_dp.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "stream/streaming_histogram.h"
#include "util/logging.h"
#include "util/random.h"
#include "test_util.h"

namespace probsyn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The force-and-restore helper and supported-path probe live in
// test_util.h so the parallel-wavelet determinism tests share them.
using testing::ScopedSimdPath;

std::vector<SimdPath> SupportedPaths() { return testing::SupportedSimdPaths(); }

// Adversarial FP columns: denormals, infinities, ten-orders-of-magnitude
// mixes, exact ties, and negatives — everything except NaN, which the
// cost arrays never contain (documented precondition).
std::vector<double> AdversarialColumn(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.NextBounded(8)) {
      case 0: out[i] = kInf; break;
      case 1: out[i] = 5e-324; break;  // smallest denormal
      case 2: out[i] = 1e300 * rng.NextDouble(); break;
      case 3: out[i] = 1e-300 * rng.NextDouble(); break;
      case 4: out[i] = 0.0; break;
      case 5: out[i] = -rng.NextDouble(); break;
      case 6: out[i] = 1.0; break;  // exact-tie fodder
      default: out[i] = rng.NextDouble(); break;
    }
  }
  return out;
}

TEST(SimdDispatch, ScalarIsAlwaysForceable) {
  ScopedSimdPath forced(SimdPath::kScalar);
  EXPECT_EQ(forced.active(), SimdPath::kScalar);
  EXPECT_EQ(ActiveSimdPath(), SimdPath::kScalar);
}

TEST(SimdDispatch, NamesAreStable) {
  EXPECT_STREQ(SimdPathName(SimdPath::kScalar), "scalar");
  EXPECT_STREQ(SimdPathName(SimdPath::kAvx2), "avx2");
  EXPECT_STREQ(SimdPathName(SimdPath::kAvx512), "avx512");
}

TEST(SimdDispatch, PrimitivesMatchScalarOnAdversarialColumns) {
  // Lengths cross every unroll width (4/8/16/32) and the 512-entry chunk.
  const std::size_t lengths[] = {0,  1,  2,  3,   4,   5,   7,   8,  9,
                                 15, 16, 17, 31,  32,  33,  63,  64, 65,
                                 511, 512, 513, 1024, 2000};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<double> a = AdversarialColumn(2048, seed);
    std::vector<double> b = AdversarialColumn(2048, seed + 100);
    for (std::size_t n : lengths) {
      // Scalar ground truth.
      double want_const, want_pairs, want_rev, want_max, want_arr;
      {
        ScopedSimdPath forced(SimdPath::kScalar);
        want_const = SimdMinPlusConst(a.data(), n, 0.25);
        want_pairs = SimdMinPlusPairs(a.data(), b.data(), n);
        want_rev = SimdMinPlusReverse(a.data(), b.data() + n, n);
        want_max = SimdMinMaxPairs(a.data(), b.data(), n);
        want_arr = SimdMinArray(a.data(), n);
      }
      if (n == 0) {
        EXPECT_EQ(want_arr, kInf);
        EXPECT_EQ(want_pairs, kInf);
      }
      for (SimdPath path : SupportedPaths()) {
        ScopedSimdPath forced(path);
        EXPECT_EQ(SimdMinPlusConst(a.data(), n, 0.25), want_const)
            << SimdPathName(path) << " n=" << n << " seed=" << seed;
        EXPECT_EQ(SimdMinPlusPairs(a.data(), b.data(), n), want_pairs)
            << SimdPathName(path) << " n=" << n << " seed=" << seed;
        EXPECT_EQ(SimdMinPlusReverse(a.data(), b.data() + n, n), want_rev)
            << SimdPathName(path) << " n=" << n << " seed=" << seed;
        EXPECT_EQ(SimdMinMaxPairs(a.data(), b.data(), n), want_max)
            << SimdPathName(path) << " n=" << n << " seed=" << seed;
        EXPECT_EQ(SimdMinArray(a.data(), n), want_arr)
            << SimdPathName(path) << " n=" << n << " seed=" << seed;
      }
    }
  }
}

// End-to-end: the exact DP's kSum and kMax tables must be bit-identical
// under every SIMD path — errors, traceback choices, and representatives.
TEST(SimdDispatch, ExactDpBitIdenticalAcrossPaths) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 700, .max_support = 3, .max_value = 6, .seed = 9});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());

  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    std::vector<double> want_err;
    std::vector<std::int64_t> want_choice;
    std::vector<double> want_rep;
    {
      ScopedSimdPath forced(SimdPath::kScalar);
      HistogramDpResult dp =
          SolveHistogramDp(*bundle->oracle, 24, combiner);
      for (std::size_t b = 1; b <= dp.table_layers(); ++b) {
        auto err = dp.ErrorRow(b);
        auto choice = dp.ChoiceRow(b);
        auto rep = dp.RepresentativeRow(b);
        want_err.insert(want_err.end(), err.begin(), err.end());
        want_choice.insert(want_choice.end(), choice.begin(), choice.end());
        want_rep.insert(want_rep.end(), rep.begin(), rep.end());
      }
    }
    for (SimdPath path : SupportedPaths()) {
      ScopedSimdPath forced(path);
      HistogramDpResult dp =
          SolveHistogramDp(*bundle->oracle, 24, combiner);
      std::size_t offset = 0;
      for (std::size_t b = 1; b <= dp.table_layers(); ++b) {
        auto err = dp.ErrorRow(b);
        auto choice = dp.ChoiceRow(b);
        auto rep = dp.RepresentativeRow(b);
        for (std::size_t j = 0; j < err.size(); ++j, ++offset) {
          ASSERT_EQ(err[j], want_err[offset])
              << SimdPathName(path) << " b=" << b << " j=" << j;
          ASSERT_EQ(choice[j], want_choice[offset])
              << SimdPathName(path) << " b=" << b << " j=" << j;
          ASSERT_EQ(rep[j], want_rep[offset])
              << SimdPathName(path) << " b=" << b << " j=" << j;
        }
      }
    }
  }
}

// The approximate DP materializes candidate values and min-reduces them
// through the dispatch; histogram, cost, and evaluation count must not
// move across paths.
TEST(SimdDispatch, ApproxDpBitIdenticalAcrossPaths) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 600, .max_support = 3, .max_value = 6, .seed = 21});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());

  double want_cost;
  std::size_t want_evaluations;
  Histogram want_histogram;
  {
    ScopedSimdPath forced(SimdPath::kScalar);
    auto approx = SolveApproxHistogramDp(*bundle->oracle, 16, 0.1);
    ASSERT_TRUE(approx.ok());
    want_cost = approx->cost;
    want_evaluations = approx->oracle_evaluations;
    want_histogram = approx->histogram;
  }
  for (SimdPath path : SupportedPaths()) {
    ScopedSimdPath forced(path);
    auto approx = SolveApproxHistogramDp(*bundle->oracle, 16, 0.1);
    ASSERT_TRUE(approx.ok());
    EXPECT_EQ(approx->cost, want_cost) << SimdPathName(path);
    EXPECT_EQ(approx->oracle_evaluations, want_evaluations)
        << SimdPathName(path);
    ASSERT_EQ(approx->histogram.num_buckets(), want_histogram.num_buckets());
    for (std::size_t i = 0; i < want_histogram.num_buckets(); ++i) {
      EXPECT_EQ(approx->histogram.buckets()[i].start,
                want_histogram.buckets()[i].start);
      EXPECT_EQ(approx->histogram.buckets()[i].end,
                want_histogram.buckets()[i].end);
      EXPECT_EQ(approx->histogram.buckets()[i].representative,
                want_histogram.buckets()[i].representative);
    }
  }
}

// The restricted wavelet DP's budget splits ride SimdMinPlusConst /
// SimdMinPlusReverse; kept coefficients and cost must not move.
TEST(SimdDispatch, RestrictedWaveletBitIdenticalAcrossPaths) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 128, .max_support = 3, .max_value = 6, .seed = 33});
  for (ErrorMetric metric : {ErrorMetric::kSae, ErrorMetric::kMae}) {
    SynopsisOptions options;
    options.metric = metric;
    double want_cost;
    std::vector<WaveletCoefficient> want_coeffs;
    {
      ScopedSimdPath forced(SimdPath::kScalar);
      auto dp = BuildRestrictedWaveletDp(input, 48, options);
      ASSERT_TRUE(dp.ok());
      want_cost = dp->cost;
      want_coeffs = dp->synopsis.coefficients();
    }
    for (SimdPath path : SupportedPaths()) {
      ScopedSimdPath forced(path);
      auto dp = BuildRestrictedWaveletDp(input, 48, options);
      ASSERT_TRUE(dp.ok());
      EXPECT_EQ(dp->cost, want_cost) << SimdPathName(path);
      ASSERT_EQ(dp->synopsis.coefficients().size(), want_coeffs.size());
      for (std::size_t i = 0; i < want_coeffs.size(); ++i) {
        EXPECT_EQ(dp->synopsis.coefficients()[i].index,
                  want_coeffs[i].index);
        EXPECT_EQ(dp->synopsis.coefficients()[i].value,
                  want_coeffs[i].value);
      }
    }
  }
}

// The streaming builder's point-cost scan min-reduces through the
// dispatch; the returned histogram must not move across paths.
TEST(SimdDispatch, StreamingBitIdenticalAcrossPaths) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 400, .max_support = 3, .max_value = 8, .seed = 47});
  auto run = [&input]() {
    StreamingHistogramBuilder builder(12, 0.1);
    for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
    auto result = builder.Finish();
    PROBSYN_CHECK(result.ok());
    return std::move(result).value();
  };
  StreamingHistogramBuilder::Result want;
  {
    ScopedSimdPath forced(SimdPath::kScalar);
    want = run();
  }
  for (SimdPath path : SupportedPaths()) {
    ScopedSimdPath forced(path);
    StreamingHistogramBuilder::Result got = run();
    EXPECT_EQ(got.cost, want.cost) << SimdPathName(path);
    EXPECT_EQ(got.peak_breakpoints, want.peak_breakpoints);
    ASSERT_EQ(got.histogram.num_buckets(), want.histogram.num_buckets());
    for (std::size_t i = 0; i < want.histogram.num_buckets(); ++i) {
      EXPECT_EQ(got.histogram.buckets()[i].start,
                want.histogram.buckets()[i].start);
      EXPECT_EQ(got.histogram.buckets()[i].end,
                want.histogram.buckets()[i].end);
      EXPECT_EQ(got.histogram.buckets()[i].representative,
                want.histogram.buckets()[i].representative);
    }
  }
}

// The engine must record the dispatched path in DP-route solver strings.
TEST(SimdDispatch, EngineSolverStringsRecordSimdPath) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 64, .seed = 5});
  SynopsisEngine engine({.parallelism = 1});
  SynopsisRequest request;
  request.budget = 8;
  request.options.metric = ErrorMetric::kSse;
  request.options.sse_variant = SseVariant::kFixedRepresentative;

  for (SimdPath path : SupportedPaths()) {
    ScopedSimdPath forced(path);
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok());
    const std::string want =
        std::string("simd=") + SimdPathName(ActiveSimdPath());
    EXPECT_NE(result->solver.find(want), std::string::npos)
        << result->solver;
  }
}

}  // namespace
}  // namespace probsyn
