// Failure-injection suite: every public entry point must reject malformed
// input with the right Status code rather than crash or mis-compute.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/histogram2d.h"
#include "core/oracle_factory.h"
#include "core/wavelet.h"
#include "core/wavelet_dp.h"
#include "core/wavelet_unrestricted.h"
#include "model/induced.h"
#include "model/worlds.h"
#include "test_util.h"

namespace probsyn {
namespace {

SynopsisOptions Sae() {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  return options;
}

TEST(ApiErrors, EmptyDomainIsRejectedEverywhere) {
  ValuePdfInput empty;
  EXPECT_FALSE(MakeBucketOracle(empty, Sae()).ok());
  EXPECT_FALSE(BuildOptimalHistogram(empty, Sae(), 2).ok());
  EXPECT_FALSE(BuildApproxHistogram(empty, Sae(), 2, 0.1).ok());
  EXPECT_FALSE(BuildSseOptimalWavelet(empty, 2).ok());
  EXPECT_FALSE(BuildRestrictedWaveletDp(empty, 2, Sae()).ok());
  EXPECT_FALSE(BuildUnrestrictedWaveletDp(empty, 2, Sae()).ok());
  EXPECT_FALSE(BuildEquiDepthHistogram(empty, Sae(), 2).ok());
}

TEST(ApiErrors, ZeroBucketBudgetsAreRejected) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  EXPECT_FALSE(BuildOptimalHistogram(input, Sae(), 0).ok());
  EXPECT_FALSE(BuildApproxHistogram(input, Sae(), 0, 0.1).ok());
  EXPECT_FALSE(BuildEquiDepthHistogram(input, Sae(), 0).ok());
  EXPECT_FALSE(HistogramBuilder::Create(input, Sae(), 0).ok());
}

TEST(ApiErrors, BadSanityConstantIsRejected) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  for (ErrorMetric metric : {ErrorMetric::kSsre, ErrorMetric::kSare,
                             ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.0;
    EXPECT_FALSE(MakeBucketOracle(input, options).ok())
        << ErrorMetricName(metric);
    options.sanity_c = -1.0;
    EXPECT_FALSE(BuildOptimalHistogram(input, options, 2).ok())
        << ErrorMetricName(metric);
  }
}

TEST(ApiErrors, InvalidModelInputsPropagateStatus) {
  // Tuple referencing an out-of-domain item.
  auto bad_tuple = ProbTuple::Create({{9, 0.5}});
  ASSERT_TRUE(bad_tuple.ok());
  TuplePdfInput bad(3, {bad_tuple.value()});
  EXPECT_EQ(MakeBucketOracle(bad, Sae()).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(InduceValuePdf(bad).ok());
  EXPECT_FALSE(EnumerateWorlds(bad).ok());
  EXPECT_FALSE(BuildSseOptimalWavelet(bad, 2).ok());

  BasicModelInput bad_basic(2, {{0, 2.0}});
  EXPECT_FALSE(bad_basic.ToTuplePdf().ok());
  EXPECT_FALSE(EnumerateWorlds(bad_basic).ok());
}

TEST(ApiErrors, EvaluatorsRejectMismatchedShapes) {
  ValuePdfInput input = testing::PaperExampleValuePdf();  // n = 3
  Histogram wrong_domain({{0, 4, 1.0}});
  EXPECT_FALSE(EvaluateHistogram(input, wrong_domain, Sae()).ok());
  EXPECT_FALSE(EvaluateHistogramWorldMeanSse(input, wrong_domain).ok());

  WaveletSynopsis wrong_synopsis(5, 8, {});
  EXPECT_FALSE(EvaluateWavelet(input, wrong_synopsis, Sae()).ok());

  SynopsisOptions bad_workload = Sae();
  bad_workload.workload = {1.0, 1.0};  // n == 3
  Histogram ok_hist({{0, 2, 1.0}});
  EXPECT_FALSE(EvaluateHistogram(input, ok_hist, bad_workload).ok());
}

TEST(ApiErrors, ApproxDpParameterValidation) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions sse;
  sse.metric = ErrorMetric::kSse;
  EXPECT_FALSE(BuildApproxHistogram(input, sse, 2, 0.0).ok());
  EXPECT_FALSE(BuildApproxHistogram(input, sse, 2, -0.5).ok());
  SynopsisOptions mae;
  mae.metric = ErrorMetric::kMae;
  EXPECT_EQ(BuildApproxHistogram(input, mae, 2, 0.1).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ApiErrors, WaveletSynopsisValidation) {
  // Non-power-of-two transform and out-of-range coefficient indices.
  WaveletSynopsis bad_transform(3, 3, {});
  EXPECT_FALSE(bad_transform.Validate().ok());
  WaveletSynopsis bad_index(3, 4, {{7, 1.0}});
  EXPECT_FALSE(bad_index.Validate().ok());
}

TEST(ApiErrors, TwoDimensionalGuards) {
  auto grid = ProbGrid2D::Create(
      2, 2, {ValuePdf::PointMass(1), ValuePdf::PointMass(2),
             ValuePdf::PointMass(3), ValuePdf::PointMass(4)});
  ASSERT_TRUE(grid.ok());
  EXPECT_FALSE(BuildGreedyHistogram2D(grid.value(), Sae(), 2).ok());
  EXPECT_FALSE(BuildGreedyHistogram2D(grid.value(), SynopsisOptions{}, 0).ok());
  SynopsisOptions sse;
  sse.metric = ErrorMetric::kSse;
  sse.sse_variant = SseVariant::kFixedRepresentative;
  EXPECT_FALSE(
      BuildOptimalGuillotineHistogram2D(grid.value(), sse, 2, /*max_cells=*/1)
          .ok());
  Histogram2D not_a_tiling({{{0, 0, 0, 0}, 1.0}});
  EXPECT_FALSE(EvaluateHistogram2D(grid.value(), not_a_tiling, sse).ok());
}

TEST(ApiErrors, WorkloadValidationAcrossBuilders) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options = Sae();
  options.workload = {1.0, 1.0};  // wrong size (n = 3)
  EXPECT_FALSE(BuildOptimalHistogram(input, options, 2).ok());
  EXPECT_FALSE(BuildRestrictedWaveletDp(input, 2, options).ok());
  EXPECT_FALSE(BuildUnrestrictedWaveletDp(input, 2, options).ok());

  options.workload = {-1.0, 0.0, 0.0};
  EXPECT_FALSE(BuildOptimalHistogram(input, options, 2).ok());
}

TEST(ApiErrors, StatusMessagesAreInformative) {
  ValuePdfInput empty;
  Status s = MakeBucketOracle(empty, Sae()).status();
  EXPECT_FALSE(s.message().empty());
  EXPECT_NE(s.ToString().find(StatusCodeToString(s.code())),
            std::string::npos);
}

}  // namespace
}  // namespace probsyn
