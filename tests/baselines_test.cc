#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "test_util.h"

namespace probsyn {
namespace {

TEST(Baselines, ExpectationFrequenciesMatchModelMoments) {
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  auto freqs = ExpectationFrequencies(input);
  ASSERT_EQ(freqs.size(), 3u);
  EXPECT_NEAR(freqs[1], 7.0 / 12, 1e-12);
}

TEST(Baselines, SampledWorldsAreRealizableWorlds) {
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    auto freq = SampleWorldFrequencies(input, rng);
    ASSERT_EQ(freq.size(), 3u);
    // Frequencies must be achievable counts: item 1 can see 0..2 tuples,
    // items 0/2 at most one each.
    EXPECT_TRUE(freq[0] == 0 || freq[0] == 1);
    EXPECT_TRUE(freq[1] >= 0 && freq[1] <= 2);
    EXPECT_TRUE(freq[2] == 0 || freq[2] == 1);
  }
}

TEST(Baselines, BuildersProduceValidHistograms) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 20, .max_support = 3, .max_value = 6, .seed = 8});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;
  auto expectation = BuildExpectationHistogram(input, options, 5);
  ASSERT_TRUE(expectation.ok());
  EXPECT_TRUE(expectation->Validate(20).ok());

  Rng rng(5);
  auto sampled = BuildSampledWorldHistogram(input, options, 5, rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_TRUE(sampled->Validate(20).ok());
}

// The central claim of the paper's experiments: the probabilistic method is
// never worse than either baseline under the true expected error, since it
// optimizes that objective exactly.
TEST(Baselines, ProbabilisticMethodDominatesBaselines) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 24, .max_support = 4, .max_value = 8, .seed = 15});
  for (ErrorMetric metric :
       {ErrorMetric::kSse, ErrorMetric::kSsre, ErrorMetric::kSae,
        ErrorMetric::kSare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    options.sse_variant = SseVariant::kFixedRepresentative;
    const std::size_t kBuckets = 6;

    auto optimal = BuildOptimalHistogram(input, options, kBuckets);
    auto expectation = BuildExpectationHistogram(input, options, kBuckets);
    ASSERT_TRUE(optimal.ok() && expectation.ok());
    Rng rng(77);
    auto sampled = BuildSampledWorldHistogram(input, options, kBuckets, rng);
    ASSERT_TRUE(sampled.ok());

    auto cost_opt = EvaluateHistogram(input, optimal.value(), options);
    auto cost_exp = EvaluateHistogram(input, expectation.value(), options);
    auto cost_smp = EvaluateHistogram(input, sampled.value(), options);
    ASSERT_TRUE(cost_opt.ok() && cost_exp.ok() && cost_smp.ok());
    EXPECT_LE(*cost_opt, *cost_exp + 1e-9) << ErrorMetricName(metric);
    EXPECT_LE(*cost_opt, *cost_smp + 1e-9) << ErrorMetricName(metric);
  }
}

TEST(Baselines, SampledWorldWaveletIsValidAndDominated) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 32, .num_tuples = 80, .max_alternatives = 3,
       .seed = 21});
  const std::size_t kB = 6;
  auto optimal = BuildSseOptimalWavelet(input, kB);
  ASSERT_TRUE(optimal.ok());
  Rng rng(9);
  auto sampled = BuildSampledWorldWavelet(input, kB, rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_TRUE(sampled->Validate().ok());
  EXPECT_LE(sampled->num_coefficients(), kB);

  // Under the mu-energy measure the optimal selection captures at least as
  // much energy (it keeps the B largest |mu| by construction) — but the
  // sampled synopsis also carries sampled VALUES, so compare via the full
  // expected-SSE evaluation, where optimality is guaranteed only for the
  // index-set + mu-values combination.
  std::vector<double> mu = ExpectedHaarCoefficients(input.ExpectedFrequencies());
  EXPECT_LE(WaveletUnretainedEnergyPercent(mu, optimal.value()),
            WaveletUnretainedEnergyPercent(mu, sampled.value()) + 1e-9);
}

TEST(Baselines, ExpectationEqualsDeterministicPipelineOnPointMasses) {
  // On deterministic data the Expectation baseline IS the data, so the
  // probabilistic and baseline histograms must coincide in cost.
  std::vector<double> freqs = GenerateZipfFrequencies(16, 1.1, 100.0, 3);
  ValuePdfInput input = PointMassInput(freqs);
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  auto prob = BuildOptimalHistogram(input, options, 4);
  auto baseline = BuildExpectationHistogram(input, options, 4);
  ASSERT_TRUE(prob.ok() && baseline.ok());
  auto cost_prob = EvaluateHistogram(input, prob.value(), options);
  auto cost_base = EvaluateHistogram(input, baseline.value(), options);
  ASSERT_TRUE(cost_prob.ok() && cost_base.ok());
  EXPECT_NEAR(*cost_prob, *cost_base, 1e-9);
}

}  // namespace
}  // namespace probsyn
