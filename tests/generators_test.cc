#include "gen/generators.h"

#include <gtest/gtest.h>

#include "model/induced.h"

namespace probsyn {
namespace {

TEST(MovieLinkage, DeterministicGivenSeed) {
  MovieLinkageOptions options{.domain_size = 128, .seed = 10};
  BasicModelInput a = GenerateMovieLinkage(options);
  BasicModelInput b = GenerateMovieLinkage(options);
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  EXPECT_EQ(a.tuples(), b.tuples());
}

TEST(MovieLinkage, DifferentSeedsDiffer) {
  BasicModelInput a = GenerateMovieLinkage({.domain_size = 128, .seed = 1});
  BasicModelInput b = GenerateMovieLinkage({.domain_size = 128, .seed = 2});
  EXPECT_NE(a.tuples(), b.tuples());
}

TEST(MovieLinkage, ProducesValidBasicModel) {
  BasicModelInput input = GenerateMovieLinkage({.domain_size = 256, .seed = 3});
  EXPECT_TRUE(input.Validate().ok());
  // Every item gets at least one candidate match.
  std::vector<int> count(256, 0);
  for (const BasicTuple& t : input.tuples()) count[t.item]++;
  for (int c : count) EXPECT_GE(c, 1);
  // Match counts are skewed: mean above minimum.
  EXPECT_GT(input.num_tuples(), 256u);
  EXPECT_LT(input.num_tuples(), 256u * 12u);
}

TEST(MovieLinkage, ConfidencesAreBimodal) {
  BasicModelInput input = GenerateMovieLinkage({.domain_size = 512, .seed = 4});
  int high = 0, low = 0;
  for (const BasicTuple& t : input.tuples()) {
    ASSERT_GT(t.probability, 0.0);
    ASSERT_LE(t.probability, 1.0);
    if (t.probability >= 0.7) ++high;
    if (t.probability <= 0.45) ++low;
  }
  EXPECT_GT(high, 0);
  EXPECT_GT(low, 0);
  // The two modes must account for all of the mass.
  EXPECT_EQ(high + low, static_cast<int>(input.num_tuples()));
}

TEST(MovieLinkage, SmoothSegmentsFlattenLocalExpectations) {
  MovieLinkageOptions rough{.domain_size = 2048, .seed = 6};
  MovieLinkageOptions smooth = rough;
  smooth.smooth_segments = true;

  auto local_roughness = [](const BasicModelInput& input) {
    std::vector<double> mean(2048, 0.0);
    for (const BasicTuple& t : input.tuples()) mean[t.item] += t.probability;
    double total = 0.0;
    for (std::size_t i = 1; i < mean.size(); ++i) {
      double d = mean[i] - mean[i - 1];
      total += d * d;
    }
    return total;
  };
  BasicModelInput a = GenerateMovieLinkage(rough);
  BasicModelInput b = GenerateMovieLinkage(smooth);
  EXPECT_TRUE(b.Validate().ok());
  // Smooth mode drastically reduces item-to-item expectation jumps.
  EXPECT_LT(local_roughness(b), 0.5 * local_roughness(a));
}

TEST(MaybmsTpch, ProducesValidTuplePdf) {
  TuplePdfInput input = GenerateMaybmsTpch(
      {.domain_size = 200, .num_tuples = 500, .seed = 5});
  EXPECT_TRUE(input.Validate().ok());
  EXPECT_EQ(input.num_tuples(), 500u);
}

TEST(MaybmsTpch, AlternativesAreUniformWithinEachTuple) {
  TuplePdfInput input = GenerateMaybmsTpch(
      {.domain_size = 100, .num_tuples = 200, .max_alternatives = 4,
       .absent_probability = 0.0, .seed = 6});
  for (const ProbTuple& t : input.tuples()) {
    // All alternatives of a row share the same probability (MayBMS-style
    // uniform alternatives), except where two alternatives collide on the
    // same item and merge.
    double total = 0.0;
    for (const TupleAlternative& a : t.alternatives()) total += a.probability;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MaybmsTpch, AbsentMassRespected) {
  TuplePdfInput input = GenerateMaybmsTpch(
      {.domain_size = 100, .num_tuples = 300, .absent_probability = 0.3,
       .seed = 7});
  bool some_absent = false;
  for (const ProbTuple& t : input.tuples()) {
    EXPECT_LE(t.ProbAbsent(), 0.3 + 1e-9);
    if (t.ProbAbsent() > 0.0) some_absent = true;
  }
  EXPECT_TRUE(some_absent);
}

TEST(RandomValuePdf, ValidAndDeterministic) {
  RandomValuePdfOptions options{.domain_size = 50, .seed = 8};
  ValuePdfInput a = GenerateRandomValuePdf(options);
  ValuePdfInput b = GenerateRandomValuePdf(options);
  EXPECT_TRUE(a.Validate().ok());
  ASSERT_EQ(a.domain_size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.item(i), b.item(i));
  }
}

TEST(RandomTuplePdf, ValidAndInducible) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 10, .num_tuples = 15, .max_alternatives = 4, .seed = 9});
  EXPECT_TRUE(input.Validate().ok());
  auto induced = InduceValuePdf(input);
  ASSERT_TRUE(induced.ok());
  EXPECT_TRUE(induced->Validate().ok());
}

TEST(ZipfFrequencies, MassAndSkew) {
  std::vector<double> freqs = GenerateZipfFrequencies(100, 1.2, 1000.0, 10);
  double total = 0.0, top = 0.0;
  for (double f : freqs) {
    total += f;
    top = std::max(top, f);
  }
  EXPECT_NEAR(total, 1000.0, 1e-6);
  // Rank-1 mass dominates under alpha > 1.
  EXPECT_GT(top, 1000.0 / 100.0);
}

}  // namespace
}  // namespace probsyn
