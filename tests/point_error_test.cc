#include "core/point_error.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "model/worlds.h"
#include "test_util.h"
#include "util/random.h"

namespace probsyn {
namespace {

// Direct per-pdf computation used as ground truth.
double Direct(const ValuePdf& pdf, ErrorMetric metric, double v, double c) {
  double total = 0.0;
  for (const ValueProb& e : pdf.entries()) {
    total += e.probability * PointError(metric, e.value, v, c);
  }
  return total;
}

class PointErrorRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PointErrorRandomTest, MatchesDirectComputationAtManyEstimates) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 24, .max_support = 5, .max_value = 9,
       .seed = GetParam()});
  const double c = 0.75;
  PointErrorTables tables(input, c);
  Rng rng(GetParam() * 131 + 7);

  for (int probe = 0; probe < 50; ++probe) {
    // Mix grid-exact, interior and out-of-range estimates.
    double v;
    switch (probe % 3) {
      case 0:
        v = static_cast<double>(rng.NextBounded(10));
        break;
      case 1:
        v = rng.NextUniform(0.0, 9.0);
        break;
      default:
        v = rng.NextUniform(-2.0, 14.0);
        break;
    }
    std::size_t i = rng.NextBounded(input.domain_size());
    for (ErrorMetric m :
         {ErrorMetric::kSse, ErrorMetric::kSsre, ErrorMetric::kSae,
          ErrorMetric::kSare, ErrorMetric::kMae, ErrorMetric::kMare}) {
      EXPECT_NEAR(tables.ExpectedPointError(m, i, v),
                  Direct(input.item(i), m, v, c), 1e-9)
          << ErrorMetricName(m) << " item " << i << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointErrorRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PointErrorTables, SegmentOf) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  PointErrorTables tables(input, 1.0);
  // Grid is {0, 1, 2}.
  EXPECT_EQ(tables.SegmentOf(-0.5), static_cast<std::size_t>(-1));
  EXPECT_EQ(tables.SegmentOf(0.0), 0u);
  EXPECT_EQ(tables.SegmentOf(0.7), 0u);
  EXPECT_EQ(tables.SegmentOf(1.0), 1u);
  EXPECT_EQ(tables.SegmentOf(5.0), 2u);
}

TEST(PointErrorTables, LinesTileTheAbsoluteErrorCurve) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 6, .max_support = 4, .max_value = 6, .seed = 11});
  PointErrorTables tables(input, 1.0);
  const auto& grid = tables.grid();
  for (std::size_t i = 0; i < input.domain_size(); ++i) {
    for (bool relative : {false, true}) {
      // Each segment's line must agree with the pointwise evaluation at
      // both segment ends (continuity + correctness).
      for (std::size_t l = 0; l + 1 < grid.size(); ++l) {
        Line line = tables.AbsoluteErrorLine(i, l, relative);
        for (double x : {grid[l], 0.5 * (grid[l] + grid[l + 1]), grid[l + 1]}) {
          double direct = relative
                              ? Direct(input.item(i), ErrorMetric::kSare, x, 1.0)
                              : Direct(input.item(i), ErrorMetric::kSae, x, 1.0);
          EXPECT_NEAR(line.At(x), direct, 1e-9)
              << "item " << i << " segment " << l << " x=" << x;
        }
      }
      // Left outer ray.
      Line ray = tables.AbsoluteErrorLine(i, static_cast<std::size_t>(-1),
                                          relative);
      double x = -1.5;
      double direct = relative
                          ? Direct(input.item(i), ErrorMetric::kSare, x, 1.0)
                          : Direct(input.item(i), ErrorMetric::kSae, x, 1.0);
      EXPECT_NEAR(ray.At(x), direct, 1e-9);
    }
  }
}

TEST(PointErrorTables, AgreesWithWorldEnumeration) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  const double c = 0.5;
  PointErrorTables tables(input, c);
  for (std::size_t i = 0; i < input.domain_size(); ++i) {
    for (double v : {0.0, 0.3, 1.0, 1.7, 2.0, 3.0}) {
      for (ErrorMetric m : {ErrorMetric::kSse, ErrorMetric::kSsre,
                            ErrorMetric::kSae, ErrorMetric::kSare}) {
        EXPECT_NEAR(tables.ExpectedPointError(m, i, v),
                    testing::EnumeratedItemError(worlds.value(), i, v, m, c),
                    1e-9)
            << ErrorMetricName(m) << " i=" << i << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace probsyn
