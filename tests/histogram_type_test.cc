// Tests for the Histogram value type, the metric enum helpers, and the
// bucketization test oracle itself.

#include <gtest/gtest.h>

#include "core/histogram.h"
#include "core/metrics.h"

namespace probsyn {
namespace {

Histogram MakeHistogram() {
  return Histogram({{0, 2, 1.5}, {3, 3, 7.0}, {4, 7, 0.5}});
}

TEST(Histogram, ValidateAcceptsProperPartition) {
  EXPECT_TRUE(MakeHistogram().Validate(8).ok());
}

TEST(Histogram, ValidateRejectsWrongDomain) {
  EXPECT_FALSE(MakeHistogram().Validate(9).ok());
  EXPECT_FALSE(MakeHistogram().Validate(7).ok());
}

TEST(Histogram, ValidateRejectsGapsAndOverlaps) {
  Histogram gap({{0, 2, 1.0}, {4, 7, 2.0}});
  EXPECT_FALSE(gap.Validate(8).ok());
  Histogram overlap({{0, 3, 1.0}, {3, 7, 2.0}});
  EXPECT_FALSE(overlap.Validate(8).ok());
  Histogram late_start({{1, 7, 1.0}});
  EXPECT_FALSE(late_start.Validate(8).ok());
}

TEST(Histogram, EstimateAndBucketLookup) {
  Histogram h = MakeHistogram();
  EXPECT_DOUBLE_EQ(h.Estimate(0), 1.5);
  EXPECT_DOUBLE_EQ(h.Estimate(2), 1.5);
  EXPECT_DOUBLE_EQ(h.Estimate(3), 7.0);
  EXPECT_DOUBLE_EQ(h.Estimate(7), 0.5);
  EXPECT_EQ(h.BucketIndexOf(4), 2u);
}

TEST(Histogram, RangeSumQueries) {
  Histogram h = MakeHistogram();
  EXPECT_DOUBLE_EQ(h.EstimateRangeSum(0, 7), 3 * 1.5 + 7.0 + 4 * 0.5);
  EXPECT_DOUBLE_EQ(h.EstimateRangeSum(2, 4), 1.5 + 7.0 + 0.5);
  EXPECT_DOUBLE_EQ(h.EstimateRangeSum(5, 5), 0.5);
}

TEST(Histogram, ToFrequencyVector) {
  std::vector<double> v = MakeHistogram().ToFrequencyVector();
  ASSERT_EQ(v.size(), 8u);
  EXPECT_DOUBLE_EQ(v[1], 1.5);
  EXPECT_DOUBLE_EQ(v[3], 7.0);
  EXPECT_DOUBLE_EQ(v[6], 0.5);
}

TEST(ForEachBucketization, CountsMatchBinomials) {
  // #partitions of n items into exactly B contiguous buckets = C(n-1, B-1).
  auto count = [](std::size_t n, std::size_t b) {
    std::size_t count = 0;
    ForEachBucketization(n, b, [&](const std::vector<std::size_t>&) { ++count; });
    return count;
  };
  EXPECT_EQ(count(5, 1), 1u);
  EXPECT_EQ(count(5, 2), 4u);   // C(4,1)
  EXPECT_EQ(count(5, 3), 6u);   // C(4,2)
  EXPECT_EQ(count(6, 4), 10u);  // C(5,3)
  EXPECT_EQ(count(4, 4), 1u);
  EXPECT_EQ(count(3, 5), 0u);   // impossible
}

TEST(ForEachBucketization, EmitsValidBoundaries) {
  ForEachBucketization(6, 3, [&](const std::vector<std::size_t>& ends) {
    ASSERT_EQ(ends.size(), 3u);
    EXPECT_EQ(ends.back(), 5u);
    for (std::size_t k = 1; k < ends.size(); ++k) {
      EXPECT_LT(ends[k - 1], ends[k]);
    }
  });
}

TEST(Metrics, CumulativeAndRelativeFlags) {
  EXPECT_TRUE(IsCumulativeMetric(ErrorMetric::kSse));
  EXPECT_TRUE(IsCumulativeMetric(ErrorMetric::kSare));
  EXPECT_FALSE(IsCumulativeMetric(ErrorMetric::kMae));
  EXPECT_FALSE(IsCumulativeMetric(ErrorMetric::kMare));
  EXPECT_TRUE(IsRelativeMetric(ErrorMetric::kSsre));
  EXPECT_TRUE(IsRelativeMetric(ErrorMetric::kMare));
  EXPECT_FALSE(IsRelativeMetric(ErrorMetric::kSae));
}

TEST(Metrics, NamesRoundTrip) {
  for (ErrorMetric m :
       {ErrorMetric::kSse, ErrorMetric::kSsre, ErrorMetric::kSae,
        ErrorMetric::kSare, ErrorMetric::kMae, ErrorMetric::kMare}) {
    auto parsed = ParseErrorMetric(ErrorMetricName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseErrorMetric("bogus").ok());
}

TEST(Metrics, PointErrors) {
  EXPECT_DOUBLE_EQ(PointError(ErrorMetric::kSse, 3, 1, 1), 4.0);
  EXPECT_DOUBLE_EQ(PointError(ErrorMetric::kSae, 3, 1, 1), 2.0);
  EXPECT_DOUBLE_EQ(PointError(ErrorMetric::kMae, 1, 3, 1), 2.0);
  // Relative metrics use max(c, |g|) of the TRUE frequency.
  EXPECT_DOUBLE_EQ(PointError(ErrorMetric::kSare, 4, 2, 1), 0.5);
  EXPECT_DOUBLE_EQ(PointError(ErrorMetric::kSare, 0.5, 1.5, 1), 1.0);
  EXPECT_DOUBLE_EQ(PointError(ErrorMetric::kSsre, 4, 2, 1), 0.25);
  EXPECT_DOUBLE_EQ(PointError(ErrorMetric::kMare, 4, 2, 1), 0.5);
}

TEST(Metrics, OptionsValidate) {
  SynopsisOptions ok;
  ok.metric = ErrorMetric::kSare;
  ok.sanity_c = 0.5;
  EXPECT_TRUE(ok.Validate().ok());

  SynopsisOptions bad;
  bad.metric = ErrorMetric::kSare;
  bad.sanity_c = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  // Non-relative metrics do not care about c.
  SynopsisOptions sse;
  sse.metric = ErrorMetric::kSse;
  sse.sanity_c = 0.0;
  EXPECT_TRUE(sse.Validate().ok());
}

}  // namespace
}  // namespace probsyn
