#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace probsyn {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 1013;  // prime: uneven chunking
  std::vector<std::atomic<int>> hits(n);
  ASSERT_TRUE(pool.ParallelFor(0, n, [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                      hits[i].fetch_add(1);
                  })
                  .ok());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, NonZeroRangeOffsets) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(50);
  ASSERT_TRUE(pool.ParallelFor(17, 42, [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                      hits[i].fetch_add(1);
                  })
                  .ok());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 17 && i < 42) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::size_t calls = 0, covered = 0;
  ASSERT_TRUE(pool.ParallelFor(0, 10, [&](std::size_t begin, std::size_t end) {
                    ++calls;
                    covered += end - begin;
                  })
                  .ok());
  EXPECT_EQ(calls, 1u);  // single inline chunk
  EXPECT_EQ(covered, 10u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ASSERT_TRUE(
      pool.ParallelFor(5, 5, [&](std::size_t, std::size_t) { called = true; })
          .ok());
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  std::atomic<bool> inner_ok{true};
  ASSERT_TRUE(pool.ParallelFor(0, 8, [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      // A nested fan-out must not deadlock; it degrades to
                      // inline.
                      Status inner = pool.ParallelFor(
                          0, 4, [&](std::size_t b, std::size_t e) {
                            inner_total.fetch_add(static_cast<int>(e - b));
                          });
                      if (!inner.ok()) inner_ok.store(false);
                    }
                  })
                  .ok());
  EXPECT_TRUE(inner_ok.load());
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, ManySmallCallsDoNotWedge) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(pool.ParallelFor(0, 7,
                                 [&](std::size_t begin, std::size_t end) {
                                   total.fetch_add(end - begin);
                                 })
                    .ok());
  }
  EXPECT_EQ(total.load(), 200u * 7u);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// A chunk that throws must surface as kInternal carrying the exception
// message — never std::terminate — and the call must still join every chunk.
TEST(ThreadPool, ThrowingChunkReturnsInternalStatus) {
  ThreadPool pool(3);
  std::atomic<std::size_t> entered{0};
  Status status = pool.ParallelFor(0, 64, [&](std::size_t begin, std::size_t) {
    entered.fetch_add(1);
    if (begin == 0) throw std::runtime_error("chunk exploded");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("chunk exploded"), std::string::npos)
      << status.message();
  EXPECT_GE(entered.load(), 1u);
}

// First failure wins; concurrent throws must not race the stored status.
TEST(ThreadPool, AllChunksThrowingStillReturnsSingleStatus) {
  ThreadPool pool(4);
  Status status = pool.ParallelFor(0, 128, [&](std::size_t, std::size_t) {
    throw std::runtime_error("every chunk fails");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// The pool must stay usable after a failed ParallelFor.
TEST(ThreadPool, PoolUsableAfterThrowingChunk) {
  ThreadPool pool(2);
  Status failed = pool.ParallelFor(0, 8, [&](std::size_t, std::size_t) {
    throw std::runtime_error("boom");
  });
  EXPECT_EQ(failed.code(), StatusCode::kInternal);

  std::atomic<std::size_t> total{0};
  ASSERT_TRUE(pool.ParallelFor(0, 100,
                               [&](std::size_t begin, std::size_t end) {
                                 total.fetch_add(end - begin);
                               })
                  .ok());
  EXPECT_EQ(total.load(), 100u);
}

// Non-std exceptions must also be contained (caught via catch-all).
TEST(ThreadPool, NonStdExceptionIsContained) {
  ThreadPool pool(2);
  Status status =
      pool.ParallelFor(0, 16, [&](std::size_t, std::size_t) { throw 42; });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace probsyn
