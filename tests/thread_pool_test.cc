#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

namespace probsyn {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 1013;  // prime: uneven chunking
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(0, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, NonZeroRangeOffsets) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(17, 42, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 17 && i < 42) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::size_t calls = 0, covered = 0;
  pool.ParallelFor(0, 10, [&](std::size_t begin, std::size_t end) {
    ++calls;
    covered += end - begin;
  });
  EXPECT_EQ(calls, 1u);  // single inline chunk
  EXPECT_EQ(covered, 10u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested fan-out must not deadlock; it degrades to inline.
      pool.ParallelFor(0, 4, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, ManySmallCallsDoNotWedge) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(0, 7, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 200u * 7u);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace probsyn
