#include "model/worlds.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "model/induced.h"
#include "test_util.h"

namespace probsyn {
namespace {

double TotalProbability(const std::vector<PossibleWorld>& worlds) {
  double total = 0.0;
  for (const PossibleWorld& w : worlds) total += w.probability;
  return total;
}

TEST(Worlds, PaperExampleBasicModelHasTwelveDistinctOutcomes) {
  // Example 1: the basic-model input defines twelve possible worlds (some
  // multisets arise from distinct tuple subsets; our enumerator keeps them
  // separate, so aggregate by frequency vector before comparing).
  auto worlds = EnumerateWorlds(testing::PaperExampleBasic());
  ASSERT_TRUE(worlds.ok());
  EXPECT_NEAR(TotalProbability(worlds.value()), 1.0, 1e-12);

  std::map<std::vector<double>, double> aggregated;
  for (const PossibleWorld& w : worlds.value()) {
    aggregated[w.frequencies] += w.probability;
  }
  EXPECT_EQ(aggregated.size(), 12u);
  // Spot-check Example 1's table: Pr[empty] = 1/8, Pr[{1,2,2,3}] = 1/48.
  EXPECT_NEAR((aggregated[{0, 0, 0}]), 1.0 / 8, 1e-12);
  EXPECT_NEAR((aggregated[{1, 2, 1}]), 1.0 / 48, 1e-12);
  // Pr[{1,2,3}] = 5/48 (either tuple for item 2 may supply the occurrence).
  EXPECT_NEAR((aggregated[{1, 1, 1}]), 5.0 / 48, 1e-12);
}

TEST(Worlds, PaperExampleTuplePdfHasEightWorlds) {
  auto worlds = EnumerateWorlds(testing::PaperExampleTuplePdf());
  ASSERT_TRUE(worlds.ok());
  EXPECT_NEAR(TotalProbability(worlds.value()), 1.0, 1e-12);

  std::map<std::vector<double>, double> aggregated;
  for (const PossibleWorld& w : worlds.value()) {
    aggregated[w.frequencies] += w.probability;
  }
  EXPECT_EQ(aggregated.size(), 8u);
  EXPECT_NEAR((aggregated[{0, 0, 0}]), 1.0 / 24, 1e-12);  // Pr[empty]
  EXPECT_NEAR((aggregated[{1, 0, 1}]), 1.0 / 4, 1e-12);   // Pr[{1,3}]
  EXPECT_NEAR((aggregated[{0, 2, 0}]), 1.0 / 12, 1e-12);  // Pr[{2,2}]
}

TEST(Worlds, PaperExampleValuePdfHasTwelveWorlds) {
  auto worlds = EnumerateWorlds(testing::PaperExampleValuePdf());
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 2u * 3u * 2u);
  EXPECT_NEAR(TotalProbability(worlds.value()), 1.0, 1e-12);
  // Example 1: Pr[{1,2,2,3}] = 1/16 in the value-pdf variant.
  std::map<std::vector<double>, double> aggregated;
  for (const PossibleWorld& w : worlds.value()) {
    aggregated[w.frequencies] += w.probability;
  }
  EXPECT_NEAR((aggregated[{1, 2, 1}]), 1.0 / 16, 1e-12);
  EXPECT_NEAR((aggregated[{0, 0, 0}]), 5.0 / 48, 1e-12);
}

TEST(Worlds, ExpectationsMatchExample1) {
  // "In all three cases, E[g1] = 1/2. In the value pdf case E[g2] = 5/6,
  // for the other two cases E[g2] = 7/12."
  auto basic = EnumerateWorlds(testing::PaperExampleBasic());
  auto tuple = EnumerateWorlds(testing::PaperExampleTuplePdf());
  auto value = EnumerateWorlds(testing::PaperExampleValuePdf());
  ASSERT_TRUE(basic.ok() && tuple.ok() && value.ok());

  auto g = [](std::size_t i) {
    return [i](const std::vector<double>& f) { return f[i]; };
  };
  EXPECT_NEAR(ExpectationOverWorlds(basic.value(), g(0)), 0.5, 1e-12);
  EXPECT_NEAR(ExpectationOverWorlds(tuple.value(), g(0)), 0.5, 1e-12);
  EXPECT_NEAR(ExpectationOverWorlds(value.value(), g(0)), 0.5, 1e-12);
  EXPECT_NEAR(ExpectationOverWorlds(basic.value(), g(1)), 7.0 / 12, 1e-12);
  EXPECT_NEAR(ExpectationOverWorlds(tuple.value(), g(1)), 7.0 / 12, 1e-12);
  EXPECT_NEAR(ExpectationOverWorlds(value.value(), g(1)), 5.0 / 6, 1e-12);
}

TEST(Worlds, EnumerationMatchesAnalyticMomentsOnRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TuplePdfInput input = GenerateRandomTuplePdf(
        {.domain_size = 5, .num_tuples = 5, .max_alternatives = 3, .seed = seed});
    auto worlds = EnumerateWorlds(input);
    ASSERT_TRUE(worlds.ok());
    ASSERT_NEAR(TotalProbability(worlds.value()), 1.0, 1e-9);
    auto mean = input.ExpectedFrequencies();
    auto second = input.FrequencySecondMoments();
    for (std::size_t i = 0; i < input.domain_size(); ++i) {
      double em = ExpectationOverWorlds(
          worlds.value(), [i](const std::vector<double>& f) { return f[i]; });
      double e2 = ExpectationOverWorlds(
          worlds.value(),
          [i](const std::vector<double>& f) { return f[i] * f[i]; });
      EXPECT_NEAR(em, mean[i], 1e-9) << "seed " << seed << " item " << i;
      EXPECT_NEAR(e2, second[i], 1e-9) << "seed " << seed << " item " << i;
    }
  }
}

TEST(Worlds, EnumerationCapIsEnforced) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 30, .max_support = 4, .max_value = 5, .seed = 2});
  auto worlds = EnumerateWorlds(input, /*max_worlds=*/1000);
  EXPECT_FALSE(worlds.ok());
  EXPECT_EQ(worlds.status().code(), StatusCode::kOutOfRange);
}

TEST(Worlds, ValuePdfSamplerMatchesMarginals) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  ValuePdfWorldSampler sampler(input);
  Rng rng(123);
  const int kSamples = 200000;
  double sum_g1 = 0.0;
  for (int s = 0; s < kSamples; ++s) {
    sum_g1 += sampler.Sample(rng)[1];
  }
  EXPECT_NEAR(sum_g1 / kSamples, 5.0 / 6, 0.01);
}

TEST(Worlds, TuplePdfSamplerMatchesMarginals) {
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  TuplePdfWorldSampler sampler(input);
  Rng rng(321);
  const int kSamples = 200000;
  double sum_g1 = 0.0, sum_g1_sq = 0.0;
  for (int s = 0; s < kSamples; ++s) {
    double g = sampler.Sample(rng)[1];
    sum_g1 += g;
    sum_g1_sq += g * g;
  }
  EXPECT_NEAR(sum_g1 / kSamples, 7.0 / 12, 0.01);
  // E[g2^2] = Var + mean^2 with Var = 1/3*2/3 + 1/4*3/4.
  double expected_second = (2.0 / 9 + 3.0 / 16) + 49.0 / 144;
  EXPECT_NEAR(sum_g1_sq / kSamples, expected_second, 0.02);
}

TEST(Induced, PoissonBinomialMatchesHandCases) {
  auto pdf = PoissonBinomialPdf(std::vector<double>{0.5, 0.5});
  ASSERT_EQ(pdf.size(), 3u);
  EXPECT_NEAR(pdf[0], 0.25, 1e-12);
  EXPECT_NEAR(pdf[1], 0.5, 1e-12);
  EXPECT_NEAR(pdf[2], 0.25, 1e-12);

  auto empty = PoissonBinomialPdf(std::vector<double>{});
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_DOUBLE_EQ(empty[0], 1.0);
}

TEST(Induced, MatchesEnumeratedMarginals) {
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  auto induced = InduceValuePdf(input);
  ASSERT_TRUE(induced.ok());
  // Example 1 in-text: induced pdf of item 2 (our index 1) under the tuple
  // model: Pr[g=0] = 1/2*3/4 = 3/8... computed via enumeration instead.
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  for (std::size_t i = 0; i < input.domain_size(); ++i) {
    for (double v : {0.0, 1.0, 2.0}) {
      double enumerated = ExpectationOverWorlds(
          worlds.value(), [i, v](const std::vector<double>& f) {
            return f[i] == v ? 1.0 : 0.0;
          });
      EXPECT_NEAR(induced->item(i).ProbEquals(v), enumerated, 1e-12)
          << "item " << i << " value " << v;
    }
  }
}

TEST(Induced, BasicModelSharesTupleModelMarginals) {
  auto from_basic = InduceValuePdf(testing::PaperExampleBasic());
  ASSERT_TRUE(from_basic.ok());
  // Item 1 receives two independent tuples with p = 1/3 and 1/4.
  const ValuePdf& g2 = from_basic->item(1);
  EXPECT_NEAR(g2.ProbEquals(0.0), (2.0 / 3) * (3.0 / 4), 1e-12);
  EXPECT_NEAR(g2.ProbEquals(2.0), (1.0 / 3) * (1.0 / 4), 1e-12);
  EXPECT_NEAR(g2.Mean(), 7.0 / 12, 1e-12);
}

}  // namespace
}  // namespace probsyn
