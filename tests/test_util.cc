#include "test_util.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"

namespace probsyn::testing {

BasicModelInput PaperExampleBasic() {
  return BasicModelInput(3, {{0, 1.0 / 2}, {1, 1.0 / 3}, {1, 1.0 / 4}, {2, 1.0 / 2}});
}

TuplePdfInput PaperExampleTuplePdf() {
  auto t1 = ProbTuple::Create({{0, 1.0 / 2}, {1, 1.0 / 3}});
  auto t2 = ProbTuple::Create({{1, 1.0 / 4}, {2, 1.0 / 2}});
  PROBSYN_CHECK(t1.ok() && t2.ok());
  std::vector<ProbTuple> tuples;
  tuples.push_back(std::move(t1).value());
  tuples.push_back(std::move(t2).value());
  return TuplePdfInput(3, std::move(tuples));
}

ValuePdfInput PaperExampleValuePdf() {
  auto g1 = ValuePdf::Create({{1.0, 1.0 / 2}});
  auto g2 = ValuePdf::Create({{1.0, 1.0 / 3}, {2.0, 1.0 / 4}});
  auto g3 = ValuePdf::Create({{1.0, 1.0 / 2}});
  PROBSYN_CHECK(g1.ok() && g2.ok() && g3.ok());
  std::vector<ValuePdf> items;
  items.push_back(std::move(g1).value());
  items.push_back(std::move(g2).value());
  items.push_back(std::move(g3).value());
  return ValuePdfInput(std::move(items));
}

double EnumeratedItemError(const std::vector<PossibleWorld>& worlds,
                           std::size_t item, double v, ErrorMetric metric,
                           double c) {
  double total = 0.0;
  for (const PossibleWorld& w : worlds) {
    total += w.probability * PointError(metric, w.frequencies[item], v, c);
  }
  return total;
}

double EnumeratedHistogramCost(const std::vector<PossibleWorld>& worlds,
                               const Histogram& histogram, ErrorMetric metric,
                               double c) {
  bool cumulative = IsCumulativeMetric(metric);
  double sum = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < histogram.domain_size(); ++i) {
    double err =
        EnumeratedItemError(worlds, i, histogram.Estimate(i), metric, c);
    sum += err;
    worst = std::max(worst, err);
  }
  return cumulative ? sum : worst;
}

double EnumeratedWorldMeanSse(const std::vector<PossibleWorld>& worlds,
                              const Histogram& histogram) {
  double total = 0.0;
  for (const PossibleWorld& w : worlds) {
    for (const HistogramBucket& b : histogram.buckets()) {
      double nb = static_cast<double>(b.width());
      double mean = 0.0;
      for (std::size_t i = b.start; i <= b.end; ++i) {
        mean += w.frequencies[i];
      }
      mean /= nb;
      for (std::size_t i = b.start; i <= b.end; ++i) {
        double d = w.frequencies[i] - mean;
        total += w.probability * d * d;
      }
    }
  }
  return total;
}

std::vector<SimdPath> SupportedSimdPaths() {
  std::vector<SimdPath> paths{SimdPath::kScalar};
  for (SimdPath wide : {SimdPath::kAvx2, SimdPath::kAvx512}) {
    ScopedSimdPath forced(wide);
    if (forced.active() == wide) paths.push_back(wide);
  }
  return paths;
}

}  // namespace probsyn::testing
