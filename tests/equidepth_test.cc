// Equi-depth (probabilistic-quantile) histogram baseline tests.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "gen/generators.h"
#include "test_util.h"

namespace probsyn {
namespace {

TEST(EquiDepth, ProducesValidPartition) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 40, .max_support = 3, .max_value = 6, .seed = 2});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  for (std::size_t b : {1u, 3u, 8u, 40u, 100u}) {
    auto h = BuildEquiDepthHistogram(input, options, b);
    ASSERT_TRUE(h.ok()) << "B=" << b << ": " << h.status();
    EXPECT_TRUE(h->Validate(40).ok()) << "B=" << b;
    EXPECT_LE(h->num_buckets(), std::min<std::size_t>(b, 40));
  }
}

TEST(EquiDepth, BalancesExpectedMass) {
  // Heavily skewed expected mass: the equi-depth boundaries must split it
  // into roughly equal parts, i.e. the heavy region gets narrow buckets.
  std::vector<double> freqs(32, 1.0);
  for (std::size_t i = 0; i < 4; ++i) freqs[i] = 50.0;
  ValuePdfInput input = PointMassInput(freqs);
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto h = BuildEquiDepthHistogram(input, options, 4);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->num_buckets(), 4u);
  // The first buckets cover the heavy prefix with very few items.
  EXPECT_LE(h->buckets()[0].width(), 2u);
  EXPECT_LE(h->buckets()[1].width(), 2u);
}

TEST(EquiDepth, RepresentativesAreBucketOptimal) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 16, .num_tuples = 40, .max_alternatives = 3, .seed = 6});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto h = BuildEquiDepthHistogram(input, options, 4);
  ASSERT_TRUE(h.ok());
  // Moving any representative to a nearby value must not help.
  auto base = EvaluateHistogram(input, h.value(), options);
  ASSERT_TRUE(base.ok());
  for (std::size_t k = 0; k < h->num_buckets(); ++k) {
    for (double delta : {-0.5, 0.5, 1.0}) {
      Histogram tweaked = h.value();
      std::vector<HistogramBucket> buckets = tweaked.buckets();
      buckets[k].representative += delta;
      auto cost = EvaluateHistogram(input, Histogram(buckets), options);
      ASSERT_TRUE(cost.ok());
      EXPECT_GE(*cost, *base - 1e-9);
    }
  }
}

TEST(EquiDepth, DominatedByErrorOptimalHistogram) {
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = 64, .seed = 17});
  auto input = basic.ToTuplePdf();
  ASSERT_TRUE(input.ok());
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSsre,
                             ErrorMetric::kSae}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    options.sse_variant = SseVariant::kFixedRepresentative;
    auto optimal = BuildOptimalHistogram(input.value(), options, 6);
    auto equidepth = BuildEquiDepthHistogram(input.value(), options, 6);
    ASSERT_TRUE(optimal.ok() && equidepth.ok());
    auto cost_opt = EvaluateHistogram(input.value(), optimal.value(), options);
    auto cost_eq = EvaluateHistogram(input.value(), equidepth.value(), options);
    ASSERT_TRUE(cost_opt.ok() && cost_eq.ok());
    EXPECT_LE(*cost_opt, *cost_eq + 1e-9) << ErrorMetricName(metric);
  }
}

TEST(EquiDepth, SingleBucketAndTinyDomains) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto one = BuildEquiDepthHistogram(input, options, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->num_buckets(), 1u);

  ValuePdfInput single({ValuePdf::PointMass(2.0)});
  auto h = BuildEquiDepthHistogram(single, options, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(h->buckets()[0].representative, 2.0);
}

TEST(EquiDepth, RejectsZeroBuckets) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  EXPECT_FALSE(BuildEquiDepthHistogram(input, options, 0).ok());
}

}  // namespace
}  // namespace probsyn
