// Seeded fault-injection campaigns against the engine and the pdata
// reader: every injection site must surface as a clean Status (never a
// crash or a leaked workspace lease), the engine must stay fully usable
// after a campaign, and RequestFallback::kDegrade must ride out preprocess
// faults by serving the fault-free ladder floor. A seeded corpus-corruption
// sweep hardens the pdata parser the same way.

#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "io/pdata.h"
#include "util/random.h"

namespace probsyn {
namespace {

const ValuePdfInput& TestInput() {
  static const ValuePdfInput input =
      GenerateRandomValuePdf({.domain_size = 256, .seed = 7});
  return input;
}

SynopsisRequest ExactRequest(std::size_t budget = 8) {
  SynopsisRequest request;
  request.method = HistogramMethod::kOptimal;
  request.budget = budget;
  return request;
}

void ExpectNoLeakedLeases(const SynopsisEngine& engine) {
  EXPECT_EQ(engine.workspace_pool_stats().outstanding, 0u);
}

TEST(FaultInjection, SiteNamesAreStable) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kWorkspaceAlloc), "workspace-alloc");
  EXPECT_STREQ(FaultSiteName(FaultSite::kThreadPoolTask), "thread-pool-task");
  EXPECT_STREQ(FaultSiteName(FaultSite::kOraclePreprocess),
               "oracle-preprocess");
  EXPECT_STREQ(FaultSiteName(FaultSite::kPdataRead), "pdata-read");
}

// --- Per-site campaigns at rate 1.0 -------------------------------------

TEST(FaultInjection, WorkspaceAllocFaultFailsBuildCleanly) {
  SynopsisEngine engine;
  auto reference = engine.Build(TestInput(), ExactRequest());
  ASSERT_TRUE(reference.ok()) << reference.status();

  {
    ScopedFaultInjection campaign(
        {.seed = 1, .rate = 1.0, .only_site = FaultSite::kWorkspaceAlloc});
    auto result = engine.Build(TestInput(), ExactRequest());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    ExpectNoLeakedLeases(engine);
  }

  // Campaign over: the engine serves the identical answer again.
  auto after = engine.Build(TestInput(), ExactRequest());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->histogram == reference->histogram);
  EXPECT_EQ(after->cost, reference->cost);
  ExpectNoLeakedLeases(engine);
}

TEST(FaultInjection, ThreadPoolTaskFaultPropagatesAsStatus) {
  // Parallel engine so ParallelFor fan-outs actually run; every chunk
  // entry then fails, and the failure must come back as a Status — the
  // pool must not terminate or wedge.
  SynopsisEngine engine({.parallelism = 4, .min_parallel_domain = 1});
  {
    ScopedFaultInjection campaign(
        {.seed = 2, .rate = 1.0, .only_site = FaultSite::kThreadPoolTask});
    auto result = engine.Build(TestInput(), ExactRequest());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    ExpectNoLeakedLeases(engine);
  }
  auto after = engine.Build(TestInput(), ExactRequest());
  ASSERT_TRUE(after.ok()) << after.status();
  ExpectNoLeakedLeases(engine);
}

TEST(FaultInjection, OraclePreprocessFaultFailsCleanlyEvenUnderDegrade) {
  SynopsisEngine engine;
  ScopedFaultInjection campaign(
      {.seed = 3, .rate = 1.0, .only_site = FaultSite::kOraclePreprocess});

  // kNone: the preprocessing fault fails the build.
  auto failed = engine.Build(TestInput(), ExactRequest());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  ExpectNoLeakedLeases(engine);

  // The equi-depth floor takes its representatives from the same bucket
  // oracle, so a campaign that kills EVERY preprocess also kills the
  // floor: kDegrade still fails — cleanly, with the injected status, and
  // without leaking a lease.
  SynopsisRequest degrade = ExactRequest();
  degrade.fallback = RequestFallback::kDegrade;
  auto served = engine.Build(TestInput(), degrade);
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kResourceExhausted);
  ExpectNoLeakedLeases(engine);
}

TEST(FaultInjection, DegradeServesFloorWhenOnlyParallelStagesFault) {
  // kThreadPoolTask takes out every ParallelFor fan-out (oracle
  // preprocessing, blocked DP fills) — but the ladder floor runs
  // sequentially, so kDegrade rides the fault out with a degraded answer.
  SynopsisEngine engine({.parallelism = 4, .min_parallel_domain = 1});
  ScopedFaultInjection campaign(
      {.seed = 9, .rate = 1.0, .only_site = FaultSite::kThreadPoolTask});

  SynopsisRequest degrade = ExactRequest();
  degrade.fallback = RequestFallback::kDegrade;
  auto served = engine.Build(TestInput(), degrade);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_NE(served->solver.find("[degraded=exact-dp->equidepth]"),
            std::string::npos)
      << served->solver;
  ExpectNoLeakedLeases(engine);
}

TEST(FaultInjection, PdataReadFaultSurfacesAsIOError) {
  std::ostringstream os;
  ASSERT_TRUE(WriteValuePdf(os, TestInput()).ok());
  const std::string serialized = os.str();

  {
    ScopedFaultInjection campaign(
        {.seed = 4, .rate = 1.0, .only_site = FaultSite::kPdataRead});
    std::istringstream is(serialized);
    auto read = ReadValuePdf(is);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  }

  std::istringstream is(serialized);
  auto read = ReadValuePdf(is);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->domain_size(), TestInput().domain_size());
}

TEST(FaultInjection, FiredCountAdvances) {
  const std::uint64_t before = FaultInjectionFiredCount();
  ScopedFaultInjection campaign(
      {.seed = 5, .rate = 1.0, .only_site = FaultSite::kWorkspaceAlloc});
  SynopsisEngine engine;
  auto result = engine.Build(TestInput(), ExactRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_GT(FaultInjectionFiredCount(), before);
}

TEST(FaultInjection, LatencyModeInjectsDelayNotErrors) {
  SynopsisEngine engine;
  auto reference = engine.Build(TestInput(), ExactRequest());
  ASSERT_TRUE(reference.ok()) << reference.status();

  ScopedFaultInjection campaign({.seed = 6,
                                 .rate = 1.0,
                                 .latency_us = 100,
                                 .only_site = FaultSite::kWorkspaceAlloc});
  auto slow = engine.Build(TestInput(), ExactRequest());
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_TRUE(slow->histogram == reference->histogram);
  EXPECT_EQ(slow->cost, reference->cost);
  ExpectNoLeakedLeases(engine);
}

// --- Low-rate multi-seed sweep over a mixed batch ------------------------

TEST(FaultInjection, LowRateSweepNeverLeaksOrCorrupts) {
  SynopsisEngine engine({.parallelism = 2, .min_parallel_domain = 1});

  std::vector<SynopsisRequest> batch;
  batch.push_back(ExactRequest(6));
  SynopsisRequest approx = ExactRequest(4);
  approx.method = HistogramMethod::kApprox;
  approx.epsilon = 0.25;
  batch.push_back(approx);
  SynopsisRequest equidepth = ExactRequest(5);
  equidepth.method = HistogramMethod::kEquiDepth;
  batch.push_back(equidepth);
  SynopsisRequest greedy;
  greedy.kind = SynopsisKind::kWavelet;
  greedy.wavelet_method = WaveletMethod::kGreedySse;
  greedy.budget = 8;
  batch.push_back(greedy);
  SynopsisRequest restricted = greedy;
  restricted.wavelet_method = WaveletMethod::kRestrictedDp;
  restricted.budget = 4;
  batch.push_back(restricted);

  auto reference = engine.BuildBatch(TestInput(), batch);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    {
      ScopedFaultInjection campaign({.seed = seed, .rate = 0.05});
      auto swept = engine.BuildBatch(TestInput(), batch);
      if (!swept.ok()) {
        // The only acceptable failure is the injected resource fault,
        // propagated cleanly.
        EXPECT_EQ(swept.status().code(), StatusCode::kResourceExhausted)
            << "seed " << seed << ": " << swept.status();
      }
      ExpectNoLeakedLeases(engine);
    }
    // Disarmed again: the engine still serves the exact reference answer.
    auto after = engine.BuildBatch(TestInput(), batch);
    ASSERT_TRUE(after.ok()) << "seed " << seed << ": " << after.status();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ((*after)[i].cost, (*reference)[i].cost)
          << "seed " << seed << " request " << i;
    }
    ExpectNoLeakedLeases(engine);
  }
}

// --- Seeded pdata corruption corpus --------------------------------------

TEST(FaultInjection, CorruptedPdataNeverCrashesAndReportsPosition) {
  std::ostringstream os;
  ASSERT_TRUE(WriteValuePdf(
                  os, GenerateRandomValuePdf({.domain_size = 32, .seed = 3}))
                  .ok());
  const std::string clean = os.str();
  ASSERT_FALSE(clean.empty());

  Rng rng(13);
  const std::string garbage = " \t#0123456789abcdefXYZ.-+e\n";
  std::size_t failures = 0;
  std::size_t positioned_messages = 0;
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string corrupt = clean;
    switch (rng.NextBounded(3)) {
      case 0: {  // flip one byte
        std::size_t at = rng.NextBounded(corrupt.size());
        corrupt[at] = garbage[rng.NextBounded(garbage.size())];
        break;
      }
      case 1:  // truncate mid-stream
        corrupt.resize(rng.NextBounded(corrupt.size()));
        break;
      default: {  // splice a garbage token into the middle
        std::size_t at = rng.NextBounded(corrupt.size());
        corrupt.insert(at, "1e309 nonsense");
        break;
      }
    }

    std::istringstream kind_stream(corrupt);
    auto kind = DetectPdataKind(kind_stream);  // must not crash
    std::istringstream is(corrupt);
    auto read = ReadValuePdf(is);  // must not crash
    if (!read.ok()) {
      ++failures;
      EXPECT_TRUE(read.status().code() == StatusCode::kInvalidArgument ||
                  read.status().code() == StatusCode::kIOError)
          << "iteration " << iteration << ": " << read.status();
      EXPECT_FALSE(read.status().message().empty());
      if (read.status().message().find("line") != std::string::npos) {
        ++positioned_messages;
      }
    }
    (void)kind;
  }
  // The corpus must actually exercise the error paths, and the parser's
  // errors must carry position context for at least the body corruptions.
  EXPECT_GT(failures, 50u);
  EXPECT_GT(positioned_messages, 0u);
}

}  // namespace
}  // namespace probsyn
