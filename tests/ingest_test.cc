// Batched streaming ingest: PushBatch's bit-identity to single Pushes
// (the tentpole contract — pinned by a seeded differential sweep across
// kernels, split patterns, and SIMD paths), chain-store bookkeeping, and
// the IngestCoordinator's determinism, backpressure policies, and
// cancellation plumbing. Suite names stay under Ingest*/PushBatch* so the
// CI TSan job's -R regex picks them up.

#include "stream/ingest_coordinator.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "stream/streaming_histogram.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "test_util.h"

namespace probsyn {
namespace {

// Splitmix-style deterministic case parameters.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Pushes `input` through a fresh builder one item at a time.
StreamingHistogramBuilder::Result SequentialReference(
    const ValuePdfInput& input, std::size_t buckets, double epsilon,
    StreamChainStore* store) {
  StreamingHistogramBuilder builder(buckets, epsilon,
                                    StreamingKernel::kAuto, store);
  for (const ValuePdf& pdf : input.items()) builder.Push(pdf);
  auto result = builder.Finish();
  PROBSYN_CHECK(result.ok());
  return std::move(result).value();
}

void ExpectBitIdentical(const StreamingHistogramBuilder::Result& a,
                        const StreamingHistogramBuilder::Result& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.peak_breakpoints, b.peak_breakpoints);
  ASSERT_EQ(a.histogram.num_buckets(), b.histogram.num_buckets());
  for (std::size_t i = 0; i < a.histogram.num_buckets(); ++i) {
    EXPECT_EQ(a.histogram.buckets()[i].start, b.histogram.buckets()[i].start);
    EXPECT_EQ(a.histogram.buckets()[i].end, b.histogram.buckets()[i].end);
    EXPECT_EQ(a.histogram.buckets()[i].representative,
              b.histogram.buckets()[i].representative);
  }
}

// The tentpole contract: PushBatch(split any way, interleaved with single
// Pushes) is bit-identical to the all-single-Push stream — cost, peak,
// retained breakpoints, every bucket, and the chain store's live-node
// count. 200 seeded cases spanning budgets, slacks, and split patterns.
TEST(PushBatch, DifferentialSweepBitIdenticalToSinglePush) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const std::size_t n = 50 + Mix(seed) % 351;
    const std::size_t buckets = 1 + Mix(seed * 3 + 1) % 16;
    const double epsilon = 0.05 + 0.45 * (Mix(seed * 5 + 2) % 10) / 10.0;
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = n, .max_support = 4, .max_value = 9, .seed = seed});
    StreamChainStore sequential_store;
    StreamingHistogramBuilder sequential(buckets, epsilon,
                                         StreamingKernel::kAuto,
                                         &sequential_store);
    for (const ValuePdf& pdf : input.items()) sequential.Push(pdf);
    auto reference_result = sequential.Finish();
    ASSERT_TRUE(reference_result.ok()) << reference_result.status();
    const StreamingHistogramBuilder::Result& reference = *reference_result;

    StreamChainStore batched_store;
    StreamingHistogramBuilder batched(buckets, epsilon,
                                      StreamingKernel::kAuto, &batched_store);
    const std::span<const ValuePdf> items(input.items().data(), n);
    std::size_t offset = 0;
    std::uint64_t rng = Mix(seed * 7 + 3);
    while (offset < n) {
      rng = Mix(rng);
      if ((rng & 7u) == 0) {  // occasionally interleave a single Push
        batched.Push(items[offset]);
        ++offset;
        continue;
      }
      const std::size_t block = std::min<std::size_t>(1 + (rng >> 8) % 70,
                                                      n - offset);
      batched.PushBatch(items.subspan(offset, block));
      offset += block;
    }
    auto batched_result = batched.Finish();
    ASSERT_TRUE(batched_result.ok()) << batched_result.status();
    ExpectBitIdentical(reference, *batched_result);
    // Same live boundary-chain nodes as the sequential stream retains
    // (hash-consing makes the live set structural, not history-dependent).
    EXPECT_EQ(batched_store.stats().live, sequential_store.stats().live)
        << "seed " << seed;
  }
}

// Every dispatchable SIMD path produces the same bits (the AVX-512 lane
// kernel's correctly-rounded division and clamp-free fallback, the AVX2
// divide path, and the scalar reference all agree exactly).
TEST(PushBatch, BitIdenticalAcrossSimdPaths) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 300, .max_support = 4, .max_value = 9, .seed = 77});
  StreamingHistogramBuilder::Result reference =
      SequentialReference(input, 12, 0.1, nullptr);
  for (SimdPath path : testing::SupportedSimdPaths()) {
    testing::ScopedSimdPath forced(path);
    StreamingHistogramBuilder batched(12, 0.1);
    batched.PushBatch(
        std::span<const ValuePdf>(input.items().data(), input.items().size()));
    auto result = batched.Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectBitIdentical(reference, *result);
  }
}

// The reference kernel keeps copy-based chains and no batch scratch;
// PushBatch there must fall back to looped Push with identical results.
TEST(PushBatch, ReferenceKernelFallsBackToLoopedPush) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 150, .max_support = 4, .max_value = 9, .seed = 5});
  StreamingHistogramBuilder single(6, 0.2, StreamingKernel::kReference);
  for (const ValuePdf& pdf : input.items()) single.Push(pdf);
  StreamingHistogramBuilder batched(6, 0.2, StreamingKernel::kReference);
  batched.PushBatch(
      std::span<const ValuePdf>(input.items().data(), input.items().size()));
  auto a = single.Finish();
  auto b = batched.Finish();
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(*a, *b);
}

// Steady state: once a shared chain store has served one batched stream,
// further identical streams allocate nothing new (no grow events and no
// net live-node drift after each builder releases its references).
TEST(PushBatch, ZeroSteadyStateAllocationThroughSharedStore) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 400, .max_support = 4, .max_value = 9, .seed = 11});
  const std::span<const ValuePdf> items(input.items().data(),
                                        input.items().size());
  StreamChainStore store;
  auto run_stream = [&] {
    StreamingHistogramBuilder builder(10, 0.15, StreamingKernel::kAuto,
                                      &store);
    for (std::size_t offset = 0; offset < items.size(); offset += 96) {
      builder.PushBatch(
          items.subspan(offset, std::min<std::size_t>(96, items.size() - offset)));
    }
    auto result = builder.Finish();
    PROBSYN_CHECK(result.ok());
  };
  run_stream();  // warm the store's node capacity
  const std::size_t warm_grow_events = store.stats().grow_events;
  const std::size_t warm_live = store.stats().live;
  for (int repeat = 0; repeat < 3; ++repeat) run_stream();
  EXPECT_EQ(store.stats().grow_events, warm_grow_events);
  EXPECT_EQ(store.stats().live, warm_live);
}

// ---------------------------------------------------------------------
// IngestCoordinator.

std::vector<ValuePdfInput> MultiStreamInputs(std::size_t streams,
                                             std::size_t items) {
  std::vector<ValuePdfInput> inputs;
  inputs.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    inputs.push_back(GenerateRandomValuePdf(
        {.domain_size = items, .max_support = 4, .max_value = 9,
         .seed = 500 + s}));
  }
  return inputs;
}

// Runs `streams` streams through a coordinator on an engine with the given
// parallelism, submitting in waves with interleaved DrainAll calls.
std::vector<StreamingHistogramBuilder::Result> RunCoordinator(
    std::size_t parallelism, const std::vector<ValuePdfInput>& inputs,
    const IngestOptions& options) {
  SynopsisEngine engine(SynopsisEngine::Options{.parallelism = parallelism});
  auto coordinator = engine.OpenIngest(options);
  PROBSYN_CHECK(coordinator.ok());
  IngestCoordinator& coord = **coordinator;
  for (std::size_t s = 0; s < inputs.size(); ++s) coord.OpenStream();
  const std::size_t items = inputs[0].items().size();
  const std::size_t wave = 100;
  for (std::size_t offset = 0; offset < items; offset += wave) {
    for (std::size_t s = 0; s < inputs.size(); ++s) {
      const std::span<const ValuePdf> all(inputs[s].items().data(), items);
      Status status = coord.SubmitBatch(
          s, all.subspan(offset, std::min(wave, items - offset)));
      PROBSYN_CHECK(status.ok());
    }
    PROBSYN_CHECK(coord.DrainAll().ok());
  }
  std::vector<StreamingHistogramBuilder::Result> results;
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    auto result = coord.Finish(s);
    PROBSYN_CHECK(result.ok());
    results.push_back(std::move(result).value());
  }
  return results;
}

// Determinism across thread counts and SIMD paths: every configuration
// must reproduce the plain sequential per-stream builders bit-for-bit
// (per-stream FIFO + PushBatch bit-identity make drain timing invisible).
TEST(Ingest, DeterministicAcrossThreadCountsAndSimdPaths) {
  const std::vector<ValuePdfInput> inputs = MultiStreamInputs(4, 300);
  IngestOptions options;
  options.max_buckets = 8;
  options.epsilon = 0.25;
  options.queue_capacity = 128;
  options.drain_batch = 48;
  std::vector<StreamingHistogramBuilder::Result> reference;
  for (const ValuePdfInput& input : inputs) {
    reference.push_back(SequentialReference(input, 8, 0.25, nullptr));
  }
  const std::vector<SimdPath> paths = {SimdPath::kScalar,
                                       testing::SupportedSimdPaths().back()};
  for (SimdPath path : paths) {
    testing::ScopedSimdPath forced(path);
    for (std::size_t threads : {1u, 2u, 8u}) {
      auto results = RunCoordinator(threads, inputs, options);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t s = 0; s < results.size(); ++s) {
        ExpectBitIdentical(reference[s], results[s]);
      }
    }
  }
}

TEST(Ingest, RejectWithStatusFailsWhenFull) {
  IngestCoordinator coord(
      IngestOptions{.max_buckets = 4,
                    .epsilon = 0.5,
                    .queue_capacity = 8,
                    .backpressure = IngestBackpressure::kRejectWithStatus},
      nullptr, nullptr);
  coord.OpenStream();
  const ValuePdf item = ValuePdf::PointMass(1.0);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(coord.Submit(0, item).ok());
  Status rejected = coord.Submit(0, item);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(coord.stats().rejected, 1u);
  EXPECT_EQ(coord.stats().accepted, 8u);
}

TEST(Ingest, ShedOldestDropsHeadAndCounts) {
  IngestCoordinator coord(
      IngestOptions{.max_buckets = 4,
                    .epsilon = 0.5,
                    .queue_capacity = 4,
                    .backpressure = IngestBackpressure::kShedOldest},
      nullptr, nullptr);
  coord.OpenStream();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        coord.Submit(0, ValuePdf::PointMass(static_cast<double>(i))).ok());
  }
  EXPECT_EQ(coord.stats().shed, 6u);
  EXPECT_EQ(coord.stats().accepted, 10u);
  ASSERT_TRUE(coord.DrainAll().ok());
  // Only the newest queue_capacity items reach the builder.
  EXPECT_EQ(coord.stats().pushed, 4u);
}

// kBlock with a tiny queue and no pool: Submit must drain inline rather
// than deadlock, and the result still matches the sequential builder.
TEST(Ingest, BlockPolicyDrainsInlineSingleThreaded) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 200, .max_support = 4, .max_value = 9, .seed = 21});
  IngestCoordinator coord(
      IngestOptions{.max_buckets = 6, .epsilon = 0.3, .queue_capacity = 8,
                    .drain_batch = 8},
      nullptr, nullptr);
  coord.OpenStream();
  for (const ValuePdf& pdf : input.items()) {
    ASSERT_TRUE(coord.Submit(0, pdf).ok());
  }
  auto result = coord.Finish(0);
  ASSERT_TRUE(result.ok()) << result.status();
  StreamingHistogramBuilder::Result reference =
      SequentialReference(input, 6, 0.3, nullptr);
  ExpectBitIdentical(reference, *result);
}

TEST(Ingest, CancelStopsDrainAndBlockedSubmit) {
  CancelToken cancel;
  ExecContext context(Deadline::Never(), &cancel);
  IngestCoordinator coord(
      IngestOptions{.max_buckets = 4, .epsilon = 0.5, .queue_capacity = 4,
                    .context = &context},
      nullptr, nullptr);
  coord.OpenStream();
  const ValuePdf item = ValuePdf::PointMass(2.0);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(coord.Submit(0, item).ok());
  cancel.Cancel();
  // The drain loop polls before touching the builder: nothing is pushed.
  Status drain = coord.DrainAll();
  EXPECT_EQ(drain.code(), StatusCode::kCancelled);
  EXPECT_EQ(coord.stats().pushed, 0u);
  // A blocked Submit (queue still full) unwinds with the same status
  // instead of waiting forever.
  Status blocked = coord.Submit(0, item);
  EXPECT_EQ(blocked.code(), StatusCode::kCancelled);
  // After re-arming, the stream drains and finishes normally.
  cancel.Reset();
  ASSERT_TRUE(coord.DrainAll().ok());
  EXPECT_EQ(coord.stats().pushed, 4u);
}

TEST(Ingest, RejectsUnknownAndFinishedStreams) {
  IngestCoordinator coord(IngestOptions{}, nullptr, nullptr);
  EXPECT_EQ(coord.Submit(0, ValuePdf::PointMass(1.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(coord.Finish(3).status().code(), StatusCode::kInvalidArgument);
  const std::size_t stream = coord.OpenStream();
  ASSERT_TRUE(coord.Submit(stream, ValuePdf::PointMass(1.0)).ok());
  ASSERT_TRUE(coord.Finish(stream).ok());
  EXPECT_EQ(coord.Submit(stream, ValuePdf::PointMass(1.0)).code(),
            StatusCode::kFailedPrecondition);
  // Finish stays re-callable (non-destructive).
  EXPECT_TRUE(coord.Finish(stream).ok());
}

TEST(Ingest, OpenIngestValidatesOptions) {
  SynopsisEngine engine;
  EXPECT_EQ(engine.OpenIngest({.max_buckets = 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.OpenIngest({.epsilon = 0.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.OpenIngest({.queue_capacity = 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.OpenIngest({.drain_batch = 0}).status().code(),
            StatusCode::kInvalidArgument);
  auto coordinator = engine.OpenIngest(IngestOptions{});
  ASSERT_TRUE(coordinator.ok());
  // Streams lease engine workspaces; the lease count returns to zero only
  // when the coordinator goes away, so just check it grows per stream.
  (*coordinator)->OpenStream();
  EXPECT_EQ(engine.workspace_pool_stats().outstanding, 1u);
  coordinator->reset();
  EXPECT_EQ(engine.workspace_pool_stats().outstanding, 0u);
}

// The shared poll-cadence helper both the engine's streaming loop and the
// ingest drain loop run on.
TEST(IngestPollGate, PollsOnPowerOfTwoCadence) {
  CancelToken cancel;
  ExecContext context(Deadline::Never(), &cancel);
  cancel.Cancel();
  PollGate gate(4);
  // First call polls (historical (pushed & 15) == 0 behavior), then every
  // 4th.
  EXPECT_TRUE(gate.ShouldStop(&context));
  EXPECT_FALSE(gate.ShouldStop(&context));
  EXPECT_FALSE(gate.ShouldStop(&context));
  EXPECT_FALSE(gate.ShouldStop(&context));
  EXPECT_TRUE(gate.ShouldStop(&context));
  PollGate every_call(1);
  EXPECT_TRUE(every_call.ShouldStop(&context));
  EXPECT_TRUE(every_call.ShouldStop(&context));
  PollGate null_context;
  EXPECT_FALSE(null_context.ShouldStop(nullptr));
}

}  // namespace
}  // namespace probsyn
